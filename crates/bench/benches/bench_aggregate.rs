//! E10: the parts-explosion aggregation program (Section 6) over random part
//! hierarchies of growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hilog_engine::aggregate::{evaluate_aggregate_program, parts_explosion_program};
use hilog_engine::horn::EvalOptions;
use hilog_workloads::random_part_hierarchy;
use std::time::Duration;

fn bench_aggregate(c: &mut Criterion) {
    let mut group = c.benchmark_group("E10_parts_explosion");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for n in [16usize, 64, 128] {
        let hierarchy = random_part_hierarchy(n, n / 2, 3);
        let program = parts_explosion_program(&[("m", "parts")], &hierarchy.as_facts("parts"));
        group.bench_with_input(BenchmarkId::new("parts", n), &program, |b, p| {
            b.iter(|| {
                evaluate_aggregate_program(p, EvalOptions::default())
                    .unwrap()
                    .model
                    .true_atoms()
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_aggregate);
criterion_main!(benches);
