//! What durability costs, and what recovery buys.
//!
//! Three questions, one EDB-heavy ingest workload (`durability_workload`,
//! 10^5 distinct `edge` facts in 500-fact batches over a two-rule program):
//!
//! 1. **Write-path overhead** — the same batch stream is pushed through a
//!    `PersistentWriter` with the in-memory backend (PR 6 behaviour), a WAL
//!    fsync'd per batch, and a WAL fsync'd on a 50ms interval.  The interval
//!    setting is the one the issue bounds at `<10%` overhead.
//! 2. **Checkpoint cost** — wall time to save the full ingested state and
//!    the resulting file size.
//! 3. **Restart-to-first-answer** — time from `PersistentWriter::open` on an
//!    existing data directory until a bound probe query answers, for the
//!    checkpoint path and the WAL-replay path, against cold fresh
//!    evaluation (parse the flat program, build, answer).
//!
//! Run with `cargo bench -p hilog-bench --bench bench_durability`; besides
//! the markdown table on stdout it records the measurements in
//! `BENCH_durability.json` at the repository root.  `HILOG_BENCH_SMOKE=1`
//! runs a reduced load and does not overwrite the committed numbers.

use hilog_bench::{to_markdown, Measurement};
use hilog_engine::HiLogDb;
use hilog_store::{Op, PersistentWriter, StoreConfig};
use hilog_syntax::{parse_program, parse_query, parse_term};
use hilog_workloads::durability::{
    durability_workload, DurabilityWorkload, DurabilityWorkloadConfig,
};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hilog-bench-durability-{tag}-{}",
        std::process::id()
    ));
    // A stale directory from a killed run would turn "fresh ingest" into
    // "recovery plus ingest"; start clean.
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create bench data dir");
    dir
}

/// Pre-parsed assert batches, shared by every variant so parsing cost never
/// contaminates the write-path comparison.
fn parse_batches(workload: &DurabilityWorkload) -> Vec<Vec<Op>> {
    workload
        .batches
        .iter()
        .map(|batch| {
            batch
                .iter()
                .map(|fact| Op::AssertFact(parse_term(fact).expect("workload fact parses")))
                .collect()
        })
        .collect()
}

/// Streams every batch through `writer`, returning the wall time.
fn ingest(writer: &mut PersistentWriter, batches: &[Vec<Op>]) -> Duration {
    let start = Instant::now();
    for ops in batches {
        writer.apply_batch(ops).expect("ingest batch applies");
    }
    writer.flush().expect("ingest flush");
    start.elapsed()
}

/// Answers the first probe against the writer's published snapshot,
/// asserting it is non-empty (i.e. the ingested facts are really there).
fn first_answer(handle: &hilog_engine::SnapshotHandle, probe: &str) -> Duration {
    let query = parse_query(probe).expect("probe parses");
    let start = Instant::now();
    let result = handle.current().query(&query).expect("probe answers");
    let elapsed = start.elapsed();
    assert!(!result.answers.is_empty(), "probe {probe} found no edges");
    elapsed
}

fn row(workload: &str, metric: &str, value: f64, unit: &str) -> Measurement {
    Measurement::new("DURABILITY", workload.to_string(), metric, value, unit)
}

fn main() {
    let smoke = std::env::var("HILOG_BENCH_SMOKE").is_ok();
    let config = if smoke {
        DurabilityWorkloadConfig {
            facts: 2_000,
            nodes: 500,
            batch_size: 100,
            probes: 8,
        }
    } else {
        DurabilityWorkloadConfig::default()
    };
    let workload = durability_workload(&config, 0xD15C);
    let batches = parse_batches(&workload);
    let facts = config.facts as f64;
    let scale = format!("n={}", config.facts);
    let mut rows = Vec::new();

    // 1. Write-path overhead: identical streams, three backends.
    let (mut mem_writer, _mem_handle) =
        PersistentWriter::in_memory(HiLogDb::new(workload.rules.clone()));
    let mem_wall = ingest(&mut mem_writer, &batches);
    rows.push(row(
        &format!("ingest in-memory {scale}"),
        "facts_per_s",
        facts / mem_wall.as_secs_f64(),
        "1/s",
    ));
    drop(mem_writer);

    let perbatch_dir = temp_dir("perbatch");
    let (mut pb_writer, _pb_handle, _) = PersistentWriter::open(
        &StoreConfig::new(&perbatch_dir),
        HiLogDb::new(workload.rules.clone()),
    )
    .expect("open per-batch store");
    let pb_wall = ingest(&mut pb_writer, &batches);
    rows.push(row(
        &format!("ingest wal-perbatch {scale}"),
        "facts_per_s",
        facts / pb_wall.as_secs_f64(),
        "1/s",
    ));
    drop(pb_writer); // Simulated crash: full WAL, baseline checkpoint only.

    let interval_dir = temp_dir("interval");
    let (mut iv_writer, iv_handle, _) = PersistentWriter::open(
        &StoreConfig::new(&interval_dir).fsync_interval(Duration::from_millis(50)),
        HiLogDb::new(workload.rules.clone()),
    )
    .expect("open interval store");
    let iv_wall = ingest(&mut iv_writer, &batches);
    rows.push(row(
        &format!("ingest wal-interval {scale}"),
        "facts_per_s",
        facts / iv_wall.as_secs_f64(),
        "1/s",
    ));
    let overhead =
        (iv_wall.as_secs_f64() - mem_wall.as_secs_f64()) / mem_wall.as_secs_f64() * 100.0;
    rows.push(row(
        &format!("ingest wal-interval {scale}"),
        "overhead_vs_memory",
        overhead,
        "%",
    ));
    // Warm the probe once so checkpoint/restart timings below aren't mixed
    // with first-build index costs on the live side.
    first_answer(&iv_handle, &workload.probes[0]);

    // 2. Checkpoint save cost (and file size) at the full ingested state.
    let ckpt_start = Instant::now();
    let outcome = iv_writer.checkpoint().expect("checkpoint saves");
    let ckpt_wall = ckpt_start.elapsed();
    rows.push(row(
        &format!("checkpoint {scale}"),
        "save_wall",
        ckpt_wall.as_secs_f64() * 1e3,
        "ms",
    ));
    let ckpt_bytes = outcome
        .path
        .as_ref()
        .and_then(|p| std::fs::metadata(p).ok())
        .map(|m| m.len())
        .unwrap_or(0);
    rows.push(row(
        &format!("checkpoint {scale}"),
        "file_size",
        ckpt_bytes as f64,
        "bytes",
    ));
    drop(iv_writer);

    // 3a. Restart from the checkpoint: open (load + decode) then answer.
    let open_start = Instant::now();
    let (ck_writer, ck_handle, report) = PersistentWriter::open(
        &StoreConfig::new(&interval_dir),
        HiLogDb::new(workload.rules.clone()),
    )
    .expect("reopen checkpoint store");
    let ck_open = open_start.elapsed();
    assert!(report.recovered && report.replayed_records == 0);
    let ck_answer = first_answer(&ck_handle, &workload.probes[0]);
    rows.push(row(
        &format!("restart checkpoint {scale}"),
        "open_wall",
        ck_open.as_secs_f64() * 1e3,
        "ms",
    ));
    rows.push(row(
        &format!("restart checkpoint {scale}"),
        "first_answer",
        (ck_open + ck_answer).as_secs_f64() * 1e3,
        "ms",
    ));
    drop(ck_writer);

    // 3b. Restart by replaying the full WAL (the crash-without-checkpoint
    // path left behind by the per-batch run above).
    let open_start = Instant::now();
    let (wal_writer, wal_handle, report) = PersistentWriter::open(
        &StoreConfig::new(&perbatch_dir),
        HiLogDb::new(workload.rules.clone()),
    )
    .expect("reopen WAL store");
    let wal_open = open_start.elapsed();
    assert!(report.recovered && report.replayed_records == batches.len());
    let wal_answer = first_answer(&wal_handle, &workload.probes[0]);
    rows.push(row(
        &format!("restart wal-replay {scale}"),
        "open_wall",
        wal_open.as_secs_f64() * 1e3,
        "ms",
    ));
    rows.push(row(
        &format!("restart wal-replay {scale}"),
        "first_answer",
        (wal_open + wal_answer).as_secs_f64() * 1e3,
        "ms",
    ));
    drop(wal_writer);

    // 3c. Cold fresh evaluation: parse the flat program, build, answer.
    let cold_start = Instant::now();
    let program = parse_program(&workload.flat_program).expect("flat program parses");
    let (_cold_writer, cold_handle) = HiLogDb::new(program).into_serving();
    let cold_build = cold_start.elapsed();
    let cold_answer = first_answer(&cold_handle, &workload.probes[0]);
    rows.push(row(
        &format!("cold fresh {scale}"),
        "build_wall",
        cold_build.as_secs_f64() * 1e3,
        "ms",
    ));
    rows.push(row(
        &format!("cold fresh {scale}"),
        "first_answer",
        (cold_build + cold_answer).as_secs_f64() * 1e3,
        "ms",
    ));

    std::fs::remove_dir_all(&perbatch_dir).ok();
    std::fs::remove_dir_all(&interval_dir).ok();

    print!("{}", to_markdown(&rows));
    if smoke {
        // CI smoke: exercise every path but keep the committed numbers.
        return;
    }
    let json = serde_json::to_string_pretty(&rows).expect("measurements serialise");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_durability.json");
    std::fs::write(path, json + "\n").expect("BENCH_durability.json written");
    println!("wrote {path}");
}
