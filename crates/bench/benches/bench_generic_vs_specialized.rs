//! E11: one generic HiLog closure program over k relations versus k
//! specialised normal (Datalog) closure programs — the genericity trade-off
//! that motivates HiLog in the paper's introduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hilog_datalog::engine::DatalogEngine;
use hilog_engine::horn::{least_model, EvalOptions, NegationMode};
use hilog_workloads::{generic_closure_program, random_dag, specialized_closure_program};
use std::time::Duration;

fn bench_generic_vs_specialized(c: &mut Criterion) {
    let mut group = c.benchmark_group("E11_generic_vs_specialized");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for k in [2usize, 4, 8] {
        let n = 48usize;
        let relations: Vec<(String, Vec<(usize, usize)>)> = (0..k)
            .map(|i| (format!("rel{i}"), random_dag(n, 1.5, i as u64 + 40)))
            .collect();
        let borrowed: Vec<(&str, Vec<(usize, usize)>)> = relations
            .iter()
            .map(|(s, e)| (s.as_str(), e.clone()))
            .collect();
        let generic = generic_closure_program(&borrowed);
        group.bench_with_input(BenchmarkId::new("generic_hilog", k), &generic, |b, p| {
            b.iter(|| {
                least_model(p, NegationMode::Forbid, EvalOptions::default())
                    .unwrap()
                    .len()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("specialized_datalog", k),
            &relations,
            |b, rels| {
                b.iter(|| {
                    let mut total = 0usize;
                    for (name, edges) in rels {
                        let program = specialized_closure_program(name, edges);
                        total += DatalogEngine::new(program)
                            .unwrap()
                            .least_model()
                            .unwrap()
                            .len();
                    }
                    total
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_generic_vs_specialized);
criterion_main!(benches);
