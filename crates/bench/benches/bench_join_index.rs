//! The argument-index join engine versus the pre-index functor-scan
//! baseline, on the two join-heavy workloads the index was built for:
//!
//! * **join-heavy win/move** — the guarded game rule
//!   `winning(X) :- position(X), move(X, Y), not winning(Y).` over a random
//!   DAG: once `position(X)` binds `X`, the `move(X, Y)` literal probes the
//!   argument-0 index instead of scanning the whole `move/2` extension per
//!   seed substitution;
//! * **wide-EDB transitive closure** — `tc(X, Y) :- e(X, Z), tc(Z, Y).` over
//!   a wide random graph: every semi-naive round probes the (large, growing)
//!   `tc/2` store on its bound first argument.
//!
//! Both sides run the *same* code path end to end; the baseline disables
//! argument-index probing through `hilog_engine::horn::scan_only_guard`, so
//! the measured difference is exactly the index.  Besides the markdown table
//! the run records `BENCH_joins.json` at the repository root (cited in
//! ROADMAP.md), including the `index_probes` / `index_fallback_scans`
//! counters so a silent regression to full scans is visible in the data.
//!
//! `HILOG_BENCH_SMOKE=1` runs reduced sizes, asserts that the indexed path
//! actually probes indexes and stays correct against the scan baseline, and
//! does not overwrite the committed measurements.

use hilog_bench::{median_time, to_markdown, Measurement};
use hilog_core::program::Program;
use hilog_engine::horn::{least_model, probe_counters, scan_only_guard, EvalOptions, NegationMode};
use hilog_engine::session::HiLogDb;
use hilog_syntax::parse_program;
use hilog_workloads::{node_name, random_dag};
use std::time::Duration;

const REPEATS: usize = 3;

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

/// `winning(X) :- position(X), move(X, Y), not winning(Y).` over a random
/// DAG of `nodes` positions — the join-heavy variant of Example 6.1: the
/// grounding join binds `X` first, so the `move` literal is an indexable
/// probe.
fn guarded_game_program(nodes: usize, seed: u64) -> Program {
    let mut text = String::from("winning(X) :- position(X), move(X, Y), not winning(Y).\n");
    for i in 0..nodes {
        text.push_str(&format!("position({}).\n", node_name(i)));
    }
    for (u, v) in random_dag(nodes, 2.0, seed) {
        text.push_str(&format!("move({}, {}).\n", node_name(u), node_name(v)));
    }
    parse_program(&text).expect("guarded game program parses")
}

/// `tc` over a wide random graph: the EDB is broad and the `tc(Z, Y)`
/// recursion probes an ever-growing store on its bound first argument.
fn tc_program(nodes: usize, degree: f64, seed: u64) -> Program {
    let mut text = String::from(
        "tc(X, Y) :- e(X, Y).\n\
         tc(X, Y) :- e(X, Z), tc(Z, Y).\n",
    );
    for (u, v) in random_dag(nodes, degree, seed) {
        text.push_str(&format!("e({}, {}).\n", node_name(u), node_name(v)));
    }
    parse_program(&text).expect("tc program parses")
}

/// Measures `run` with argument indexes on and off, emitting the three
/// standard rows plus the indexed run's probe counters.  Returns the
/// (indexed, scanned) durations for the smoke-mode sanity checks.
fn compare(
    rows: &mut Vec<Measurement>,
    workload: &str,
    mut run: impl FnMut(),
) -> (Duration, Duration) {
    let (probes_before, fallbacks_before) = probe_counters();
    run(); // one counted warm-up pass for the probe statistics
    let (probes_after, fallbacks_after) = probe_counters();
    let indexed = median_time(REPEATS, &mut run);
    let scanned = median_time(REPEATS, || {
        let _guard = scan_only_guard();
        run();
    });
    for (metric, value, unit) in [
        ("arg_indexed", secs(indexed) * 1e3, "ms"),
        ("functor_scan_baseline", secs(scanned) * 1e3, "ms"),
        (
            "speedup",
            secs(scanned) / secs(indexed).max(f64::EPSILON),
            "x",
        ),
        (
            "index_probes",
            (probes_after - probes_before) as f64,
            "probes",
        ),
        (
            "index_fallback_scans",
            (fallbacks_after - fallbacks_before) as f64,
            "scans",
        ),
    ] {
        rows.push(Measurement::new("JOINS", workload, metric, value, unit));
    }
    (indexed, scanned)
}

fn main() {
    let smoke = std::env::var("HILOG_BENCH_SMOKE").is_ok();
    let mut rows = Vec::new();

    let game_sizes: &[usize] = if smoke { &[40] } else { &[300, 500] };
    for &nodes in game_sizes {
        let program = guarded_game_program(nodes, 7);
        let workload = format!("join-heavy win/move n={nodes}");
        let (probes0, _) = probe_counters();
        compare(&mut rows, &workload, || {
            let mut db = HiLogDb::new(program.clone());
            db.model().expect("model of the guarded game");
        });
        let (probes1, _) = probe_counters();
        assert!(
            probes1 > probes0,
            "the win/move grounding joins never touched an argument index"
        );
    }

    let tc_sizes: &[usize] = if smoke { &[30] } else { &[120] };
    for &nodes in tc_sizes {
        let program = tc_program(nodes, 3.0, 11);
        let workload = format!("wide-EDB transitive closure n={nodes}");
        compare(&mut rows, &workload, || {
            let m = least_model(&program, NegationMode::Forbid, EvalOptions::default())
                .expect("tc least model");
            assert!(!m.is_empty());
        });
    }

    print!("{}", to_markdown(&rows));
    if smoke {
        // CI smoke: correctness and observability only — the speedup numbers
        // of a shared runner are noise, and the committed measurements must
        // not be overwritten.
        return;
    }
    let json = serde_json::to_string_pretty(&rows).expect("measurements serialise");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_joins.json");
    std::fs::write(path, json + "\n").expect("BENCH_joins.json written");
    println!("wrote {path}");
}
