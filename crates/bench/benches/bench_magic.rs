//! E7: query-directed (magic-set style) evaluation of a point query versus
//! full bottom-up well-founded evaluation, as the fraction of the database
//! irrelevant to the query grows (Section 6.1).
// These benches measure the raw one-shot evaluation paths on purpose; the
// session facade that supersedes them is measured in bench_session_reuse.
#![allow(deprecated)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hilog_engine::horn::EvalOptions;
use hilog_engine::magic_eval::QueryEvaluator;
use hilog_engine::wfs::well_founded_model;
use hilog_syntax::parse_term;
use hilog_workloads::{chain, hilog_game_program, node_name, random_dag};
use std::time::Duration;

fn bench_magic(c: &mut Criterion) {
    let mut group = c.benchmark_group("E7_magic_vs_bottom_up");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for bulk in [64usize, 256, 1024] {
        let program =
            hilog_game_program(&[("target", chain(12)), ("bulk", random_dag(bulk, 2.5, 9))]);
        let atom = parse_term(&format!("winning(target)({})", node_name(0))).unwrap();
        group.bench_with_input(BenchmarkId::new("bottom_up", bulk), &program, |b, p| {
            b.iter(|| {
                let model = well_founded_model(p, EvalOptions::default()).unwrap();
                model.is_true(&atom)
            })
        });
        group.bench_with_input(
            BenchmarkId::new("query_directed", bulk),
            &program,
            |b, p| {
                b.iter(|| {
                    let mut ev = QueryEvaluator::new(p, EvalOptions::default());
                    ev.holds(&atom).unwrap()
                })
            },
        );
        // The unselective case: asking for every position of the bulk game,
        // where the two approaches must converge.
        let all = parse_term(&format!("winning(bulk)({})", node_name(0))).unwrap();
        group.bench_with_input(
            BenchmarkId::new("query_directed_unselective", bulk),
            &program,
            |b, p| {
                b.iter(|| {
                    let mut ev = QueryEvaluator::new(p, EvalOptions::default());
                    ev.holds(&all).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_magic);
criterion_main!(benches);
