//! E5: the Figure 1 modular-stratification procedure on parameterised games,
//! scaling the move graphs and the number of games.
// These benches measure the raw one-shot evaluation paths on purpose; the
// session facade that supersedes them is measured in bench_session_reuse.
#![allow(deprecated)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hilog_engine::horn::EvalOptions;
use hilog_engine::modular::modularly_stratified_hilog;
use hilog_workloads::{hilog_game_program, random_dag};
use std::time::Duration;

fn bench_modular(c: &mut Criterion) {
    let mut group = c.benchmark_group("E5_figure1");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for n in [32usize, 128, 512] {
        let program = hilog_game_program(&[("g1", random_dag(n, 2.0, 5))]);
        group.bench_with_input(BenchmarkId::new("one_game", n), &program, |b, p| {
            b.iter(|| {
                let out = modularly_stratified_hilog(p, EvalOptions::default()).unwrap();
                assert!(out.modularly_stratified);
                out.rounds.len()
            })
        });
    }
    for games in [1usize, 2, 4, 8] {
        let specs: Vec<(String, Vec<(usize, usize)>)> = (0..games)
            .map(|i| (format!("g{i}"), random_dag(48, 2.0, i as u64)))
            .collect();
        let borrowed: Vec<(&str, Vec<(usize, usize)>)> =
            specs.iter().map(|(s, e)| (s.as_str(), e.clone())).collect();
        let program = hilog_game_program(&borrowed);
        group.bench_with_input(BenchmarkId::new("many_games", games), &program, |b, p| {
            b.iter(|| {
                let out = modularly_stratified_hilog(p, EvalOptions::default()).unwrap();
                assert!(out.modularly_stratified);
                out.rounds.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_modular);
criterion_main!(benches);
