//! Parallel evaluation: the SCC-wave well-founded fixpoint against the
//! serial whole-program alternation, swept over sharded win/move workloads
//! (random-DAG games and deep chain games) and evaluation thread counts.
//!
//! Two metrics per (shards, threads) cell:
//!
//! * **wfs_fixpoint** — the fixpoint itself on a pre-computed grounding
//!   (`well_founded_eval`), isolating the evaluator from the grounder;
//! * **cold_model** — a cold `HiLogDb::model()` end to end, grounding
//!   included (Amdahl's share of the win in a real cold query).
//!
//! `threads = 1` runs the exact pre-parallel serial path, so the reported
//! `fixpoint_speedup_vs_serial` is serial-vs-wave, not wave-vs-wave.  Note
//! that the wave schedule also wins *algorithmically*: the serial evaluator
//! re-scans the whole program once per global `W_P` iteration, while the
//! wave evaluator settles each strongly connected component locally and
//! never revisits it — so on a machine with few hardware threads (the
//! recorded `hardware_threads` row says how many this run had) most of the
//! measured speedup is the schedule, not the concurrency.  Every cell's
//! model is asserted identical to the serial model before it is timed.
//!
//! Run with `cargo bench -p hilog-bench --bench bench_parallel`; besides
//! the markdown table on stdout it records the measurements in
//! `BENCH_parallel.json` at the repository root.  `HILOG_BENCH_SMOKE=1`
//! runs a reduced sweep, asserts that pooled tasks actually executed, and
//! does not overwrite the committed numbers.

use hilog_bench::{median_time, to_markdown, Measurement};
use hilog_engine::horn::EvalOptions;
use hilog_engine::session::HiLogDb;
use hilog_engine::{parallel_counters, relevant_ground, well_founded_eval};
use hilog_workloads::{sharded_chain_game_program, sharded_game_program};
use std::time::Duration;

const REPEATS: usize = 5;

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let smoke = std::env::var("HILOG_BENCH_SMOKE").is_ok();
    // Two workload families: random-DAG games (skip edges keep the game's
    // remoteness shallow, so these show the wave machinery's overhead floor)
    // and chain games (remoteness grows with the chain, so the serial
    // evaluator's per-global-iteration full rescan compounds — the deep end
    // where the wave schedule's one-settle-per-component pays off).
    let (cells, thread_counts): (Vec<(String, _)>, Vec<usize>) = if smoke {
        (
            vec![
                (
                    "win/move shards=4 per_shard=8".into(),
                    sharded_game_program(4, 8, 7),
                ),
                (
                    "win/move chain shards=2 len=40".into(),
                    sharded_chain_game_program(2, 40),
                ),
            ],
            vec![1, 4],
        )
    } else {
        (
            vec![
                (
                    "win/move shards=1 per_shard=15".into(),
                    sharded_game_program(1, 15, 7),
                ),
                (
                    "win/move shards=4 per_shard=15".into(),
                    sharded_game_program(4, 15, 7),
                ),
                (
                    "win/move shards=10 per_shard=15".into(),
                    sharded_game_program(10, 15, 7),
                ),
                (
                    "win/move shards=16 per_shard=15".into(),
                    sharded_game_program(16, 15, 7),
                ),
                (
                    "win/move shards=10 per_shard=60".into(),
                    sharded_game_program(10, 60, 7),
                ),
                (
                    "win/move chain shards=10 len=320".into(),
                    sharded_chain_game_program(10, 320),
                ),
                (
                    "win/move chain shards=10 len=640".into(),
                    sharded_chain_game_program(10, 640),
                ),
                (
                    "win/move chain shards=16 len=640".into(),
                    sharded_chain_game_program(16, 640),
                ),
            ],
            vec![1, 2, 4, 8],
        )
    };

    let mut rows = Vec::new();
    rows.push(Measurement::new(
        "PARALLEL",
        "environment",
        "hardware_threads",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1) as f64,
        "threads",
    ));

    for (name, program) in &cells {
        let ground = relevant_ground(program, EvalOptions::default()).expect("workload grounds");
        let serial_model = well_founded_eval(&ground, 1);
        let mut serial_fixpoint: Option<Duration> = None;
        for &threads in &thread_counts {
            // Correctness gate before timing: every thread count must
            // reproduce the serial model exactly.
            assert_eq!(
                well_founded_eval(&ground, threads),
                serial_model,
                "threads={threads} diverged from the serial model"
            );
            let (_, _, tasks_before) = parallel_counters();
            let fixpoint = median_time(REPEATS, || {
                std::hint::black_box(well_founded_eval(&ground, threads));
            });
            let (_, _, tasks_after) = parallel_counters();
            if threads > 1 {
                assert!(
                    tasks_after > tasks_before,
                    "threads={threads} never dispatched a pooled task"
                );
            }
            let cold = median_time(REPEATS, || {
                let mut db = HiLogDb::builder()
                    .program(program.clone())
                    .options(EvalOptions::with_eval_threads(threads))
                    .build();
                db.model().expect("workload model builds");
            });

            let workload = format!("{name} threads={threads}");
            rows.push(Measurement::new(
                "PARALLEL",
                workload.clone(),
                "wfs_fixpoint",
                ms(fixpoint),
                "ms",
            ));
            rows.push(Measurement::new(
                "PARALLEL",
                workload.clone(),
                "cold_model",
                ms(cold),
                "ms",
            ));
            match serial_fixpoint {
                None => serial_fixpoint = Some(fixpoint),
                Some(serial) => rows.push(Measurement::new(
                    "PARALLEL",
                    workload,
                    "fixpoint_speedup_vs_serial",
                    serial.as_secs_f64() / fixpoint.as_secs_f64().max(f64::EPSILON),
                    "x",
                )),
            }
        }
    }

    print!("{}", to_markdown(&rows));
    if smoke {
        // CI smoke: exercise the sweep but keep the committed numbers.
        return;
    }
    let json = serde_json::to_string_pretty(&rows).expect("measurements serialise");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    std::fs::write(path, json + "\n").expect("BENCH_parallel.json written");
    println!("wrote {path}");
}
