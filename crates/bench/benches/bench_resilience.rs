//! Resilience overhead and recovery latency.
//!
//! Two questions, one bench:
//!
//! * **What do the guardrails cost?**  The same mixed HTTP read/write load
//!   as `bench_serving`, once with the resilience layer on (query
//!   deadlines, socket timeouts, bounded backlog) and once with every
//!   guard disabled.  The two rows should be within noise of each other —
//!   deadline checks are a counter bump per derivation wave and the
//!   backlog gate is one atomic load per accept.
//! * **How fast is recovery after a disk failure?**  A durable store
//!   absorbs a batch stream, the "disk" runs out of space mid-checkpoint
//!   (injected `ENOSPC` via a byte quota), the writer drops cold, and the
//!   bench measures the time from a clean reopen to the *first answered
//!   query* over the recovered snapshot.
//!
//! Run with `cargo bench -p hilog-bench --bench bench_resilience`; besides
//! the markdown table on stdout it records the measurements in
//! `BENCH_resilience.json` at the repository root.  `HILOG_BENCH_SMOKE=1`
//! runs a reduced load and does not overwrite the committed numbers.

use hilog_bench::{to_markdown, Measurement};
use hilog_engine::session::HiLogDb;
use hilog_server::{client, Server, ServerConfig};
use hilog_store::{FaultIo, FaultPlan, Op, PersistentWriter, StoreConfig};
use hilog_syntax::{parse_query, parse_term};
use hilog_workloads::serving::{serving_workload, ServingWorkload, ServingWorkloadConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct LoadSummary {
    queries: usize,
    wall: Duration,
    p50: Duration,
    p99: Duration,
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn push_rows(rows: &mut Vec<Measurement>, workload: String, summary: &LoadSummary) {
    let secs = summary.wall.as_secs_f64().max(f64::EPSILON);
    rows.push(Measurement::new(
        "RESILIENCE",
        workload.clone(),
        "qps",
        summary.queries as f64 / secs,
        "1/s",
    ));
    rows.push(Measurement::new(
        "RESILIENCE",
        workload.clone(),
        "p50_latency",
        summary.p50.as_secs_f64() * 1e6,
        "us",
    ));
    rows.push(Measurement::new(
        "RESILIENCE",
        workload,
        "p99_latency",
        summary.p99.as_secs_f64() * 1e6,
        "us",
    ));
}

/// The `bench_serving` HTTP load with the resilience layer on or off.
fn http_load(
    workload: &ServingWorkload,
    readers: usize,
    queries_per_reader: usize,
    guarded: bool,
) -> LoadSummary {
    let mut config = ServerConfig::ephemeral().workers(readers.max(2) * 2);
    if guarded {
        // The defaults: 30s deadline, 10s socket timeout, backlog 256.
    } else {
        config = config
            .default_timeout_ms(None)
            .socket_timeout(None)
            .max_backlog(usize::MAX);
    }
    let db = HiLogDb::new(workload.program.clone());
    let server = Server::bind(config, db).expect("bind");
    let addr = server.local_addr();
    let shutdown = server.handle();
    let serving = std::thread::spawn(move || server.serve());

    let query_bodies: Vec<String> = workload
        .queries
        .iter()
        .map(|q| {
            let mut body = String::from("{\"query\":");
            serde::write_json_string(&mut body, q);
            body.push('}');
            body
        })
        .collect();
    let batch_bodies: Vec<(&'static str, String)> = workload
        .batches
        .iter()
        .map(|batch| {
            let route = if batch.assert { "/assert" } else { "/retract" };
            let mut body = String::from("{\"facts\":");
            serde::Serialize::write_json(&batch.facts, &mut body);
            body.push('}');
            (route, body)
        })
        .collect();

    let readers_done = AtomicUsize::new(0);
    let start = Instant::now();
    let mut latencies: Vec<Duration> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for reader in 0..readers {
            let bodies = &query_bodies;
            let readers_done = &readers_done;
            handles.push(scope.spawn(move || {
                let mut local = Vec::with_capacity(queries_per_reader);
                for i in 0..queries_per_reader {
                    let body = &bodies[(reader * queries_per_reader + i) % bodies.len()];
                    let t = Instant::now();
                    let response = client::post(addr, "/query", body).expect("query round-trip");
                    local.push(t.elapsed());
                    assert_eq!(response.status, 200, "{}", response.body);
                }
                readers_done.fetch_add(1, Ordering::SeqCst);
                local
            }));
        }
        let mut round = 0usize;
        while readers_done.load(Ordering::SeqCst) < readers {
            let (route, body) = &batch_bodies[round % batch_bodies.len()];
            round += 1;
            let response = client::post(addr, route, body).expect("mutation round-trip");
            assert_eq!(response.status, 200, "{}", response.body);
            std::thread::yield_now();
        }
        for h in handles {
            latencies.extend(h.join().expect("reader thread joins"));
        }
    });
    let wall = start.elapsed();
    shutdown.shutdown();
    serving.join().expect("server thread exits");
    latencies.sort_unstable();
    LoadSummary {
        queries: latencies.len(),
        wall,
        p50: percentile(&latencies, 0.50),
        p99: percentile(&latencies, 0.99),
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hilog-bench-resilience-{tag}-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Builds a durable store from the workload's batch stream, kills the disk
/// with `ENOSPC` mid-checkpoint, crashes, and times a clean reopen up to
/// the first answered query.
fn recovery_after_enospc(workload: &ServingWorkload, batches: usize) -> Duration {
    let dir = temp_dir(&format!("enospc-{batches}"));
    let io = FaultIo::over_real();
    let config = StoreConfig::new(&dir).io(Arc::new(io.clone()));
    {
        let (mut writer, _handle, _) =
            PersistentWriter::open(&config, HiLogDb::new(workload.program.clone()))
                .expect("fresh open");
        for batch in workload.batches.iter().cycle().take(batches) {
            let ops: Vec<Op> = batch
                .facts
                .iter()
                .map(|f| {
                    let term = parse_term(f).expect("workload fact parses");
                    if batch.assert {
                        Op::AssertFact(term)
                    } else {
                        Op::RetractFact(term)
                    }
                })
                .collect();
            writer.apply_batch(&ops).expect("batch applies");
        }
        // The disk fills up: every write from here on is ENOSPC, so the
        // checkpoint fails partway and the writer degrades.
        io.set_plan(FaultPlan {
            byte_quota: Some(0),
            ..FaultPlan::default()
        });
        let _ = writer.checkpoint();
        // Crash: dropped cold, mid-fault.
    }

    let query = parse_query(&workload.queries[0]).expect("workload query parses");
    let clean = StoreConfig::new(&dir);
    let start = Instant::now();
    let (_writer, handle, report) =
        PersistentWriter::open(&clean, HiLogDb::new(workload.program.clone()))
            .expect("clean reopen after ENOSPC");
    assert!(report.recovered, "the store recovers");
    handle
        .current()
        .query(&query)
        .expect("recovered snapshot answers");
    let elapsed = start.elapsed();
    std::fs::remove_dir_all(&dir).ok();
    elapsed
}

fn main() {
    let smoke = std::env::var("HILOG_BENCH_SMOKE").is_ok();
    let config = if smoke {
        ServingWorkloadConfig {
            nodes: 24,
            churn_pool: 12,
            write_batches: 8,
            queries: 64,
            ..ServingWorkloadConfig::default()
        }
    } else {
        ServingWorkloadConfig::default()
    };
    let queries_per_reader = if smoke { 40 } else { 400 };
    let workload = serving_workload(&config, 0xBEEF);

    let mut rows = Vec::new();
    for readers in [1usize, 4] {
        for guarded in [true, false] {
            let summary = http_load(&workload, readers, queries_per_reader, guarded);
            push_rows(
                &mut rows,
                format!(
                    "http n={} readers={readers} guards={}",
                    config.nodes,
                    if guarded { "on" } else { "off" }
                ),
                &summary,
            );
        }
    }

    for batches in if smoke {
        vec![8usize]
    } else {
        vec![8usize, 32]
    } {
        // Median of a few rounds: recovery is one cold file scan + replay,
        // noisy at the millisecond scale.
        let mut runs: Vec<Duration> = (0..5)
            .map(|_| recovery_after_enospc(&workload, batches))
            .collect();
        runs.sort_unstable();
        rows.push(Measurement::new(
            "RESILIENCE",
            format!(
                "recovery-to-first-answer n={} batches={batches}",
                config.nodes
            ),
            "latency",
            runs[runs.len() / 2].as_secs_f64() * 1e3,
            "ms",
        ));
    }

    print!("{}", to_markdown(&rows));
    if smoke {
        // CI smoke: exercise every path but keep the committed numbers.
        return;
    }
    let json = serde_json::to_string_pretty(&rows).expect("measurements serialise");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_resilience.json");
    std::fs::write(path, json + "\n").expect("BENCH_resilience.json written");
    println!("wrote {path}");
}
