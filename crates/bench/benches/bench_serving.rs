//! Mixed read/write serving load: N reader threads answering planned
//! queries against pinned snapshots while one writer streams batches
//! through the incremental path and publishes each with an atomic swap.
//!
//! Two variants of the same workload:
//!
//! * **in-process** — readers query `SnapshotHandle::current()` directly,
//!   measuring the serving layer itself (no sockets, no JSON);
//! * **HTTP** — readers and the writer go through `hilog-server` with the
//!   crate's minimal blocking client, measuring the full front-end.
//!
//! For each variant and reader count the bench records sustained queries
//! per second and p50/p99 per-query latency, plus the writer's publish
//! rate.  Run with `cargo bench -p hilog-bench --bench bench_serving`;
//! besides the markdown table on stdout it records the measurements in
//! `BENCH_serving.json` at the repository root.  `HILOG_BENCH_SMOKE=1`
//! runs a reduced load and does not overwrite the committed numbers.

use hilog_bench::{to_markdown, Measurement};
use hilog_core::rule::Query;
use hilog_engine::session::HiLogDb;
use hilog_server::{client, Server, ServerConfig};
use hilog_syntax::{parse_query, parse_term};
use hilog_workloads::serving::{serving_workload, ServingWorkload, ServingWorkloadConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Per-run latency summary.
struct LoadSummary {
    queries: usize,
    wall: Duration,
    p50: Duration,
    p99: Duration,
    publishes: usize,
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn summarize(latencies: Vec<Duration>, wall: Duration, publishes: usize) -> LoadSummary {
    let mut sorted = latencies;
    sorted.sort_unstable();
    LoadSummary {
        queries: sorted.len(),
        wall,
        p50: percentile(&sorted, 0.50),
        p99: percentile(&sorted, 0.99),
        publishes,
    }
}

fn push_rows(rows: &mut Vec<Measurement>, workload: String, summary: &LoadSummary) {
    let secs = summary.wall.as_secs_f64().max(f64::EPSILON);
    rows.push(Measurement::new(
        "SERVING",
        workload.clone(),
        "qps",
        summary.queries as f64 / secs,
        "1/s",
    ));
    rows.push(Measurement::new(
        "SERVING",
        workload.clone(),
        "p50_latency",
        summary.p50.as_secs_f64() * 1e6,
        "us",
    ));
    rows.push(Measurement::new(
        "SERVING",
        workload.clone(),
        "p99_latency",
        summary.p99.as_secs_f64() * 1e6,
        "us",
    ));
    rows.push(Measurement::new(
        "SERVING",
        workload,
        "writer_publish_rate",
        summary.publishes as f64 / secs,
        "1/s",
    ));
}

/// In-process variant: readers pin snapshots through the handle; the writer
/// cycles the workload's batches (re-asserts are no-ops, re-retracts miss —
/// both still publish) until every reader has finished its quota.
fn in_process_load(
    workload: &ServingWorkload,
    readers: usize,
    queries_per_reader: usize,
) -> LoadSummary {
    let (mut writer, handle) = HiLogDb::new(workload.program.clone()).into_serving();
    let queries: Vec<Query> = workload
        .queries
        .iter()
        .map(|q| parse_query(q).expect("workload query parses"))
        .collect();
    let readers_done = AtomicUsize::new(0);
    let mut publishes = 0usize;

    let start = Instant::now();
    let mut latencies: Vec<Duration> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for reader in 0..readers {
            let handle = handle.clone();
            let queries = &queries;
            let readers_done = &readers_done;
            handles.push(scope.spawn(move || {
                let mut local = Vec::with_capacity(queries_per_reader);
                for i in 0..queries_per_reader {
                    let query = &queries[(reader * queries_per_reader + i) % queries.len()];
                    let t = Instant::now();
                    let snapshot = handle.current();
                    snapshot.query(query).expect("snapshot query succeeds");
                    local.push(t.elapsed());
                }
                readers_done.fetch_add(1, Ordering::SeqCst);
                local
            }));
        }
        // The writer streams batches for the whole measurement window.
        let mut round = 0usize;
        while readers_done.load(Ordering::SeqCst) < readers {
            let batch = &workload.batches[round % workload.batches.len()];
            round += 1;
            for fact in &batch.facts {
                let term = parse_term(fact).expect("workload fact parses");
                if batch.assert {
                    writer.assert_fact(term).expect("workload facts are ground");
                } else {
                    writer.retract_fact(&term);
                }
            }
            writer.publish();
            publishes += 1;
            // Let readers run between publishes — on few cores an unthrottled
            // writer loop would otherwise starve them under timeslicing.
            std::thread::yield_now();
        }
        for h in handles {
            latencies.extend(h.join().expect("reader thread joins"));
        }
    });
    summarize(latencies, start.elapsed(), publishes)
}

/// HTTP variant: the same load shape through `hilog-server` and the
/// blocking client, one connection per request.
fn http_load(
    workload: &ServingWorkload,
    readers: usize,
    queries_per_reader: usize,
    workers: usize,
) -> LoadSummary {
    let db = HiLogDb::new(workload.program.clone());
    let server = Server::bind(ServerConfig::ephemeral().workers(workers), db).expect("bind");
    let addr = server.local_addr();
    let shutdown = server.handle();
    let serving = std::thread::spawn(move || server.serve());

    let query_bodies: Vec<String> = workload
        .queries
        .iter()
        .map(|q| {
            let mut body = String::from("{\"query\":");
            serde::write_json_string(&mut body, q);
            body.push('}');
            body
        })
        .collect();
    let batch_bodies: Vec<(&'static str, String)> = workload
        .batches
        .iter()
        .map(|batch| {
            let route = if batch.assert { "/assert" } else { "/retract" };
            let mut body = String::from("{\"facts\":");
            serde::Serialize::write_json(&batch.facts, &mut body);
            body.push('}');
            (route, body)
        })
        .collect();

    let readers_done = AtomicUsize::new(0);
    let mut publishes = 0usize;
    let start = Instant::now();
    let mut latencies: Vec<Duration> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for reader in 0..readers {
            let bodies = &query_bodies;
            let readers_done = &readers_done;
            handles.push(scope.spawn(move || {
                let mut local = Vec::with_capacity(queries_per_reader);
                for i in 0..queries_per_reader {
                    let body = &bodies[(reader * queries_per_reader + i) % bodies.len()];
                    let t = Instant::now();
                    let response = client::post(addr, "/query", body).expect("query round-trip");
                    local.push(t.elapsed());
                    assert_eq!(response.status, 200, "{}", response.body);
                }
                readers_done.fetch_add(1, Ordering::SeqCst);
                local
            }));
        }
        let mut round = 0usize;
        while readers_done.load(Ordering::SeqCst) < readers {
            let (route, body) = &batch_bodies[round % batch_bodies.len()];
            round += 1;
            let response = client::post(addr, route, body).expect("mutation round-trip");
            assert_eq!(response.status, 200, "{}", response.body);
            publishes += 1;
            std::thread::yield_now();
        }
        for h in handles {
            latencies.extend(h.join().expect("reader thread joins"));
        }
    });
    let summary = summarize(latencies, start.elapsed(), publishes);
    shutdown.shutdown();
    serving.join().expect("server thread exits");
    summary
}

fn main() {
    let smoke = std::env::var("HILOG_BENCH_SMOKE").is_ok();
    let config = if smoke {
        ServingWorkloadConfig {
            nodes: 24,
            churn_pool: 12,
            write_batches: 8,
            queries: 64,
            ..ServingWorkloadConfig::default()
        }
    } else {
        ServingWorkloadConfig::default()
    };
    let queries_per_reader = if smoke { 40 } else { 400 };
    let workload = serving_workload(&config, 0xBEEF);

    let mut rows = Vec::new();
    for readers in [1usize, 4, 8] {
        let summary = in_process_load(&workload, readers, queries_per_reader);
        push_rows(
            &mut rows,
            format!(
                "in-process n={} readers={readers} q={}",
                config.nodes, summary.queries
            ),
            &summary,
        );
    }
    for readers in [1usize, 4] {
        let summary = http_load(&workload, readers, queries_per_reader, readers.max(2) * 2);
        push_rows(
            &mut rows,
            format!(
                "http n={} readers={readers} q={}",
                config.nodes, summary.queries
            ),
            &summary,
        );
    }

    print!("{}", to_markdown(&rows));
    if smoke {
        // CI smoke: exercise both variants but keep the committed numbers.
        return;
    }
    let json = serde_json::to_string_pretty(&rows).expect("measurements serialise");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    std::fs::write(path, json + "\n").expect("BENCH_serving.json written");
    println!("wrote {path}");
}
