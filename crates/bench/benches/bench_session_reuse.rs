//! Session reuse: N queries against one `HiLogDb` versus N one-shot
//! `QueryEvaluator`s, on the win/move game (Example 6.3) and the
//! parts-explosion aggregation workload (Section 6).
//!
//! The session amortises subgoal tables across queries, so its per-query
//! cost collapses after the first query touches a region of the program; a
//! one-shot evaluator pays the full tabling cost every time.  Run with
//! `cargo bench -p hilog-bench --bench bench_session_reuse`; besides the
//! markdown table on stdout it records the measurements in
//! `BENCH_session.json` at the repository root (cited in ROADMAP.md).

use hilog_bench::{median_time, to_markdown, Measurement};
use hilog_core::rule::Query;
use hilog_engine::aggregate::parts_explosion_program;
use hilog_engine::horn::EvalOptions;
use hilog_engine::magic_eval::QueryEvaluator;
use hilog_engine::session::HiLogDb;
use hilog_syntax::parse_term;
use hilog_workloads::{hilog_game_program, node_name, random_dag, random_part_hierarchy};
use std::time::Duration;

const REPEATS: usize = 5;

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

/// N point queries on the win/move game: one session vs N one-shot
/// evaluators.
fn win_move_rows(rows: &mut Vec<Measurement>) {
    for (nodes, queries) in [(60usize, 20usize), (150, 40)] {
        let program = hilog_game_program(&[
            ("g", random_dag(nodes, 2.0, 7)),
            ("bulk", random_dag(2 * nodes, 2.5, 8)),
        ]);
        let atoms: Vec<_> = (0..queries)
            .map(|i| parse_term(&format!("winning(g)({})", node_name(i % nodes))).unwrap())
            .collect();
        let workload = format!("win/move n={nodes} q={queries}");

        let session = median_time(REPEATS, || {
            let mut db = HiLogDb::new(program.clone());
            for atom in &atoms {
                db.query(&Query::atom(atom.clone())).unwrap();
            }
        });
        let one_shot = median_time(REPEATS, || {
            for atom in &atoms {
                let mut ev = QueryEvaluator::new(&program, EvalOptions::default());
                ev.holds(atom).unwrap();
            }
        });
        rows.push(Measurement::new(
            "SESSION",
            workload.clone(),
            "hilogdb_session",
            secs(session) * 1e3,
            "ms",
        ));
        rows.push(Measurement::new(
            "SESSION",
            workload.clone(),
            "one_shot_evaluators",
            secs(one_shot) * 1e3,
            "ms",
        ));
        rows.push(Measurement::new(
            "SESSION",
            workload,
            "speedup",
            secs(one_shot) / secs(session).max(f64::EPSILON),
            "x",
        ));
    }
}

/// Repeated `contains` point queries on the parts-explosion program
/// (modularly stratified aggregation).
fn parts_rows(rows: &mut Vec<Measurement>) {
    for (parts, extra) in [(12usize, 4usize), (20, 8)] {
        let hierarchy = random_part_hierarchy(parts, extra, 11);
        let facts = hierarchy.as_facts("rel");
        let program = parts_explosion_program(&[("factory", "rel")], &facts);
        // Two passes over every part: a serving workload revisits queries.
        let atoms: Vec<_> = (0..2 * parts)
            .map(|i| parse_term(&format!("contains(factory, part{}, P, N)", i % parts)).unwrap())
            .collect();
        let workload = format!("parts-explosion n={parts} q={}", atoms.len());

        let session = median_time(REPEATS, || {
            let mut db = HiLogDb::new(program.clone());
            for atom in &atoms {
                db.query(&Query::atom(atom.clone())).unwrap();
            }
        });
        let one_shot = median_time(REPEATS, || {
            for atom in &atoms {
                let mut ev = QueryEvaluator::new(&program, EvalOptions::default());
                ev.solve_atom(atom).unwrap();
            }
        });
        rows.push(Measurement::new(
            "SESSION",
            workload.clone(),
            "hilogdb_session",
            secs(session) * 1e3,
            "ms",
        ));
        rows.push(Measurement::new(
            "SESSION",
            workload.clone(),
            "one_shot_evaluators",
            secs(one_shot) * 1e3,
            "ms",
        ));
        rows.push(Measurement::new(
            "SESSION",
            workload,
            "speedup",
            secs(one_shot) / secs(session).max(f64::EPSILON),
            "x",
        ));
    }
}

fn main() {
    let mut rows = Vec::new();
    win_move_rows(&mut rows);
    parts_rows(&mut rows);
    print!("{}", to_markdown(&rows));
    let json = serde_json::to_string_pretty(&rows).expect("measurements serialise");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_session.json");
    std::fs::write(path, json + "\n").expect("BENCH_session.json written");
    println!("wrote {path}");
}
