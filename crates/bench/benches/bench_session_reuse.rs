//! Session reuse: N queries against one `HiLogDb` versus N one-shot
//! `QueryEvaluator`s, on the win/move game (Example 6.3) and the
//! parts-explosion aggregation workload (Section 6).
//!
//! The session amortises subgoal tables across queries, so its per-query
//! cost collapses after the first query touches a region of the program; a
//! one-shot evaluator pays the full tabling cost every time.  Run with
//! `cargo bench -p hilog-bench --bench bench_session_reuse`; besides the
//! markdown table on stdout it records the measurements in
//! `BENCH_session.json` at the repository root (cited in ROADMAP.md).

use hilog_bench::{median_time, to_markdown, Measurement};
use hilog_core::rule::{Query, Rule};
use hilog_core::term::Term;
use hilog_engine::aggregate::parts_explosion_program;
use hilog_engine::horn::EvalOptions;
use hilog_engine::magic_eval::QueryEvaluator;
use hilog_engine::session::HiLogDb;
use hilog_syntax::{parse_query, parse_term};
use hilog_workloads::{
    hilog_game_program, node_name, normal_game_program, random_dag, random_part_hierarchy,
    sharded_game_edges, sharded_game_program,
};
use std::time::Duration;

const REPEATS: usize = 5;

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

/// N point queries on the win/move game: one session vs N one-shot
/// evaluators.
fn win_move_rows(rows: &mut Vec<Measurement>) {
    for (nodes, queries) in [(60usize, 20usize), (150, 40)] {
        let program = hilog_game_program(&[
            ("g", random_dag(nodes, 2.0, 7)),
            ("bulk", random_dag(2 * nodes, 2.5, 8)),
        ]);
        let atoms: Vec<_> = (0..queries)
            .map(|i| parse_term(&format!("winning(g)({})", node_name(i % nodes))).unwrap())
            .collect();
        let workload = format!("win/move n={nodes} q={queries}");

        let session = median_time(REPEATS, || {
            let mut db = HiLogDb::new(program.clone());
            for atom in &atoms {
                db.query(&Query::atom(atom.clone())).unwrap();
            }
        });
        let one_shot = median_time(REPEATS, || {
            for atom in &atoms {
                let mut ev = QueryEvaluator::new(&program, EvalOptions::default());
                ev.holds(atom).unwrap();
            }
        });
        rows.push(Measurement::new(
            "SESSION",
            workload.clone(),
            "hilogdb_session",
            secs(session) * 1e3,
            "ms",
        ));
        rows.push(Measurement::new(
            "SESSION",
            workload.clone(),
            "one_shot_evaluators",
            secs(one_shot) * 1e3,
            "ms",
        ));
        rows.push(Measurement::new(
            "SESSION",
            workload,
            "speedup",
            secs(one_shot) / secs(session).max(f64::EPSILON),
            "x",
        ));
    }
}

/// Repeated `contains` point queries on the parts-explosion program
/// (modularly stratified aggregation).
fn parts_rows(rows: &mut Vec<Measurement>) {
    for (parts, extra) in [(12usize, 4usize), (20, 8)] {
        let hierarchy = random_part_hierarchy(parts, extra, 11);
        let facts = hierarchy.as_facts("rel");
        let program = parts_explosion_program(&[("factory", "rel")], &facts);
        // Two passes over every part: a serving workload revisits queries.
        let atoms: Vec<_> = (0..2 * parts)
            .map(|i| parse_term(&format!("contains(factory, part{}, P, N)", i % parts)).unwrap())
            .collect();
        let workload = format!("parts-explosion n={parts} q={}", atoms.len());

        let session = median_time(REPEATS, || {
            let mut db = HiLogDb::new(program.clone());
            for atom in &atoms {
                db.query(&Query::atom(atom.clone())).unwrap();
            }
        });
        let one_shot = median_time(REPEATS, || {
            for atom in &atoms {
                let mut ev = QueryEvaluator::new(&program, EvalOptions::default());
                ev.solve_atom(atom).unwrap();
            }
        });
        rows.push(Measurement::new(
            "SESSION",
            workload.clone(),
            "hilogdb_session",
            secs(session) * 1e3,
            "ms",
        ));
        rows.push(Measurement::new(
            "SESSION",
            workload.clone(),
            "one_shot_evaluators",
            secs(one_shot) * 1e3,
            "ms",
        ));
        rows.push(Measurement::new(
            "SESSION",
            workload,
            "speedup",
            secs(one_shot) / secs(session).max(f64::EPSILON),
            "x",
        ));
    }
}

/// Emits the three standard rows (incremental, full-recompute, speedup) for
/// one update-heavy workload.
fn push_update_rows(rows: &mut Vec<Measurement>, workload: String, inc: Duration, full: Duration) {
    rows.push(Measurement::new(
        "INCREMENTAL",
        workload.clone(),
        "incremental_session",
        secs(inc) * 1e3,
        "ms",
    ));
    rows.push(Measurement::new(
        "INCREMENTAL",
        workload.clone(),
        "full_recompute_sessions",
        secs(full) * 1e3,
        "ms",
    ));
    rows.push(Measurement::new(
        "INCREMENTAL",
        workload,
        "speedup",
        secs(full) / secs(inc).max(f64::EPSILON),
        "x",
    ));
}

/// Update-heavy serving on the win/move game: alternating `assert_fact` and
/// full-model point queries (`?- P(pK).`, the route the cached model
/// serves).  One incremental session — which patches its grounding
/// semi-naively and re-evaluates only the affected components — versus a
/// full-recompute session rebuilt from the extended program after every
/// mutation (the pre-incremental behavior for IDB-reachable facts).
fn update_heavy_win_move_rows(rows: &mut Vec<Measurement>) {
    for (nodes, updates) in [(60usize, 30usize), (150, 50)] {
        let program = normal_game_program(&random_dag(nodes, 2.0, 7));
        let facts: Vec<Term> = (0..updates)
            .map(|i| {
                parse_term(&format!(
                    "move({}, {})",
                    node_name((i * 13 + 1) % nodes),
                    node_name((i * 7 + 3) % nodes)
                ))
                .unwrap()
            })
            .collect();
        let queries: Vec<Query> = (0..updates)
            .map(|i| parse_query(&format!("?- P({}).", node_name(i % nodes))).unwrap())
            .collect();
        let workload = format!("update-heavy win/move n={nodes} u={updates}");

        let incremental = median_time(REPEATS, || {
            let mut db = HiLogDb::new(program.clone());
            db.query(&queries[0]).unwrap();
            for (fact, query) in facts.iter().zip(&queries) {
                db.assert_fact(fact.clone()).unwrap();
                db.query(query).unwrap();
            }
        });
        let recompute = median_time(REPEATS, || {
            let mut accumulated = program.clone();
            let mut db = HiLogDb::new(accumulated.clone());
            db.query(&queries[0]).unwrap();
            for (fact, query) in facts.iter().zip(&queries) {
                accumulated.push(Rule::fact(fact.clone()));
                db = HiLogDb::new(accumulated.clone());
                db.query(query).unwrap();
            }
        });
        push_update_rows(rows, workload, incremental, recompute);
    }
}

/// The same serving pattern on a *sharded* win/move database: ten
/// independent games of fifteen positions each (n=150 total).  Each update
/// hits one shard, so the per-component patch freezes the other nine — the
/// targeted-invalidation advantage on top of incremental grounding.
fn update_heavy_sharded_rows(rows: &mut Vec<Measurement>) {
    const SHARDS: usize = 10;
    const PER_SHARD: usize = 15;
    const UPDATES: usize = 50;
    let program = sharded_game_program(SHARDS, PER_SHARD, 7);
    // Updates go round-robin across the shards, each a distinct pair that
    // also avoids the shard's existing edges — every assert is a genuinely
    // new edge (never a duplicate no-op the session would short-circuit).
    let existing = sharded_game_edges(SHARDS, PER_SHARD, 7);
    let mut cursors = [0usize; SHARDS];
    let facts: Vec<Term> = (0..UPDATES)
        .map(|i| {
            let s = i % SHARDS;
            loop {
                let c = cursors[s];
                cursors[s] += 1;
                let a = c % PER_SHARD;
                let b = (a + 2 + c / PER_SHARD) % PER_SHARD;
                if a != b && !existing[s].contains(&(a, b)) {
                    return parse_term(&format!("move{s}(s{s}n{a}, s{s}n{b})")).unwrap();
                }
            }
        })
        .collect();
    // Point queries rotate over every shard too (offset from the updates).
    let queries: Vec<Query> = (0..UPDATES)
        .map(|i| parse_query(&format!("?- P(s{}n{}).", (i + 3) % SHARDS, i % PER_SHARD)).unwrap())
        .collect();
    let workload = format!("update-heavy win/move n=150 ({SHARDS} shards) u={UPDATES}");

    let incremental = median_time(REPEATS, || {
        let mut db = HiLogDb::new(program.clone());
        db.query(&queries[0]).unwrap();
        for (fact, query) in facts.iter().zip(&queries) {
            db.assert_fact(fact.clone()).unwrap();
            db.query(query).unwrap();
        }
    });
    let recompute = median_time(REPEATS, || {
        let mut accumulated = program.clone();
        let mut db = HiLogDb::new(accumulated.clone());
        db.query(&queries[0]).unwrap();
        for (fact, query) in facts.iter().zip(&queries) {
            accumulated.push(Rule::fact(fact.clone()));
            db = HiLogDb::new(accumulated.clone());
            db.query(query).unwrap();
        }
    });
    push_update_rows(rows, workload, incremental, recompute);
}

/// Update-heavy parts explosion: alternating new `rel` triples and bound
/// `contains` point queries.  Aggregate programs have no full-model route,
/// so both sides answer through magic-sets; the incremental session's edge
/// is the reusable session state (scratch program, surviving tables) rather
/// than a model patch.
fn update_heavy_parts_rows(rows: &mut Vec<Measurement>) {
    const PARTS: usize = 12;
    const UPDATES: usize = 24;
    let hierarchy = random_part_hierarchy(PARTS, 4, 11);
    let facts = hierarchy.as_facts("rel");
    let program = parts_explosion_program(&[("factory", "rel")], &facts);
    let updates: Vec<Term> = (0..UPDATES)
        .map(|i| {
            let parent = i % (PARTS - 1);
            let child = parent + 1 + (i * 5 + 1) % (PARTS - parent - 1).max(1);
            parse_term(&format!("rel(part{parent}, part{child}, 2)")).unwrap()
        })
        .collect();
    let queries: Vec<Query> = (0..UPDATES)
        .map(|i| {
            Query::atom(parse_term(&format!("contains(factory, part{}, P, N)", i % PARTS)).unwrap())
        })
        .collect();
    let workload = format!("update-heavy parts-explosion n={PARTS} u={UPDATES}");

    let incremental = median_time(REPEATS, || {
        let mut db = HiLogDb::new(program.clone());
        db.query(&queries[0]).unwrap();
        for (fact, query) in updates.iter().zip(&queries) {
            db.assert_fact(fact.clone()).unwrap();
            db.query(query).unwrap();
        }
    });
    let recompute = median_time(REPEATS, || {
        let mut accumulated = program.clone();
        let mut db = HiLogDb::new(accumulated.clone());
        db.query(&queries[0]).unwrap();
        for (fact, query) in updates.iter().zip(&queries) {
            accumulated.push(Rule::fact(fact.clone()));
            db = HiLogDb::new(accumulated.clone());
            db.query(query).unwrap();
        }
    });
    push_update_rows(rows, workload, incremental, recompute);
}

/// Update-then-bound-query serving on a *sharded HiLog* win/move database:
/// ten games behind one variable-headed winning rule, updates confined to
/// games g0..g4, bound magic-route point queries confined to games g5..g9.
///
/// The variable-headed rule defeats predicate-level invalidation entirely
/// (every `winning(M)(X)` table shares the rule), so before instance-level
/// table maintenance each `assert_fact` cleared every subgoal table and each
/// query re-solved its game from scratch.  With the recorded-edge closure,
/// an update to game gK patches gK's fact table in place, drops only
/// `winning(gK)` tables, and leaves the queried games' tables warm — the
/// bound queries become pure cache hits.  The baseline is a drop-and-refill
/// session rebuilt from the extended program after every update.
fn warm_bound_query_rows(rows: &mut Vec<Measurement>, smoke: bool) {
    const SHARDS: usize = 10;
    let per_shard = if smoke { 6 } else { 15 };
    let updates = if smoke { 10 } else { 50 };
    let games: Vec<(String, Vec<(usize, usize)>)> = (0..SHARDS)
        .map(|s| (format!("g{s}"), random_dag(per_shard, 2.0, 7 + s as u64)))
        .collect();
    let game_refs: Vec<(&str, Vec<(usize, usize)>)> = games
        .iter()
        .map(|(name, edges)| (name.as_str(), edges.clone()))
        .collect();
    let program = hilog_game_program(&game_refs);
    // Updates round-robin over games g0..g4, each a genuinely new edge.
    let mut cursors = [0usize; SHARDS];
    let facts: Vec<Term> = (0..updates)
        .map(|i| {
            let s = i % (SHARDS / 2);
            let existing: &[(usize, usize)] = &games[s].1;
            loop {
                let c = cursors[s];
                cursors[s] += 1;
                let a = c % per_shard;
                let b = (a + 2 + c / per_shard) % per_shard;
                if a != b && !existing.contains(&(a, b)) {
                    return parse_term(&format!("g{s}({}, {})", node_name(a), node_name(b)))
                        .unwrap();
                }
            }
        })
        .collect();
    // Bound point queries round-robin over games g5..g9.
    let queries: Vec<Query> = (0..updates)
        .map(|i| {
            let s = SHARDS / 2 + i % (SHARDS / 2);
            Query::atom(
                parse_term(&format!("winning(g{s})({})", node_name(i % per_shard))).unwrap(),
            )
        })
        .collect();
    let workload = format!(
        "warm bound queries, sharded HiLog win/move n={} ({SHARDS} games) u={updates}",
        SHARDS * per_shard
    );

    let incremental = median_time(REPEATS, || {
        let mut db = HiLogDb::new(program.clone());
        // Warm the queried games once, then serve updates + queries.
        for s in SHARDS / 2..SHARDS {
            db.query(&Query::atom(
                parse_term(&format!("winning(g{s})({})", node_name(0))).unwrap(),
            ))
            .unwrap();
        }
        for (fact, query) in facts.iter().zip(&queries) {
            db.assert_fact(fact.clone()).unwrap();
            db.query(query).unwrap();
        }
    });
    let refill = median_time(REPEATS, || {
        let mut accumulated = program.clone();
        for (fact, query) in facts.iter().zip(&queries) {
            accumulated.push(Rule::fact(fact.clone()));
            let mut db = HiLogDb::new(accumulated.clone());
            db.query(query).unwrap();
        }
    });
    rows.push(Measurement::new(
        "TABLES",
        workload.clone(),
        "patched_tables_session",
        secs(incremental) * 1e3,
        "ms",
    ));
    rows.push(Measurement::new(
        "TABLES",
        workload.clone(),
        "drop_and_refill_sessions",
        secs(refill) * 1e3,
        "ms",
    ));
    rows.push(Measurement::new(
        "TABLES",
        workload,
        "speedup",
        secs(refill) / secs(incremental).max(f64::EPSILON),
        "x",
    ));
}

fn main() {
    let smoke = std::env::var("HILOG_BENCH_SMOKE").is_ok();
    if smoke {
        // CI smoke: run only the (reduced) warm-query scenario, and do not
        // overwrite the committed measurements.
        let mut rows = Vec::new();
        warm_bound_query_rows(&mut rows, true);
        print!("{}", to_markdown(&rows));
        return;
    }
    let mut rows = Vec::new();
    win_move_rows(&mut rows);
    parts_rows(&mut rows);
    print!("{}", to_markdown(&rows));
    let json = serde_json::to_string_pretty(&rows).expect("measurements serialise");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_session.json");
    std::fs::write(path, json + "\n").expect("BENCH_session.json written");
    println!("wrote {path}");

    let mut update_rows = Vec::new();
    update_heavy_win_move_rows(&mut update_rows);
    update_heavy_sharded_rows(&mut update_rows);
    update_heavy_parts_rows(&mut update_rows);
    print!("{}", to_markdown(&update_rows));
    let json = serde_json::to_string_pretty(&update_rows).expect("measurements serialise");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_incremental.json");
    std::fs::write(path, json + "\n").expect("BENCH_incremental.json written");
    println!("wrote {path}");

    let mut table_rows = Vec::new();
    warm_bound_query_rows(&mut table_rows, false);
    print!("{}", to_markdown(&table_rows));
    let json = serde_json::to_string_pretty(&table_rows).expect("measurements serialise");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tables.json");
    std::fs::write(path, json + "\n").expect("BENCH_tables.json written");
    println!("wrote {path}");
}
