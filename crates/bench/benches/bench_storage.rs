//! What the pluggable storage layer costs, and what it buys.
//!
//! Three questions, one sharded multi-relation workload
//! (`storage_workload`: many small HiLog relations tied together by the
//! generic guarded closure rules, so spill residency and checkpoint
//! dirtiness are both per-shard):
//!
//! 1. **Spill store probes** — the same bound candidate probes against a
//!    `FactStore` holding 10^5 facts on the in-memory backend and on the
//!    spill backend with a ~20% residency budget.  Probes walk shards in
//!    random order, so the spill store keeps faulting cold relations back
//!    in; the run asserts facts really were paged out *and* faulted back.
//! 2. **End-to-end query latency** — the workload's bound `linked` probes
//!    through the full serving stack, session storage in-memory versus
//!    spill, answering the issue's "bound queries at interactive latency
//!    while the EDB no longer fits the residency budget".
//! 3. **Incremental versus whole-store checkpoints** — at 10^6 facts over
//!    100 relations: a full checkpoint, a first (cold) incremental
//!    checkpoint that writes every segment, then an update stream touching
//!    2 of the 100 shards and a second incremental checkpoint that should
//!    rewrite only those segments, ~10x under the whole-store time.
//!
//! Run with `cargo bench -p hilog-bench --bench bench_storage`; besides the
//! markdown table on stdout it records the measurements in
//! `BENCH_storage.json` at the repository root.  `HILOG_BENCH_SMOKE=1` runs
//! a reduced load and does not overwrite the committed numbers.

use hilog_bench::{to_markdown, Measurement};
use hilog_engine::{FactStore, HiLogDb, RelationStorage, StorageConfig};
use hilog_store::{Op, PersistentWriter, StoreConfig};
use hilog_syntax::{parse_program, parse_query, parse_term};
use hilog_workloads::storage::{storage_workload, StorageWorkload, StorageWorkloadConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("hilog-bench-storage-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create bench data dir");
    dir
}

fn row(workload: &str, metric: &str, value: f64, unit: &str) -> Measurement {
    Measurement::new("STORAGE", workload.to_string(), metric, value, unit)
}

/// Bound candidate patterns (`s17(p3, X)`) in random shard order — random
/// so an LRU residency policy keeps missing, the worst case for spill.
fn store_patterns(workload: &StorageWorkload, count: usize, seed: u64) -> Vec<hilog_core::Term> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut patterns = Vec::with_capacity(count);
    for _ in 0..count {
        let batch = &workload.batches[rng.gen_range(0..workload.batches.len())];
        let fact = &batch[rng.gen_range(0..batch.len())];
        // `s17(p3, p9)` -> probe pattern `s17(p3, X)`.
        let open = fact.find('(').expect("fact has arguments");
        let comma = fact.find(',').expect("fact is binary");
        let pattern = format!("{}{}, X)", &fact[..open], &fact[open..comma]);
        patterns.push(parse_term(&pattern).expect("probe pattern parses"));
    }
    patterns
}

/// Inserts every workload fact, then times the candidate probes.  Returns
/// (insert wall, probe wall, candidates visited).
fn run_store(
    store: &mut FactStore,
    workload: &StorageWorkload,
    patterns: &[hilog_core::Term],
) -> (Duration, Duration, usize) {
    let insert_start = Instant::now();
    for batch in &workload.batches {
        for fact in batch {
            store.insert(parse_term(fact).expect("fact parses"));
        }
    }
    let insert_wall = insert_start.elapsed();

    let mut visited = 0usize;
    let probe_start = Instant::now();
    for pattern in patterns {
        store.for_each_candidate(pattern, &mut |_t| visited += 1);
    }
    (insert_wall, probe_start.elapsed(), visited)
}

/// Answers every probe against the snapshot, returning total wall time.
fn run_probes(handle: &hilog_engine::SnapshotHandle, probes: &[String]) -> Duration {
    let start = Instant::now();
    for probe in probes {
        let query = parse_query(probe).expect("probe parses");
        let result = handle.current().query(&query).expect("probe answers");
        assert!(!result.answers.is_empty(), "probe {probe} found no edges");
    }
    start.elapsed()
}

fn main() {
    let smoke = std::env::var("HILOG_BENCH_SMOKE").is_ok();

    // --- 1. Spill store probes at 10^5 facts, ~20% residency budget. ---
    let probe_config = if smoke {
        StorageWorkloadConfig {
            relations: 16,
            facts_per_relation: 125,
            nodes: 100,
            probes: 8,
            dirty_relations: 2,
            updates_per_relation: 10,
        }
    } else {
        StorageWorkloadConfig {
            relations: 100,
            facts_per_relation: 1_000,
            nodes: 500,
            probes: 32,
            dirty_relations: 2,
            updates_per_relation: 50,
        }
    };
    let total_facts = probe_config.relations * probe_config.facts_per_relation;
    let budget = total_facts / 5;
    let workload = storage_workload(&probe_config, 0x57E0);
    let patterns = store_patterns(&workload, if smoke { 64 } else { 512 }, 0xBEEF);
    let scale = format!("n={total_facts} shards={}", probe_config.relations);
    let mut rows = Vec::new();

    let mut mem_store = FactStore::new(&StorageConfig::InMemory);
    let (_, mem_probe, mem_visited) = run_store(&mut mem_store, &workload, &patterns);
    rows.push(row(
        &format!("store probes in-memory {scale}"),
        "probe_mean",
        mem_probe.as_secs_f64() * 1e6 / patterns.len() as f64,
        "us",
    ));

    let mut spill_store = FactStore::new(&StorageConfig::Spill {
        dir: None,
        resident_budget: budget,
    });
    let (_, spill_probe, spill_visited) = run_store(&mut spill_store, &workload, &patterns);
    assert_eq!(
        mem_visited, spill_visited,
        "spill and in-memory probes must visit the same candidates"
    );
    let stats = spill_store.storage_stats();
    assert!(
        stats.spill_writes > 0,
        "with a {budget}-fact budget over {total_facts} facts, rows must spill"
    );
    assert!(
        stats.residency_faults > 0,
        "random-order probes must fault spilled relations back in"
    );
    rows.push(row(
        &format!("store probes spill-20% {scale}"),
        "probe_mean",
        spill_probe.as_secs_f64() * 1e6 / patterns.len() as f64,
        "us",
    ));
    rows.push(row(
        &format!("store probes spill-20% {scale}"),
        "spilled_facts",
        stats.spilled_facts as f64,
        "facts",
    ));
    rows.push(row(
        &format!("store probes spill-20% {scale}"),
        "residency_faults",
        stats.residency_faults as f64,
        "faults",
    ));
    drop(spill_store);

    // --- 2. End-to-end bound query latency, in-memory vs spill session. ---
    let program = parse_program(&workload.flat_program).expect("flat program parses");
    for (tag, config) in [
        ("in-memory", StorageConfig::InMemory),
        (
            "spill-20%",
            StorageConfig::Spill {
                dir: None,
                resident_budget: budget,
            },
        ),
    ] {
        let db = HiLogDb::builder()
            .program(program.clone())
            .storage(config)
            .build();
        let (_writer, handle) = db.into_serving();
        let wall = run_probes(&handle, &workload.probes);
        rows.push(row(
            &format!("query {tag} {scale}"),
            "probe_mean",
            wall.as_secs_f64() * 1e3 / workload.probes.len() as f64,
            "ms",
        ));
    }

    // --- 3. Incremental vs whole-store checkpoints at 10^6 facts. ---
    let ckpt_config = if smoke {
        probe_config.clone()
    } else {
        StorageWorkloadConfig::default() // 100 relations x 10^4 facts
    };
    let ckpt_total = ckpt_config.relations * ckpt_config.facts_per_relation;
    let ckpt_scale = format!("n={ckpt_total} shards={}", ckpt_config.relations);
    let ckpt_workload = storage_workload(&ckpt_config, 0xC4B7);
    let ckpt_program = parse_program(&ckpt_workload.flat_program).expect("flat program parses");
    let dir = temp_dir("checkpoint");
    let (mut writer, handle, _) =
        PersistentWriter::open(&StoreConfig::new(&dir), HiLogDb::new(ckpt_program))
            .expect("open checkpoint store");

    let start = Instant::now();
    let full = writer.checkpoint().expect("full checkpoint saves");
    let full_wall = start.elapsed();
    rows.push(row(
        &format!("checkpoint full {ckpt_scale}"),
        "save_wall",
        full_wall.as_secs_f64() * 1e3,
        "ms",
    ));
    rows.push(row(
        &format!("checkpoint full {ckpt_scale}"),
        "bytes_written",
        full.bytes_written as f64,
        "bytes",
    ));

    // First incremental: no manifest to reuse from, so every relation's
    // segment is written — the cold cost, comparable to a full checkpoint.
    let start = Instant::now();
    let cold = writer
        .checkpoint_incremental()
        .expect("cold incremental checkpoint saves");
    let cold_wall = start.elapsed();
    assert!(cold.segments_written >= ckpt_config.relations);
    rows.push(row(
        &format!("checkpoint incremental-cold {ckpt_scale}"),
        "save_wall",
        cold_wall.as_secs_f64() * 1e3,
        "ms",
    ));
    rows.push(row(
        &format!("checkpoint incremental-cold {ckpt_scale}"),
        "segments_written",
        cold.segments_written as f64,
        "segments",
    ));

    // Dirty a small fixed subset of shards, then checkpoint incrementally:
    // only those shards' segments should be rewritten.
    for batch in &ckpt_workload.updates {
        let ops: Vec<Op> = batch
            .iter()
            .map(|fact| Op::AssertFact(parse_term(fact).expect("update parses")))
            .collect();
        writer.apply_batch(&ops).expect("update batch applies");
    }
    let start = Instant::now();
    let dirty = writer
        .checkpoint_incremental()
        .expect("dirty incremental checkpoint saves");
    let dirty_wall = start.elapsed();
    assert_eq!(
        dirty.segments_written,
        ckpt_workload.dirty.len(),
        "only the dirtied shards' segments are rewritten"
    );
    rows.push(row(
        &format!("checkpoint incremental-dirty {ckpt_scale}"),
        "save_wall",
        dirty_wall.as_secs_f64() * 1e3,
        "ms",
    ));
    rows.push(row(
        &format!("checkpoint incremental-dirty {ckpt_scale}"),
        "segments_written",
        dirty.segments_written as f64,
        "segments",
    ));
    rows.push(row(
        &format!("checkpoint incremental-dirty {ckpt_scale}"),
        "bytes_written",
        dirty.bytes_written as f64,
        "bytes",
    ));
    rows.push(row(
        &format!("checkpoint incremental-dirty {ckpt_scale}"),
        "speedup_vs_full",
        full_wall.as_secs_f64() / dirty_wall.as_secs_f64().max(1e-9),
        "x",
    ));
    // The published state answers; recovery of the same state from the
    // manifest is covered by tests/recovery.rs.
    run_probes(
        &handle,
        &ckpt_workload.probes[..1.min(ckpt_workload.probes.len())],
    );
    drop(writer);
    std::fs::remove_dir_all(&dir).ok();

    print!("{}", to_markdown(&rows));
    if smoke {
        // CI smoke: exercise every path but keep the committed numbers.
        return;
    }
    let json = serde_json::to_string_pretty(&rows).expect("measurements serialise");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_storage.json");
    std::fs::write(path, json + "\n").expect("BENCH_storage.json written");
    println!("wrote {path}");
}
