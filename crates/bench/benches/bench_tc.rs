//! E1: the generic HiLog transitive closure (Example 2.1) — least-model
//! evaluation time as the base relation grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hilog_engine::horn::{least_model, EvalOptions, NegationMode};
use hilog_workloads::{chain, generic_closure_program, random_dag};
use std::time::Duration;

fn bench_tc(c: &mut Criterion) {
    let mut group = c.benchmark_group("E1_generic_tc");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for n in [16usize, 64, 128] {
        let chain_program = generic_closure_program(&[("e", chain(n))]);
        group.bench_with_input(BenchmarkId::new("chain", n), &chain_program, |b, p| {
            b.iter(|| {
                least_model(p, NegationMode::Forbid, EvalOptions::default())
                    .unwrap()
                    .len()
            })
        });
        let dag_program = generic_closure_program(&[("e", random_dag(n, 2.0, 7))]);
        group.bench_with_input(BenchmarkId::new("dag", n), &dag_program, |b, p| {
            b.iter(|| {
                least_model(p, NegationMode::Forbid, EvalOptions::default())
                    .unwrap()
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tc);
criterion_main!(benches);
