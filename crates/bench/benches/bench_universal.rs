//! E9: direct evaluation of a negation-free HiLog program versus evaluation
//! of its universal-relation (`call`/`apply_i`) image (Section 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hilog_core::universal::universal_transform;
use hilog_engine::horn::{least_model, EvalOptions, NegationMode};
use hilog_workloads::{chain, generic_closure_program};
use std::time::Duration;

fn bench_universal(c: &mut Criterion) {
    let mut group = c.benchmark_group("E9_universal_relation");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for n in [16usize, 64, 128] {
        let program = generic_closure_program(&[("e", chain(n))]);
        let image = universal_transform(&program).unwrap();
        group.bench_with_input(BenchmarkId::new("direct", n), &program, |b, p| {
            b.iter(|| {
                least_model(p, NegationMode::Forbid, EvalOptions::default())
                    .unwrap()
                    .len()
            })
        });
        group.bench_with_input(BenchmarkId::new("universal_image", n), &image, |b, p| {
            b.iter(|| {
                least_model(p, NegationMode::Forbid, EvalOptions::default())
                    .unwrap()
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_universal);
criterion_main!(benches);
