//! E3/E5 substrate: the well-founded model of win/move games (Examples 6.1
//! and 6.3) as the move graph grows, for both the normal and the HiLog
//! (parameterised) formulation.
// These benches measure the raw one-shot evaluation paths on purpose; the
// session facade that supersedes them is measured in bench_session_reuse.
#![allow(deprecated)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hilog_engine::horn::EvalOptions;
use hilog_engine::wfs::well_founded_model;
use hilog_workloads::{hilog_game_program, normal_game_program, random_dag};
use std::time::Duration;

fn bench_wfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("E3_wfs_win_move");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for n in [32usize, 128, 512] {
        let normal = normal_game_program(&random_dag(n, 2.0, 11));
        group.bench_with_input(BenchmarkId::new("normal", n), &normal, |b, p| {
            b.iter(|| {
                well_founded_model(p, EvalOptions::default())
                    .unwrap()
                    .base()
                    .len()
            })
        });
        let hilog = hilog_game_program(&[("g", random_dag(n, 2.0, 11))]);
        group.bench_with_input(BenchmarkId::new("hilog", n), &hilog, |b, p| {
            b.iter(|| {
                well_founded_model(p, EvalOptions::default())
                    .unwrap()
                    .base()
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_wfs);
criterion_main!(benches);
