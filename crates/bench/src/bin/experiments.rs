//! Experiment runner: regenerates every experiment row of EXPERIMENTS.md and
//! prints the results as markdown tables (plus a JSON dump on request).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p hilog-bench --bin experiments [--json PATH] [--quick]
//! ```
//!
//! `--quick` shrinks the workload sizes (useful in CI); `--json PATH` writes
//! the raw measurements to a JSON file in addition to the markdown output.

// The experiments deliberately measure the raw one-shot evaluation paths the
// paper's constructions define; the `HiLogDb` session facade built on top of
// them is measured separately by bench_session_reuse.
#![allow(deprecated)]

use hilog_bench::{median_time, timed, to_markdown, Measurement};
use hilog_core::restriction::ProgramClass;
use hilog_core::universal::universal_transform;
use hilog_datalog::engine::DatalogEngine;
use hilog_engine::aggregate::{evaluate_aggregate_program, parts_explosion_program};
use hilog_engine::extension::{preserved_by_extension_stable, preserved_by_extension_wfs};
use hilog_engine::horn::{least_model, EvalOptions, NegationMode};
use hilog_engine::magic_eval::QueryEvaluator;
use hilog_engine::modular::modularly_stratified_hilog;
use hilog_engine::stable::StableOptions;
use hilog_engine::wfs::well_founded_model;
use hilog_syntax::{parse_program, parse_term};
use hilog_workloads::{
    chain, cycle, generic_closure_program, hilog_game_program, node_name, normal_game_program,
    random_dag, random_part_hierarchy,
    random_programs::{
        random_ground_extension, random_range_restricted_normal, random_strongly_restricted_hilog,
        ExtensionConfig, HilogProgramConfig, NormalProgramConfig,
    },
    specialized_closure_program,
};

struct Config {
    quick: bool,
    json_path: Option<String>,
}

fn parse_args() -> Config {
    let mut config = Config {
        quick: false,
        json_path: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => config.quick = true,
            "--json" => config.json_path = args.next(),
            other => {
                eprintln!("unknown argument `{other}` (expected --quick or --json PATH)");
                std::process::exit(2);
            }
        }
    }
    config
}

fn main() {
    let config = parse_args();
    let mut rows: Vec<Measurement> = Vec::new();

    exp_e1_closures(&config, &mut rows);
    exp_e3_coincidence(&config, &mut rows);
    exp_e4_preservation(&config, &mut rows);
    exp_e5_modular(&config, &mut rows);
    exp_e7_magic(&config, &mut rows);
    exp_e8_datahilog(&config, &mut rows);
    exp_e9_universal(&config, &mut rows);
    exp_e10_aggregate(&config, &mut rows);
    exp_e11_generic_vs_specialized(&config, &mut rows);

    println!("\n== all measurements ==\n");
    println!("{}", to_markdown(&rows));
    if let Some(path) = &config.json_path {
        let json = serde_json::to_string_pretty(&rows).expect("serialises");
        std::fs::write(path, json).expect("write json");
        println!("(raw measurements written to {path})");
    }
}

/// E1: generic transitive closure workloads (Example 2.1).
fn exp_e1_closures(config: &Config, rows: &mut Vec<Measurement>) {
    println!("\n-- E1: generic closures (Examples 2.1, 2.2) --");
    let sizes: &[usize] = if config.quick {
        &[16, 64]
    } else {
        &[16, 64, 256]
    };
    for &n in sizes {
        let program = generic_closure_program(&[("e", chain(n))]);
        let (model, duration) =
            timed(|| least_model(&program, NegationMode::Forbid, EvalOptions::default()).unwrap());
        let tc_atoms = n * (n + 1) / 2;
        println!("  chain n={n}: {} atoms in {:?}", model.len(), duration);
        assert!(model.len() >= tc_atoms);
        rows.push(Measurement::new(
            "E1",
            format!("tc over chain n={n}"),
            "least-model time",
            duration.as_secs_f64() * 1e3,
            "ms",
        ));
        rows.push(Measurement::new(
            "E1",
            format!("tc over chain n={n}"),
            "derived atoms",
            model.len() as f64,
            "atoms",
        ));
    }
}

/// E3: Theorems 4.1/4.2 — HiLog vs normal semantics on range-restricted
/// normal programs.
fn exp_e3_coincidence(config: &Config, rows: &mut Vec<Measurement>) {
    println!("\n-- E3: coincidence on range-restricted normal programs (Theorems 4.1/4.2) --");
    let samples = if config.quick { 20 } else { 60 };
    let mut agree = 0usize;
    for seed in 0..samples {
        let program = random_range_restricted_normal(NormalProgramConfig::default(), seed as u64);
        let hilog = well_founded_model(&program, EvalOptions::default()).unwrap();
        let normal = DatalogEngine::new(program.clone())
            .unwrap()
            .well_founded_model()
            .unwrap();
        let ok = normal
            .base()
            .iter()
            .all(|a| hilog.truth(a) == normal.truth(a));
        if ok {
            agree += 1;
        }
    }
    println!("  {agree}/{samples} random programs agree exactly (expected: all)");
    rows.push(Measurement::new(
        "E3",
        format!("{samples} random range-restricted normal programs"),
        "agreement rate",
        agree as f64 / samples as f64,
        "fraction",
    ));
}

/// E4: preservation under extensions (Theorems 5.3/5.4 plus Example 5.1).
fn exp_e4_preservation(config: &Config, rows: &mut Vec<Measurement>) {
    println!("\n-- E4: preservation under extensions (Section 5) --");
    let samples = if config.quick { 10 } else { 30 };
    let mut preserved_wfs = 0usize;
    let mut preserved_stable = 0usize;
    for seed in 0..samples {
        let program = random_strongly_restricted_hilog(HilogProgramConfig::default(), seed as u64);
        let extension = random_ground_extension(ExtensionConfig::default(), seed as u64 + 1);
        if preserved_by_extension_wfs(&program, &extension, EvalOptions::default())
            .unwrap()
            .preserved
        {
            preserved_wfs += 1;
        }
        if preserved_by_extension_stable(
            &program,
            &extension,
            EvalOptions::default(),
            StableOptions::default(),
        )
        .unwrap()
        .preserved
        {
            preserved_stable += 1;
        }
    }
    // The paper's counterexample must fail.
    let example_5_1 = parse_program("p :- X(Y), Y(X).").unwrap();
    let witness = parse_program("q(r). r(q).").unwrap();
    let counterexample_fails =
        !preserved_by_extension_wfs(&example_5_1, &witness, EvalOptions::default())
            .unwrap()
            .preserved;
    println!(
        "  strongly range-restricted programs preserved: wfs {preserved_wfs}/{samples}, stable {preserved_stable}/{samples}"
    );
    println!("  Example 5.1 counterexample rejected: {counterexample_fails}");
    rows.push(Measurement::new(
        "E4",
        format!("{samples} random strongly range-restricted HiLog programs"),
        "wfs preservation rate",
        preserved_wfs as f64 / samples as f64,
        "fraction",
    ));
    rows.push(Measurement::new(
        "E4",
        format!("{samples} random strongly range-restricted HiLog programs"),
        "stable preservation rate",
        preserved_stable as f64 / samples as f64,
        "fraction",
    ));
    rows.push(Measurement::new(
        "E4",
        "Example 5.1 counterexample",
        "violation detected",
        if counterexample_fails { 1.0 } else { 0.0 },
        "bool",
    ));
}

/// E5: the Figure 1 modular-stratification procedure.
fn exp_e5_modular(config: &Config, rows: &mut Vec<Measurement>) {
    println!("\n-- E5: modular stratification for HiLog (Figure 1) --");
    let sizes: &[usize] = if config.quick {
        &[32, 128]
    } else {
        &[32, 128, 512, 1024]
    };
    for &n in sizes {
        let program = hilog_game_program(&[
            ("g1", random_dag(n, 2.0, 5)),
            ("g2", random_dag(n / 2, 2.0, 6)),
        ]);
        let duration = median_time(3, || {
            let out = modularly_stratified_hilog(&program, EvalOptions::default()).unwrap();
            assert!(out.modularly_stratified);
        });
        println!("  acyclic games n={n}: accepted in {duration:?}");
        rows.push(Measurement::new(
            "E5",
            format!("two acyclic games, n={n}"),
            "Figure 1 time",
            duration.as_secs_f64() * 1e3,
            "ms",
        ));
    }
    // Cyclic games are rejected.
    let cyclic = normal_game_program(&cycle(64));
    let (out, duration) =
        timed(|| modularly_stratified_hilog(&cyclic, EvalOptions::default()).unwrap());
    println!(
        "  cyclic game n=64: rejected={} in {duration:?}",
        !out.modularly_stratified
    );
    rows.push(Measurement::new(
        "E5",
        "cyclic game n=64",
        "rejected",
        if out.modularly_stratified { 0.0 } else { 1.0 },
        "bool",
    ));
}

/// E7: query-directed (magic-set style) evaluation versus full bottom-up
/// evaluation on point queries.
fn exp_e7_magic(config: &Config, rows: &mut Vec<Measurement>) {
    println!("\n-- E7: magic sets / query-directed evaluation vs bottom-up (Section 6.1) --");
    let sizes: &[usize] = if config.quick {
        &[64, 256]
    } else {
        &[64, 256, 1024]
    };
    for &n in sizes {
        // The queried game is small and the rest of the database is large.
        let program = hilog_game_program(&[("target", chain(12)), ("bulk", random_dag(n, 2.5, 9))]);
        let atom = parse_term(&format!("winning(target)({})", node_name(0))).unwrap();
        let bottom_up = median_time(3, || {
            let model = well_founded_model(&program, EvalOptions::default()).unwrap();
            std::hint::black_box(model.is_true(&atom));
        });
        let query_directed = median_time(3, || {
            let mut ev = QueryEvaluator::new(&program, EvalOptions::default());
            std::hint::black_box(ev.holds(&atom).unwrap());
        });
        let speedup = bottom_up.as_secs_f64() / query_directed.as_secs_f64().max(1e-9);
        println!(
            "  |bulk|={n}: bottom-up {bottom_up:?}, query-directed {query_directed:?}, speedup {speedup:.1}x"
        );
        rows.push(Measurement::new(
            "E7",
            format!("point query, irrelevant game size {n}"),
            "bottom-up time",
            bottom_up.as_secs_f64() * 1e3,
            "ms",
        ));
        rows.push(Measurement::new(
            "E7",
            format!("point query, irrelevant game size {n}"),
            "query-directed time",
            query_directed.as_secs_f64() * 1e3,
            "ms",
        ));
        rows.push(Measurement::new(
            "E7",
            format!("point query, irrelevant game size {n}"),
            "speedup",
            speedup,
            "x",
        ));
    }
}

/// E8: Datahilog finiteness (Lemma 6.3).
fn exp_e8_datahilog(config: &Config, rows: &mut Vec<Measurement>) {
    println!("\n-- E8: Datahilog termination (Lemma 6.3) --");
    let samples = if config.quick { 10 } else { 25 };
    let mut total = 0usize;
    for seed in 0..samples {
        let mut text =
            String::from("winning(M, X) :- game(M), M(X, Y), not winning(M, Y).\ngame(g).\n");
        for (u, v) in random_dag(24, 2.0, seed as u64) {
            text.push_str(&format!("g(p{u}, p{v}).\n"));
        }
        let program = parse_program(&text).unwrap();
        let report = ProgramClass::classify(&program);
        assert!(report.datahilog && report.strongly_range_restricted);
        let model = well_founded_model(&program, EvalOptions::default()).unwrap();
        if model.is_total() {
            total += 1;
        }
    }
    println!("  {total}/{samples} random Datahilog games evaluate to finite total models");
    rows.push(Measurement::new(
        "E8",
        format!("{samples} random Datahilog game programs"),
        "finite total models",
        total as f64 / samples as f64,
        "fraction",
    ));
}

/// E9: the universal-relation transformation — structure loss and overhead.
fn exp_e9_universal(config: &Config, rows: &mut Vec<Measurement>) {
    println!("\n-- E9: universal-relation transformation (Section 2 / Section 6) --");
    let n = if config.quick { 64 } else { 256 };
    let program = generic_closure_program(&[("e", chain(n))]);
    let direct = median_time(3, || {
        std::hint::black_box(
            least_model(&program, NegationMode::Forbid, EvalOptions::default())
                .unwrap()
                .len(),
        );
    });
    let transformed = universal_transform(&program).unwrap();
    let image = median_time(3, || {
        std::hint::black_box(
            least_model(&transformed, NegationMode::Forbid, EvalOptions::default())
                .unwrap()
                .len(),
        );
    });
    let overhead = image.as_secs_f64() / direct.as_secs_f64().max(1e-9);
    // Structure loss: a stratified program becomes unstratified.
    let stratified = parse_program("p(X) :- q(X), not r(X). q(a). r(b).").unwrap();
    let lost = hilog_core::analysis::is_stratified(&stratified)
        && !hilog_core::analysis::is_stratified(&universal_transform(&stratified).unwrap());
    println!("  chain n={n}: direct {direct:?}, universal image {image:?} ({overhead:.2}x)");
    println!("  stratification destroyed by the transformation: {lost}");
    rows.push(Measurement::new(
        "E9",
        format!("tc over chain n={n}"),
        "universal-image overhead",
        overhead,
        "x",
    ));
    rows.push(Measurement::new(
        "E9",
        "stratified p/q/r program",
        "stratification destroyed",
        if lost { 1.0 } else { 0.0 },
        "bool",
    ));
}

/// E10: the parts-explosion aggregation.
fn exp_e10_aggregate(config: &Config, rows: &mut Vec<Measurement>) {
    println!("\n-- E10: parts-explosion aggregation (Section 6) --");
    let sizes: &[usize] = if config.quick {
        &[16, 64]
    } else {
        &[16, 64, 256]
    };
    for &n in sizes {
        let hierarchy = random_part_hierarchy(n, n / 2, 3);
        let program = parts_explosion_program(&[("m", "parts")], &hierarchy.as_facts("parts"));
        let (result, duration) =
            timed(|| evaluate_aggregate_program(&program, EvalOptions::default()).unwrap());
        println!(
            "  {n} parts: {} contains atoms in {:?} ({} rounds)",
            result
                .model
                .true_atoms()
                .iter()
                .filter(|a| a.to_string().starts_with("contains"))
                .count(),
            duration,
            result.rounds
        );
        rows.push(Measurement::new(
            "E10",
            format!("random hierarchy, {n} parts"),
            "evaluation time",
            duration.as_secs_f64() * 1e3,
            "ms",
        ));
        rows.push(Measurement::new(
            "E10",
            format!("random hierarchy, {n} parts"),
            "rounds",
            result.rounds as f64,
            "rounds",
        ));
    }
}

/// E11: one generic HiLog closure vs k specialised normal closures.
fn exp_e11_generic_vs_specialized(config: &Config, rows: &mut Vec<Measurement>) {
    println!("\n-- E11: generic HiLog tc vs specialised normal tc (Examples 2.1/5.2) --");
    let k = 4usize;
    let n = if config.quick { 32 } else { 96 };
    let relations: Vec<(String, Vec<(usize, usize)>)> = (0..k)
        .map(|i| (format!("rel{i}"), random_dag(n, 1.5, i as u64 + 40)))
        .collect();
    let borrowed: Vec<(&str, Vec<(usize, usize)>)> = relations
        .iter()
        .map(|(s, e)| (s.as_str(), e.clone()))
        .collect();
    let generic = generic_closure_program(&borrowed);
    let generic_time = median_time(3, || {
        std::hint::black_box(
            least_model(&generic, NegationMode::Forbid, EvalOptions::default())
                .unwrap()
                .len(),
        );
    });
    let specialised_time = median_time(3, || {
        let mut total = 0usize;
        for (name, edges) in &relations {
            let program = specialized_closure_program(name, edges);
            let engine = DatalogEngine::new(program).unwrap();
            total += engine.least_model().unwrap().len();
        }
        std::hint::black_box(total);
    });
    let ratio = generic_time.as_secs_f64() / specialised_time.as_secs_f64().max(1e-9);
    println!(
        "  k={k}, n={n}: generic {generic_time:?} (1 program) vs specialised {specialised_time:?} ({k} programs); ratio {ratio:.2}x"
    );
    rows.push(Measurement::new(
        "E11",
        format!("k={k} relations, n={n} nodes"),
        "generic/specialised time ratio",
        ratio,
        "x",
    ));
    rows.push(Measurement::new(
        "E11",
        format!("k={k} relations, n={n} nodes"),
        "rule sets needed (generic)",
        1.0,
        "programs",
    ));
    rows.push(Measurement::new(
        "E11",
        format!("k={k} relations, n={n} nodes"),
        "rule sets needed (specialised)",
        k as f64,
        "programs",
    ));
}
