//! # hilog-bench
//!
//! Shared helpers for the benchmark harness and the `experiments` binary that
//! regenerates every row of EXPERIMENTS.md.
//!
//! The paper ("On Negation in HiLog", PODS 1991 / JLP 1994) is a theory paper
//! with no measurement tables; the experiments here measure the artifacts it
//! defines — the well-founded construction, the Figure 1 modular
//! stratification procedure, the magic-sets/query-directed evaluation, the
//! universal-relation transformation and the parts-explosion aggregation —
//! on synthetic workloads, and check the qualitative claims (who wins, what
//! is preserved, what terminates) that the paper does make.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::Serialize;
use std::time::{Duration, Instant};

/// One measured row of an experiment table.
#[derive(Debug, Clone, Serialize)]
pub struct Measurement {
    /// Experiment identifier (E1..E11, matching DESIGN.md / EXPERIMENTS.md).
    pub experiment: String,
    /// Workload description (e.g. "chain n=256").
    pub workload: String,
    /// Name of the quantity being reported.
    pub metric: String,
    /// The measured value.
    pub value: f64,
    /// Unit of the value.
    pub unit: String,
}

impl Measurement {
    /// Creates a measurement row.
    pub fn new(
        experiment: &str,
        workload: impl Into<String>,
        metric: &str,
        value: f64,
        unit: &str,
    ) -> Self {
        Measurement {
            experiment: experiment.to_string(),
            workload: workload.into(),
            metric: metric.to_string(),
            value,
            unit: unit.to_string(),
        }
    }
}

/// Times a closure, returning its result and the elapsed wall-clock time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Runs a closure `repeats` times and returns the median duration (simple and
/// robust enough for the experiment summary; the Criterion benches do the
/// statistically careful measurements).
pub fn median_time(repeats: usize, mut f: impl FnMut()) -> Duration {
    let mut times: Vec<Duration> = (0..repeats.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

/// Formats a table of measurements as GitHub-flavoured markdown.
pub fn to_markdown(rows: &[Measurement]) -> String {
    let mut out = String::from("| experiment | workload | metric | value | unit |\n");
    out.push_str("|---|---|---|---:|---|\n");
    for r in rows {
        out.push_str(&format!(
            "| {} | {} | {} | {:.3} | {} |\n",
            r.experiment, r.workload, r.metric, r.value, r.unit
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_serialises() {
        let m = Measurement::new("E7", "chain n=64", "speedup", 12.5, "x");
        let json = serde_json::to_string(&m).unwrap();
        assert!(json.contains("\"experiment\":\"E7\""));
    }

    #[test]
    fn markdown_table_has_one_row_per_measurement() {
        let rows = vec![
            Measurement::new("E1", "a", "time", 1.0, "ms"),
            Measurement::new("E2", "b", "time", 2.0, "ms"),
        ];
        let md = to_markdown(&rows);
        assert_eq!(md.lines().count(), 4);
    }

    #[test]
    fn timing_helpers_return_plausible_values() {
        let (value, d) = timed(|| 21 * 2);
        assert_eq!(value, 42);
        assert!(d.as_nanos() > 0);
        let m = median_time(3, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(m.as_nanos() > 0);
    }
}
