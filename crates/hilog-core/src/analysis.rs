//! Program analysis: predicate names, dependency graphs, strongly connected
//! components, stratification and local stratification.
//!
//! Section 6 of the paper defines stratification (Definition 6.1) and local
//! stratification (Definition 6.2) for normal programs, and uses strongly
//! connected components of the predicate dependency graph both for modular
//! stratification of normal programs (Definition 6.4) and — restricted to
//! *ground* predicate names — inside the Figure 1 procedure for HiLog
//! programs.

use crate::literal::Literal;
use crate::program::Program;
use crate::rule::Rule;
use crate::term::Term;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// The predicate *name* of an atom: `t` for `t(t1, ..., tn)`, the atom itself
/// for a bare symbol / variable (a propositional or variable atom).
pub fn predicate_name(atom: &Term) -> &Term {
    atom.name()
}

/// The predicate name if it is ground, `None` otherwise.
pub fn ground_predicate_name(atom: &Term) -> Option<Term> {
    let name = atom.name();
    if name.is_ground() {
        Some(name.clone())
    } else {
        None
    }
}

/// Polarity of a dependency edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeSign {
    /// The body literal is positive.
    Positive,
    /// The body literal is negative (or an aggregate, which the paper treats
    /// like negation for stratification purposes).
    Negative,
}

/// A dependency graph over ground predicate names (or over ground atoms, for
/// local stratification).  Edges run from the head's node to each body
/// literal's node.
#[derive(Debug, Clone, Default)]
pub struct DependencyGraph {
    nodes: Vec<Term>,
    index: HashMap<Term, usize>,
    /// Adjacency: `edges[u]` is the list of `(v, sign)` with an edge `u -> v`.
    edges: Vec<Vec<(usize, EdgeSign)>>,
}

impl DependencyGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        DependencyGraph::default()
    }

    /// Adds (or finds) a node.
    pub fn add_node(&mut self, term: Term) -> usize {
        if let Some(&i) = self.index.get(&term) {
            return i;
        }
        let i = self.nodes.len();
        self.index.insert(term.clone(), i);
        self.nodes.push(term);
        self.edges.push(Vec::new());
        i
    }

    /// Adds an edge `from -> to` with the given sign.
    pub fn add_edge(&mut self, from: Term, to: Term, sign: EdgeSign) {
        let u = self.add_node(from);
        let v = self.add_node(to);
        if !self.edges[u].contains(&(v, sign)) {
            self.edges[u].push((v, sign));
        }
    }

    /// The nodes of the graph.
    pub fn nodes(&self) -> &[Term] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Looks up a node index.
    pub fn node_index(&self, term: &Term) -> Option<usize> {
        self.index.get(term).copied()
    }

    /// Outgoing edges of a node.
    pub fn successors(&self, node: usize) -> &[(usize, EdgeSign)] {
        &self.edges[node]
    }

    /// Builds the *predicate* dependency graph of a program: one node per
    /// ground predicate name, one edge per (head, body literal) pair where
    /// both names are ground.  Non-ground predicate names are skipped (they
    /// are handled separately by the Figure 1 procedure).
    pub fn predicate_graph(program: &Program) -> DependencyGraph {
        let mut g = DependencyGraph::new();
        for rule in program.iter() {
            let head_name = match ground_predicate_name(&rule.head) {
                Some(n) => n,
                None => continue,
            };
            g.add_node(head_name.clone());
            for lit in &rule.body {
                let (atom, sign) = match lit {
                    Literal::Pos(a) => (a, EdgeSign::Positive),
                    Literal::Neg(a) => (a, EdgeSign::Negative),
                    Literal::Aggregate(agg) => (&agg.pattern, EdgeSign::Negative),
                    Literal::Builtin(_) => continue,
                };
                if let Some(body_name) = ground_predicate_name(atom) {
                    g.add_edge(head_name.clone(), body_name, sign);
                }
            }
        }
        g
    }

    /// Builds the *atom* dependency graph of a **ground** program: one node
    /// per ground atom, one edge per (head, body atom) pair.  Used for local
    /// stratification (Definition 6.2).
    pub fn atom_graph(rules: &[Rule]) -> DependencyGraph {
        let mut g = DependencyGraph::new();
        for rule in rules {
            g.add_node(rule.head.clone());
            for lit in &rule.body {
                let (atom, sign) = match lit {
                    Literal::Pos(a) => (a, EdgeSign::Positive),
                    Literal::Neg(a) => (a, EdgeSign::Negative),
                    Literal::Aggregate(agg) => (&agg.pattern, EdgeSign::Negative),
                    Literal::Builtin(_) => continue,
                };
                g.add_edge(rule.head.clone(), atom.clone(), sign);
            }
        }
        g
    }

    /// Strongly connected components (Tarjan, iterative).  Components are
    /// returned in reverse topological order of the condensation: if
    /// component `A` has an edge into component `B`, then `B` appears before
    /// `A` in the result.  (Lower components — the ones other components
    /// depend on — come first.)
    pub fn sccs(&self) -> Vec<Vec<usize>> {
        let n = self.nodes.len();
        let mut index_counter = 0usize;
        let mut indices = vec![usize::MAX; n];
        let mut lowlink = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut result: Vec<Vec<usize>> = Vec::new();

        // Iterative Tarjan using an explicit call stack of (node, child cursor).
        for start in 0..n {
            if indices[start] != usize::MAX {
                continue;
            }
            let mut call_stack: Vec<(usize, usize)> = vec![(start, 0)];
            while let Some(&mut (v, ref mut cursor)) = call_stack.last_mut() {
                if *cursor == 0 {
                    indices[v] = index_counter;
                    lowlink[v] = index_counter;
                    index_counter += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if *cursor < self.edges[v].len() {
                    let (w, _) = self.edges[v][*cursor];
                    *cursor += 1;
                    if indices[w] == usize::MAX {
                        call_stack.push((w, 0));
                    } else if on_stack[w] {
                        lowlink[v] = lowlink[v].min(indices[w]);
                    }
                } else {
                    call_stack.pop();
                    if let Some(&mut (parent, _)) = call_stack.last_mut() {
                        lowlink[parent] = lowlink[parent].min(lowlink[v]);
                    }
                    if lowlink[v] == indices[v] {
                        let mut component = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            component.push(w);
                            if w == v {
                                break;
                            }
                        }
                        result.push(component);
                    }
                }
            }
        }
        result
    }

    /// The strongly connected components as sets of node terms, in reverse
    /// topological (lower-components-first) order.
    pub fn scc_terms(&self) -> Vec<Vec<Term>> {
        self.sccs()
            .into_iter()
            .map(|c| c.into_iter().map(|i| self.nodes[i].clone()).collect())
            .collect()
    }

    /// Returns the nodes whose strongly connected components have no outgoing
    /// edges to *other* components — the "lowest" components used by step 3 of
    /// the Figure 1 procedure ("let T be the set of nodes in G from components
    /// with no outgoing edge").
    pub fn sink_component_nodes(&self) -> Vec<Term> {
        let sccs = self.sccs();
        let mut component_of = vec![usize::MAX; self.nodes.len()];
        for (ci, comp) in sccs.iter().enumerate() {
            for &v in comp {
                component_of[v] = ci;
            }
        }
        let mut has_outgoing = vec![false; sccs.len()];
        for v in 0..self.nodes.len() {
            for &(w, _) in &self.edges[v] {
                if component_of[v] != component_of[w] {
                    has_outgoing[component_of[v]] = true;
                }
            }
        }
        let mut out = Vec::new();
        for (ci, comp) in sccs.iter().enumerate() {
            if !has_outgoing[ci] {
                for &v in comp {
                    out.push(self.nodes[v].clone());
                }
            }
        }
        out
    }

    /// Returns `true` if no strongly connected component contains a negative
    /// edge.  For the predicate graph this is exactly stratifiability
    /// (Definition 6.1); for the atom graph of a finite ground program it is
    /// local stratifiability (Definition 6.2).
    pub fn no_negative_cycle(&self) -> bool {
        let sccs = self.sccs();
        let mut component_of = vec![usize::MAX; self.nodes.len()];
        for (ci, comp) in sccs.iter().enumerate() {
            for &v in comp {
                component_of[v] = ci;
            }
        }
        for v in 0..self.nodes.len() {
            for &(w, sign) in &self.edges[v] {
                if sign == EdgeSign::Negative && component_of[v] == component_of[w] {
                    return false;
                }
            }
        }
        true
    }

    /// Assigns stratification levels to nodes if possible: every node gets a
    /// level such that along a positive edge the level does not increase and
    /// along a negative edge it strictly decreases (head has greater level
    /// than negated body predicates, at least as great as positive ones).
    /// Returns `None` if the graph is not stratifiable.
    pub fn strata(&self) -> Option<BTreeMap<Term, usize>> {
        if !self.no_negative_cycle() {
            return None;
        }
        let sccs = self.sccs();
        let mut component_of = vec![usize::MAX; self.nodes.len()];
        for (ci, comp) in sccs.iter().enumerate() {
            for &v in comp {
                component_of[v] = ci;
            }
        }
        // Components are in reverse topological order (dependencies first),
        // so a single pass in *reverse* of that order (dependents first) with
        // relaxation iterated to fixpoint assigns minimal levels.  Since the
        // condensation is a DAG, iterate levels until stable.
        let mut level = vec![0usize; sccs.len()];
        let mut changed = true;
        let mut guard = 0usize;
        while changed {
            changed = false;
            guard += 1;
            if guard > sccs.len() + 2 {
                // Should be impossible on a DAG.
                return None;
            }
            for v in 0..self.nodes.len() {
                for &(w, sign) in &self.edges[v] {
                    let (cv, cw) = (component_of[v], component_of[w]);
                    if cv == cw {
                        continue;
                    }
                    let need = match sign {
                        EdgeSign::Positive => level[cw],
                        EdgeSign::Negative => level[cw] + 1,
                    };
                    if level[cv] < need {
                        level[cv] = need;
                        changed = true;
                    }
                }
            }
        }
        Some(
            self.nodes
                .iter()
                .enumerate()
                .map(|(i, t)| (t.clone(), level[component_of[i]]))
                .collect(),
        )
    }
}

/// Definition 6.1: a program is *stratified* if ordinal levels can be
/// assigned to predicate names such that in every rule the head's level is
/// greater than that of every negated body predicate and at least as great as
/// that of every positive body predicate.
///
/// Programs containing a rule whose head or body predicate name is non-ground
/// are reported unstratified (levels cannot be assigned to unknown names); the
/// Figure 1 procedure handles those separately.
pub fn is_stratified(program: &Program) -> bool {
    // Every predicate name that participates must be ground.
    for rule in program.iter() {
        if ground_predicate_name(&rule.head).is_none() {
            return false;
        }
        for lit in &rule.body {
            if let Some(atom) = lit.atom() {
                if ground_predicate_name(atom).is_none() {
                    return false;
                }
            }
        }
    }
    DependencyGraph::predicate_graph(program).no_negative_cycle()
}

/// Definition 6.2 restricted to a finite ground program: the program is
/// locally stratified iff no cycle of the ground-atom dependency graph passes
/// through a negative edge.
///
/// # Panics
///
/// Panics if a rule is not ground; callers instantiate first.
pub fn is_locally_stratified_ground(rules: &[Rule]) -> bool {
    for r in rules {
        assert!(
            r.head.is_ground() && r.body.iter().all(|l| l.atom().is_none_or(Term::is_ground)),
            "is_locally_stratified_ground requires ground rules, got {r}"
        );
    }
    DependencyGraph::atom_graph(rules).no_negative_cycle()
}

/// Groups the rules of a program by the strongly connected component of
/// their (ground) head predicate name, returning the groups in
/// lower-component-first order together with the set of names in each
/// component.  Rules whose head name is non-ground are not returned.
pub fn rules_by_component(program: &Program) -> Vec<(BTreeSet<Term>, Vec<Rule>)> {
    let graph = DependencyGraph::predicate_graph(program);
    let sccs = graph.scc_terms();
    let mut component_of: HashMap<Term, usize> = HashMap::new();
    for (ci, comp) in sccs.iter().enumerate() {
        for t in comp {
            component_of.insert(t.clone(), ci);
        }
    }
    let mut groups: Vec<(BTreeSet<Term>, Vec<Rule>)> = sccs
        .iter()
        .map(|c| (c.iter().cloned().collect(), Vec::new()))
        .collect();
    for rule in program.iter() {
        if let Some(name) = ground_predicate_name(&rule.head) {
            if let Some(&ci) = component_of.get(&name) {
                groups[ci].1.push(rule.clone());
            }
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::literal::Literal;

    fn sym(s: &str) -> Term {
        Term::sym(s)
    }

    fn win_move() -> Program {
        Program::from_rules(vec![
            Rule::new(
                Term::apps("winning", vec![Term::var("X")]),
                vec![
                    Literal::pos(Term::apps("move", vec![Term::var("X"), Term::var("Y")])),
                    Literal::neg(Term::apps("winning", vec![Term::var("Y")])),
                ],
            ),
            Rule::fact(Term::apps("move", vec![sym("a"), sym("b")])),
        ])
    }

    fn stratified_pqr() -> Program {
        // p(X) :- q(X), not r(X).   q(a).   r(b).
        Program::from_rules(vec![
            Rule::new(
                Term::apps("p", vec![Term::var("X")]),
                vec![
                    Literal::pos(Term::apps("q", vec![Term::var("X")])),
                    Literal::neg(Term::apps("r", vec![Term::var("X")])),
                ],
            ),
            Rule::fact(Term::apps("q", vec![sym("a")])),
            Rule::fact(Term::apps("r", vec![sym("b")])),
        ])
    }

    #[test]
    fn predicate_names() {
        let atom = Term::app(
            Term::apps("winning", vec![Term::var("M")]),
            vec![Term::var("X")],
        );
        assert_eq!(predicate_name(&atom).to_string(), "winning(M)");
        assert_eq!(ground_predicate_name(&atom), None);
        let ground = Term::app(Term::apps("winning", vec![sym("move1")]), vec![sym("a")]);
        assert_eq!(
            ground_predicate_name(&ground).unwrap().to_string(),
            "winning(move1)"
        );
    }

    #[test]
    fn stratification_of_pqr() {
        let p = stratified_pqr();
        assert!(is_stratified(&p));
        let strata = DependencyGraph::predicate_graph(&p).strata().unwrap();
        assert!(strata[&sym("p")] > strata[&sym("r")]);
        assert!(strata[&sym("p")] >= strata[&sym("q")]);
    }

    #[test]
    fn win_move_is_not_stratified() {
        // "This program is not stratified because winning depends negatively
        // on itself." (Example 6.1)
        assert!(!is_stratified(&win_move()));
        assert!(DependencyGraph::predicate_graph(&win_move())
            .strata()
            .is_none());
    }

    #[test]
    fn variable_predicate_names_are_not_stratified() {
        // winning(M)(X) :- game(M), M(X,Y), not winning(M)(Y).
        let p = Program::from_rules(vec![Rule::new(
            Term::app(
                Term::apps("winning", vec![Term::var("M")]),
                vec![Term::var("X")],
            ),
            vec![
                Literal::pos(Term::apps("game", vec![Term::var("M")])),
                Literal::pos(Term::app(
                    Term::var("M"),
                    vec![Term::var("X"), Term::var("Y")],
                )),
                Literal::neg(Term::app(
                    Term::apps("winning", vec![Term::var("M")]),
                    vec![Term::var("Y")],
                )),
            ],
        )]);
        assert!(!is_stratified(&p));
    }

    #[test]
    fn sccs_group_mutual_recursion() {
        // p :- q.  q :- p.  r :- p.
        let p = Program::from_rules(vec![
            Rule::new(sym("p"), vec![Literal::pos(sym("q"))]),
            Rule::new(sym("q"), vec![Literal::pos(sym("p"))]),
            Rule::new(sym("r"), vec![Literal::pos(sym("p"))]),
        ]);
        let g = DependencyGraph::predicate_graph(&p);
        let sccs = g.scc_terms();
        assert_eq!(sccs.len(), 2);
        // p,q component must come before r (reverse topological order).
        let first: BTreeSet<String> = sccs[0].iter().map(|t| t.to_string()).collect();
        assert_eq!(
            first,
            ["p".to_string(), "q".to_string()].into_iter().collect()
        );
        assert_eq!(sccs[1], vec![sym("r")]);
    }

    #[test]
    fn sink_components_are_the_lowest() {
        let p = stratified_pqr();
        let g = DependencyGraph::predicate_graph(&p);
        let sinks: BTreeSet<String> = g
            .sink_component_nodes()
            .iter()
            .map(|t| t.to_string())
            .collect();
        // q and r have no outgoing edges; p depends on both.
        assert_eq!(
            sinks,
            ["q".to_string(), "r".to_string()].into_iter().collect()
        );
    }

    #[test]
    fn local_stratification_of_ground_programs() {
        // winning(a) :- move(a,b), not winning(b).  winning(b) :- move(b,a), not winning(a).
        // This ground program has a negative cycle winning(a) -> winning(b) -> winning(a).
        let cyclic = vec![
            Rule::new(
                Term::apps("winning", vec![sym("a")]),
                vec![
                    Literal::pos(Term::apps("move", vec![sym("a"), sym("b")])),
                    Literal::neg(Term::apps("winning", vec![sym("b")])),
                ],
            ),
            Rule::new(
                Term::apps("winning", vec![sym("b")]),
                vec![
                    Literal::pos(Term::apps("move", vec![sym("b"), sym("a")])),
                    Literal::neg(Term::apps("winning", vec![sym("a")])),
                ],
            ),
        ];
        assert!(!is_locally_stratified_ground(&cyclic));
        // The acyclic version (only a -> b) is locally stratified.
        let acyclic = vec![cyclic[0].clone()];
        assert!(is_locally_stratified_ground(&acyclic));
    }

    #[test]
    #[should_panic]
    fn local_stratification_rejects_non_ground_input() {
        let r = Rule::new(
            Term::apps("p", vec![Term::var("X")]),
            vec![Literal::neg(Term::apps("p", vec![Term::var("X")]))],
        );
        let _ = is_locally_stratified_ground(&[r]);
    }

    #[test]
    fn strata_handles_chains() {
        // a :- not b.  b :- not c.  c.
        let p = Program::from_rules(vec![
            Rule::new(sym("a"), vec![Literal::neg(sym("b"))]),
            Rule::new(sym("b"), vec![Literal::neg(sym("c"))]),
            Rule::fact(sym("c")),
        ]);
        let strata = DependencyGraph::predicate_graph(&p).strata().unwrap();
        assert!(strata[&sym("a")] > strata[&sym("b")]);
        assert!(strata[&sym("b")] > strata[&sym("c")]);
    }

    #[test]
    fn rules_grouped_by_component() {
        let p = stratified_pqr();
        let groups = rules_by_component(&p);
        assert_eq!(groups.len(), 3);
        // Each group's rules have heads in that group.
        for (names, rules) in &groups {
            for r in rules {
                assert!(names.contains(&ground_predicate_name(&r.head).unwrap()));
            }
        }
    }

    #[test]
    fn aggregate_counts_as_negative_dependency() {
        use crate::literal::{Aggregate, AggregateFunc};
        // contains(X, N) :- N = sum(P, in(X, P)).   in(a, 1).
        let p = Program::from_rules(vec![
            Rule::new(
                Term::apps("contains", vec![Term::var("X"), Term::var("N")]),
                vec![Literal::Aggregate(Aggregate::new(
                    AggregateFunc::Sum,
                    Term::var("N"),
                    Term::var("P"),
                    Term::apps("in", vec![Term::var("X"), Term::var("P")]),
                ))],
            ),
            Rule::fact(Term::apps("in", vec![sym("a"), Term::int(1)])),
        ]);
        let g = DependencyGraph::predicate_graph(&p);
        let contains_idx = g.node_index(&sym("contains")).unwrap();
        assert!(g
            .successors(contains_idx)
            .iter()
            .any(|&(_, s)| s == EdgeSign::Negative));
        // Still stratified: no cycle.
        assert!(is_stratified(&p));
    }
}
