//! Builtin (evaluable) literals.
//!
//! The paper's parts-explosion program (Section 6) uses arithmetic
//! (`N = P * M`) alongside aggregation.  To express it we support a small set
//! of evaluable literals in rule bodies:
//!
//! * `X is Expr` — evaluate the arithmetic expression `Expr` (built from
//!   integers, `+`, `-`, `*`, `div`, `mod`) and unify the result with `X`;
//! * comparisons `<`, `<=`, `>`, `>=`, `=:=`, `=\=` over arithmetic
//!   expressions;
//! * syntactic equality `=` and disequality `\=` over arbitrary HiLog terms.
//!
//! Builtins are not HiLog atoms: they do not appear in the Herbrand base and
//! take no part in the well-founded construction; they are evaluated during
//! grounding / rule instantiation, exactly as a deductive database system
//! would evaluate them.

use crate::error::CoreError;
use crate::subst::Substitution;
use crate::term::Term;
use crate::unify::unify_with;
use std::fmt;

/// The operator of a builtin literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BuiltinOp {
    /// `X is Expr`: arithmetic evaluation of the right-hand side.
    Is,
    /// `Expr =:= Expr`: arithmetic equality.
    ArithEq,
    /// `Expr =\= Expr`: arithmetic inequality.
    ArithNeq,
    /// `Expr < Expr`.
    Lt,
    /// `Expr <= Expr`.
    Le,
    /// `Expr > Expr`.
    Gt,
    /// `Expr >= Expr`.
    Ge,
    /// `T = T`: syntactic unification.
    Eq,
    /// `T \= T`: syntactic non-unifiability (both sides must be ground for a
    /// sound answer; we require groundness).
    Neq,
}

impl BuiltinOp {
    /// The concrete-syntax spelling of the operator.
    pub fn symbol(&self) -> &'static str {
        match self {
            BuiltinOp::Is => "is",
            BuiltinOp::ArithEq => "=:=",
            BuiltinOp::ArithNeq => "=\\=",
            BuiltinOp::Lt => "<",
            BuiltinOp::Le => "<=",
            BuiltinOp::Gt => ">",
            BuiltinOp::Ge => ">=",
            BuiltinOp::Eq => "=",
            BuiltinOp::Neq => "\\=",
        }
    }
}

/// A builtin literal `left OP right`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BuiltinCall {
    /// The operator.
    pub op: BuiltinOp,
    /// Left operand.
    pub left: Term,
    /// Right operand.
    pub right: Term,
}

impl BuiltinCall {
    /// Creates a builtin literal.
    pub fn new(op: BuiltinOp, left: Term, right: Term) -> Self {
        BuiltinCall { op, left, right }
    }

    /// Applies a substitution to both operands.
    pub fn apply(&self, theta: &Substitution) -> BuiltinCall {
        BuiltinCall {
            op: self.op,
            left: theta.apply(&self.left),
            right: theta.apply(&self.right),
        }
    }

    /// Variables occurring in the builtin.
    pub fn variables(&self) -> Vec<crate::term::Var> {
        let mut vars = self.left.variables();
        for v in self.right.variables() {
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        vars
    }

    /// Evaluates the builtin under the given substitution, possibly extending
    /// it (for `is` and `=`).  Returns `Ok(true)` if the builtin succeeds,
    /// `Ok(false)` if it fails, and an error if an operand is insufficiently
    /// instantiated.
    pub fn eval(&self, theta: &mut Substitution) -> Result<bool, CoreError> {
        let left = theta.apply(&self.left);
        let right = theta.apply(&self.right);
        match self.op {
            BuiltinOp::Is => {
                let value = eval_arith(&right)?;
                Ok(unify_with(&left, &Term::Int(value), theta))
            }
            BuiltinOp::Eq => Ok(unify_with(&left, &right, theta)),
            BuiltinOp::Neq => {
                if !left.is_ground() || !right.is_ground() {
                    return Err(CoreError::Uninstantiated(format!(
                        "\\= requires ground operands, got {left} \\= {right}"
                    )));
                }
                Ok(left != right)
            }
            BuiltinOp::ArithEq => Ok(eval_arith(&left)? == eval_arith(&right)?),
            BuiltinOp::ArithNeq => Ok(eval_arith(&left)? != eval_arith(&right)?),
            BuiltinOp::Lt => Ok(eval_arith(&left)? < eval_arith(&right)?),
            BuiltinOp::Le => Ok(eval_arith(&left)? <= eval_arith(&right)?),
            BuiltinOp::Gt => Ok(eval_arith(&left)? > eval_arith(&right)?),
            BuiltinOp::Ge => Ok(eval_arith(&left)? >= eval_arith(&right)?),
        }
    }
}

impl fmt::Display for BuiltinCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.left, self.op.symbol(), self.right)
    }
}

/// Evaluates an arithmetic expression term to an integer.
///
/// Expressions are HiLog terms whose applications use the symbols `+`, `-`,
/// `*`, `div` and `mod` at arity 2 (and `-` at arity 1 for negation); leaves
/// must be integers.
pub fn eval_arith(term: &Term) -> Result<i64, CoreError> {
    match term {
        Term::Int(i) => Ok(*i),
        Term::Var(v) => Err(CoreError::Arithmetic(format!("unbound variable {v}"))),
        Term::Sym(s) => Err(CoreError::Arithmetic(format!("non-numeric symbol {s}"))),
        Term::App(name, args) => {
            let op = match &**name {
                Term::Sym(s) => s.name().to_string(),
                other => {
                    return Err(CoreError::Arithmetic(format!(
                        "non-symbol arithmetic operator {other}"
                    )))
                }
            };
            match (op.as_str(), args.len()) {
                ("-", 1) => {
                    let a = eval_arith(&args[0])?;
                    a.checked_neg()
                        .ok_or_else(|| CoreError::Arithmetic("negation overflow".into()))
                }
                ("+", 2) => checked(
                    eval_arith(&args[0])?,
                    eval_arith(&args[1])?,
                    i64::checked_add,
                    "+",
                ),
                ("-", 2) => checked(
                    eval_arith(&args[0])?,
                    eval_arith(&args[1])?,
                    i64::checked_sub,
                    "-",
                ),
                ("*", 2) => checked(
                    eval_arith(&args[0])?,
                    eval_arith(&args[1])?,
                    i64::checked_mul,
                    "*",
                ),
                ("div", 2) | ("/", 2) => {
                    let b = eval_arith(&args[1])?;
                    if b == 0 {
                        return Err(CoreError::Arithmetic("division by zero".into()));
                    }
                    Ok(eval_arith(&args[0])? / b)
                }
                ("mod", 2) => {
                    let b = eval_arith(&args[1])?;
                    if b == 0 {
                        return Err(CoreError::Arithmetic("mod by zero".into()));
                    }
                    Ok(eval_arith(&args[0])?.rem_euclid(b))
                }
                ("min", 2) => Ok(eval_arith(&args[0])?.min(eval_arith(&args[1])?)),
                ("max", 2) => Ok(eval_arith(&args[0])?.max(eval_arith(&args[1])?)),
                (other, n) => Err(CoreError::Arithmetic(format!(
                    "unknown arithmetic operator {other}/{n}"
                ))),
            }
        }
    }
}

fn checked(a: i64, b: i64, f: fn(i64, i64) -> Option<i64>, op: &str) -> Result<i64, CoreError> {
    f(a, b).ok_or_else(|| CoreError::Arithmetic(format!("overflow in {a} {op} {b}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Var;

    fn bin(op: &str, a: Term, b: Term) -> Term {
        Term::apps(op, vec![a, b])
    }

    #[test]
    fn arithmetic_evaluation() {
        // 2 * 47 (spokes per wheel times wheels, from the parts-explosion example)
        let e = bin("*", Term::int(2), Term::int(47));
        assert_eq!(eval_arith(&e).unwrap(), 94);
        let nested = bin("+", bin("*", Term::int(3), Term::int(4)), Term::int(5));
        assert_eq!(eval_arith(&nested).unwrap(), 17);
        assert_eq!(
            eval_arith(&Term::apps("-", vec![Term::int(7)])).unwrap(),
            -7
        );
        assert_eq!(
            eval_arith(&bin("div", Term::int(9), Term::int(2))).unwrap(),
            4
        );
        assert_eq!(
            eval_arith(&bin("mod", Term::int(9), Term::int(2))).unwrap(),
            1
        );
        assert_eq!(
            eval_arith(&bin("min", Term::int(9), Term::int(2))).unwrap(),
            2
        );
        assert_eq!(
            eval_arith(&bin("max", Term::int(9), Term::int(2))).unwrap(),
            9
        );
    }

    #[test]
    fn arithmetic_errors() {
        assert!(eval_arith(&Term::var("X")).is_err());
        assert!(eval_arith(&Term::sym("a")).is_err());
        assert!(eval_arith(&bin("div", Term::int(1), Term::int(0))).is_err());
        assert!(eval_arith(&bin("**", Term::int(1), Term::int(2))).is_err());
        assert!(eval_arith(&bin("*", Term::int(i64::MAX), Term::int(2))).is_err());
    }

    #[test]
    fn is_binds_result() {
        let call = BuiltinCall::new(
            BuiltinOp::Is,
            Term::var("N"),
            bin("*", Term::var("P"), Term::var("M")),
        );
        let mut theta = Substitution::from_bindings([
            (Var::new("P"), Term::int(2)),
            (Var::new("M"), Term::int(47)),
        ]);
        assert!(call.eval(&mut theta).unwrap());
        assert_eq!(theta.apply(&Term::var("N")), Term::int(94));
    }

    #[test]
    fn is_checks_when_bound() {
        let call = BuiltinCall::new(
            BuiltinOp::Is,
            Term::int(5),
            bin("+", Term::int(2), Term::int(3)),
        );
        assert!(call.eval(&mut Substitution::new()).unwrap());
        let bad = BuiltinCall::new(
            BuiltinOp::Is,
            Term::int(6),
            bin("+", Term::int(2), Term::int(3)),
        );
        assert!(!bad.eval(&mut Substitution::new()).unwrap());
    }

    #[test]
    fn comparisons() {
        let mut theta = Substitution::new();
        assert!(BuiltinCall::new(BuiltinOp::Lt, Term::int(1), Term::int(2))
            .eval(&mut theta)
            .unwrap());
        assert!(!BuiltinCall::new(BuiltinOp::Gt, Term::int(1), Term::int(2))
            .eval(&mut theta)
            .unwrap());
        assert!(BuiltinCall::new(BuiltinOp::Le, Term::int(2), Term::int(2))
            .eval(&mut theta)
            .unwrap());
        assert!(BuiltinCall::new(BuiltinOp::Ge, Term::int(2), Term::int(2))
            .eval(&mut theta)
            .unwrap());
        assert!(BuiltinCall::new(
            BuiltinOp::ArithEq,
            Term::int(2),
            bin("+", Term::int(1), Term::int(1))
        )
        .eval(&mut theta)
        .unwrap());
        assert!(
            BuiltinCall::new(BuiltinOp::ArithNeq, Term::int(3), Term::int(2))
                .eval(&mut theta)
                .unwrap()
        );
    }

    #[test]
    fn syntactic_equality_unifies() {
        let call = BuiltinCall::new(
            BuiltinOp::Eq,
            Term::var("X"),
            Term::apps("f", vec![Term::sym("a")]),
        );
        let mut theta = Substitution::new();
        assert!(call.eval(&mut theta).unwrap());
        assert_eq!(theta.apply(&Term::var("X")).to_string(), "f(a)");
    }

    #[test]
    fn disequality_requires_groundness() {
        let ok = BuiltinCall::new(BuiltinOp::Neq, Term::sym("a"), Term::sym("b"));
        assert!(ok.eval(&mut Substitution::new()).unwrap());
        let eq = BuiltinCall::new(BuiltinOp::Neq, Term::sym("a"), Term::sym("a"));
        assert!(!eq.eval(&mut Substitution::new()).unwrap());
        let unbound = BuiltinCall::new(BuiltinOp::Neq, Term::var("X"), Term::sym("a"));
        assert!(unbound.eval(&mut Substitution::new()).is_err());
    }

    #[test]
    fn display_and_variables() {
        let call = BuiltinCall::new(
            BuiltinOp::Is,
            Term::var("N"),
            bin("*", Term::var("P"), Term::var("M")),
        );
        assert_eq!(call.to_string(), "N is '*'(P, M)");
        assert_eq!(call.variables().len(), 3);
    }

    #[test]
    fn apply_substitutes_operands() {
        let call = BuiltinCall::new(BuiltinOp::Lt, Term::var("X"), Term::int(3));
        let theta = Substitution::from_bindings([(Var::new("X"), Term::int(1))]);
        assert_eq!(call.apply(&theta).left, Term::int(1));
    }
}
