//! Stable binary serialization of interned symbols, terms and rules.
//!
//! The durable storage layer (`hilog-store`) persists mutation batches and
//! whole-store snapshots.  Both kinds of file are built from the same
//! *payload* format defined here:
//!
//! * a **symbol table** — every distinct symbol name appears once, referenced
//!   by a dense `u32` id;
//! * a **term table** — every distinct term appears once, tag-encoded, with
//!   child references pointing strictly at lower ids (so a single forward
//!   pass reconstructs the table and structure sharing survives the
//!   round-trip: `App` nodes that shared an `Arc` on the way in share one on
//!   the way out);
//! * a **body** of primitive fields and term/rule references written by the
//!   caller.
//!
//! Ids are *payload-local*: nothing in a file depends on the process-global
//! symbol pool, so the pool can be garbage-collected (see
//! [`crate::symbol::gc_symbol_pool`]) without remapping anything on disk.
//! Integrity is the container's job — [`crc32`] is provided for WAL records
//! and snapshot files to frame payloads with a checksum.
//!
//! All multi-byte integers are little-endian and fixed-width; the format
//! favours a dumb, obviously-correct decoder over compactness.

use crate::builtin::{BuiltinCall, BuiltinOp};
use crate::literal::{Aggregate, AggregateFunc, Literal};
use crate::rule::Rule;
use crate::symbol::Symbol;
use crate::term::{Term, Var};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A decoding failure: truncated input, an unknown tag, or a dangling
/// table reference.  Payloads are checksummed by their containers, so in
/// practice this indicates a logic error or a corrupted-but-lucky file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

fn err<T>(msg: impl Into<String>) -> Result<T, CodecError> {
    Err(CodecError(msg.into()))
}

// Term-table entry tags.
const TAG_VAR: u8 = 0;
const TAG_SYM: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_APP: u8 = 3;

// Literal tags.
const LIT_POS: u8 = 0;
const LIT_NEG: u8 = 1;
const LIT_BUILTIN: u8 = 2;
const LIT_AGGREGATE: u8 = 3;

/// Computes the IEEE CRC-32 checksum of `data` (the polynomial used by
/// gzip/zip).  Containers frame every payload with this.
pub fn crc32(data: &[u8]) -> u32 {
    // Small table built on demand; the cost is dwarfed by I/O.
    fn table() -> &'static [u32; 256] {
        static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
        TABLE.get_or_init(|| {
            let mut table = [0u32; 256];
            for (i, entry) in table.iter_mut().enumerate() {
                let mut crc = i as u32;
                for _ in 0..8 {
                    crc = if crc & 1 != 0 {
                        (crc >> 1) ^ 0xEDB8_8320
                    } else {
                        crc >> 1
                    };
                }
                *entry = crc;
            }
            table
        })
    }
    let table = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = (crc >> 8) ^ table[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

/// Key for the writer's term-dedup map.  Terms are compared structurally,
/// which merges duplicated subtrees even when the in-memory `Arc`s differ;
/// the reader then rebuilds them shared.
type TermKey = Term;

/// Builds one payload: interns symbols and terms into payload-local tables
/// while the caller writes primitive fields and term/rule references into
/// the body.  [`PayloadWriter::finish`] lays out
/// `[symbol table][term table][body]`.
#[derive(Debug, Default)]
pub struct PayloadWriter {
    symbol_ids: HashMap<Symbol, u32>,
    symbol_table: Vec<Symbol>,
    term_ids: HashMap<TermKey, u32>,
    term_table: Vec<u8>,
    term_count: u32,
    body: Vec<u8>,
}

impl PayloadWriter {
    /// Creates an empty payload.
    pub fn new() -> Self {
        PayloadWriter::default()
    }

    fn intern_symbol(&mut self, symbol: &Symbol) -> u32 {
        if let Some(&id) = self.symbol_ids.get(symbol) {
            return id;
        }
        let id = self.symbol_table.len() as u32;
        self.symbol_ids.insert(symbol.clone(), id);
        self.symbol_table.push(symbol.clone());
        id
    }

    /// Interns `term` (and, recursively, its subterms) into the term table
    /// and returns its payload-local id.
    fn intern_term(&mut self, term: &Term) -> u32 {
        if let Some(&id) = self.term_ids.get(term) {
            return id;
        }
        // Children first: every reference in a table entry points at a
        // strictly smaller id, which is what lets the reader decode in one
        // forward pass.
        let entry = match term {
            Term::Var(var) => {
                let name = self.intern_symbol(&Symbol::new(var.name()));
                let mut entry = vec![TAG_VAR];
                entry.extend_from_slice(&name.to_le_bytes());
                entry.extend_from_slice(&var.generation().to_le_bytes());
                entry
            }
            Term::Sym(symbol) => {
                let sid = self.intern_symbol(symbol);
                let mut entry = vec![TAG_SYM];
                entry.extend_from_slice(&sid.to_le_bytes());
                entry
            }
            Term::Int(value) => {
                let mut entry = vec![TAG_INT];
                entry.extend_from_slice(&value.to_le_bytes());
                entry
            }
            Term::App(name, args) => {
                let name_id = self.intern_term(name);
                let arg_ids: Vec<u32> = args.iter().map(|a| self.intern_term(a)).collect();
                let mut entry = vec![TAG_APP];
                entry.extend_from_slice(&name_id.to_le_bytes());
                entry.extend_from_slice(&(arg_ids.len() as u32).to_le_bytes());
                for id in arg_ids {
                    entry.extend_from_slice(&id.to_le_bytes());
                }
                entry
            }
        };
        let id = self.term_count;
        self.term_count += 1;
        self.term_table.extend_from_slice(&entry);
        self.term_ids.insert(term.clone(), id);
        id
    }

    /// Writes a single byte into the body.
    pub fn write_u8(&mut self, value: u8) {
        self.body.push(value);
    }

    /// Writes a `u32` into the body.
    pub fn write_u32(&mut self, value: u32) {
        self.body.extend_from_slice(&value.to_le_bytes());
    }

    /// Writes a `u64` into the body.
    pub fn write_u64(&mut self, value: u64) {
        self.body.extend_from_slice(&value.to_le_bytes());
    }

    /// Writes an `i64` into the body.
    pub fn write_i64(&mut self, value: i64) {
        self.body.extend_from_slice(&value.to_le_bytes());
    }

    /// Writes a term reference into the body (interning the term).
    pub fn write_term(&mut self, term: &Term) {
        let id = self.intern_term(term);
        self.body.extend_from_slice(&id.to_le_bytes());
    }

    /// Writes a literal into the body.
    pub fn write_literal(&mut self, literal: &Literal) {
        match literal {
            Literal::Pos(atom) => {
                self.write_u8(LIT_POS);
                self.write_term(atom);
            }
            Literal::Neg(atom) => {
                self.write_u8(LIT_NEG);
                self.write_term(atom);
            }
            Literal::Builtin(call) => {
                self.write_u8(LIT_BUILTIN);
                self.write_u8(builtin_op_tag(call.op));
                self.write_term(&call.left);
                self.write_term(&call.right);
            }
            Literal::Aggregate(agg) => {
                self.write_u8(LIT_AGGREGATE);
                self.write_u8(aggregate_func_tag(agg.func));
                self.write_term(&agg.result);
                self.write_term(&agg.value);
                self.write_term(&agg.pattern);
            }
        }
    }

    /// Writes a rule (head term + literal list) into the body.
    pub fn write_rule(&mut self, rule: &Rule) {
        self.write_term(&rule.head);
        self.write_u32(rule.body.len() as u32);
        for literal in &rule.body {
            self.write_literal(literal);
        }
    }

    /// Lays the payload out as `[symbol table][term table][body]` bytes.
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.term_table.len() + self.body.len() + 64);
        out.extend_from_slice(&(self.symbol_table.len() as u32).to_le_bytes());
        for symbol in &self.symbol_table {
            let bytes = symbol.name().as_bytes();
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(bytes);
        }
        out.extend_from_slice(&self.term_count.to_le_bytes());
        out.extend_from_slice(&self.term_table);
        out.extend_from_slice(&self.body);
        out
    }
}

fn builtin_op_tag(op: BuiltinOp) -> u8 {
    match op {
        BuiltinOp::Is => 0,
        BuiltinOp::ArithEq => 1,
        BuiltinOp::ArithNeq => 2,
        BuiltinOp::Lt => 3,
        BuiltinOp::Le => 4,
        BuiltinOp::Gt => 5,
        BuiltinOp::Ge => 6,
        BuiltinOp::Eq => 7,
        BuiltinOp::Neq => 8,
    }
}

fn builtin_op_from_tag(tag: u8) -> Result<BuiltinOp, CodecError> {
    Ok(match tag {
        0 => BuiltinOp::Is,
        1 => BuiltinOp::ArithEq,
        2 => BuiltinOp::ArithNeq,
        3 => BuiltinOp::Lt,
        4 => BuiltinOp::Le,
        5 => BuiltinOp::Gt,
        6 => BuiltinOp::Ge,
        7 => BuiltinOp::Eq,
        8 => BuiltinOp::Neq,
        other => return err(format!("unknown builtin op tag {other}")),
    })
}

fn aggregate_func_tag(func: AggregateFunc) -> u8 {
    match func {
        AggregateFunc::Sum => 0,
        AggregateFunc::Count => 1,
        AggregateFunc::Min => 2,
        AggregateFunc::Max => 3,
    }
}

fn aggregate_func_from_tag(tag: u8) -> Result<AggregateFunc, CodecError> {
    Ok(match tag {
        0 => AggregateFunc::Sum,
        1 => AggregateFunc::Count,
        2 => AggregateFunc::Min,
        3 => AggregateFunc::Max,
        other => return err(format!("unknown aggregate func tag {other}")),
    })
}

/// Decodes one payload produced by [`PayloadWriter`]: the constructor parses
/// the symbol and term tables, then the caller reads the body back in the
/// order it was written.
#[derive(Debug)]
pub struct PayloadReader<'a> {
    data: &'a [u8],
    pos: usize,
    terms: Vec<Term>,
}

impl<'a> PayloadReader<'a> {
    /// Parses the symbol and term tables at the head of `data`, leaving the
    /// cursor at the start of the body.
    pub fn new(data: &'a [u8]) -> Result<Self, CodecError> {
        let mut reader = PayloadReader {
            data,
            pos: 0,
            terms: Vec::new(),
        };
        let symbol_count = reader.read_u32()? as usize;
        let mut symbols = Vec::with_capacity(symbol_count);
        for _ in 0..symbol_count {
            let len = reader.read_u32()? as usize;
            let bytes = reader.take(len)?;
            let name = std::str::from_utf8(bytes)
                .map_err(|_| CodecError("symbol name is not UTF-8".into()))?;
            symbols.push(Symbol::new(name));
        }
        let term_count = reader.read_u32()? as usize;
        reader.terms.reserve(term_count);
        for id in 0..term_count {
            let term = reader.read_term_entry(id, &symbols)?;
            reader.terms.push(term);
        }
        Ok(reader)
    }

    fn read_term_entry(&mut self, id: usize, symbols: &[Symbol]) -> Result<Term, CodecError> {
        let tag = self.read_u8()?;
        match tag {
            TAG_VAR => {
                let name = self.read_u32()? as usize;
                let generation = self.read_u32()?;
                let symbol = symbols
                    .get(name)
                    .ok_or_else(|| CodecError(format!("dangling symbol id {name}")))?;
                let var = Var::new(symbol.name()).with_generation(generation);
                Ok(Term::Var(var))
            }
            TAG_SYM => {
                let sid = self.read_u32()? as usize;
                let symbol = symbols
                    .get(sid)
                    .ok_or_else(|| CodecError(format!("dangling symbol id {sid}")))?;
                Ok(Term::Sym(symbol.clone()))
            }
            TAG_INT => Ok(Term::Int(self.read_i64()?)),
            TAG_APP => {
                let name_id = self.read_u32()? as usize;
                let argc = self.read_u32()? as usize;
                if name_id >= id {
                    return err(format!("term {id} references forward term {name_id}"));
                }
                let name = Arc::new(self.terms[name_id].clone());
                let mut args = Vec::with_capacity(argc);
                for _ in 0..argc {
                    let arg_id = self.read_u32()? as usize;
                    if arg_id >= id {
                        return err(format!("term {id} references forward term {arg_id}"));
                    }
                    args.push(self.terms[arg_id].clone());
                }
                Ok(Term::App(name, Arc::from(args)))
            }
            other => err(format!("unknown term tag {other}")),
        }
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], CodecError> {
        if self.data.len() - self.pos < len {
            return err("payload truncated");
        }
        let slice = &self.data[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }

    /// Reads one byte from the body.
    pub fn read_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32` from the body.
    pub fn read_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64` from the body.
    pub fn read_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `i64` from the body.
    pub fn read_i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a term reference from the body.
    pub fn read_term(&mut self) -> Result<Term, CodecError> {
        let id = self.read_u32()? as usize;
        self.terms
            .get(id)
            .cloned()
            .ok_or_else(|| CodecError(format!("dangling term id {id}")))
    }

    /// Reads a literal from the body.
    pub fn read_literal(&mut self) -> Result<Literal, CodecError> {
        match self.read_u8()? {
            LIT_POS => Ok(Literal::Pos(self.read_term()?)),
            LIT_NEG => Ok(Literal::Neg(self.read_term()?)),
            LIT_BUILTIN => {
                let op = builtin_op_from_tag(self.read_u8()?)?;
                let left = self.read_term()?;
                let right = self.read_term()?;
                Ok(Literal::Builtin(BuiltinCall { op, left, right }))
            }
            LIT_AGGREGATE => {
                let func = aggregate_func_from_tag(self.read_u8()?)?;
                let result = self.read_term()?;
                let value = self.read_term()?;
                let pattern = self.read_term()?;
                Ok(Literal::Aggregate(Aggregate {
                    func,
                    result,
                    value,
                    pattern,
                }))
            }
            other => err(format!("unknown literal tag {other}")),
        }
    }

    /// Reads a rule from the body.
    pub fn read_rule(&mut self) -> Result<Rule, CodecError> {
        let head = self.read_term()?;
        let len = self.read_u32()? as usize;
        let mut body = Vec::with_capacity(len);
        for _ in 0..len {
            body.push(self.read_literal()?);
        }
        Ok(Rule { head, body })
    }

    /// Bytes of body left to read.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// `true` once the whole body has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app(name: &str, args: Vec<Term>) -> Term {
        Term::App(Arc::new(Term::Sym(Symbol::new(name))), Arc::from(args))
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_terms() {
        let terms = vec![
            Term::Sym(Symbol::new("a")),
            Term::Int(-42),
            Term::Var(Var::new("X")),
            Term::Var(Var::new("X").with_generation(3)),
            app(
                "edge",
                vec![Term::Sym(Symbol::new("a")), Term::Sym(Symbol::new("b"))],
            ),
            // Higher-order: a term in predicate position.
            Term::App(
                Arc::new(app("tc", vec![Term::Sym(Symbol::new("edge"))])),
                Arc::from(vec![Term::Var(Var::new("X")), Term::Int(7)]),
            ),
        ];
        let mut writer = PayloadWriter::new();
        writer.write_u32(terms.len() as u32);
        for term in &terms {
            writer.write_term(term);
        }
        let bytes = writer.finish();
        let mut reader = PayloadReader::new(&bytes).unwrap();
        let count = reader.read_u32().unwrap() as usize;
        let decoded: Vec<Term> = (0..count).map(|_| reader.read_term().unwrap()).collect();
        assert_eq!(decoded, terms);
        assert!(reader.is_empty());
    }

    #[test]
    fn roundtrip_preserves_structure_sharing() {
        let shared = app("f", vec![Term::Int(1), Term::Int(2)]);
        let outer = app("g", vec![shared.clone(), shared.clone()]);
        let mut writer = PayloadWriter::new();
        writer.write_term(&outer);
        let bytes = writer.finish();
        let mut reader = PayloadReader::new(&bytes).unwrap();
        let decoded = reader.read_term().unwrap();
        assert_eq!(decoded, outer);
        // Both children decode to structurally equal terms; the term table
        // stores the shared subtree once (one entry for f, 1, 2, f(1,2), g
        // node = 6 entries total incl. symbols' Sym terms).
        match decoded {
            Term::App(_, args) => assert_eq!(args[0], args[1]),
            other => panic!("expected App, got {other:?}"),
        }
    }

    #[test]
    fn roundtrip_rules_all_literal_kinds() {
        // Build a rule exercising every literal variant by hand.
        let head = app(
            "p",
            vec![Term::Var(Var::new("X")), Term::Var(Var::new("S"))],
        );
        let rule = Rule {
            head,
            body: vec![
                Literal::Pos(app("q", vec![Term::Var(Var::new("X"))])),
                Literal::Neg(app("r", vec![Term::Var(Var::new("X"))])),
                Literal::Builtin(BuiltinCall {
                    op: BuiltinOp::Lt,
                    left: Term::Var(Var::new("X")),
                    right: Term::Int(10),
                }),
                Literal::Aggregate(Aggregate {
                    func: AggregateFunc::Sum,
                    result: Term::Var(Var::new("S")),
                    value: Term::Var(Var::new("V")),
                    pattern: app(
                        "cost",
                        vec![Term::Var(Var::new("X")), Term::Var(Var::new("V"))],
                    ),
                }),
            ],
        };
        let mut writer = PayloadWriter::new();
        writer.write_rule(&rule);
        let bytes = writer.finish();
        let mut reader = PayloadReader::new(&bytes).unwrap();
        assert_eq!(reader.read_rule().unwrap(), rule);
        assert!(reader.is_empty());
    }

    #[test]
    fn all_builtin_ops_roundtrip() {
        for op in [
            BuiltinOp::Is,
            BuiltinOp::ArithEq,
            BuiltinOp::ArithNeq,
            BuiltinOp::Lt,
            BuiltinOp::Le,
            BuiltinOp::Gt,
            BuiltinOp::Ge,
            BuiltinOp::Eq,
            BuiltinOp::Neq,
        ] {
            assert_eq!(builtin_op_from_tag(builtin_op_tag(op)).unwrap(), op);
        }
        for func in [
            AggregateFunc::Sum,
            AggregateFunc::Count,
            AggregateFunc::Min,
            AggregateFunc::Max,
        ] {
            assert_eq!(
                aggregate_func_from_tag(aggregate_func_tag(func)).unwrap(),
                func
            );
        }
    }

    #[test]
    fn truncated_payload_is_an_error_not_a_panic() {
        let mut writer = PayloadWriter::new();
        writer.write_term(&app("edge", vec![Term::Int(1), Term::Int(2)]));
        let bytes = writer.finish();
        for cut in 0..bytes.len() {
            // Every prefix either fails to parse or fails to read the term;
            // none may panic.
            if let Ok(mut reader) = PayloadReader::new(&bytes[..cut]) {
                let _ = reader.read_term();
            }
        }
    }

    #[test]
    fn unknown_tags_are_rejected() {
        // Symbol table: 0 symbols, term table: 1 term with bogus tag 9.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(9);
        assert!(PayloadReader::new(&bytes).is_err());
    }
}
