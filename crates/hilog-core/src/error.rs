//! Error types shared by the core crate.

use std::fmt;

/// Errors produced by core-level operations (arithmetic evaluation,
/// transformation preconditions, and so on).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// An arithmetic expression could not be evaluated to an integer
    /// (unbound variable, non-numeric leaf, unknown operator, overflow or
    /// division by zero).
    Arithmetic(String),
    /// A builtin literal was used with insufficiently instantiated arguments.
    Uninstantiated(String),
    /// A transformation's precondition was violated (e.g. the universal
    /// relation transformation applied to a program containing reserved
    /// symbols).
    Precondition(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Arithmetic(msg) => write!(f, "arithmetic error: {msg}"),
            CoreError::Uninstantiated(msg) => write!(f, "uninstantiated builtin: {msg}"),
            CoreError::Precondition(msg) => write!(f, "precondition violated: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CoreError::Arithmetic("x".into())
            .to_string()
            .contains("arithmetic"));
        assert!(CoreError::Uninstantiated("x".into())
            .to_string()
            .contains("uninstantiated"));
        assert!(CoreError::Precondition("x".into())
            .to_string()
            .contains("precondition"));
    }
}
