//! Herbrand universe machinery.
//!
//! Section 2 of the paper: "The Herbrand universe of a program depends only
//! upon the symbols appearing in the program and not on their arities. ...
//! From those symbols, all possible terms of all arities can be constructed.
//! The Herbrand universe will be a countably infinite set in general."  In
//! HiLog the Herbrand base and universe coincide.
//!
//! Because the full HiLog universe is infinite whenever at least one symbol
//! exists, this module provides a *bounded* enumerator ([`HerbrandUniverse`])
//! parameterised by [`HerbrandBounds`] (maximum term depth, application
//! arity, and total term count).  The engine uses bounded enumeration when a
//! definition must be exercised literally (e.g. checking that "new" atoms are
//! false under growing bounds); practical evaluation of (strongly)
//! range-restricted programs instead uses relevant instantiation and never
//! materialises the universe.
//!
//! The module also extracts the vocabulary split of a *normal* program
//! (predicate symbols vs constant / function symbols), needed to build the
//! conventional first-order Herbrand universe that Theorems 4.1 and 4.2
//! compare against.

use crate::literal::Literal;
use crate::program::Program;
use crate::symbol::Symbol;
use crate::term::Term;
use std::collections::BTreeSet;

/// The symbols (and integer constants) of a program, together with the
/// normal-program role split.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Vocabulary {
    /// Every symbol appearing in the program.
    pub symbols: BTreeSet<Symbol>,
    /// Integer constants appearing in the program.
    pub integers: BTreeSet<i64>,
    /// Symbols that occur in predicate-name position (outermost functor of a
    /// head or body atom).  For a normal program these are its predicate
    /// symbols.
    pub predicate_symbols: BTreeSet<Symbol>,
    /// Symbols that occur inside argument positions (constants and function
    /// symbols of a normal program).
    pub argument_symbols: BTreeSet<Symbol>,
    /// Symbols that occur as the functor of a non-atomic argument term
    /// (function symbols of a normal program).
    pub function_symbols: BTreeSet<Symbol>,
}

impl Vocabulary {
    /// Extracts the vocabulary of a program.
    pub fn of_program(program: &Program) -> Vocabulary {
        let mut vocab = Vocabulary {
            symbols: program.symbols(),
            integers: program.integers(),
            ..Vocabulary::default()
        };
        let record_atom = |atom: &Term, vocab: &mut Vocabulary| {
            // The outermost functor of the predicate name.
            if let Term::Sym(s) = atom.outermost_functor() {
                vocab.predicate_symbols.insert(s.clone());
            }
            // Symbols inside the name below the outermost functor also count
            // as argument symbols (e.g. `e` in `tc(e)(a,b)`).
            let mut name = atom.name();
            while let Term::App(inner, args) = name {
                for a in args.iter() {
                    Self::record_argument(a, vocab);
                }
                name = inner;
            }
            for a in atom.args() {
                Self::record_argument(a, vocab);
            }
        };
        for rule in program.iter() {
            record_atom(&rule.head, &mut vocab);
            for lit in &rule.body {
                match lit {
                    Literal::Pos(a) | Literal::Neg(a) => record_atom(a, &mut vocab),
                    Literal::Builtin(b) => {
                        Self::record_argument(&b.left, &mut vocab);
                        Self::record_argument(&b.right, &mut vocab);
                    }
                    Literal::Aggregate(a) => {
                        Self::record_argument(&a.result, &mut vocab);
                        Self::record_argument(&a.value, &mut vocab);
                        record_atom(&a.pattern, &mut vocab);
                    }
                }
            }
        }
        vocab
    }

    fn record_argument(term: &Term, vocab: &mut Vocabulary) {
        match term {
            Term::Sym(s) => {
                vocab.argument_symbols.insert(s.clone());
            }
            Term::Int(_) | Term::Var(_) => {}
            Term::App(name, args) => {
                if let Term::Sym(s) = &**name {
                    vocab.function_symbols.insert(s.clone());
                    vocab.argument_symbols.insert(s.clone());
                }
                for a in args.iter() {
                    Self::record_argument(a, vocab);
                }
            }
        }
    }

    /// The constants of the normal Herbrand universe: argument symbols that
    /// are not used as function symbols, plus integer constants.
    ///
    /// Footnote 3 of the paper notes that a normal program with *no*
    /// constants behaves anomalously (the universal query problem); callers
    /// may wish to add a padding constant in that case, as Van Gelder, Ross
    /// and Schlipf suggest.
    pub fn normal_constants(&self) -> Vec<Term> {
        let mut out: Vec<Term> = self
            .argument_symbols
            .iter()
            .filter(|s| !self.function_symbols.contains(*s))
            .map(|s| Term::Sym(s.clone()))
            .collect();
        out.extend(self.integers.iter().map(|i| Term::Int(*i)));
        out
    }

    /// All symbols as leaf terms (the generators of the HiLog universe),
    /// including integer constants.
    pub fn hilog_leaves(&self) -> Vec<Term> {
        let mut out: Vec<Term> = self.symbols.iter().map(|s| Term::Sym(s.clone())).collect();
        out.extend(self.integers.iter().map(|i| Term::Int(*i)));
        out
    }

    /// Returns `true` if the symbol appears in the vocabulary.
    pub fn contains(&self, symbol: &Symbol) -> bool {
        self.symbols.contains(symbol)
    }

    /// Returns `true` if the ground term is *generated by* this vocabulary:
    /// every symbol occurring in it belongs to the vocabulary.  This is the
    /// notion used throughout Section 5 ("atoms with name generated by P").
    pub fn generates(&self, term: &Term) -> bool {
        term.symbols().iter().all(|s| self.symbols.contains(s))
    }
}

/// Bounds for enumerating a finite slice of the (infinite) HiLog Herbrand
/// universe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HerbrandBounds {
    /// Maximum term depth (leaves have depth 1).
    pub max_depth: usize,
    /// Maximum arity of generated applications.
    pub max_arity: usize,
    /// Hard cap on the number of generated terms.
    pub max_terms: usize,
}

impl Default for HerbrandBounds {
    fn default() -> Self {
        HerbrandBounds {
            max_depth: 2,
            max_arity: 2,
            max_terms: 2_000,
        }
    }
}

impl HerbrandBounds {
    /// Convenience constructor.
    pub fn new(max_depth: usize, max_arity: usize, max_terms: usize) -> Self {
        HerbrandBounds {
            max_depth,
            max_arity,
            max_terms,
        }
    }
}

/// A finite, enumerated slice of a Herbrand universe.
#[derive(Debug, Clone)]
pub struct HerbrandUniverse {
    terms: Vec<Term>,
    bounds: HerbrandBounds,
    truncated: bool,
}

impl HerbrandUniverse {
    /// Enumerates the HiLog Herbrand universe generated by the program's
    /// symbols, up to the given bounds.  Terms are produced in
    /// depth-then-size order, starting from the leaf symbols.
    ///
    /// The enumeration follows Definition 2.1 exactly: at each round, every
    /// already-generated term may serve both as a *name* and as an
    /// *argument*, and applications of every arity `0..=max_arity` are
    /// produced.
    pub fn hilog(program: &Program, bounds: HerbrandBounds) -> HerbrandUniverse {
        let vocab = Vocabulary::of_program(program);
        Self::hilog_from_leaves(vocab.hilog_leaves(), bounds)
    }

    /// Enumerates the HiLog universe generated by an explicit leaf set.
    pub fn hilog_from_leaves(leaves: Vec<Term>, bounds: HerbrandBounds) -> HerbrandUniverse {
        let mut terms: Vec<Term> = Vec::new();
        let mut seen: BTreeSet<Term> = BTreeSet::new();
        let mut truncated = false;
        for leaf in leaves {
            if seen.insert(leaf.clone()) {
                terms.push(leaf);
            }
        }
        let mut frontier: Vec<Term> = terms.clone();
        for _depth in 1..bounds.max_depth {
            if terms.len() >= bounds.max_terms {
                truncated = true;
                break;
            }
            let mut next = Vec::new();
            // Names and arguments range over everything generated so far; to
            // keep the enumeration finite per round we pair the new frontier
            // against the full set.
            let pool = terms.clone();
            'outer: for name in pool.iter() {
                for arity in 0..=bounds.max_arity {
                    let mut idx = vec![0usize; arity];
                    loop {
                        let args: Vec<Term> = idx.iter().map(|&i| pool[i].clone()).collect();
                        let t = Term::app(name.clone(), args);
                        if seen.insert(t.clone()) {
                            next.push(t.clone());
                            terms.push(t);
                            if terms.len() >= bounds.max_terms {
                                truncated = true;
                                break 'outer;
                            }
                        }
                        // Advance the mixed-radix counter.
                        let mut k = 0;
                        loop {
                            if k == arity {
                                break;
                            }
                            idx[k] += 1;
                            if idx[k] < pool.len() {
                                break;
                            }
                            idx[k] = 0;
                            k += 1;
                        }
                        if k == arity {
                            break;
                        }
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        let _ = frontier;
        HerbrandUniverse {
            terms,
            bounds,
            truncated,
        }
    }

    /// Enumerates the *normal* Herbrand universe of a program: constants plus
    /// (if function symbols are present) nested first-order terms up to the
    /// depth bound.
    pub fn normal(program: &Program, bounds: HerbrandBounds) -> HerbrandUniverse {
        let vocab = Vocabulary::of_program(program);
        let constants = vocab.normal_constants();
        let functions: Vec<Symbol> = vocab.function_symbols.iter().cloned().collect();
        let mut terms: Vec<Term> = Vec::new();
        let mut seen: BTreeSet<Term> = BTreeSet::new();
        let mut truncated = false;
        for c in constants {
            if seen.insert(c.clone()) {
                terms.push(c);
            }
        }
        if !functions.is_empty() {
            for _depth in 1..bounds.max_depth {
                if terms.len() >= bounds.max_terms {
                    truncated = true;
                    break;
                }
                let pool = terms.clone();
                let mut added = false;
                'outer: for f in &functions {
                    for arity in 1..=bounds.max_arity {
                        let mut idx = vec![0usize; arity];
                        loop {
                            let args: Vec<Term> = idx.iter().map(|&i| pool[i].clone()).collect();
                            let t = Term::apps(f.name(), args);
                            if seen.insert(t.clone()) {
                                terms.push(t);
                                added = true;
                                if terms.len() >= bounds.max_terms {
                                    truncated = true;
                                    break 'outer;
                                }
                            }
                            let mut k = 0;
                            loop {
                                if k == arity {
                                    break;
                                }
                                idx[k] += 1;
                                if idx[k] < pool.len() {
                                    break;
                                }
                                idx[k] = 0;
                                k += 1;
                            }
                            if k == arity {
                                break;
                            }
                        }
                    }
                }
                if !added {
                    break;
                }
            }
        }
        HerbrandUniverse {
            terms,
            bounds,
            truncated,
        }
    }

    /// The enumerated terms.
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// Number of enumerated terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` if the universe slice is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The bounds used for enumeration.
    pub fn bounds(&self) -> HerbrandBounds {
        self.bounds
    }

    /// Returns `true` if enumeration stopped because `max_terms` was reached
    /// (so the slice is a strict prefix of the full universe at these depth /
    /// arity bounds).
    pub fn was_truncated(&self) -> bool {
        self.truncated
    }

    /// Returns `true` if the term belongs to the enumerated slice.
    pub fn contains(&self, term: &Term) -> bool {
        self.terms.contains(term)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::Rule;

    fn example_4_1() -> Program {
        // p :- not q(X).   q(a).
        Program::from_rules(vec![
            Rule::new(
                Term::sym("p"),
                vec![Literal::neg(Term::apps("q", vec![Term::var("X")]))],
            ),
            Rule::fact(Term::apps("q", vec![Term::sym("a")])),
        ])
    }

    #[test]
    fn vocabulary_role_split() {
        let vocab = Vocabulary::of_program(&example_4_1());
        let preds: Vec<&str> = vocab.predicate_symbols.iter().map(|s| s.name()).collect();
        let args: Vec<&str> = vocab.argument_symbols.iter().map(|s| s.name()).collect();
        assert_eq!(preds, vec!["p", "q"]);
        assert_eq!(args, vec!["a"]);
        assert!(vocab.function_symbols.is_empty());
    }

    #[test]
    fn normal_universe_of_example_4_1_is_singleton() {
        // "The normal Herbrand universe is the singleton set {a}" (Example 4.1).
        let u = HerbrandUniverse::normal(&example_4_1(), HerbrandBounds::default());
        assert_eq!(u.len(), 1);
        assert!(u.contains(&Term::sym("a")));
    }

    #[test]
    fn hilog_universe_contains_non_normal_terms() {
        // In the HiLog case there are other substitutions, such as X/p or
        // X/a(a, p) (Example 4.1).
        let u = HerbrandUniverse::hilog(&example_4_1(), HerbrandBounds::new(2, 2, 10_000));
        assert!(u.contains(&Term::sym("p")));
        assert!(u.contains(&Term::sym("a")));
        assert!(u.contains(&Term::apps("a", vec![Term::sym("a"), Term::sym("p")])));
        // p used as a name applied to q:
        assert!(u.contains(&Term::apps("p", vec![Term::sym("q")])));
    }

    #[test]
    fn hilog_universe_grows_with_depth() {
        let p = example_4_1();
        let small = HerbrandUniverse::hilog(&p, HerbrandBounds::new(1, 2, 10_000));
        let medium = HerbrandUniverse::hilog(&p, HerbrandBounds::new(2, 1, 10_000));
        assert_eq!(small.len(), 3); // p, q, a
        assert!(medium.len() > small.len());
        for t in small.terms() {
            assert!(medium.contains(t));
        }
    }

    #[test]
    fn hilog_universe_respects_term_cap() {
        let u = HerbrandUniverse::hilog(&example_4_1(), HerbrandBounds::new(4, 3, 50));
        assert!(u.len() <= 50);
        assert!(u.was_truncated());
    }

    #[test]
    fn normal_universe_with_function_symbols_nests() {
        // p(f(a)) gives constants {a} and function {f}; depth 3 yields f(f(a)).
        let p = Program::from_rules(vec![Rule::fact(Term::apps(
            "p",
            vec![Term::apps("f", vec![Term::sym("a")])],
        ))]);
        let u = HerbrandUniverse::normal(&p, HerbrandBounds::new(3, 1, 1000));
        assert!(u.contains(&Term::sym("a")));
        assert!(u.contains(&Term::apps("f", vec![Term::sym("a")])));
        assert!(u.contains(&Term::apps(
            "f",
            vec![Term::apps("f", vec![Term::sym("a")])]
        )));
    }

    #[test]
    fn generates_checks_symbol_closure() {
        let vocab = Vocabulary::of_program(&example_4_1());
        assert!(vocab.generates(&Term::apps("q", vec![Term::sym("a")])));
        assert!(!vocab.generates(&Term::apps("q", vec![Term::sym("zebra")])));
    }

    #[test]
    fn zero_ary_applications_are_enumerated() {
        let u = HerbrandUniverse::hilog(&example_4_1(), HerbrandBounds::new(2, 0, 1000));
        // Depth-2, arity-0 terms are the p()-style applications of footnote 1.
        assert!(u.contains(&Term::apps("p", vec![])));
    }

    #[test]
    fn integers_become_constants() {
        let p = Program::from_rules(vec![Rule::fact(Term::apps(
            "part",
            vec![Term::sym("wheel"), Term::int(2)],
        ))]);
        let vocab = Vocabulary::of_program(&p);
        assert!(vocab.normal_constants().contains(&Term::int(2)));
        let u = HerbrandUniverse::hilog(&p, HerbrandBounds::new(1, 1, 100));
        assert!(u.contains(&Term::int(2)));
    }
}
