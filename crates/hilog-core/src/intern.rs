//! Interning of ground terms into stable, dense [`AtomId`]s.
//!
//! The bottom-up evaluation hot path (the join machinery of the engine's
//! `AtomStore`) wants O(1) identity for ground atoms: posting lists of an
//! argument index should hold machine words, not deep terms, and membership
//! should be one hash probe.  A [`TermInterner`] assigns each distinct term
//! it sees a stable `u32`-sized [`AtomId`]; ids are never reused or
//! invalidated, so index structures built on top of them survive arbitrary
//! insert/remove churn (liveness is the owner's concern — the interner only
//! guarantees the id ↔ term bijection).
//!
//! This is the id layer under the engine's argument-indexed `AtomStore`
//! (`hilog_engine::horn`); the engine's ground programs keep their own
//! program-local dense-id table (`hilog_engine::ground::AtomTable`).

use crate::term::Term;
use std::collections::HashMap;

/// A stable, store-local identifier for an interned term.
///
/// Ids are dense (`0..len`) and never reused; two ids from the *same*
/// interner are equal exactly when their terms are structurally equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AtomId(u32);

impl AtomId {
    /// The id as a dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Hash-consing table from terms to stable [`AtomId`]s.
///
/// ```
/// use hilog_core::{intern::TermInterner, Term};
/// let mut interner = TermInterner::new();
/// let a = interner.intern(&Term::apps("move", vec![Term::sym("a"), Term::sym("b")]));
/// let b = interner.intern(&Term::apps("move", vec![Term::sym("a"), Term::sym("b")]));
/// assert_eq!(a, b);
/// assert_eq!(interner.resolve(a).to_string(), "move(a, b)");
/// ```
#[derive(Debug, Clone, Default)]
pub struct TermInterner {
    terms: Vec<Term>,
    ids: HashMap<Term, AtomId>,
}

impl TermInterner {
    /// An empty interner.
    pub fn new() -> Self {
        TermInterner::default()
    }

    /// Interns a term, returning its stable id.  The term is cloned only on
    /// first sight (an O(1) `Arc` bump).
    pub fn intern(&mut self, term: &Term) -> AtomId {
        if let Some(&id) = self.ids.get(term) {
            return id;
        }
        let id =
            AtomId(u32::try_from(self.terms.len()).expect("more than u32::MAX interned atoms"));
        self.terms.push(term.clone());
        self.ids.insert(term.clone(), id);
        id
    }

    /// Looks a term's id up without interning it.
    pub fn get(&self, term: &Term) -> Option<AtomId> {
        self.ids.get(term).copied()
    }

    /// The term an id stands for.
    pub fn resolve(&self, id: AtomId) -> &Term {
        &self.terms[id.index()]
    }

    /// Number of distinct interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates over `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (AtomId, &Term)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (AtomId(i as u32), t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_stable_and_deduplicated() {
        let mut interner = TermInterner::new();
        let p = Term::apps("p", vec![Term::sym("a")]);
        let q = Term::apps("q", vec![Term::sym("b")]);
        let id_p = interner.intern(&p);
        let id_q = interner.intern(&q);
        assert_ne!(id_p, id_q);
        assert_eq!(interner.intern(&p), id_p);
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.resolve(id_q), &q);
        assert_eq!(interner.get(&p), Some(id_p));
        assert_eq!(interner.get(&Term::sym("absent")), None);
    }

    #[test]
    fn iteration_is_in_id_order() {
        let mut interner = TermInterner::new();
        let ids: Vec<AtomId> = ["a", "b", "c"]
            .iter()
            .map(|s| interner.intern(&Term::sym(s)))
            .collect();
        let seen: Vec<AtomId> = interner.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, seen);
        assert_eq!(ids[2].index(), 2);
    }
}
