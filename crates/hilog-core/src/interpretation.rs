//! Three-valued Herbrand interpretations and finitely represented models.
//!
//! The paper works with *partial interpretations*: consistent sets of ground
//! literals (Definitions 2.2 and 3.2).  An atom is **true** if it appears
//! positively, **false** if it appears negatively, and **undefined**
//! otherwise.  Because both the normal and (especially) the HiLog Herbrand
//! bases can be infinite, computed well-founded / stable models are
//! represented finitely by a [`Model`]: an explicit *base* of relevant atoms
//! together with its true and undefined subsets; every atom outside the base
//! is false by convention (this matches the semantics of (strongly)
//! range-restricted programs, where Observation 5.1 / Lemma 6.3 guarantee
//! that atoms outside the relevant set are false).
//!
//! The module also implements the `extends` and `conservatively extends`
//! relations of Definition 2.4, which Theorems 4.1, 4.2, 5.3 and 5.4 are
//! stated in terms of.

use crate::term::Term;
use std::collections::BTreeSet;
use std::fmt;

/// The three truth values of the well-founded semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Truth {
    /// The atom is true.
    True,
    /// The atom is false.
    False,
    /// The atom is neither true nor false.
    Undefined,
}

impl Truth {
    /// Returns `true` for [`Truth::True`].
    pub fn is_true(self) -> bool {
        self == Truth::True
    }
    /// Returns `true` for [`Truth::False`].
    pub fn is_false(self) -> bool {
        self == Truth::False
    }
    /// Returns `true` for [`Truth::Undefined`].
    pub fn is_undefined(self) -> bool {
        self == Truth::Undefined
    }
}

impl fmt::Display for Truth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Truth::True => write!(f, "true"),
            Truth::False => write!(f, "false"),
            Truth::Undefined => write!(f, "undefined"),
        }
    }
}

/// A partial interpretation: a consistent set of ground literals, stored as
/// the set of true atoms and the set of false atoms.
///
/// Atoms in neither set are undefined.  Unlike [`Model`], an
/// `Interpretation` carries no notion of a base: it is exactly the
/// "consistent set of ground literals" of Definition 3.2.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Interpretation {
    true_atoms: BTreeSet<Term>,
    false_atoms: BTreeSet<Term>,
}

impl Interpretation {
    /// The empty interpretation (everything undefined).
    pub fn new() -> Self {
        Interpretation::default()
    }

    /// Marks an atom true.  Returns `false` if this would make the
    /// interpretation inconsistent (the atom is already false).
    pub fn insert_true(&mut self, atom: Term) -> bool {
        if self.false_atoms.contains(&atom) {
            return false;
        }
        self.true_atoms.insert(atom);
        true
    }

    /// Marks an atom false.  Returns `false` if this would make the
    /// interpretation inconsistent (the atom is already true).
    pub fn insert_false(&mut self, atom: Term) -> bool {
        if self.true_atoms.contains(&atom) {
            return false;
        }
        self.false_atoms.insert(atom);
        true
    }

    /// The truth value of an atom.
    pub fn truth(&self, atom: &Term) -> Truth {
        if self.true_atoms.contains(atom) {
            Truth::True
        } else if self.false_atoms.contains(atom) {
            Truth::False
        } else {
            Truth::Undefined
        }
    }

    /// The set of true atoms.
    pub fn true_atoms(&self) -> &BTreeSet<Term> {
        &self.true_atoms
    }

    /// The set of false atoms.
    pub fn false_atoms(&self) -> &BTreeSet<Term> {
        &self.false_atoms
    }

    /// Total number of literals (true + false).
    pub fn len(&self) -> usize {
        self.true_atoms.len() + self.false_atoms.len()
    }

    /// Returns `true` if no literal is present.
    pub fn is_empty(&self) -> bool {
        self.true_atoms.is_empty() && self.false_atoms.is_empty()
    }

    /// Returns `true` if no atom is both true and false (Definition 3.1).
    pub fn is_consistent(&self) -> bool {
        self.true_atoms.is_disjoint(&self.false_atoms)
    }

    /// Merges another interpretation into this one; returns `false` if the
    /// union would be inconsistent (in which case `self` is left unchanged).
    pub fn merge(&mut self, other: &Interpretation) -> bool {
        if other
            .true_atoms
            .iter()
            .any(|a| self.false_atoms.contains(a))
            || other
                .false_atoms
                .iter()
                .any(|a| self.true_atoms.contains(a))
        {
            return false;
        }
        self.true_atoms.extend(other.true_atoms.iter().cloned());
        self.false_atoms.extend(other.false_atoms.iter().cloned());
        true
    }
}

impl fmt::Display for Interpretation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for a in &self.true_atoms {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{a}")?;
        }
        for a in &self.false_atoms {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "not {a}")?;
        }
        write!(f, "}}")
    }
}

/// A finitely represented three-valued model.
///
/// `base` is the set of *relevant* ground atoms (for computed models: every
/// atom occurring in the relevant instantiation of the program).  Atoms in
/// `base` are true, undefined or false according to `true_atoms` / `undefined`
/// membership; atoms outside `base` are **false** (the closed-world
/// convention justified by Observation 5.1 and Lemma 6.3 for the program
/// classes this library evaluates).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Model {
    base: BTreeSet<Term>,
    true_atoms: BTreeSet<Term>,
    undefined: BTreeSet<Term>,
}

impl Model {
    /// Creates a model.  Atoms listed as true or undefined are added to the
    /// base automatically.
    pub fn new(
        base: impl IntoIterator<Item = Term>,
        true_atoms: impl IntoIterator<Item = Term>,
        undefined: impl IntoIterator<Item = Term>,
    ) -> Self {
        let mut base: BTreeSet<Term> = base.into_iter().collect();
        let true_atoms: BTreeSet<Term> = true_atoms.into_iter().collect();
        let undefined: BTreeSet<Term> = undefined.into_iter().collect();
        base.extend(true_atoms.iter().cloned());
        base.extend(undefined.iter().cloned());
        Model {
            base,
            true_atoms,
            undefined,
        }
    }

    /// The empty model (empty base; every atom false).
    pub fn empty() -> Self {
        Model::default()
    }

    /// A model consisting only of true facts (total, everything else false).
    pub fn from_true_atoms(atoms: impl IntoIterator<Item = Term>) -> Self {
        let true_atoms: BTreeSet<Term> = atoms.into_iter().collect();
        Model {
            base: true_atoms.clone(),
            true_atoms,
            undefined: BTreeSet::new(),
        }
    }

    /// The truth value of a ground atom under this model.
    pub fn truth(&self, atom: &Term) -> Truth {
        if self.true_atoms.contains(atom) {
            Truth::True
        } else if self.undefined.contains(atom) {
            Truth::Undefined
        } else {
            Truth::False
        }
    }

    /// Returns `true` if the atom is true.
    pub fn is_true(&self, atom: &Term) -> bool {
        self.true_atoms.contains(atom)
    }

    /// Returns `true` if the atom is false.
    pub fn is_false(&self, atom: &Term) -> bool {
        !self.true_atoms.contains(atom) && !self.undefined.contains(atom)
    }

    /// Returns `true` if the atom is undefined.
    pub fn is_undefined(&self, atom: &Term) -> bool {
        self.undefined.contains(atom)
    }

    /// The base of relevant atoms.
    pub fn base(&self) -> &BTreeSet<Term> {
        &self.base
    }

    /// The base atoms that could match a (possibly partially instantiated)
    /// atom pattern.
    ///
    /// The base is ordered with application terms keyed by their predicate
    /// name first, so all atoms sharing a ground name form one contiguous
    /// range: the probe seeks to its start and stops at its end, never
    /// scanning the rest of the base.  Patterns with a variable predicate
    /// name (or bare-variable patterns) fall back to the full base.  Callers
    /// still match/unify against each candidate — this only narrows the
    /// walk, exactly like the engine's argument-indexed candidate probes.
    pub fn base_candidates<'a>(&'a self, pattern: &'a Term) -> BaseCandidates<'a> {
        let name = pattern.name();
        if let (Term::App(_, _), true) = (pattern, name.is_ground()) {
            // `App(name, [])` is the least application with this name, and
            // every non-application orders before all applications, so the
            // range below starts exactly at the name's first atom.
            let lower = Term::app(name.clone(), Vec::new());
            return BaseCandidates::Named {
                range: self.base.range(lower..),
                name,
                arity: pattern.arity(),
            };
        }
        BaseCandidates::All(self.base.iter())
    }

    /// The true atoms.
    pub fn true_atoms(&self) -> &BTreeSet<Term> {
        &self.true_atoms
    }

    /// The undefined atoms.
    pub fn undefined_atoms(&self) -> &BTreeSet<Term> {
        &self.undefined
    }

    /// The explicitly false atoms (base atoms that are neither true nor
    /// undefined).  Atoms outside the base are also false but are not
    /// enumerated here.
    pub fn false_base_atoms(&self) -> impl Iterator<Item = &Term> {
        self.base
            .iter()
            .filter(|a| !self.true_atoms.contains(*a) && !self.undefined.contains(*a))
    }

    /// Returns `true` if nothing is undefined (the model is *total* /
    /// two-valued), the condition investigated in Section 6.
    pub fn is_total(&self) -> bool {
        self.undefined.is_empty()
    }

    /// Adds an atom to the base (making it false unless also inserted as true
    /// or undefined).
    pub fn add_base_atom(&mut self, atom: Term) {
        self.base.insert(atom);
    }

    /// Marks an atom true (adding it to the base).
    pub fn set_true(&mut self, atom: Term) {
        self.undefined.remove(&atom);
        self.base.insert(atom.clone());
        self.true_atoms.insert(atom);
    }

    /// Marks an atom undefined (adding it to the base).
    pub fn set_undefined(&mut self, atom: Term) {
        self.true_atoms.remove(&atom);
        self.base.insert(atom.clone());
        self.undefined.insert(atom);
    }

    /// Marks a base atom false.
    pub fn set_false(&mut self, atom: Term) {
        self.true_atoms.remove(&atom);
        self.undefined.remove(&atom);
        self.base.insert(atom);
    }

    /// Removes an atom from the model entirely (base, true and undefined
    /// sets); it becomes false by the closed-world convention.  Returns
    /// `true` if the atom was in the base.  Used by incremental maintenance
    /// to retire atoms whose last supporting rule instantiation disappeared.
    pub fn remove(&mut self, atom: &Term) -> bool {
        self.true_atoms.remove(atom);
        self.undefined.remove(atom);
        self.base.remove(atom)
    }

    /// Merges another model into this one (union of bases, true sets and
    /// undefined sets).  The caller is responsible for the two models having
    /// disjoint or agreeing vocabularies (as in Figure 1, where `M := M ∪ M_T`
    /// joins models of disjoint predicate sets).
    pub fn merge(&mut self, other: &Model) {
        self.base.extend(other.base.iter().cloned());
        self.true_atoms.extend(other.true_atoms.iter().cloned());
        self.undefined.extend(other.undefined.iter().cloned());
        // An atom true in one part and undefined in another would be a bug in
        // the caller; prefer the stronger value.
        let resolved: Vec<Term> = self
            .undefined
            .iter()
            .filter(|a| self.true_atoms.contains(*a))
            .cloned()
            .collect();
        for a in resolved {
            self.undefined.remove(&a);
        }
    }

    /// Converts to an [`Interpretation`] over the base (base atoms only).
    pub fn to_interpretation(&self) -> Interpretation {
        let mut interp = Interpretation::new();
        for a in &self.true_atoms {
            interp.insert_true(a.clone());
        }
        for a in self.false_base_atoms() {
            interp.insert_false(a.clone());
        }
        interp
    }

    /// Definition 2.4 (*extends*): every atom true in `smaller` is true in
    /// `self`, and every atom false in `smaller`'s base is false in `self`.
    pub fn extends(&self, smaller: &Model) -> bool {
        smaller.base.iter().all(|a| match smaller.truth(a) {
            Truth::True => self.truth(a) == Truth::True,
            Truth::False => self.truth(a) == Truth::False,
            Truth::Undefined => true,
        })
    }

    /// Definition 2.4 (*conservatively extends*), checked finitely.
    ///
    /// `self` (the model over the larger language) conservatively extends
    /// `smaller` when:
    ///
    /// 1. every atom of `smaller`'s base has the *same* truth value in both
    ///    models, and
    /// 2. every atom that is true or undefined in `self` and whose predicate
    ///    name is "generated by" the smaller program — as judged by the
    ///    caller-supplied `name_generated` predicate — already belongs to
    ///    `smaller`'s base (so the only extra information about the smaller
    ///    program's predicates is negative).
    pub fn conservatively_extends(
        &self,
        smaller: &Model,
        mut name_generated: impl FnMut(&Term) -> bool,
    ) -> bool {
        for a in &smaller.base {
            if self.truth(a) != smaller.truth(a) {
                return false;
            }
        }
        for a in self.true_atoms.iter().chain(self.undefined.iter()) {
            if name_generated(a) && !smaller.base.contains(a) {
                return false;
            }
        }
        true
    }

    /// Restricts the model to the atoms satisfying the predicate (used to
    /// project a model of `P ∪ Q` back onto the atoms generated by `P`).
    pub fn restrict(&self, mut keep: impl FnMut(&Term) -> bool) -> Model {
        Model {
            base: self.base.iter().filter(|a| keep(a)).cloned().collect(),
            true_atoms: self
                .true_atoms
                .iter()
                .filter(|a| keep(a))
                .cloned()
                .collect(),
            undefined: self.undefined.iter().filter(|a| keep(a)).cloned().collect(),
        }
    }
}

/// Iterator returned by [`Model::base_candidates`]: either the contiguous
/// name-keyed range of the ordered base, or the whole base for patterns
/// without a ground predicate name.
#[derive(Debug, Clone)]
pub enum BaseCandidates<'a> {
    /// Contiguous range of atoms sharing the pattern's ground name.
    Named {
        /// Range cursor positioned at the name's first atom.
        range: std::collections::btree_set::Range<'a, Term>,
        /// The pattern's (ground) predicate name.
        name: &'a Term,
        /// The pattern's arity; candidates of other arities are skipped.
        arity: Option<usize>,
    },
    /// Full-base fallback (variable predicate name).
    All(std::collections::btree_set::Iter<'a, Term>),
}

impl<'a> Iterator for BaseCandidates<'a> {
    type Item = &'a Term;

    fn next(&mut self) -> Option<&'a Term> {
        match self {
            BaseCandidates::Named { range, name, arity } => loop {
                let atom = range.next()?;
                // The range is sorted by name first: once the name moves past
                // the pattern's, no later atom can match.
                if atom.name() != *name {
                    return None;
                }
                if atom.arity() == *arity {
                    return Some(atom);
                }
            },
            BaseCandidates::All(iter) => iter.next(),
        }
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "true:      {:?}",
            self.true_atoms
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
        )?;
        writeln!(
            f,
            "undefined: {:?}",
            self.undefined
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
        )?;
        write!(
            f,
            "false:     {:?}",
            self.false_base_atoms()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(name: &str) -> Term {
        Term::sym(name)
    }

    #[test]
    fn base_candidates_walk_only_the_named_range() {
        let mk = |name: &str, args: &[&str]| Term::apps(name, args.iter().map(Term::sym).collect());
        let hilog = Term::app(
            Term::apps("winning", vec![Term::sym("g")]),
            vec![Term::sym("x")],
        );
        let base = vec![
            Term::sym("zero_ary"),
            mk("edge", &["a", "b"]),
            mk("edge", &["b", "c"]),
            mk("edge", &["a"]), // same name, different arity
            mk("move", &["a", "b"]),
            hilog.clone(),
        ];
        let model = Model::new(base.clone(), vec![], vec![]);
        let probe =
            |pattern: &Term| -> Vec<Term> { model.base_candidates(pattern).cloned().collect() };
        // Ground-named binary pattern: exactly the edge/2 atoms.
        let edges = probe(&mk("edge", &["a", "b"]).clone());
        assert_eq!(edges.len(), 2);
        assert!(edges.iter().all(|a| a.name() == &Term::sym("edge")));
        // Arity discriminates within the name.
        assert_eq!(probe(&Term::apps("edge", vec![Term::var("X")])).len(), 1);
        // HiLog compound names are a range key too.
        assert_eq!(
            probe(&Term::app(
                Term::apps("winning", vec![Term::sym("g")]),
                vec![Term::var("X")],
            )),
            vec![hilog]
        );
        // Variable predicate names fall back to the whole base.
        let open = Term::app(Term::var("P"), vec![Term::var("X"), Term::var("Y")]);
        assert_eq!(probe(&open).len(), base.len());
        // Absent names yield nothing.
        assert!(probe(&Term::apps("absent", vec![Term::var("X")])).is_empty());
    }

    #[test]
    fn interpretation_truth_values() {
        let mut i = Interpretation::new();
        assert!(i.insert_true(atom("s")));
        assert!(i.insert_false(atom("p")));
        assert_eq!(i.truth(&atom("s")), Truth::True);
        assert_eq!(i.truth(&atom("p")), Truth::False);
        assert_eq!(i.truth(&atom("u")), Truth::Undefined);
        assert!(i.is_consistent());
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn interpretation_rejects_inconsistency() {
        let mut i = Interpretation::new();
        assert!(i.insert_true(atom("p")));
        assert!(!i.insert_false(atom("p")));
        assert!(i.is_consistent());
    }

    #[test]
    fn interpretation_merge() {
        let mut a = Interpretation::new();
        a.insert_true(atom("p"));
        let mut b = Interpretation::new();
        b.insert_false(atom("q"));
        assert!(a.merge(&b));
        assert_eq!(a.truth(&atom("q")), Truth::False);
        let mut c = Interpretation::new();
        c.insert_false(atom("p"));
        assert!(!a.merge(&c));
    }

    #[test]
    fn model_truth_with_closed_base() {
        // Example 3.1's well-founded model: r, s true; p, q, t false; u undefined.
        let m = Model::new(
            ["p", "q", "r", "s", "t", "u"].map(atom),
            [atom("r"), atom("s")],
            [atom("u")],
        );
        assert_eq!(m.truth(&atom("r")), Truth::True);
        assert_eq!(m.truth(&atom("p")), Truth::False);
        assert_eq!(m.truth(&atom("u")), Truth::Undefined);
        // Atoms outside the base are false.
        assert_eq!(m.truth(&atom("zzz")), Truth::False);
        assert!(!m.is_total());
        assert_eq!(m.false_base_atoms().count(), 3);
    }

    #[test]
    fn model_mutators() {
        let mut m = Model::empty();
        m.set_true(atom("a"));
        m.set_undefined(atom("b"));
        m.add_base_atom(atom("c"));
        assert!(m.is_true(&atom("a")));
        assert!(m.is_undefined(&atom("b")));
        assert!(m.is_false(&atom("c")));
        m.set_false(atom("a"));
        assert!(m.is_false(&atom("a")));
        m.set_true(atom("b"));
        assert!(m.is_true(&atom("b")));
        assert!(m.is_total());
    }

    #[test]
    fn model_merge_prefers_true_over_undefined() {
        let mut a = Model::new([atom("p")], [], [atom("p")]);
        let b = Model::from_true_atoms([atom("p")]);
        a.merge(&b);
        assert_eq!(a.truth(&atom("p")), Truth::True);
    }

    #[test]
    fn extends_relation() {
        let smaller = Model::new([atom("p"), atom("q")], [atom("p")], []);
        // larger keeps p true, q false, adds r true.
        let larger = Model::new(
            [atom("p"), atom("q"), atom("r")],
            [atom("p"), atom("r")],
            [],
        );
        assert!(larger.extends(&smaller));
        // flipping q to true violates extension of falsity.
        let bad = Model::new([atom("p"), atom("q")], [atom("p"), atom("q")], []);
        assert!(!bad.extends(&smaller));
    }

    #[test]
    fn conservative_extension_checks_no_new_positive_info() {
        // smaller: q(a) true over base {q(a)}.
        let qa = Term::apps("q", vec![Term::sym("a")]);
        let qp = Term::apps("q", vec![Term::sym("p")]);
        let smaller = Model::from_true_atoms([qa.clone()]);
        // A conservative extension: q(a) stays true, new atoms (q(p)) false.
        let larger = Model::new([qa.clone(), qp.clone()], [qa.clone()], []);
        let generated = |a: &Term| matches!(a.name(), Term::Sym(s) if s.name() == "q");
        assert!(larger.conservatively_extends(&smaller, generated));
        // A non-conservative extension: q(p) becomes true.
        let bad = Model::from_true_atoms([qa.clone(), qp.clone()]);
        assert!(!bad.conservatively_extends(&smaller, generated));
        // Changing the truth value of q(a) is also non-conservative.
        let bad2 = Model::new([qa.clone()], [], []);
        assert!(!bad2.conservatively_extends(&smaller, generated));
    }

    #[test]
    fn restriction_projects_model() {
        let qa = Term::apps("q", vec![Term::sym("a")]);
        let ra = Term::apps("r", vec![Term::sym("a")]);
        let m = Model::from_true_atoms([qa.clone(), ra.clone()]);
        let only_q = m.restrict(|a| matches!(a.name(), Term::Sym(s) if s.name() == "q"));
        assert!(only_q.is_true(&qa));
        assert!(!only_q.base().contains(&ra));
    }

    #[test]
    fn to_interpretation_conversion() {
        let m = Model::new([atom("p"), atom("q"), atom("u")], [atom("p")], [atom("u")]);
        let i = m.to_interpretation();
        assert_eq!(i.truth(&atom("p")), Truth::True);
        assert_eq!(i.truth(&atom("q")), Truth::False);
        assert_eq!(i.truth(&atom("u")), Truth::Undefined);
    }

    #[test]
    fn display_does_not_panic() {
        let m = Model::new([atom("p")], [atom("p")], []);
        assert!(m.to_string().contains("true"));
        let i = Interpretation::new();
        assert_eq!(i.to_string(), "{}");
    }
}
