//! # hilog-core
//!
//! Core data model for the reproduction of Kenneth A. Ross,
//! *"On Negation in HiLog"* (PODS 1991 / Journal of Logic Programming 18:27–53, 1994).
//!
//! HiLog is a logic whose syntax is second order — arbitrary terms may appear
//! as predicate names and variables may occur in predicate-name position —
//! while its semantics remains first order.  This crate provides:
//!
//! * the HiLog **term language** ([`term::Term`], [`symbol::Symbol`],
//!   [`term::Var`]) in which terms and atoms coincide (Definition 2.1 of the
//!   paper);
//! * **substitutions** and decidable **unification** ([`subst`], [`unify`]);
//! * **literals, rules, programs and queries**, including builtin arithmetic
//!   and comparison literals and the aggregation literal used by the
//!   parts-explosion program of Section 6 ([`literal`], [`rule`],
//!   [`program`]);
//! * three-valued **Herbrand interpretations** and finitely represented
//!   **models**, with the `extends` / `conservatively extends` relations of
//!   Definitions 2.3–2.4 ([`interpretation`]);
//! * the **Herbrand universe** machinery: vocabulary extraction and bounded
//!   enumeration of the (generally infinite) HiLog universe ([`herbrand`]);
//! * the **universal-relation** (`call` / `apply_i`) transformation of
//!   Section 2 ([`universal`]);
//! * the **syntactic classes** of the paper: range restriction for normal
//!   programs (Definition 4.1), HiLog range restriction (Definition 5.5),
//!   strong range restriction (Definition 5.6), Datahilog (Definition 6.7),
//!   stratification and local stratification (Definitions 6.1–6.2)
//!   ([`restriction`], [`analysis`]);
//! * program **analysis**: predicate-name extraction, dependency graphs and
//!   strongly connected components ([`analysis`]);
//! * a stable **binary codec** for symbols, terms and rules with
//!   payload-local interning tables, used by the durable storage layer
//!   ([`codec`]).
//!
//! Evaluation (grounding, well-founded and stable semantics, modular
//! stratification, magic sets) lives in the companion crate `hilog-engine`;
//! concrete syntax lives in `hilog-syntax`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod builtin;
pub mod codec;
pub mod error;
pub mod herbrand;
pub mod intern;
pub mod interpretation;
pub mod literal;
pub mod program;
pub mod restriction;
pub mod rule;
pub mod subst;
pub mod symbol;
pub mod term;
pub mod unify;
pub mod universal;

pub use builtin::{BuiltinCall, BuiltinOp};
pub use codec::{crc32, CodecError, PayloadReader, PayloadWriter};
pub use error::CoreError;
pub use herbrand::{HerbrandBounds, HerbrandUniverse, Vocabulary};
pub use intern::{AtomId, TermInterner};
pub use interpretation::{Interpretation, Model, Truth};
pub use literal::{Aggregate, AggregateFunc, Literal};
pub use program::Program;
pub use restriction::{ProgramClass, RestrictionReport};
pub use rule::{Query, Rule};
pub use subst::Substitution;
pub use symbol::{gc_symbol_pool, symbol_pool_stats, Symbol, SymbolPoolStats};
pub use term::{Term, Var};

/// Convenience prelude re-exporting the types used by almost every consumer.
pub mod prelude {
    pub use crate::builtin::{BuiltinCall, BuiltinOp};
    pub use crate::herbrand::{HerbrandBounds, HerbrandUniverse, Vocabulary};
    pub use crate::interpretation::{Interpretation, Model, Truth};
    pub use crate::literal::{Aggregate, AggregateFunc, Literal};
    pub use crate::program::Program;
    pub use crate::rule::{Query, Rule};
    pub use crate::subst::Substitution;
    pub use crate::symbol::Symbol;
    pub use crate::term::{Term, Var};
}
