//! Body literals.
//!
//! A HiLog literal is a HiLog term or a negated HiLog term (Definition 2.1).
//! In addition to the paper's literals we support evaluable *builtin*
//! literals (arithmetic and comparison, see [`crate::builtin`]) and the
//! *aggregation* literal used by the parts-explosion program of Section 6
//! (`N = sum P : in(Mach, X, Y, _, P)`), which the paper treats as the
//! aggregate analogue of negation for modular stratification.

use crate::builtin::BuiltinCall;
use crate::subst::Substitution;
use crate::term::{Term, Var};
use std::fmt;

/// An aggregation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregateFunc {
    /// Sum of the collected values.
    Sum,
    /// Number of collected tuples.
    Count,
    /// Minimum of the collected values.
    Min,
    /// Maximum of the collected values.
    Max,
}

impl AggregateFunc {
    /// Concrete-syntax name of the function.
    pub fn name(&self) -> &'static str {
        match self {
            AggregateFunc::Sum => "sum",
            AggregateFunc::Count => "count",
            AggregateFunc::Min => "min",
            AggregateFunc::Max => "max",
        }
    }
}

/// An aggregation literal `Result = func(Value, Pattern)`.
///
/// For every grouping (determined by the variables of `pattern` that are
/// bound by earlier body literals), the engine collects the instantiations of
/// `value` over all true instances of `pattern` and combines them with
/// `func`, unifying the result with `result`.  The paper's example
///
/// ```text
/// contains(Mach, X, Y, N) :- N = sum(P, in(Mach, X, Y, W, P)).
/// ```
///
/// groups by `Mach, X, Y` (bound via the head / earlier subgoals) and sums
/// `P` over the matching `in` atoms.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Aggregate {
    /// The aggregation function.
    pub func: AggregateFunc,
    /// The term the aggregate result is unified with (usually a variable).
    pub result: Term,
    /// The value collected from each matching atom (usually a variable of
    /// `pattern`).
    pub value: Term,
    /// The atom pattern that is matched against settled atoms.
    pub pattern: Term,
}

impl Aggregate {
    /// Creates an aggregation literal.
    pub fn new(func: AggregateFunc, result: Term, value: Term, pattern: Term) -> Self {
        Aggregate {
            func,
            result,
            value,
            pattern,
        }
    }

    /// Applies a substitution to all components.
    pub fn apply(&self, theta: &Substitution) -> Aggregate {
        Aggregate {
            func: self.func,
            result: theta.apply(&self.result),
            value: theta.apply(&self.value),
            pattern: theta.apply(&self.pattern),
        }
    }

    /// Variables occurring anywhere in the aggregate literal.
    pub fn variables(&self) -> Vec<Var> {
        let mut vars = self.result.variables();
        for v in self
            .value
            .variables()
            .into_iter()
            .chain(self.pattern.variables())
        {
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        vars
    }
}

impl fmt::Display for Aggregate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} = {}({}, {})",
            self.result,
            self.func.name(),
            self.value,
            self.pattern
        )
    }
}

/// A body literal.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Literal {
    /// A positive HiLog atom.
    Pos(Term),
    /// A negated HiLog atom (`not A`).
    Neg(Term),
    /// An evaluable builtin.
    Builtin(BuiltinCall),
    /// An aggregation literal.
    Aggregate(Aggregate),
}

impl Literal {
    /// Convenience constructor for a positive literal.
    pub fn pos(atom: Term) -> Literal {
        Literal::Pos(atom)
    }

    /// Convenience constructor for a negative literal.
    pub fn neg(atom: Term) -> Literal {
        Literal::Neg(atom)
    }

    /// Returns the underlying atom for positive and negative literals.
    pub fn atom(&self) -> Option<&Term> {
        match self {
            Literal::Pos(a) | Literal::Neg(a) => Some(a),
            _ => None,
        }
    }

    /// Returns `true` for positive atom literals.
    pub fn is_positive_atom(&self) -> bool {
        matches!(self, Literal::Pos(_))
    }

    /// Returns `true` for negative atom literals.
    pub fn is_negative_atom(&self) -> bool {
        matches!(self, Literal::Neg(_))
    }

    /// Returns `true` for builtin or aggregate literals.
    pub fn is_evaluable(&self) -> bool {
        matches!(self, Literal::Builtin(_) | Literal::Aggregate(_))
    }

    /// Applies a substitution to the literal.
    pub fn apply(&self, theta: &Substitution) -> Literal {
        match self {
            Literal::Pos(a) => Literal::Pos(theta.apply(a)),
            Literal::Neg(a) => Literal::Neg(theta.apply(a)),
            Literal::Builtin(b) => Literal::Builtin(b.apply(theta)),
            Literal::Aggregate(a) => Literal::Aggregate(a.apply(theta)),
        }
    }

    /// Variables occurring in the literal.
    pub fn variables(&self) -> Vec<Var> {
        match self {
            Literal::Pos(a) | Literal::Neg(a) => a.variables(),
            Literal::Builtin(b) => b.variables(),
            Literal::Aggregate(a) => a.variables(),
        }
    }

    /// Returns `true` if the literal contains no variables.
    pub fn is_ground(&self) -> bool {
        self.variables().is_empty()
    }

    /// The complement of an atom literal (positive becomes negative and vice
    /// versa); evaluable literals have no complement.
    pub fn complement(&self) -> Option<Literal> {
        match self {
            Literal::Pos(a) => Some(Literal::Neg(a.clone())),
            Literal::Neg(a) => Some(Literal::Pos(a.clone())),
            _ => None,
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Pos(a) => write!(f, "{a}"),
            Literal::Neg(a) => write!(f, "not {a}"),
            Literal::Builtin(b) => write!(f, "{b}"),
            Literal::Aggregate(a) => write!(f, "{a}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::BuiltinOp;

    #[test]
    fn literal_constructors_and_accessors() {
        let atom = Term::apps("winning", vec![Term::var("X")]);
        let pos = Literal::pos(atom.clone());
        let neg = Literal::neg(atom.clone());
        assert!(pos.is_positive_atom());
        assert!(neg.is_negative_atom());
        assert_eq!(pos.atom(), Some(&atom));
        assert_eq!(neg.atom(), Some(&atom));
        assert_eq!(pos.complement(), Some(neg.clone()));
        assert_eq!(neg.complement(), Some(pos));
    }

    #[test]
    fn evaluable_literals_have_no_atom() {
        let b = Literal::Builtin(BuiltinCall::new(BuiltinOp::Lt, Term::int(1), Term::int(2)));
        assert!(b.atom().is_none());
        assert!(b.is_evaluable());
        assert!(b.complement().is_none());
    }

    #[test]
    fn display_forms() {
        let atom = Term::app(
            Term::apps("winning", vec![Term::var("M")]),
            vec![Term::var("Y")],
        );
        assert_eq!(Literal::neg(atom.clone()).to_string(), "not winning(M)(Y)");
        assert_eq!(Literal::pos(atom).to_string(), "winning(M)(Y)");
        let agg = Aggregate::new(
            AggregateFunc::Sum,
            Term::var("N"),
            Term::var("P"),
            Term::apps(
                "in",
                vec![
                    Term::var("Mach"),
                    Term::var("X"),
                    Term::var("Y"),
                    Term::var("W"),
                    Term::var("P"),
                ],
            ),
        );
        assert_eq!(
            Literal::Aggregate(agg).to_string(),
            "N = sum(P, in(Mach, X, Y, W, P))"
        );
    }

    #[test]
    fn substitution_application() {
        let lit = Literal::neg(Term::app(Term::var("G"), vec![Term::var("X")]));
        let theta = Substitution::from_bindings([
            (Var::new("G"), Term::sym("move")),
            (Var::new("X"), Term::sym("a")),
        ]);
        assert_eq!(lit.apply(&theta).to_string(), "not move(a)");
        assert!(lit.apply(&theta).is_ground());
    }

    #[test]
    fn variables_of_aggregate() {
        let agg = Aggregate::new(
            AggregateFunc::Sum,
            Term::var("N"),
            Term::var("P"),
            Term::apps("in", vec![Term::var("X"), Term::var("P")]),
        );
        let vars = agg.variables();
        assert_eq!(vars.len(), 3);
    }

    #[test]
    fn aggregate_func_names() {
        assert_eq!(AggregateFunc::Sum.name(), "sum");
        assert_eq!(AggregateFunc::Count.name(), "count");
        assert_eq!(AggregateFunc::Min.name(), "min");
        assert_eq!(AggregateFunc::Max.name(), "max");
    }
}
