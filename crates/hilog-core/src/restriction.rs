//! Syntactic program classes.
//!
//! * Definition 4.1 — range restriction for **normal** programs;
//! * Definition 5.5 — range restriction for **HiLog** rules and queries;
//! * Definition 5.6 — **strong** range restriction for HiLog rules;
//! * Definition 6.7 — **Datahilog** programs (the function-free fragment for
//!   which Lemma 6.3 guarantees a finite set of non-false atoms).
//!
//! The distinction the paper draws between variables in *argument* positions
//! and variables in *predicate-name* positions is central here: for an atom
//! `tc(G)(Z, Y)`, the variables `Z` and `Y` occur as arguments while `G`
//! occurs (only) in the predicate name.

use crate::literal::Literal;
use crate::program::Program;
use crate::rule::{Query, Rule};
use crate::term::{Term, Var};
use std::collections::BTreeSet;

/// Variables occurring in *argument* positions of an atom (anywhere inside
/// the argument terms), excluding variables that occur only in the predicate
/// name.
pub fn argument_variables(atom: &Term) -> BTreeSet<Var> {
    let mut out = BTreeSet::new();
    for arg in atom.args() {
        for v in arg.variables() {
            out.insert(v);
        }
    }
    out
}

/// Variables occurring in the *predicate name* of an atom (anywhere inside
/// the name term).
pub fn name_variables(atom: &Term) -> BTreeSet<Var> {
    match atom {
        Term::App(name, _) => name.variables().into_iter().collect(),
        Term::Var(v) => [v.clone()].into_iter().collect(),
        _ => BTreeSet::new(),
    }
}

/// All variables of an atom.
pub fn all_variables(atom: &Term) -> BTreeSet<Var> {
    atom.variables().into_iter().collect()
}

/// Variables bound by evaluable (builtin / aggregate) literals: the paper's
/// definitions only speak about atoms, but a deductive database treats the
/// output of `N is P * M` or `N = sum(...)` as bound, so these variables are
/// counted together with the positive-literal argument variables by the
/// range-restriction checks below.
pub fn evaluable_binder_variables(rule: &Rule) -> BTreeSet<Var> {
    let mut out = BTreeSet::new();
    for lit in &rule.body {
        match lit {
            Literal::Builtin(b) => {
                out.extend(b.left.variables());
                out.extend(b.right.variables());
            }
            Literal::Aggregate(a) => {
                out.extend(a.result.variables());
            }
            _ => {}
        }
    }
    out
}

/// Definition 4.1: a normal rule is range restricted when every variable
/// occurring in the head or in a negative body literal also occurs in a
/// positive body literal.
pub fn is_range_restricted_normal_rule(rule: &Rule) -> bool {
    let mut positive_vars: BTreeSet<Var> = BTreeSet::new();
    for atom in rule.positive_atoms() {
        positive_vars.extend(atom.variables());
    }
    positive_vars.extend(evaluable_binder_variables(rule));
    let mut required: BTreeSet<Var> = rule.head.variables().into_iter().collect();
    for atom in rule.negative_atoms() {
        required.extend(atom.variables());
    }
    required.iter().all(|v| positive_vars.contains(v))
}

/// Definition 4.1 lifted to programs.
pub fn is_range_restricted_normal(program: &Program) -> bool {
    program.iter().all(is_range_restricted_normal_rule)
}

/// Checks condition 3 of Definitions 5.5 / 5.6: there is an ordering
/// `A_1, ..., A_n` of the positive body literals such that every variable in
/// the predicate name of `A_j` appears as an argument of some earlier `A_k`
/// (`k < j`) or belongs to `seed` (the head-name variables, for Definition
/// 5.5; empty for Definition 5.6).
///
/// A greedy selection is complete here: admitting a literal only ever grows
/// the set of available argument variables, so if any ordering exists the
/// greedy one succeeds.
fn positive_literals_orderable(rule: &Rule, seed: &BTreeSet<Var>) -> bool {
    let positives: Vec<&Term> = rule.positive_atoms().collect();
    let mut available: BTreeSet<Var> = seed.clone();
    let mut remaining: Vec<usize> = (0..positives.len()).collect();
    while !remaining.is_empty() {
        let mut picked = None;
        for (pos, &i) in remaining.iter().enumerate() {
            let needed = name_variables(positives[i]);
            if needed.iter().all(|v| available.contains(v)) {
                picked = Some(pos);
                break;
            }
        }
        match picked {
            Some(pos) => {
                let i = remaining.remove(pos);
                available.extend(argument_variables(positives[i]));
            }
            None => return false,
        }
    }
    true
}

/// Definition 5.5: range restriction for a HiLog rule.
pub fn is_range_restricted_hilog_rule(rule: &Rule) -> bool {
    let mut positive_arg_vars: BTreeSet<Var> = BTreeSet::new();
    for atom in rule.positive_atoms() {
        positive_arg_vars.extend(argument_variables(atom));
    }
    positive_arg_vars.extend(evaluable_binder_variables(rule));
    let head_name_vars = name_variables(&rule.head);

    // 1. Every variable appearing in an argument in the head also appears as
    //    an argument in a positive body literal.
    let head_arg_vars = argument_variables(&rule.head);
    if !head_arg_vars.iter().all(|v| positive_arg_vars.contains(v)) {
        return false;
    }

    // 2. Every variable in a negative literal appears as an argument in a
    //    positive body literal or in the name in the head.
    for atom in rule.negative_atoms() {
        for v in all_variables(atom) {
            if !positive_arg_vars.contains(&v) && !head_name_vars.contains(&v) {
                return false;
            }
        }
    }

    // 3. Orderability of the positive body literals, seeded with the head
    //    name variables.
    positive_literals_orderable(rule, &head_name_vars)
}

/// Definition 5.5 lifted to programs.
pub fn is_range_restricted_hilog(program: &Program) -> bool {
    program.iter().all(is_range_restricted_hilog_rule)
}

/// Definition 5.6: strong range restriction for a HiLog rule.
pub fn is_strongly_range_restricted_rule(rule: &Rule) -> bool {
    let mut positive_arg_vars: BTreeSet<Var> = BTreeSet::new();
    for atom in rule.positive_atoms() {
        positive_arg_vars.extend(argument_variables(atom));
    }
    positive_arg_vars.extend(evaluable_binder_variables(rule));

    // 1. Every variable appearing in an argument or in the name of the head
    //    appears as an argument in a positive body literal.
    let mut head_vars = argument_variables(&rule.head);
    head_vars.extend(name_variables(&rule.head));
    if !head_vars.iter().all(|v| positive_arg_vars.contains(v)) {
        return false;
    }

    // 2. Every variable in a negative literal appears as an argument in a
    //    positive body literal.
    for atom in rule.negative_atoms() {
        for v in all_variables(atom) {
            if !positive_arg_vars.contains(&v) {
                return false;
            }
        }
    }

    // 3. Orderability with an empty seed.
    positive_literals_orderable(rule, &BTreeSet::new())
}

/// Definition 5.6 lifted to programs.
pub fn is_strongly_range_restricted(program: &Program) -> bool {
    program.iter().all(is_strongly_range_restricted_rule)
}

/// Section 5: a query `Q(X1, ..., Xn)` is range restricted when the auxiliary
/// rule `answer(X1, ..., Xn) :- Q(X1, ..., Xn)` is range restricted according
/// to Definition 5.5.  In particular the predicate names of the query must be
/// ground.
pub fn is_range_restricted_query(query: &Query) -> bool {
    is_range_restricted_hilog_rule(&query.as_answer_rule())
}

/// Definition 6.7: a Datahilog program — in every atom of every rule, both
/// the name and the arguments are either variables or constant symbols (no
/// nested applications, no integers treated as structure).
pub fn is_datahilog(program: &Program) -> bool {
    fn term_is_flat(t: &Term) -> bool {
        matches!(t, Term::Var(_) | Term::Sym(_) | Term::Int(_))
    }
    fn atom_is_datahilog(atom: &Term) -> bool {
        match atom {
            Term::Var(_) | Term::Sym(_) | Term::Int(_) => true,
            Term::App(name, args) => term_is_flat(name) && args.iter().all(term_is_flat),
        }
    }
    program.iter().all(|r| {
        atom_is_datahilog(&r.head)
            && r.body.iter().all(|l| match l {
                Literal::Pos(a) | Literal::Neg(a) => atom_is_datahilog(a),
                Literal::Builtin(_) => true,
                Literal::Aggregate(a) => atom_is_datahilog(&a.pattern),
            })
    })
}

/// Summary of which syntactic classes a program falls into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestrictionReport {
    /// The program is a normal (first-order) program.
    pub normal: bool,
    /// Range restricted in the sense of Definition 4.1 (only meaningful when
    /// `normal` is true).
    pub range_restricted_normal: bool,
    /// Range restricted in the sense of Definition 5.5.
    pub range_restricted_hilog: bool,
    /// Strongly range restricted (Definition 5.6).
    pub strongly_range_restricted: bool,
    /// Datahilog (Definition 6.7).
    pub datahilog: bool,
    /// Stratified (Definition 6.1); requires ground predicate names.
    pub stratified: bool,
}

/// A coarse classification of a program, combining the individual class
/// checks.  `ProgramClass::classify` is the one-stop entry point used by the
/// examples and the experiment harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgramClass;

impl ProgramClass {
    /// Classifies the program against every syntactic class of the paper.
    pub fn classify(program: &Program) -> RestrictionReport {
        RestrictionReport {
            normal: program.is_normal(),
            range_restricted_normal: program.is_normal() && is_range_restricted_normal(program),
            range_restricted_hilog: is_range_restricted_hilog(program),
            strongly_range_restricted: is_strongly_range_restricted(program),
            datahilog: is_datahilog(program),
            stratified: crate::analysis::is_stratified(program),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::literal::Literal;

    fn v(s: &str) -> Term {
        Term::var(s)
    }
    fn s(x: &str) -> Term {
        Term::sym(x)
    }

    /// `X(Y)(Z) :- p(X, Y, W), W(a)(Z), not W(b)(Z).` — strongly range
    /// restricted (Example 5.3, first group).
    fn strong_example_1() -> Rule {
        Rule::new(
            Term::app(Term::app(v("X").clone(), vec![v("Y")]), vec![v("Z")]),
            vec![
                Literal::pos(Term::apps("p", vec![v("X"), v("Y"), v("W")])),
                Literal::pos(Term::app(Term::app(v("W"), vec![s("a")]), vec![v("Z")])),
                Literal::neg(Term::app(Term::app(v("W"), vec![s("b")]), vec![v("Z")])),
            ],
        )
    }

    /// `p(X) :- X(a), q(X).` — strongly range restricted (Example 5.3).
    fn strong_example_2() -> Rule {
        Rule::new(
            Term::apps("p", vec![v("X")]),
            vec![
                Literal::pos(Term::app(v("X"), vec![s("a")])),
                Literal::pos(Term::apps("q", vec![v("X")])),
            ],
        )
    }

    /// `tc(G, X, Y) :- graph(G), G(X, Y).` — strongly range restricted
    /// (Example 5.3).
    fn strong_example_3() -> Rule {
        Rule::new(
            Term::apps("tc", vec![v("G"), v("X"), v("Y")]),
            vec![
                Literal::pos(Term::apps("graph", vec![v("G")])),
                Literal::pos(Term::app(v("G"), vec![v("X"), v("Y")])),
            ],
        )
    }

    /// `tc(G)(X, Y) :- G(X, Y).` — range restricted but not strongly
    /// (Example 5.3, second group).
    fn rr_not_strong_tc() -> Rule {
        Rule::new(
            Term::app(Term::apps("tc", vec![v("G")]), vec![v("X"), v("Y")]),
            vec![Literal::pos(Term::app(v("G"), vec![v("X"), v("Y")]))],
        )
    }

    /// `not(X)() :- not X.` — range restricted but not strongly (Example 5.3).
    fn rr_not_strong_not() -> Rule {
        Rule::new(
            Term::app(Term::apps("not", vec![v("X")]), vec![]),
            vec![Literal::neg(v("X"))],
        )
    }

    /// `X(Y)(Z) :- p(X, Z, W), X(a)(Z), not X(b)(Z).` — range restricted but
    /// not strongly restricted (Example 5.3: the head name variable `Y` is
    /// bound only via the head).
    fn rr_not_strong_xyz() -> Rule {
        Rule::new(
            Term::app(Term::app(v("X"), vec![v("Y")]), vec![v("Z")]),
            vec![
                Literal::pos(Term::apps("p", vec![v("X"), v("Z"), v("W")])),
                Literal::pos(Term::app(Term::app(v("X"), vec![s("a")]), vec![v("Z")])),
                Literal::neg(Term::app(Term::app(v("X"), vec![s("b")]), vec![v("Z")])),
            ],
        )
    }

    /// `tc(G, X, Y) :- G(X, Y).` — not range restricted (Example 5.3, third
    /// group: `G` occurs as a head argument but never as a body argument).
    fn not_rr_tc() -> Rule {
        Rule::new(
            Term::apps("tc", vec![v("G"), v("X"), v("Y")]),
            vec![Literal::pos(Term::app(v("G"), vec![v("X"), v("Y")]))],
        )
    }

    /// `p(X) :- X(a).` — not range restricted (Example 5.3).
    fn not_rr_px() -> Rule {
        Rule::new(
            Term::apps("p", vec![v("X")]),
            vec![Literal::pos(Term::app(v("X"), vec![s("a")]))],
        )
    }

    /// `not(X) :- not X.` — not range restricted (Example 5.3).
    fn not_rr_not() -> Rule {
        Rule::new(Term::apps("not", vec![v("X")]), vec![Literal::neg(v("X"))])
    }

    /// `X(Y)(Z) :- Z(X, Y, W), W(a)(Z), not W(b)(Z).` — not range restricted
    /// (Example 5.3: no admissible ordering of the positive literals).
    fn not_rr_zxy() -> Rule {
        Rule::new(
            Term::app(Term::app(v("X"), vec![v("Y")]), vec![v("Z")]),
            vec![
                Literal::pos(Term::app(v("Z"), vec![v("X"), v("Y"), v("W")])),
                Literal::pos(Term::app(Term::app(v("W"), vec![s("a")]), vec![v("Z")])),
                Literal::neg(Term::app(Term::app(v("W"), vec![s("b")]), vec![v("Z")])),
            ],
        )
    }

    #[test]
    fn argument_vs_name_variables() {
        // tc(G)(Z, Y): arguments Z, Y; name variables {G}.
        let atom = Term::app(Term::apps("tc", vec![v("G")]), vec![v("Z"), v("Y")]);
        let args: Vec<String> = argument_variables(&atom)
            .iter()
            .map(|x| x.to_string())
            .collect();
        let names: Vec<String> = name_variables(&atom)
            .iter()
            .map(|x| x.to_string())
            .collect();
        assert_eq!(args, vec!["Y", "Z"]);
        assert_eq!(names, vec!["G"]);
        // A bare variable atom: the variable is its own name.
        assert_eq!(name_variables(&v("X")).len(), 1);
        assert!(argument_variables(&v("X")).is_empty());
    }

    #[test]
    fn example_5_3_strongly_range_restricted_rules() {
        for rule in [strong_example_1(), strong_example_2(), strong_example_3()] {
            assert!(is_strongly_range_restricted_rule(&rule), "{rule}");
            assert!(is_range_restricted_hilog_rule(&rule), "{rule}");
        }
    }

    #[test]
    fn example_5_3_range_restricted_but_not_strong() {
        for rule in [rr_not_strong_tc(), rr_not_strong_not(), rr_not_strong_xyz()] {
            assert!(is_range_restricted_hilog_rule(&rule), "{rule}");
            assert!(!is_strongly_range_restricted_rule(&rule), "{rule}");
        }
    }

    #[test]
    fn example_5_3_not_range_restricted() {
        for rule in [not_rr_tc(), not_rr_px(), not_rr_not(), not_rr_zxy()] {
            assert!(!is_range_restricted_hilog_rule(&rule), "{rule}");
            assert!(!is_strongly_range_restricted_rule(&rule), "{rule}");
        }
    }

    #[test]
    fn normal_range_restriction_definition_4_1() {
        // p :- not q(X).  (Example 4.1) — not range restricted.
        let bad = Rule::new(s("p"), vec![Literal::neg(Term::apps("q", vec![v("X")]))]);
        assert!(!is_range_restricted_normal_rule(&bad));
        // p(X, X, a). — a fact with variables in the head is not range restricted.
        let fact = Rule::fact(Term::apps("p", vec![v("X"), v("X"), s("a")]));
        assert!(!is_range_restricted_normal_rule(&fact));
        // winning(X) :- move(X, Y), not winning(Y). — range restricted.
        let win = Rule::new(
            Term::apps("winning", vec![v("X")]),
            vec![
                Literal::pos(Term::apps("move", vec![v("X"), v("Y")])),
                Literal::neg(Term::apps("winning", vec![v("Y")])),
            ],
        );
        assert!(is_range_restricted_normal_rule(&win));
    }

    #[test]
    fn hilog_range_restriction_generalizes_normal() {
        // For normal rules, Definition 5.5 should agree with Definition 4.1
        // on these samples.
        let win = Rule::new(
            Term::apps("winning", vec![v("X")]),
            vec![
                Literal::pos(Term::apps("move", vec![v("X"), v("Y")])),
                Literal::neg(Term::apps("winning", vec![v("Y")])),
            ],
        );
        assert!(is_range_restricted_hilog_rule(&win));
        let bad = Rule::new(s("p"), vec![Literal::neg(Term::apps("q", vec![v("X")]))]);
        assert!(!is_range_restricted_hilog_rule(&bad));
    }

    #[test]
    fn query_range_restriction_requires_ground_names() {
        // ?- tc(e)(a, Y).  — ground name, range restricted.
        let q1 = Query::atom(Term::app(
            Term::apps("tc", vec![s("e")]),
            vec![s("a"), v("Y")],
        ));
        assert!(is_range_restricted_query(&q1));
        // ?- tc(G)(X, Y).  — unbound name G, not range restricted (Example 5.2
        // discusses why such queries are problematic).
        let q2 = Query::atom(Term::app(
            Term::apps("tc", vec![v("G")]),
            vec![v("X"), v("Y")],
        ));
        assert!(!is_range_restricted_query(&q2));
        // ?- graph(G), tc(G)(X, Y). — binding the name inside the query makes
        // it acceptable.
        let q3 = Query::new(vec![
            Literal::pos(Term::apps("graph", vec![v("G")])),
            Literal::pos(Term::app(
                Term::apps("tc", vec![v("G")]),
                vec![v("X"), v("Y")],
            )),
        ]);
        assert!(is_range_restricted_query(&q3));
    }

    #[test]
    fn datahilog_definition_6_7() {
        // winning(M, X) :- game(M), M(X, Y), not winning(M, Y). — Datahilog.
        let flat = Program::from_rules(vec![Rule::new(
            Term::apps("winning", vec![v("M"), v("X")]),
            vec![
                Literal::pos(Term::apps("game", vec![v("M")])),
                Literal::pos(Term::app(v("M"), vec![v("X"), v("Y")])),
                Literal::neg(Term::apps("winning", vec![v("M"), v("Y")])),
            ],
        )]);
        assert!(is_datahilog(&flat));
        // tc(G)(X, Y) :- graph(G), G(X, Z), tc(G)(Z, Y). — not Datahilog
        // (nested predicate name tc(G)).
        let nested = Program::from_rules(vec![Rule::new(
            Term::app(Term::apps("tc", vec![v("G")]), vec![v("X"), v("Y")]),
            vec![
                Literal::pos(Term::apps("graph", vec![v("G")])),
                Literal::pos(Term::app(v("G"), vec![v("X"), v("Z")])),
                Literal::pos(Term::app(
                    Term::apps("tc", vec![v("G")]),
                    vec![v("Z"), v("Y")],
                )),
            ],
        )]);
        assert!(!is_datahilog(&nested));
    }

    #[test]
    fn classification_report() {
        let p = Program::from_rules(vec![strong_example_3()]);
        let report = ProgramClass::classify(&p);
        assert!(!report.normal);
        assert!(report.range_restricted_hilog);
        assert!(report.strongly_range_restricted);
        assert!(report.datahilog);
        // Variable predicate name in the body => not stratified by the
        // ground-name criterion.
        assert!(!report.stratified);
    }

    #[test]
    fn facts_with_ground_heads_are_strongly_range_restricted() {
        let p = Program::from_rules(vec![Rule::fact(Term::apps("move", vec![s("a"), s("b")]))]);
        assert!(is_strongly_range_restricted(&p));
        assert!(is_range_restricted_hilog(&p));
        assert!(is_range_restricted_normal(&p));
    }

    #[test]
    fn x_a_b_fact_is_not_strongly_range_restricted() {
        // "Lemma 6.3 does not hold for range-restricted programs that are not
        // strongly range restricted as illustrated by the simple program
        // X(a, b)." — the head name variable X is unconstrained.
        let fact = Rule::fact(Term::app(v("X"), vec![s("a"), s("b")]));
        assert!(!is_strongly_range_restricted_rule(&fact));
        assert!(is_range_restricted_hilog_rule(&fact));
    }
}
