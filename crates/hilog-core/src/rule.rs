//! Rules and queries.
//!
//! A HiLog rule is `A :- L1, ..., Ln` where `A` is a HiLog term and each `Li`
//! is a HiLog literal (Definition 2.1).  A query is a conjunction of literals
//! `?- L1, ..., Ln`; Section 5 explains how queries are classified as range
//! restricted by turning them into an auxiliary `answer(...)` rule.

use crate::literal::Literal;
use crate::subst::Substitution;
use crate::term::{Term, Var};
use crate::unify::rename_term;
use std::fmt;

/// A HiLog rule `head :- body`.  A rule with an empty body is a fact.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Rule {
    /// The head atom.
    pub head: Term,
    /// The body literals, in source order (order matters for the left-to-right
    /// sideways information passing of the magic-sets method, Section 6.1).
    pub body: Vec<Literal>,
}

impl Rule {
    /// Creates a rule.
    pub fn new(head: Term, body: Vec<Literal>) -> Self {
        Rule { head, body }
    }

    /// Creates a fact (a rule with an empty body).
    pub fn fact(head: Term) -> Self {
        Rule {
            head,
            body: Vec::new(),
        }
    }

    /// Returns `true` if the rule is a fact.
    pub fn is_fact(&self) -> bool {
        self.body.is_empty()
    }

    /// Returns `true` if the rule (head and body) contains no variables.
    pub fn is_ground(&self) -> bool {
        self.head.is_ground() && self.body.iter().all(Literal::is_ground)
    }

    /// Returns `true` if the body contains a negative literal.
    pub fn has_negation(&self) -> bool {
        self.body.iter().any(Literal::is_negative_atom)
    }

    /// Returns `true` if the body contains an aggregate literal.
    pub fn has_aggregate(&self) -> bool {
        self.body.iter().any(|l| matches!(l, Literal::Aggregate(_)))
    }

    /// The positive body atoms.
    pub fn positive_atoms(&self) -> impl Iterator<Item = &Term> {
        self.body.iter().filter_map(|l| match l {
            Literal::Pos(a) => Some(a),
            _ => None,
        })
    }

    /// The negative body atoms.
    pub fn negative_atoms(&self) -> impl Iterator<Item = &Term> {
        self.body.iter().filter_map(|l| match l {
            Literal::Neg(a) => Some(a),
            _ => None,
        })
    }

    /// All variables of the rule, in first-occurrence order (head first).
    pub fn variables(&self) -> Vec<Var> {
        let mut vars = self.head.variables();
        for lit in &self.body {
            for v in lit.variables() {
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
        }
        vars
    }

    /// Applies a substitution to the whole rule.
    pub fn apply(&self, theta: &Substitution) -> Rule {
        Rule {
            head: theta.apply(&self.head),
            body: self.body.iter().map(|l| l.apply(theta)).collect(),
        }
    }

    /// Renames all variables into the given generation, producing a variant
    /// of the rule that shares no variables with generation-0 terms.
    pub fn rename(&self, generation: u32) -> Rule {
        let rename_lit = |l: &Literal| match l {
            Literal::Pos(a) => Literal::Pos(rename_term(a, generation)),
            Literal::Neg(a) => Literal::Neg(rename_term(a, generation)),
            Literal::Builtin(b) => Literal::Builtin(crate::builtin::BuiltinCall {
                op: b.op,
                left: rename_term(&b.left, generation),
                right: rename_term(&b.right, generation),
            }),
            Literal::Aggregate(a) => Literal::Aggregate(crate::literal::Aggregate {
                func: a.func,
                result: rename_term(&a.result, generation),
                value: rename_term(&a.value, generation),
                pattern: rename_term(&a.pattern, generation),
            }),
        };
        Rule {
            head: rename_term(&self.head, generation),
            body: self.body.iter().map(rename_lit).collect(),
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.body.is_empty() {
            write!(f, "{}.", self.head)
        } else {
            write!(f, "{} :- ", self.head)?;
            for (i, l) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{l}")?;
            }
            write!(f, ".")
        }
    }
}

/// A query `?- L1, ..., Ln`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// The conjunction of literals to prove.
    pub literals: Vec<Literal>,
}

impl Query {
    /// Creates a query from literals.
    pub fn new(literals: Vec<Literal>) -> Self {
        Query { literals }
    }

    /// Creates a query asking for a single atom.
    pub fn atom(atom: Term) -> Self {
        Query {
            literals: vec![Literal::Pos(atom)],
        }
    }

    /// The free variables of the query, in first-occurrence order.
    pub fn variables(&self) -> Vec<Var> {
        let mut vars = Vec::new();
        for lit in &self.literals {
            for v in lit.variables() {
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
        }
        vars
    }

    /// Turns the query into the auxiliary rule
    /// `answer(X1, ..., Xn) :- L1, ..., Ln` used by Definition 5.5 to define
    /// range restriction of queries and by the magic-sets rewriting to seed
    /// evaluation.
    pub fn as_answer_rule(&self) -> Rule {
        let vars = self.variables();
        let head = Term::apps("answer", vars.into_iter().map(Term::Var).collect());
        Rule::new(head, self.literals.clone())
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?- ")?;
        for (i, l) in self.literals.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, ".")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tc_rule() -> Rule {
        // tc(G)(X,Y) :- G(X,Z), tc(G)(Z,Y).
        Rule::new(
            Term::app(
                Term::apps("tc", vec![Term::var("G")]),
                vec![Term::var("X"), Term::var("Y")],
            ),
            vec![
                Literal::pos(Term::app(
                    Term::var("G"),
                    vec![Term::var("X"), Term::var("Z")],
                )),
                Literal::pos(Term::app(
                    Term::apps("tc", vec![Term::var("G")]),
                    vec![Term::var("Z"), Term::var("Y")],
                )),
            ],
        )
    }

    #[test]
    fn display_rule_and_fact() {
        assert_eq!(
            tc_rule().to_string(),
            "tc(G)(X, Y) :- G(X, Z), tc(G)(Z, Y)."
        );
        assert_eq!(Rule::fact(Term::sym("s")).to_string(), "s.");
    }

    #[test]
    fn rule_classification() {
        let r = tc_rule();
        assert!(!r.is_fact());
        assert!(!r.has_negation());
        assert!(!r.is_ground());
        let f = Rule::fact(Term::apps("move", vec![Term::sym("a"), Term::sym("b")]));
        assert!(f.is_fact());
        assert!(f.is_ground());
    }

    #[test]
    fn variable_collection_order() {
        let vars = tc_rule().variables();
        let names: Vec<&str> = vars.iter().map(|v| v.name()).collect();
        assert_eq!(names, vec!["G", "X", "Y", "Z"]);
    }

    #[test]
    fn positive_and_negative_atom_iterators() {
        let win = Rule::new(
            Term::apps("winning", vec![Term::var("X")]),
            vec![
                Literal::pos(Term::apps("move", vec![Term::var("X"), Term::var("Y")])),
                Literal::neg(Term::apps("winning", vec![Term::var("Y")])),
            ],
        );
        assert_eq!(win.positive_atoms().count(), 1);
        assert_eq!(win.negative_atoms().count(), 1);
        assert!(win.has_negation());
    }

    #[test]
    fn rename_produces_variant_sharing_no_source_vars() {
        let r = tc_rule();
        let renamed = r.rename(3);
        for v in renamed.variables() {
            assert_eq!(v.generation(), 3);
        }
        // Structure preserved.
        assert_eq!(renamed.body.len(), r.body.len());
    }

    #[test]
    fn apply_substitution_to_rule() {
        let r = tc_rule();
        let theta = Substitution::from_bindings([(Var::new("G"), Term::sym("e"))]);
        let inst = r.apply(&theta);
        assert_eq!(inst.to_string(), "tc(e)(X, Y) :- e(X, Z), tc(e)(Z, Y).");
    }

    #[test]
    fn query_answer_rule() {
        // ?- tc(e)(a, Y).
        let q = Query::atom(Term::app(
            Term::apps("tc", vec![Term::sym("e")]),
            vec![Term::sym("a"), Term::var("Y")],
        ));
        let rule = q.as_answer_rule();
        assert_eq!(rule.to_string(), "answer(Y) :- tc(e)(a, Y).");
        assert_eq!(q.to_string(), "?- tc(e)(a, Y).");
        assert_eq!(q.variables().len(), 1);
    }
}
