//! Substitutions over HiLog terms.
//!
//! A substitution maps variables to terms.  Because HiLog variables may
//! occur in predicate-name position, applying a substitution can turn a
//! variable-named atom such as `G(X, Y)` into `move1(a, b)` — this is the
//! mechanism by which Figure 1's procedure and the magic-sets evaluation bind
//! predicate names at run time.

use crate::term::{Term, Var};
use std::collections::BTreeMap;
use std::fmt;

/// A (simultaneous) substitution from variables to terms.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Substitution {
    map: BTreeMap<Var, Term>,
}

impl Substitution {
    /// The empty substitution.
    pub fn new() -> Self {
        Substitution::default()
    }

    /// Builds a substitution from an explicit list of bindings.
    pub fn from_bindings(bindings: impl IntoIterator<Item = (Var, Term)>) -> Self {
        Substitution {
            map: bindings.into_iter().collect(),
        }
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up a variable's binding (not followed transitively).
    pub fn get(&self, var: &Var) -> Option<&Term> {
        self.map.get(var)
    }

    /// Returns `true` if the variable is bound.
    pub fn contains(&self, var: &Var) -> bool {
        self.map.contains_key(var)
    }

    /// Binds `var` to `term`, replacing any previous binding.
    pub fn bind(&mut self, var: Var, term: Term) {
        self.map.insert(var, term);
    }

    /// Removes the binding for `var`, if any.
    pub fn unbind(&mut self, var: &Var) {
        self.map.remove(var);
    }

    /// Iterates over the bindings in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (&Var, &Term)> {
        self.map.iter()
    }

    /// Resolves a variable through chains of variable-to-variable bindings,
    /// returning the final binding applied to this substitution.
    pub fn walk(&self, var: &Var) -> Option<Term> {
        let mut current = self.map.get(var)?;
        // Follow variable chains, guarding against accidental cycles.
        let mut steps = 0usize;
        loop {
            match current {
                Term::Var(v) => {
                    if let Some(next) = self.map.get(v) {
                        steps += 1;
                        if steps > self.map.len() {
                            // A cycle of variable bindings; return as-is.
                            return Some(self.apply(current));
                        }
                        current = next;
                    } else {
                        return Some(current.clone());
                    }
                }
                _ => return Some(self.apply(current)),
            }
        }
    }

    /// Applies the substitution to a term, replacing bound variables by their
    /// (recursively substituted) bindings.
    ///
    /// Subterms the substitution does not touch are **shared** with the input
    /// (an `Arc` bump, no rebuild), so repeated applications over mostly
    /// ground terms cost O(changed) and keep pointer identity — which the
    /// pointer fast paths of [`Term`]'s equality/ordering then exploit.
    pub fn apply(&self, term: &Term) -> Term {
        if self.map.is_empty() {
            return term.clone();
        }
        self.apply_shared(term, 0).unwrap_or_else(|| term.clone())
    }

    /// Returns `Some(rewritten)` when the substitution changes the term,
    /// `None` when it leaves it untouched (the caller reuses the original).
    fn apply_shared(&self, term: &Term, depth: usize) -> Option<Term> {
        // Depth guard: bindings produced by unification with occurs check are
        // acyclic, so this is defensive only.
        const MAX_DEPTH: usize = 10_000;
        match term {
            Term::Var(v) => match self.map.get(v) {
                Some(t) if depth < MAX_DEPTH && t != term => {
                    Some(self.apply_shared(t, depth + 1).unwrap_or_else(|| t.clone()))
                }
                Some(t) => Some(t.clone()),
                None => None,
            },
            Term::Sym(_) | Term::Int(_) => None,
            Term::App(name, args) => {
                let new_name = self.apply_shared(name, depth);
                // Rebuild the argument vector lazily: untouched prefixes are
                // copied (cheap Arc bumps) only once a change appears.
                let mut new_args: Option<Vec<Term>> = None;
                for (i, a) in args.iter().enumerate() {
                    match self.apply_shared(a, depth) {
                        Some(changed) => {
                            new_args
                                .get_or_insert_with(|| args[..i].to_vec())
                                .push(changed);
                        }
                        None => {
                            if let Some(v) = new_args.as_mut() {
                                v.push(a.clone());
                            }
                        }
                    }
                }
                if new_name.is_none() && new_args.is_none() {
                    return None;
                }
                let name = match new_name {
                    Some(n) => std::sync::Arc::new(n),
                    None => name.clone(),
                };
                let args: std::sync::Arc<[Term]> = match new_args {
                    Some(v) => v.into(),
                    None => args.clone(),
                };
                Some(Term::App(name, args))
            }
        }
    }

    /// Composes `self` with `other`: the result behaves like applying `self`
    /// first and then `other`.
    pub fn compose(&self, other: &Substitution) -> Substitution {
        let mut map = BTreeMap::new();
        for (v, t) in &self.map {
            map.insert(v.clone(), other.apply(t));
        }
        for (v, t) in &other.map {
            map.entry(v.clone()).or_insert_with(|| t.clone());
        }
        Substitution { map }
    }

    /// Restricts the substitution to the given variables.
    pub fn restrict(&self, vars: &[Var]) -> Substitution {
        Substitution {
            map: self
                .map
                .iter()
                .filter(|(v, _)| vars.contains(v))
                .map(|(v, t)| (v.clone(), t.clone()))
                .collect(),
        }
    }

    /// Returns `true` if every binding is to a ground term.
    pub fn is_ground(&self) -> bool {
        self.map.values().all(Term::is_ground)
    }
}

impl fmt::Debug for Substitution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Substitution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (v, t)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v} -> {t}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(Var, Term)> for Substitution {
    fn from_iter<I: IntoIterator<Item = (Var, Term)>>(iter: I) -> Self {
        Substitution {
            map: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_replaces_variables_in_name_position() {
        // G(X, Y) with G -> move1, X -> a  becomes  move1(a, Y)
        let atom = Term::app(Term::var("G"), vec![Term::var("X"), Term::var("Y")]);
        let theta = Substitution::from_bindings([
            (Var::new("G"), Term::sym("move1")),
            (Var::new("X"), Term::sym("a")),
        ]);
        assert_eq!(theta.apply(&atom).to_string(), "move1(a, Y)");
    }

    #[test]
    fn apply_is_recursive_through_bindings() {
        // X -> f(Y), Y -> a : applying to X yields f(a).
        let theta = Substitution::from_bindings([
            (Var::new("X"), Term::apps("f", vec![Term::var("Y")])),
            (Var::new("Y"), Term::sym("a")),
        ]);
        assert_eq!(theta.apply(&Term::var("X")).to_string(), "f(a)");
    }

    #[test]
    fn compose_applies_left_then_right() {
        let s1 = Substitution::from_bindings([(Var::new("X"), Term::var("Y"))]);
        let s2 = Substitution::from_bindings([(Var::new("Y"), Term::sym("a"))]);
        let c = s1.compose(&s2);
        assert_eq!(c.apply(&Term::var("X")), Term::sym("a"));
        assert_eq!(c.apply(&Term::var("Y")), Term::sym("a"));
    }

    #[test]
    fn restrict_keeps_only_requested_vars() {
        let theta = Substitution::from_bindings([
            (Var::new("X"), Term::sym("a")),
            (Var::new("Y"), Term::sym("b")),
        ]);
        let r = theta.restrict(&[Var::new("X")]);
        assert_eq!(r.len(), 1);
        assert!(r.contains(&Var::new("X")));
        assert!(!r.contains(&Var::new("Y")));
    }

    #[test]
    fn walk_follows_variable_chains() {
        let theta = Substitution::from_bindings([
            (Var::new("X"), Term::var("Y")),
            (Var::new("Y"), Term::var("Z")),
            (Var::new("Z"), Term::sym("c")),
        ]);
        assert_eq!(theta.walk(&Var::new("X")), Some(Term::sym("c")));
        assert_eq!(theta.walk(&Var::new("W")), None);
    }

    #[test]
    fn groundness_of_substitution() {
        let g = Substitution::from_bindings([(Var::new("X"), Term::sym("a"))]);
        assert!(g.is_ground());
        let ng = Substitution::from_bindings([(Var::new("X"), Term::var("Y"))]);
        assert!(!ng.is_ground());
    }

    #[test]
    fn display_format() {
        let theta = Substitution::from_bindings([(Var::new("X"), Term::sym("a"))]);
        assert_eq!(theta.to_string(), "{X -> a}");
    }
}
