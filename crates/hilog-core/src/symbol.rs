//! HiLog symbols.
//!
//! In HiLog there is no distinction between predicate, function and constant
//! symbols (Section 2 of the paper): a single pool of *symbols* is used in
//! every role, and every symbol may be applied at every arity.  A [`Symbol`]
//! is therefore just an immutable, cheaply clonable name.

use std::borrow::Borrow;
use std::collections::HashSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock};

/// The global symbol pool: every [`Symbol::new`] hands out the one shared
/// allocation for its name, so structurally equal symbols are always
/// pointer-equal and the equality fast path below never misses.
///
/// The pool grows while names are interned and is drained explicitly:
/// [`gc_symbol_pool`] drops every entry whose only owner is the pool itself,
/// which the durable serving layer runs at checkpoint time so a long-running
/// server ingesting arbitrary vocabularies no longer retains dead names for
/// process lifetime.  Persisted files use payload-local symbol ids (see
/// [`crate::codec`]), so collecting the pool never invalidates anything on
/// disk.
fn pool() -> &'static Mutex<HashSet<Arc<str>>> {
    static POOL: OnceLock<Mutex<HashSet<Arc<str>>>> = OnceLock::new();
    POOL.get_or_init(|| Mutex::new(HashSet::new()))
}

/// An interned, immutable HiLog symbol.
///
/// Symbols are hash-consed: [`Symbol::new`] interns the name in a global
/// pool, so two symbols with the same name always share one allocation.
/// Cloning is an [`Arc`] bump and equality is a pointer comparison (with a
/// defensive textual fallback); ordering and hashing remain textual so
/// collections stay deterministic and `Borrow<str>` lookups keep working.
///
/// ```
/// use hilog_core::Symbol;
/// let a = Symbol::new("tc");
/// let b = Symbol::new("tc");
/// assert_eq!(a, b);
/// assert_eq!(a.name(), "tc");
/// ```
#[derive(Clone)]
pub struct Symbol(Arc<str>);

impl Symbol {
    /// Creates a symbol with the given name, interning it in the global pool.
    pub fn new(name: impl AsRef<str>) -> Self {
        let name = name.as_ref();
        let mut pool = pool().lock().unwrap_or_else(|e| e.into_inner());
        if let Some(existing) = pool.get(name) {
            return Symbol(existing.clone());
        }
        let arc: Arc<str> = Arc::from(name);
        pool.insert(arc.clone());
        Symbol(arc)
    }

    /// Returns the textual name of the symbol.
    pub fn name(&self) -> &str {
        &self.0
    }

    /// Returns `true` if the symbol requires quoting in concrete syntax,
    /// i.e. it does not match `[a-z][A-Za-z0-9_]*`.
    pub fn needs_quoting(&self) -> bool {
        let mut chars = self.0.chars();
        match chars.next() {
            Some(c) if c.is_ascii_lowercase() => {
                !chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
            }
            _ => true,
        }
    }
}

/// A point-in-time census of the global symbol pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymbolPoolStats {
    /// Total names currently interned (live or not).
    pub interned: usize,
    /// Names with at least one owner outside the pool.  While the pool lock
    /// is held no `Symbol` can be created or destroyed, so the strong-count
    /// probe is exact, not racy.
    pub live: usize,
}

/// Counts interned and live names in the global pool.
pub fn symbol_pool_stats() -> SymbolPoolStats {
    let pool = pool().lock().unwrap_or_else(|e| e.into_inner());
    let live = pool.iter().filter(|arc| Arc::strong_count(arc) > 1).count();
    SymbolPoolStats {
        interned: pool.len(),
        live,
    }
}

/// Garbage-collects the global symbol pool: drops every interned name whose
/// only remaining owner is the pool itself, returning how many were dropped.
///
/// Soundness: `Symbol::new` takes the same lock, so no new reference to an
/// entry can appear between the strong-count check and the drop.  A name
/// collected here and re-interned later simply gets a fresh allocation; the
/// textual fallback in `PartialEq` keeps equality correct across pool
/// generations.
pub fn gc_symbol_pool() -> usize {
    let mut pool = pool().lock().unwrap_or_else(|e| e.into_inner());
    let before = pool.len();
    pool.retain(|arc| Arc::strong_count(arc) > 1);
    before - pool.len()
}

impl PartialEq for Symbol {
    fn eq(&self, other: &Self) -> bool {
        // Interning makes equal names pointer-equal; the textual fallback
        // matters across pool generations — after `gc_symbol_pool` a
        // re-interned name gets a fresh allocation, so equality stays
        // structural by definition.
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl Eq for Symbol {}

impl Hash for Symbol {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Textual, so it agrees with `str`'s hash (required by `Borrow<str>`).
        self.0.hash(state);
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if Arc::ptr_eq(&self.0, &other.0) {
            return std::cmp::Ordering::Equal;
        }
        self.0.cmp(&other.0)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({})", self.0)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.needs_quoting() {
            write!(f, "'{}'", self.0.replace('\'', "\\'"))
        } else {
            write!(f, "{}", self.0)
        }
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::new(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Self {
        Symbol::new(s)
    }
}

impl Borrow<str> for Symbol {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Symbol {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn equality_is_by_name() {
        assert_eq!(Symbol::new("move"), Symbol::new("move"));
        assert_ne!(Symbol::new("move"), Symbol::new("move1"));
    }

    #[test]
    fn clones_share_storage() {
        let a = Symbol::new("winning");
        let b = a.clone();
        assert_eq!(a, b);
        // Both point at the same allocation.
        assert!(Arc::ptr_eq(&a.0, &b.0));
    }

    #[test]
    fn independent_constructions_are_hash_consed() {
        // Two symbols built from the same text share the pooled allocation,
        // so the equality fast path is a pointer comparison.
        let a = Symbol::new("hash_consed_probe");
        let b = Symbol::new(String::from("hash_consed_probe"));
        assert!(Arc::ptr_eq(&a.0, &b.0));
        assert_eq!(a, b);
    }

    #[test]
    fn hash_set_membership() {
        let mut set = HashSet::new();
        set.insert(Symbol::new("game"));
        assert!(set.contains(&Symbol::new("game")));
        assert!(!set.contains(&Symbol::new("games")));
    }

    #[test]
    fn display_plain_and_quoted() {
        assert_eq!(Symbol::new("tc").to_string(), "tc");
        assert_eq!(Symbol::new("Tc").to_string(), "'Tc'");
        assert_eq!(Symbol::new("hello world").to_string(), "'hello world'");
        assert_eq!(Symbol::new("x_1").to_string(), "x_1");
    }

    #[test]
    fn needs_quoting_rules() {
        assert!(!Symbol::new("abc").needs_quoting());
        assert!(!Symbol::new("a1_b").needs_quoting());
        assert!(Symbol::new("1abc").needs_quoting());
        assert!(Symbol::new("Abc").needs_quoting());
        assert!(Symbol::new("a-b").needs_quoting());
        assert!(Symbol::new("").needs_quoting());
    }

    #[test]
    fn borrow_as_str() {
        let s = Symbol::new("assoc");
        let set: HashSet<Symbol> = [s.clone()].into_iter().collect();
        assert!(set.contains("assoc"));
    }

    #[test]
    fn gc_drops_only_pool_owned_names() {
        // Other tests share the global pool, so assert relative effects on
        // names no other test uses.
        let keep = Symbol::new("gc_probe_kept_zq");
        {
            let _drop_me = Symbol::new("gc_probe_dropped_zq");
        }
        let stats = symbol_pool_stats();
        assert!(stats.interned >= stats.live);
        gc_symbol_pool();
        let pool = pool().lock().unwrap_or_else(|e| e.into_inner());
        assert!(pool.get("gc_probe_kept_zq").is_some());
        assert!(pool.get("gc_probe_dropped_zq").is_none());
        drop(pool);
        // A collected name re-interns fine and stays equal to survivors of
        // the same text.
        let again = Symbol::new("gc_probe_dropped_zq");
        assert_eq!(again, Symbol::new("gc_probe_dropped_zq"));
        assert_eq!(keep, Symbol::new("gc_probe_kept_zq"));
    }

    #[test]
    fn equality_survives_pool_generations() {
        let old = Symbol::new("gc_generation_probe_zq");
        // Simulate a pool generation change: force the entry out, re-intern.
        {
            let mut pool = pool().lock().unwrap_or_else(|e| e.into_inner());
            pool.remove("gc_generation_probe_zq");
        }
        let new = Symbol::new("gc_generation_probe_zq");
        assert!(!Arc::ptr_eq(&old.0, &new.0));
        assert_eq!(old, new);
        assert_eq!(old.cmp(&new), std::cmp::Ordering::Equal);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut v = [Symbol::new("b"), Symbol::new("a"), Symbol::new("c")];
        v.sort();
        assert_eq!(
            v.iter().map(|s| s.name().to_string()).collect::<Vec<_>>(),
            vec!["a", "b", "c"]
        );
    }
}
