//! HiLog symbols.
//!
//! In HiLog there is no distinction between predicate, function and constant
//! symbols (Section 2 of the paper): a single pool of *symbols* is used in
//! every role, and every symbol may be applied at every arity.  A [`Symbol`]
//! is therefore just an immutable, cheaply clonable name.

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

/// An interned, immutable HiLog symbol.
///
/// Symbols are cheap to clone (an [`Arc`] bump) and compare by their textual
/// name.  Equality, ordering and hashing are all derived from the name, so a
/// symbol created twice from the same string behaves identically regardless
/// of provenance.
///
/// ```
/// use hilog_core::Symbol;
/// let a = Symbol::new("tc");
/// let b = Symbol::new("tc");
/// assert_eq!(a, b);
/// assert_eq!(a.name(), "tc");
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(Arc<str>);

impl Symbol {
    /// Creates a symbol with the given name.
    pub fn new(name: impl AsRef<str>) -> Self {
        Symbol(Arc::from(name.as_ref()))
    }

    /// Returns the textual name of the symbol.
    pub fn name(&self) -> &str {
        &self.0
    }

    /// Returns `true` if the symbol requires quoting in concrete syntax,
    /// i.e. it does not match `[a-z][A-Za-z0-9_]*`.
    pub fn needs_quoting(&self) -> bool {
        let mut chars = self.0.chars();
        match chars.next() {
            Some(c) if c.is_ascii_lowercase() => {
                !chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
            }
            _ => true,
        }
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({})", self.0)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.needs_quoting() {
            write!(f, "'{}'", self.0.replace('\'', "\\'"))
        } else {
            write!(f, "{}", self.0)
        }
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::new(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Self {
        Symbol::new(s)
    }
}

impl Borrow<str> for Symbol {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Symbol {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn equality_is_by_name() {
        assert_eq!(Symbol::new("move"), Symbol::new("move"));
        assert_ne!(Symbol::new("move"), Symbol::new("move1"));
    }

    #[test]
    fn clones_share_storage() {
        let a = Symbol::new("winning");
        let b = a.clone();
        assert_eq!(a, b);
        // Both point at the same allocation.
        assert!(Arc::ptr_eq(&a.0, &b.0));
    }

    #[test]
    fn hash_set_membership() {
        let mut set = HashSet::new();
        set.insert(Symbol::new("game"));
        assert!(set.contains(&Symbol::new("game")));
        assert!(!set.contains(&Symbol::new("games")));
    }

    #[test]
    fn display_plain_and_quoted() {
        assert_eq!(Symbol::new("tc").to_string(), "tc");
        assert_eq!(Symbol::new("Tc").to_string(), "'Tc'");
        assert_eq!(Symbol::new("hello world").to_string(), "'hello world'");
        assert_eq!(Symbol::new("x_1").to_string(), "x_1");
    }

    #[test]
    fn needs_quoting_rules() {
        assert!(!Symbol::new("abc").needs_quoting());
        assert!(!Symbol::new("a1_b").needs_quoting());
        assert!(Symbol::new("1abc").needs_quoting());
        assert!(Symbol::new("Abc").needs_quoting());
        assert!(Symbol::new("a-b").needs_quoting());
        assert!(Symbol::new("").needs_quoting());
    }

    #[test]
    fn borrow_as_str() {
        let s = Symbol::new("assoc");
        let set: HashSet<Symbol> = [s.clone()].into_iter().collect();
        assert!(set.contains("assoc"));
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut v = [Symbol::new("b"), Symbol::new("a"), Symbol::new("c")];
        v.sort();
        assert_eq!(
            v.iter().map(|s| s.name().to_string()).collect::<Vec<_>>(),
            vec!["a", "b", "c"]
        );
    }
}
