//! HiLog terms.
//!
//! Definition 2.1 of the paper: every symbol is a term, every variable is a
//! term, and if `t, t1, ..., tn` are terms (`n >= 0`) then so is
//! `t(t1, ..., tn)`.  There is no distinction between terms and atoms, nor
//! between predicate, function and constant symbols; the Herbrand base and
//! Herbrand universe coincide.
//!
//! Following footnote 1 of the paper we admit 0-ary applications and keep the
//! 0-ary atom `p()` distinct from the bare symbol `p`.
//!
//! Integers are admitted as an extra leaf kind so that the parts-explosion
//! program of Section 6 (which multiplies and sums quantities) can be
//! expressed; they behave like ordinary constant symbols with respect to the
//! semantics.

use crate::symbol::Symbol;
use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A HiLog variable.
///
/// Variables may appear both in argument positions and in predicate-name
/// positions (e.g. `G` in `tc(G)(X, Y)` or `X` in `p :- X(Y), Y(X)`).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var {
    name: Symbol,
    /// Renaming generation.  Source variables have generation 0; fresh
    /// variables produced during evaluation get positive generations so they
    /// can never collide with source variables.
    generation: u32,
}

impl Var {
    /// Creates a source-level variable with the given name.
    pub fn new(name: impl AsRef<str>) -> Self {
        Var {
            name: Symbol::new(name),
            generation: 0,
        }
    }

    /// Creates a renamed copy of this variable in the given generation.
    pub fn with_generation(&self, generation: u32) -> Self {
        Var {
            name: self.name.clone(),
            generation,
        }
    }

    /// The variable's base name (without the generation suffix).
    pub fn name(&self) -> &str {
        self.name.name()
    }

    /// The renaming generation (0 for source variables).
    pub fn generation(&self) -> u32 {
        self.generation
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Var({self})")
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.generation == 0 {
            write!(f, "{}", self.name.name())
        } else {
            write!(f, "{}_{}", self.name.name(), self.generation)
        }
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Self {
        Var::new(s)
    }
}

/// A HiLog term (equivalently, a HiLog atom).
///
/// Application nodes are `Arc`-backed, so cloning any term is O(1) reference
/// bumps — a substitution, a store insertion or a table answer never deep
/// copies.  Equality and ordering are structural but short-circuit on shared
/// pointers, which the Arc-sharing [`crate::subst::Substitution::apply`] and
/// the hash-consed [`Symbol`] pool make the common case on evaluation hot
/// paths.
#[derive(Clone)]
pub enum Term {
    /// A variable.
    Var(Var),
    /// A symbol (predicate / function / constant name — HiLog does not
    /// distinguish them).
    Sym(Symbol),
    /// An integer constant.  Semantically an ordinary constant; provided so
    /// arithmetic builtins and aggregation have something to compute with.
    Int(i64),
    /// An application `name(args...)`: the *name* is itself an arbitrary
    /// term, and `args` may be empty (the 0-ary atom `p()` of footnote 1).
    App(Arc<Term>, Arc<[Term]>),
}

impl Term {
    /// Builds a variable term.
    pub fn var(name: impl AsRef<str>) -> Term {
        Term::Var(Var::new(name))
    }

    /// Builds a symbol term.
    pub fn sym(name: impl AsRef<str>) -> Term {
        Term::Sym(Symbol::new(name))
    }

    /// Builds an integer term.
    pub fn int(value: i64) -> Term {
        Term::Int(value)
    }

    /// Builds the application of `name` to `args`.
    pub fn app(name: Term, args: Vec<Term>) -> Term {
        Term::App(Arc::new(name), args.into())
    }

    /// Builds the common case `symbol(args...)`.
    pub fn apps(name: impl AsRef<str>, args: Vec<Term>) -> Term {
        Term::app(Term::sym(name), args)
    }

    /// The canonical list constructors used by the concrete syntax:
    /// `[]` is the symbol `nil`, `[H|T]` is `cons(H, T)`.
    pub fn nil() -> Term {
        Term::sym("nil")
    }

    /// Builds `cons(head, tail)`.
    pub fn cons(head: Term, tail: Term) -> Term {
        Term::apps("cons", vec![head, tail])
    }

    /// Builds a proper list from the given elements.
    pub fn list(elements: Vec<Term>) -> Term {
        let mut acc = Term::nil();
        for e in elements.into_iter().rev() {
            acc = Term::cons(e, acc);
        }
        acc
    }

    /// Returns `true` if the term contains no variables.
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var(_) => false,
            Term::Sym(_) | Term::Int(_) => true,
            Term::App(name, args) => name.is_ground() && args.iter().all(Term::is_ground),
        }
    }

    /// Returns `true` if the term is a bare variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// Returns `true` if the term is a bare symbol or integer.
    pub fn is_atomic_constant(&self) -> bool {
        matches!(self, Term::Sym(_) | Term::Int(_))
    }

    /// The *name* of the term when viewed as an atom (Definition 2.1):
    /// for `t(t1, ..., tn)` the name is `t`; a bare symbol, integer or
    /// variable is its own name.
    pub fn name(&self) -> &Term {
        match self {
            Term::App(name, _) => name,
            other => other,
        }
    }

    /// The arguments of the term when viewed as an atom; empty for
    /// non-applications.
    pub fn args(&self) -> &[Term] {
        match self {
            Term::App(_, args) => args,
            _ => &[],
        }
    }

    /// The arity of the term when viewed as an atom: `Some(n)` for an n-ary
    /// application, `None` for a bare symbol / variable / integer (which the
    /// paper distinguishes from the 0-ary application `p()`).
    pub fn arity(&self) -> Option<usize> {
        match self {
            Term::App(_, args) => Some(args.len()),
            _ => None,
        }
    }

    /// The *outermost functor* of the predicate name: follows `name()`
    /// recursively until a non-application is reached.  Used by the
    /// stratification analyses of Section 6 ("we can require only that the
    /// outermost functor of every predicate name is ground").
    pub fn outermost_functor(&self) -> &Term {
        let mut t = self;
        while let Term::App(name, _) = t {
            t = name;
        }
        t
    }

    /// Collects the variables of the term, in first-occurrence order.
    pub fn variables(&self) -> Vec<Var> {
        let mut out = Vec::new();
        let mut seen = BTreeSet::new();
        self.collect_variables(&mut out, &mut seen);
        out
    }

    fn collect_variables(&self, out: &mut Vec<Var>, seen: &mut BTreeSet<Var>) {
        match self {
            Term::Var(v) => {
                if seen.insert(v.clone()) {
                    out.push(v.clone());
                }
            }
            Term::Sym(_) | Term::Int(_) => {}
            Term::App(name, args) => {
                name.collect_variables(out, seen);
                for a in args.iter() {
                    a.collect_variables(out, seen);
                }
            }
        }
    }

    /// Returns `true` if the variable occurs anywhere in the term.
    pub fn contains_var(&self, var: &Var) -> bool {
        match self {
            Term::Var(v) => v == var,
            Term::Sym(_) | Term::Int(_) => false,
            Term::App(name, args) => {
                name.contains_var(var) || args.iter().any(|a| a.contains_var(var))
            }
        }
    }

    /// Collects every symbol occurring in the term.
    pub fn symbols(&self) -> BTreeSet<Symbol> {
        let mut out = BTreeSet::new();
        self.collect_symbols(&mut out);
        out
    }

    /// Collects every symbol occurring in the term into `out`.
    pub fn collect_symbols(&self, out: &mut BTreeSet<Symbol>) {
        match self {
            Term::Var(_) | Term::Int(_) => {}
            Term::Sym(s) => {
                out.insert(s.clone());
            }
            Term::App(name, args) => {
                name.collect_symbols(out);
                for a in args.iter() {
                    a.collect_symbols(out);
                }
            }
        }
    }

    /// Collects every integer constant occurring in the term into `out`.
    pub fn collect_integers(&self, out: &mut BTreeSet<i64>) {
        match self {
            Term::Int(i) => {
                out.insert(*i);
            }
            Term::Var(_) | Term::Sym(_) => {}
            Term::App(name, args) => {
                name.collect_integers(out);
                for a in args.iter() {
                    a.collect_integers(out);
                }
            }
        }
    }

    /// Term depth: leaves have depth 1, an application has depth
    /// `1 + max(depth(name), depth(args))`.
    pub fn depth(&self) -> usize {
        match self {
            Term::Var(_) | Term::Sym(_) | Term::Int(_) => 1,
            Term::App(name, args) => {
                1 + name
                    .depth()
                    .max(args.iter().map(Term::depth).max().unwrap_or(0))
            }
        }
    }

    /// Total number of nodes in the term tree.
    pub fn size(&self) -> usize {
        match self {
            Term::Var(_) | Term::Sym(_) | Term::Int(_) => 1,
            Term::App(name, args) => 1 + name.size() + args.iter().map(Term::size).sum::<usize>(),
        }
    }

    /// Iterates over every subterm (including the term itself), pre-order.
    pub fn subterms(&self) -> Vec<&Term> {
        let mut out = Vec::new();
        let mut stack = vec![self];
        while let Some(t) = stack.pop() {
            out.push(t);
            if let Term::App(name, args) = t {
                stack.push(name);
                for a in args.iter().rev() {
                    stack.push(a);
                }
            }
        }
        out
    }

    /// Returns `true` if the term is *normal-shaped*: of the form
    /// `p(c1, ..., cn)` or a bare symbol, where `p` is a symbol and every
    /// `ci` is built from symbols and integers using only symbol-headed
    /// applications — i.e. a term a conventional (first-order) program could
    /// contain as a ground atom.  Used when relating HiLog models to normal
    /// models (Theorems 4.1 and 4.2).
    pub fn is_normal_atom_shape(&self) -> bool {
        match self {
            Term::Sym(_) => true,
            Term::App(name, args) => {
                matches!(**name, Term::Sym(_)) && args.iter().all(Term::is_first_order_term)
            }
            _ => false,
        }
    }

    /// Returns `true` if the term is a first-order *term* shape: symbols and
    /// integers combined by symbol-headed applications, no variables.
    pub fn is_first_order_term(&self) -> bool {
        match self {
            Term::Sym(_) | Term::Int(_) => true,
            Term::App(name, args) => {
                matches!(**name, Term::Sym(_)) && args.iter().all(Term::is_first_order_term)
            }
            Term::Var(_) => false,
        }
    }
}

impl PartialEq for Term {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Term::Var(a), Term::Var(b)) => a == b,
            (Term::Sym(a), Term::Sym(b)) => a == b,
            (Term::Int(a), Term::Int(b)) => a == b,
            (Term::App(n1, a1), Term::App(n2, a2)) => {
                (Arc::ptr_eq(n1, n2) || n1 == n2) && (Arc::ptr_eq(a1, a2) || a1 == a2)
            }
            _ => false,
        }
    }
}

impl Eq for Term {}

impl Hash for Term {
    fn hash<H: Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            Term::Var(v) => v.hash(state),
            Term::Sym(s) => s.hash(state),
            Term::Int(i) => i.hash(state),
            Term::App(name, args) => {
                name.hash(state);
                args.hash(state);
            }
        }
    }
}

impl PartialOrd for Term {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Term {
    fn cmp(&self, other: &Self) -> Ordering {
        // Variant order matches the previous derived ordering:
        // Var < Sym < Int < App.
        match (self, other) {
            (Term::Var(a), Term::Var(b)) => a.cmp(b),
            (Term::Var(_), _) => Ordering::Less,
            (_, Term::Var(_)) => Ordering::Greater,
            (Term::Sym(a), Term::Sym(b)) => a.cmp(b),
            (Term::Sym(_), _) => Ordering::Less,
            (_, Term::Sym(_)) => Ordering::Greater,
            (Term::Int(a), Term::Int(b)) => a.cmp(b),
            (Term::Int(_), _) => Ordering::Less,
            (_, Term::Int(_)) => Ordering::Greater,
            (Term::App(n1, a1), Term::App(n2, a2)) => {
                let name_cmp = if Arc::ptr_eq(n1, n2) {
                    Ordering::Equal
                } else {
                    n1.cmp(n2)
                };
                name_cmp.then_with(|| {
                    if Arc::ptr_eq(a1, a2) {
                        Ordering::Equal
                    } else {
                        a1.iter().cmp(a2.iter())
                    }
                })
            }
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Sym(s) => write!(f, "{s}"),
            Term::Int(i) => write!(f, "{i}"),
            Term::App(name, args) => {
                // Pretty-print lists.
                if let Some(items) = try_list_view(self) {
                    write!(f, "[")?;
                    for (i, item) in items.0.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{item}")?;
                    }
                    if let Some(tail) = items.1 {
                        write!(f, " | {tail}")?;
                    }
                    return write!(f, "]");
                }
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// If the term is a `cons`/`nil` list, returns its elements and an optional
/// non-list tail.
fn try_list_view(term: &Term) -> Option<(Vec<&Term>, Option<&Term>)> {
    let mut items = Vec::new();
    let mut cur = term;
    let mut saw_cons = false;
    loop {
        match cur {
            Term::App(name, args)
                if args.len() == 2 && matches!(&**name, Term::Sym(s) if s.name() == "cons") =>
            {
                saw_cons = true;
                items.push(&args[0]);
                cur = &args[1];
            }
            Term::Sym(s) if s.name() == "nil" => {
                return if saw_cons { Some((items, None)) } else { None };
            }
            other => {
                return if saw_cons {
                    Some((items, Some(other)))
                } else {
                    None
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tc_atom() -> Term {
        // tc(G)(X, Y)
        Term::app(
            Term::apps("tc", vec![Term::var("G")]),
            vec![Term::var("X"), Term::var("Y")],
        )
    }

    #[test]
    fn display_nested_application() {
        assert_eq!(tc_atom().to_string(), "tc(G)(X, Y)");
        let t = Term::app(
            Term::apps("p", vec![Term::sym("a"), Term::var("X")]),
            vec![Term::var("Y")],
        );
        assert_eq!(t.to_string(), "p(a, X)(Y)");
    }

    #[test]
    fn zero_ary_application_is_distinct_from_symbol() {
        let sym = Term::sym("p");
        let app0 = Term::apps("p", vec![]);
        assert_ne!(sym, app0);
        assert_eq!(app0.to_string(), "p()");
        assert_eq!(app0.arity(), Some(0));
        assert_eq!(sym.arity(), None);
    }

    #[test]
    fn groundness() {
        assert!(!tc_atom().is_ground());
        let g = Term::app(
            Term::apps("tc", vec![Term::sym("e")]),
            vec![Term::sym("a"), Term::sym("b")],
        );
        assert!(g.is_ground());
        assert!(Term::int(42).is_ground());
    }

    #[test]
    fn variables_in_name_position_are_collected() {
        let t = Term::app(Term::var("G"), vec![Term::var("X"), Term::var("G").clone()]);
        let vars = t.variables();
        assert_eq!(vars.len(), 2);
        assert_eq!(vars[0].name(), "G");
        assert_eq!(vars[1].name(), "X");
    }

    #[test]
    fn name_args_and_outermost_functor() {
        let t = tc_atom();
        assert_eq!(t.name().to_string(), "tc(G)");
        assert_eq!(t.args().len(), 2);
        assert_eq!(t.outermost_functor(), &Term::sym("tc"));
        assert_eq!(Term::sym("p").outermost_functor(), &Term::sym("p"));
    }

    #[test]
    fn depth_and_size() {
        let t = tc_atom();
        // tc(G) has depth 2; tc(G)(X,Y) has depth 3.
        assert_eq!(t.depth(), 3);
        assert_eq!(t.size(), 6);
        assert_eq!(Term::sym("a").depth(), 1);
        assert_eq!(Term::sym("a").size(), 1);
    }

    #[test]
    fn symbol_collection() {
        let t = Term::app(
            Term::apps("tc", vec![Term::sym("e")]),
            vec![Term::sym("a"), Term::var("Y")],
        );
        let syms = t.symbols();
        let names: Vec<&str> = syms.iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["a", "e", "tc"]);
    }

    #[test]
    fn list_sugar_roundtrip() {
        let l = Term::list(vec![Term::sym("a"), Term::sym("b"), Term::int(3)]);
        assert_eq!(l.to_string(), "[a, b, 3]");
        let open = Term::cons(Term::var("X"), Term::var("R"));
        assert_eq!(open.to_string(), "[X | R]");
        assert_eq!(Term::nil().to_string(), "nil");
        assert_eq!(Term::list(vec![]).to_string(), "nil");
    }

    #[test]
    fn normal_atom_shape() {
        let normal = Term::apps("q", vec![Term::sym("a")]);
        assert!(normal.is_normal_atom_shape());
        let hilog = Term::app(
            Term::apps("tc", vec![Term::sym("e")]),
            vec![Term::sym("a"), Term::sym("b")],
        );
        assert!(!hilog.is_normal_atom_shape());
        // p(f(a)) with first-order nesting is a normal shape.
        let fo = Term::apps("p", vec![Term::apps("f", vec![Term::sym("a")])]);
        assert!(fo.is_normal_atom_shape());
        // A predicate name as an argument is *still* a first-order term
        // shape — the distinction only matters for which symbols are used.
        assert!(Term::apps("q", vec![Term::sym("p")]).is_normal_atom_shape());
        assert!(!Term::sym("p").is_first_order_term() || Term::sym("p").is_first_order_term());
    }

    #[test]
    fn subterms_enumeration() {
        let t = tc_atom();
        let subs = t.subterms();
        assert_eq!(subs.len(), 6);
        assert!(subs.contains(&&Term::var("G")));
        assert!(subs.contains(&&Term::sym("tc")));
    }

    #[test]
    fn contains_var() {
        let t = tc_atom();
        assert!(t.contains_var(&Var::new("G")));
        assert!(t.contains_var(&Var::new("X")));
        assert!(!t.contains_var(&Var::new("Z")));
    }

    #[test]
    fn fresh_variable_generations_are_distinct() {
        let x = Var::new("X");
        let x1 = x.with_generation(1);
        assert_ne!(x, x1);
        assert_eq!(x1.to_string(), "X_1");
        assert_eq!(x.to_string(), "X");
    }
}
