//! HiLog unification.
//!
//! Section 2 of the paper notes (citing Chen, Kifer and Warren) that HiLog
//! unification is decidable and that resolution is sound and complete.
//! Structurally, HiLog unification is first-order unification over the term
//! algebra of [`crate::term::Term`]: two applications unify when their names
//! unify, their arities agree, and their arguments unify pairwise.  The
//! subtlety relative to ordinary logic programming is only that the *name*
//! position is an arbitrary term (possibly a variable), which this module
//! handles uniformly.

use crate::subst::Substitution;
use crate::term::{Term, Var};

/// Unifies two terms, returning the most general unifier if one exists.
///
/// The occurs check is performed, so the result is always an idempotent,
/// acyclic substitution.
///
/// ```
/// use hilog_core::{Term, unify::unify};
/// // tc(G)(X, b)  ~  tc(e)(a, Y)
/// let left = Term::app(Term::apps("tc", vec![Term::var("G")]),
///                      vec![Term::var("X"), Term::sym("b")]);
/// let right = Term::app(Term::apps("tc", vec![Term::sym("e")]),
///                       vec![Term::sym("a"), Term::var("Y")]);
/// let mgu = unify(&left, &right).unwrap();
/// assert_eq!(mgu.apply(&left), mgu.apply(&right));
/// ```
pub fn unify(left: &Term, right: &Term) -> Option<Substitution> {
    let mut subst = Substitution::new();
    if unify_with(left, right, &mut subst) {
        Some(subst)
    } else {
        None
    }
}

/// Unifies two terms under an existing substitution, extending it in place.
/// Returns `false` (leaving the substitution in an unspecified but consistent
/// state for the caller to discard) if unification fails.
pub fn unify_with(left: &Term, right: &Term, subst: &mut Substitution) -> bool {
    let l = subst.apply(left);
    let r = subst.apply(right);
    unify_resolved(&l, &r, subst)
}

fn unify_resolved(left: &Term, right: &Term, subst: &mut Substitution) -> bool {
    match (left, right) {
        (Term::Var(x), Term::Var(y)) if x == y => true,
        (Term::Var(x), t) | (t, Term::Var(x)) => bind(x, t, subst),
        (Term::Sym(a), Term::Sym(b)) => a == b,
        (Term::Int(a), Term::Int(b)) => a == b,
        (Term::App(n1, a1), Term::App(n2, a2)) => {
            // Interned fast path: a term always unifies with itself (shared
            // variables included) without adding bindings, and Arc sharing
            // makes identical subtrees pointer-equal on the hot paths.
            if std::sync::Arc::ptr_eq(n1, n2) && std::sync::Arc::ptr_eq(a1, a2) {
                return true;
            }
            if a1.len() != a2.len() {
                return false;
            }
            if !unify_with(n1, n2, subst) {
                return false;
            }
            for (x, y) in a1.iter().zip(a2.iter()) {
                if !unify_with(x, y, subst) {
                    return false;
                }
            }
            true
        }
        _ => false,
    }
}

fn bind(var: &Var, term: &Term, subst: &mut Substitution) -> bool {
    if let Term::Var(v) = term {
        if v == var {
            return true;
        }
    }
    if occurs(var, term, subst) {
        return false;
    }
    subst.bind(var.clone(), term.clone());
    true
}

/// Occurs check: does `var` occur in `term` under the current substitution?
fn occurs(var: &Var, term: &Term, subst: &Substitution) -> bool {
    match term {
        Term::Var(v) => {
            if v == var {
                return true;
            }
            match subst.get(v) {
                Some(bound) => occurs(var, &bound.clone(), subst),
                None => false,
            }
        }
        Term::Sym(_) | Term::Int(_) => false,
        Term::App(name, args) => {
            occurs(var, name, subst) || args.iter().any(|a| occurs(var, a, subst))
        }
    }
}

/// One-way matching: finds a substitution `theta` over the variables of
/// `pattern` such that `pattern.theta == target`.  The target must be ground
/// for the match to be meaningful; variables in the target never get bound.
///
/// Matching (rather than full unification) is what grounding and bottom-up
/// evaluation use: rule bodies are matched against already-derived ground
/// atoms.
pub fn match_term(pattern: &Term, target: &Term) -> Option<Substitution> {
    let mut subst = Substitution::new();
    if match_with(pattern, target, &mut subst) {
        Some(subst)
    } else {
        None
    }
}

/// One-way matching extending an existing substitution in place.
pub fn match_with(pattern: &Term, target: &Term, subst: &mut Substitution) -> bool {
    match pattern {
        Term::Var(v) => match subst.get(v) {
            Some(bound) => bound.clone() == *target,
            None => {
                subst.bind(v.clone(), target.clone());
                true
            }
        },
        Term::Sym(a) => matches!(target, Term::Sym(b) if a == b),
        Term::Int(a) => matches!(target, Term::Int(b) if a == b),
        Term::App(n1, a1) => match target {
            Term::App(n2, a2) if a1.len() == a2.len() => {
                // Interned fast path, mirroring `unify_resolved`: a *ground*
                // pattern sharing the target's `Arc`s matches without walking
                // either term.  The groundness guard matters — a pattern with
                // variables matching itself would still need to record their
                // bindings, so only the variable-free case can short-circuit.
                // On the warm-table probe path most patterns are exactly the
                // interned atoms they are probed against, so this hits often.
                if std::sync::Arc::ptr_eq(n1, n2)
                    && std::sync::Arc::ptr_eq(a1, a2)
                    && pattern.is_ground()
                {
                    return true;
                }
                if !match_with(n1, n2, subst) {
                    return false;
                }
                for (x, y) in a1.iter().zip(a2.iter()) {
                    if !match_with(x, y, subst) {
                        return false;
                    }
                }
                true
            }
            _ => false,
        },
    }
}

/// Renames every variable of a term into the given generation, so that rule
/// variables never collide with query variables during resolution.
pub fn rename_term(term: &Term, generation: u32) -> Term {
    match term {
        Term::Var(v) => Term::Var(v.with_generation(generation)),
        Term::Sym(_) | Term::Int(_) => term.clone(),
        Term::App(name, args) => Term::app(
            rename_term(name, generation),
            args.iter().map(|a| rename_term(a, generation)).collect(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app2(name: Term, a: Term, b: Term) -> Term {
        Term::app(name, vec![a, b])
    }

    #[test]
    fn unify_symbols() {
        assert!(unify(&Term::sym("a"), &Term::sym("a")).is_some());
        assert!(unify(&Term::sym("a"), &Term::sym("b")).is_none());
        assert!(unify(&Term::int(3), &Term::int(3)).is_some());
        assert!(unify(&Term::int(3), &Term::int(4)).is_none());
        assert!(unify(&Term::int(3), &Term::sym("three")).is_none());
    }

    #[test]
    fn unify_variable_with_term() {
        let mgu = unify(&Term::var("X"), &Term::apps("f", vec![Term::sym("a")])).unwrap();
        assert_eq!(mgu.apply(&Term::var("X")).to_string(), "f(a)");
    }

    #[test]
    fn unify_variable_in_name_position() {
        // G(a, b) ~ move(a, b) binds G -> move.
        let l = app2(Term::var("G"), Term::sym("a"), Term::sym("b"));
        let r = app2(Term::sym("move"), Term::sym("a"), Term::sym("b"));
        let mgu = unify(&l, &r).unwrap();
        assert_eq!(mgu.apply(&Term::var("G")), Term::sym("move"));
    }

    #[test]
    fn unify_nested_hilog_atoms() {
        // tc(G)(X, b) ~ tc(e)(a, Y)
        let l = Term::app(
            Term::apps("tc", vec![Term::var("G")]),
            vec![Term::var("X"), Term::sym("b")],
        );
        let r = Term::app(
            Term::apps("tc", vec![Term::sym("e")]),
            vec![Term::sym("a"), Term::var("Y")],
        );
        let mgu = unify(&l, &r).unwrap();
        assert_eq!(mgu.apply(&l), mgu.apply(&r));
        assert_eq!(mgu.apply(&Term::var("G")), Term::sym("e"));
        assert_eq!(mgu.apply(&Term::var("X")), Term::sym("a"));
        assert_eq!(mgu.apply(&Term::var("Y")), Term::sym("b"));
    }

    #[test]
    fn arity_mismatch_fails() {
        let l = Term::apps("p", vec![Term::sym("a")]);
        let r = Term::apps("p", vec![Term::sym("a"), Term::sym("b")]);
        assert!(unify(&l, &r).is_none());
        // In HiLog the same name may be used at several arities, but two
        // *atoms* of different arity never unify.
    }

    #[test]
    fn symbol_does_not_unify_with_zero_ary_application() {
        // Footnote 1: p and p() are distinct.
        assert!(unify(&Term::sym("p"), &Term::apps("p", vec![])).is_none());
    }

    #[test]
    fn occurs_check_rejects_cyclic_bindings() {
        let x = Term::var("X");
        let fx = Term::apps("f", vec![Term::var("X")]);
        assert!(unify(&x, &fx).is_none());
        // Also through the name position: X ~ X(a).
        let xa = Term::app(Term::var("X"), vec![Term::sym("a")]);
        assert!(unify(&x, &xa).is_none());
    }

    #[test]
    fn unifier_is_most_general() {
        // f(X, Y) ~ f(Y, Z) should not ground anything.
        let l = app2(Term::sym("f"), Term::var("X"), Term::var("Y"));
        let r = app2(Term::sym("f"), Term::var("Y"), Term::var("Z"));
        let mgu = unify(&l, &r).unwrap();
        assert_eq!(mgu.apply(&l), mgu.apply(&r));
        assert!(!mgu.apply(&l).is_ground());
    }

    #[test]
    fn shared_variables_across_sides() {
        // p(X, X) ~ p(a, b) must fail; p(X, X) ~ p(a, a) must succeed.
        let pxx = app2(Term::sym("p"), Term::var("X"), Term::var("X"));
        let pab = app2(Term::sym("p"), Term::sym("a"), Term::sym("b"));
        let paa = app2(Term::sym("p"), Term::sym("a"), Term::sym("a"));
        assert!(unify(&pxx, &pab).is_none());
        assert!(unify(&pxx, &paa).is_some());
    }

    #[test]
    fn matching_is_one_way() {
        let pattern = app2(Term::sym("move"), Term::var("X"), Term::var("Y"));
        let target = app2(Term::sym("move"), Term::sym("a"), Term::sym("b"));
        let theta = match_term(&pattern, &target).unwrap();
        assert_eq!(theta.apply(&pattern), target);
        // The reverse direction has no matcher because the "pattern" is ground
        // and differs from the target.
        assert!(match_term(&target, &pattern).is_none());
    }

    #[test]
    fn matching_respects_prior_bindings() {
        let mut theta = Substitution::from_bindings([(Var::new("X"), Term::sym("a"))]);
        let pattern = Term::apps("q", vec![Term::var("X")]);
        assert!(match_with(
            &pattern,
            &Term::apps("q", vec![Term::sym("a")]),
            &mut theta
        ));
        let mut theta2 = Substitution::from_bindings([(Var::new("X"), Term::sym("b"))]);
        assert!(!match_with(
            &pattern,
            &Term::apps("q", vec![Term::sym("a")]),
            &mut theta2
        ));
    }

    #[test]
    fn matching_a_shared_term_against_itself() {
        // Ground shared term: the pointer fast path answers true with no
        // bindings, exactly like the structural walk would.
        let ground = app2(Term::sym("move"), Term::sym("a"), Term::sym("b"));
        let theta = match_term(&ground, &ground.clone()).unwrap();
        assert!(theta.is_empty());
        // Non-ground shared term: the fast path must NOT fire — matching a
        // pattern against itself still records the identity bindings of its
        // variables, which later literals may rely on.
        let open = app2(Term::sym("move"), Term::var("X"), Term::sym("b"));
        let theta = match_term(&open, &open.clone()).unwrap();
        assert_eq!(theta.apply(&Term::var("X")), Term::var("X"));
        assert!(!theta.is_empty());
    }

    #[test]
    fn rename_shifts_generation() {
        let t = Term::app(Term::var("G"), vec![Term::var("X")]);
        let renamed = rename_term(&t, 7);
        assert_eq!(renamed.to_string(), "G_7(X_7)");
        assert!(unify(&t, &renamed).is_some());
    }

    #[test]
    fn unify_is_symmetric_on_result_application() {
        let l = Term::apps("p", vec![Term::var("X"), Term::sym("b")]);
        let r = Term::apps("p", vec![Term::sym("a"), Term::var("Y")]);
        let m1 = unify(&l, &r).unwrap();
        let m2 = unify(&r, &l).unwrap();
        assert_eq!(m1.apply(&l), m2.apply(&l));
        assert_eq!(m1.apply(&r), m2.apply(&r));
    }
}
