//! The universal-relation ("call" / `apply_i`) transformation of Section 2.
//!
//! A (negation-free) HiLog program can be understood by rewriting every
//! n-ary atom into an atom of a single unary predicate `call` applied to a
//! term built with generic function symbols `u_i` of each arity `i`:
//!
//! ```text
//! maplist(F)([], []).
//!   ==>   call(u3(u2(maplist, F), [], [])).
//! p(X, a)(Z)
//!   ==>   call(u2(u3(p, X, a), Z)).
//! ```
//!
//! The least model of the resulting Horn program gives the semantics of the
//! negation-free HiLog program.  Section 6 stresses that this transformation
//! must **not** be used to analyse stratification: a stratified normal
//! program becomes unstratified because all predicates collapse into `call`,
//! and the strongly connected components are merged.  Both facts are
//! reproduced by the tests here and by experiment E9.

use crate::error::CoreError;
use crate::literal::Literal;
use crate::program::Program;
use crate::rule::Rule;
use crate::term::Term;

/// The reserved predicate name wrapping every transformed atom.
pub const CALL_SYMBOL: &str = "call";
/// The prefix of the reserved generic function symbols `u1`, `u2`, ...
pub const APPLY_PREFIX: &str = "u";

/// Returns the reserved `u_i` symbol for the given arity.
pub fn apply_symbol(arity: usize) -> Term {
    Term::sym(format!("{APPLY_PREFIX}{arity}"))
}

/// Returns `true` if the symbol name is reserved by the transformation
/// (`call` or `u<digits>`).
pub fn is_reserved_symbol(name: &str) -> bool {
    if name == CALL_SYMBOL {
        return true;
    }
    if let Some(rest) = name.strip_prefix(APPLY_PREFIX) {
        !rest.is_empty() && rest.chars().all(|c| c.is_ascii_digit())
    } else {
        false
    }
}

/// Encodes a HiLog *term* into the universal-relation term language:
/// `t(t1, ..., tn)` becomes `u_{n+1}(enc(t), enc(t1), ..., enc(tn))`;
/// symbols, integers and variables are unchanged.
pub fn encode_term(term: &Term) -> Term {
    match term {
        Term::Var(_) | Term::Sym(_) | Term::Int(_) => term.clone(),
        Term::App(name, args) => {
            let mut encoded = Vec::with_capacity(args.len() + 1);
            encoded.push(encode_term(name));
            encoded.extend(args.iter().map(encode_term));
            Term::app(apply_symbol(args.len() + 1), encoded)
        }
    }
}

/// Encodes a HiLog *atom*: `call(enc(atom))`.
pub fn encode_atom(atom: &Term) -> Term {
    Term::apps(CALL_SYMBOL, vec![encode_term(atom)])
}

/// Decodes a term of the universal language back into a HiLog term, undoing
/// [`encode_term`].  Terms that do not use the reserved `u_i` symbols are
/// returned unchanged (they decode to themselves).
pub fn decode_term(term: &Term) -> Term {
    match term {
        Term::Var(_) | Term::Sym(_) | Term::Int(_) => term.clone(),
        Term::App(name, args) => {
            if let Term::Sym(s) = &**name {
                if is_reserved_symbol(s.name()) && s.name() != CALL_SYMBOL && !args.is_empty() {
                    let inner_name = decode_term(&args[0]);
                    let inner_args = args[1..].iter().map(decode_term).collect();
                    return Term::app(inner_name, inner_args);
                }
            }
            Term::app(decode_term(name), args.iter().map(decode_term).collect())
        }
    }
}

/// Decodes a `call(...)` atom back to the HiLog atom it encodes.  Returns
/// `None` if the term is not a unary `call` application.
pub fn decode_atom(atom: &Term) -> Option<Term> {
    match atom {
        Term::App(name, args) if args.len() == 1 => match &**name {
            Term::Sym(s) if s.name() == CALL_SYMBOL => Some(decode_term(&args[0])),
            _ => None,
        },
        _ => None,
    }
}

/// Applies the universal-relation transformation to a whole program,
/// rewriting every head and (positive or negative) body atom.  Builtin and
/// aggregate literals are left untouched.
///
/// Returns an error if the program already uses one of the reserved symbols,
/// since the transformed program could then confuse object-level and
/// encoding-level atoms.
pub fn universal_transform(program: &Program) -> Result<Program, CoreError> {
    for sym in program.symbols() {
        if is_reserved_symbol(sym.name()) {
            return Err(CoreError::Precondition(format!(
                "program uses reserved symbol `{}` of the universal-relation transformation",
                sym.name()
            )));
        }
    }
    let rules = program
        .iter()
        .map(|rule| Rule {
            head: encode_atom(&rule.head),
            body: rule
                .body
                .iter()
                .map(|lit| match lit {
                    Literal::Pos(a) => Literal::Pos(encode_atom(a)),
                    Literal::Neg(a) => Literal::Neg(encode_atom(a)),
                    other => other.clone(),
                })
                .collect(),
        })
        .collect();
    Ok(Program::from_rules(rules))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::is_stratified;

    fn v(s: &str) -> Term {
        Term::var(s)
    }
    fn s(x: &str) -> Term {
        Term::sym(x)
    }

    #[test]
    fn encode_simple_and_nested_atoms() {
        // p(X, a)(Z) ==> u2(u3(p, X, a), Z); as an atom, wrapped in call.
        let atom = Term::app(Term::apps("p", vec![v("X"), s("a")]), vec![v("Z")]);
        assert_eq!(encode_term(&atom).to_string(), "u2(u3(p, X, a), Z)");
        assert_eq!(encode_atom(&atom).to_string(), "call(u2(u3(p, X, a), Z))");
        // A bare propositional symbol encodes to itself under call.
        assert_eq!(encode_atom(&s("p")).to_string(), "call(p)");
        // 0-ary application p() becomes u1(p).
        assert_eq!(
            encode_atom(&Term::apps("p", vec![])).to_string(),
            "call(u1(p))"
        );
    }

    #[test]
    fn encode_maplist_example_from_section_2() {
        // maplist(F)([], []) ==> call(u3(u2(maplist, F), nil, nil)).
        let atom = Term::app(
            Term::apps("maplist", vec![v("F")]),
            vec![Term::nil(), Term::nil()],
        );
        assert_eq!(
            encode_atom(&atom).to_string(),
            "call(u3(u2(maplist, F), nil, nil))"
        );
    }

    #[test]
    fn decode_inverts_encode() {
        let atoms = vec![
            Term::app(Term::apps("p", vec![v("X"), s("a")]), vec![v("Z")]),
            Term::app(
                Term::apps("tc", vec![s("e")]),
                vec![s("a"), Term::apps("f", vec![s("b")])],
            ),
            s("p"),
            Term::apps("p", vec![]),
            Term::app(
                Term::app(Term::apps("p", vec![s("a"), v("X")]), vec![v("Y")]),
                vec![
                    s("b"),
                    Term::app(Term::apps("f", vec![s("c")]), vec![s("d")]),
                ],
            ),
        ];
        for atom in atoms {
            let encoded = encode_atom(&atom);
            assert_eq!(decode_atom(&encoded), Some(atom.clone()), "{atom}");
            assert_eq!(decode_term(&encode_term(&atom)), atom);
        }
    }

    #[test]
    fn decode_atom_rejects_non_call_terms() {
        assert_eq!(decode_atom(&s("p")), None);
        assert_eq!(decode_atom(&Term::apps("q", vec![s("a")])), None);
        assert_eq!(decode_atom(&Term::apps("call", vec![s("a"), s("b")])), None);
    }

    #[test]
    fn reserved_symbol_detection() {
        assert!(is_reserved_symbol("call"));
        assert!(is_reserved_symbol("u1"));
        assert!(is_reserved_symbol("u17"));
        assert!(!is_reserved_symbol("u"));
        assert!(!is_reserved_symbol("ux"));
        assert!(!is_reserved_symbol("update"));
        assert!(!is_reserved_symbol("move"));
    }

    #[test]
    fn transform_rejects_programs_using_reserved_symbols() {
        let p = Program::from_rules(vec![Rule::fact(Term::apps("call", vec![s("a")]))]);
        assert!(universal_transform(&p).is_err());
        let p2 = Program::from_rules(vec![Rule::fact(Term::apps("u2", vec![s("a"), s("b")]))]);
        assert!(universal_transform(&p2).is_err());
    }

    #[test]
    fn transform_produces_horn_program_over_call() {
        // The maplist program of Example 2.2.
        let maplist = Program::from_rules(vec![
            Rule::fact(Term::app(
                Term::apps("maplist", vec![v("F")]),
                vec![Term::nil(), Term::nil()],
            )),
            Rule::new(
                Term::app(
                    Term::apps("maplist", vec![v("F")]),
                    vec![Term::cons(v("X"), v("R")), Term::cons(v("Y"), v("Z"))],
                ),
                vec![
                    Literal::pos(Term::app(v("F"), vec![v("X"), v("Y")])),
                    Literal::pos(Term::app(
                        Term::apps("maplist", vec![v("F")]),
                        vec![v("R"), v("Z")],
                    )),
                ],
            ),
        ]);
        let t = universal_transform(&maplist).unwrap();
        assert_eq!(t.len(), 2);
        for rule in t.iter() {
            // Every atom is a unary `call` atom.
            assert_eq!(rule.head.name(), &s("call"));
            assert_eq!(rule.head.args().len(), 1);
            for lit in &rule.body {
                let a = lit.atom().unwrap();
                assert_eq!(a.name(), &s("call"));
            }
        }
        // The body of the second rule encodes F(X, Y) as call(u2(F, X, Y)).
        assert!(t.rules[1]
            .body
            .iter()
            .any(|l| l.to_string() == "call(u3(F, X, Y))"));
    }

    #[test]
    fn transform_destroys_stratification_structure() {
        // Section 6: the stratified program  p(X) :- q(X), not r(X)
        // becomes unstratified under the universal relation model because
        // every predicate collapses into `call`.
        let p = Program::from_rules(vec![
            Rule::new(
                Term::apps("p", vec![v("X")]),
                vec![
                    Literal::pos(Term::apps("q", vec![v("X")])),
                    Literal::neg(Term::apps("r", vec![v("X")])),
                ],
            ),
            Rule::fact(Term::apps("q", vec![s("a")])),
            Rule::fact(Term::apps("r", vec![s("b")])),
        ]);
        assert!(is_stratified(&p));
        let t = universal_transform(&p).unwrap();
        assert!(!is_stratified(&t));
    }

    #[test]
    fn transform_preserves_negation_polarity() {
        let p = Program::from_rules(vec![Rule::new(
            Term::apps("winning", vec![v("X")]),
            vec![
                Literal::pos(Term::apps("move", vec![v("X"), v("Y")])),
                Literal::neg(Term::apps("winning", vec![v("Y")])),
            ],
        )]);
        let t = universal_transform(&p).unwrap();
        let body = &t.rules[0].body;
        assert!(matches!(body[0], Literal::Pos(_)));
        assert!(matches!(body[1], Literal::Neg(_)));
    }
}
