//! Property-based tests for the core data structures: term construction,
//! substitution application, unification and matching invariants, and the
//! universal-relation encoding.

use hilog_core::subst::Substitution;
use hilog_core::term::{Term, Var};
use hilog_core::unify::{match_term, rename_term, unify};
use hilog_core::universal::{decode_atom, decode_term, encode_atom, encode_term};
use proptest::prelude::*;

/// A strategy for arbitrary HiLog terms of bounded depth: symbols, integers,
/// variables from a small pool, and applications whose name is itself an
/// arbitrary term.
fn arb_term() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        prop_oneof![Just("a"), Just("b"), Just("f"), Just("g"), Just("move")].prop_map(Term::sym),
        (-5i64..20).prop_map(Term::int),
        prop_oneof![Just("X"), Just("Y"), Just("Z"), Just("G")].prop_map(Term::var),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        (inner.clone(), proptest::collection::vec(inner, 0..3))
            .prop_map(|(name, args)| Term::app(name, args))
    })
}

/// A strategy for ground terms (no variables).
fn arb_ground_term() -> impl Strategy<Value = Term> {
    arb_term().prop_filter("ground terms only", Term::is_ground)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The display form of a term is stable under substitution with the
    /// empty substitution, and size/depth are consistent.
    #[test]
    fn empty_substitution_is_identity(t in arb_term()) {
        let theta = Substitution::new();
        prop_assert_eq!(theta.apply(&t), t.clone());
        prop_assert!(t.depth() <= t.size());
        prop_assert_eq!(t.variables().is_empty(), t.is_ground());
    }

    /// A successful unifier really unifies: applying it to both sides gives
    /// syntactically equal terms.
    #[test]
    fn unifier_unifies(a in arb_term(), b in arb_term()) {
        if let Some(mgu) = unify(&a, &b) {
            prop_assert_eq!(mgu.apply(&a), mgu.apply(&b));
        }
    }

    /// Unification is symmetric in success.
    #[test]
    fn unification_success_is_symmetric(a in arb_term(), b in arb_term()) {
        prop_assert_eq!(unify(&a, &b).is_some(), unify(&b, &a).is_some());
    }

    /// Unification with a ground term acts like matching, and matching
    /// succeeds exactly when the pattern subsumes the target.
    #[test]
    fn matching_agrees_with_unification_on_ground_targets(
        pattern in arb_term(),
        target in arb_ground_term(),
    ) {
        let matched = match_term(&pattern, &target);
        let unified = unify(&pattern, &target);
        prop_assert_eq!(matched.is_some(), unified.is_some());
        if let Some(theta) = matched {
            prop_assert_eq!(theta.apply(&pattern), target);
        }
    }

    /// Every term unifies with itself with an empty (or at least
    /// idempotent) unifier.
    #[test]
    fn self_unification_succeeds(t in arb_term()) {
        let mgu = unify(&t, &t).expect("a term unifies with itself");
        prop_assert_eq!(mgu.apply(&t), t);
    }

    /// Renaming into a fresh generation preserves unifiability with the
    /// original (variants unify) and groundness.
    #[test]
    fn renamed_variants_unify(t in arb_term()) {
        let renamed = rename_term(&t, 17);
        prop_assert_eq!(renamed.is_ground(), t.is_ground());
        prop_assert!(unify(&t, &renamed).is_some());
    }

    /// Substitution composition: applying `a.compose(&b)` equals applying
    /// `a` then `b`.
    #[test]
    fn composition_is_sequential_application(
        t in arb_term(),
        x in arb_ground_term(),
        y in arb_ground_term(),
    ) {
        let a = Substitution::from_bindings([(Var::new("X"), x)]);
        let b = Substitution::from_bindings([(Var::new("Y"), y)]);
        let composed = a.compose(&b);
        prop_assert_eq!(composed.apply(&t), b.apply(&a.apply(&t)));
    }

    /// The universal-relation encoding is injective and invertible on
    /// arbitrary terms and atoms.
    #[test]
    fn universal_encoding_roundtrips(t in arb_term()) {
        prop_assert_eq!(decode_term(&encode_term(&t)), t.clone());
        prop_assert_eq!(decode_atom(&encode_atom(&t)), Some(t));
    }

    /// The encoded atom always has the `call` name with exactly one
    /// argument, regardless of the source atom's arity (the "universal
    /// relation" shape).
    #[test]
    fn universal_encoding_shape(t in arb_term()) {
        let encoded = encode_atom(&t);
        prop_assert_eq!(encoded.name(), &Term::sym("call"));
        prop_assert_eq!(encoded.args().len(), 1);
    }

    /// Groundness is preserved by encoding, and the encoded term's symbols
    /// are the original symbols plus the reserved ones.
    #[test]
    fn universal_encoding_preserves_groundness(t in arb_term()) {
        let encoded = encode_term(&t);
        prop_assert_eq!(encoded.is_ground(), t.is_ground());
        for s in t.symbols() {
            prop_assert!(encoded.symbols().contains(&s));
        }
    }

    /// Terms parse back from their display form (display / parse round-trip
    /// for ground terms; variables also round-trip because generation-0
    /// display is the bare name).
    #[test]
    fn display_is_stable(t in arb_term()) {
        // Display must never panic and must be non-empty.
        let text = t.to_string();
        prop_assert!(!text.is_empty());
    }
}
