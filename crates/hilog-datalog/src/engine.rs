//! The baseline normal Datalog engine.
//!
//! This is a deliberately conventional implementation — predicate symbols
//! with fixed arities, relations of ground tuples, semi-naive bottom-up
//! evaluation, stratum-at-a-time negation, and a ground well-founded
//! semantics — so that it can serve as the "normal logic program" comparator
//! of Theorems 4.1/4.2 and as the specialised baseline of experiment E11.
//! It shares no evaluation code with `hilog-engine`.

use crate::relation::{Relation, RelationName};
use hilog_core::builtin::BuiltinCall;
use hilog_core::interpretation::Model;
use hilog_core::literal::Literal;
use hilog_core::program::Program;
use hilog_core::rule::Rule;
use hilog_core::subst::Substitution;
use hilog_core::term::Term;
use hilog_core::unify::match_with;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Errors raised by the baseline engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatalogError {
    /// The program is not a normal (first-order) program.
    NotNormal(String),
    /// The program is not stratified, so the stratified evaluator cannot be
    /// used (the well-founded evaluator still can).
    NotStratified(String),
    /// A head or negative literal could not be grounded bottom-up.
    Floundering(String),
    /// A resource limit was exceeded.
    Limit(String),
    /// A builtin could not be evaluated.
    Builtin(String),
}

impl fmt::Display for DatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatalogError::NotNormal(m) => write!(f, "not a normal program: {m}"),
            DatalogError::NotStratified(m) => write!(f, "not stratified: {m}"),
            DatalogError::Floundering(m) => write!(f, "floundering: {m}"),
            DatalogError::Limit(m) => write!(f, "limit exceeded: {m}"),
            DatalogError::Builtin(m) => write!(f, "builtin error: {m}"),
        }
    }
}

impl std::error::Error for DatalogError {}

/// The result of evaluating a normal program: a three-valued model over the
/// relevant ground atoms (reusing the core [`Model`] representation).
pub type DatalogModel = Model;

/// A database of relations keyed by predicate name and arity.
#[derive(Debug, Clone, Default)]
struct Database {
    relations: BTreeMap<RelationName, Relation>,
}

impl Database {
    fn relation_of(&self, atom: &Term) -> Option<&Relation> {
        let key = Self::key(atom)?;
        self.relations.get(&key)
    }

    fn key(atom: &Term) -> Option<RelationName> {
        match atom {
            Term::Sym(s) => Some(RelationName::new(s.name(), 0)),
            Term::App(name, args) => match &**name {
                Term::Sym(s) => Some(RelationName::new(s.name(), args.len())),
                _ => None,
            },
            _ => None,
        }
    }

    fn insert_atom(&mut self, atom: &Term) -> bool {
        let key = Self::key(atom).expect("normal atom");
        self.relations
            .entry(key)
            .or_default()
            .insert(atom.args().to_vec())
    }

    fn contains_atom(&self, atom: &Term) -> bool {
        match self.relation_of(atom) {
            Some(rel) => rel.contains(atom.args()),
            None => false,
        }
    }

    fn atoms(&self) -> BTreeSet<Term> {
        let mut out = BTreeSet::new();
        for (name, rel) in &self.relations {
            for tuple in rel.iter() {
                out.insert(make_atom(&name.name, tuple));
            }
        }
        out
    }

    fn len(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }
}

fn make_atom(name: &str, args: &[Term]) -> Term {
    if args.is_empty() {
        Term::sym(name)
    } else {
        Term::apps(name, args.to_vec())
    }
}

/// Matches a body atom pattern against the database, extending each seed
/// substitution in every possible way.
fn extend_matches(seeds: Vec<Substitution>, pattern: &Term, db: &Database) -> Vec<Substitution> {
    let mut out = Vec::new();
    for theta in seeds {
        let instantiated = theta.apply(pattern);
        if instantiated.is_ground() {
            if db.contains_atom(&instantiated) {
                out.push(theta);
            }
            continue;
        }
        if let Some(rel) = db.relation_of(&instantiated) {
            let args = instantiated.args();
            // Use the first-column index when the first argument is ground.
            let candidates: Vec<&Vec<Term>> = match args.first() {
                Some(first) if first.is_ground() => rel.with_first(first).collect(),
                _ => rel.iter().collect(),
            };
            for tuple in candidates {
                let mut extended = theta.clone();
                let mut ok = true;
                for (pat, val) in args.iter().zip(tuple.iter()) {
                    if !match_with(pat, val, &mut extended) {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    out.push(extended);
                }
            }
        }
    }
    out
}

/// Evaluation limits.
#[derive(Debug, Clone, Copy)]
pub struct DatalogOptions {
    /// Maximum number of derived atoms.
    pub max_atoms: usize,
}

impl Default for DatalogOptions {
    fn default() -> Self {
        DatalogOptions {
            max_atoms: 2_000_000,
        }
    }
}

/// The baseline engine: owns a validated normal program.
#[derive(Debug, Clone)]
pub struct DatalogEngine {
    program: Program,
    options: DatalogOptions,
}

impl DatalogEngine {
    /// Creates an engine for a normal program.
    pub fn new(program: Program) -> Result<Self, DatalogError> {
        Self::with_options(program, DatalogOptions::default())
    }

    /// Creates an engine with explicit limits.
    pub fn with_options(program: Program, options: DatalogOptions) -> Result<Self, DatalogError> {
        if !program.is_normal() {
            return Err(DatalogError::NotNormal(
                "the baseline engine only accepts normal (first-order) programs".into(),
            ));
        }
        Ok(DatalogEngine { program, options })
    }

    /// The program being evaluated.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Semi-naive least model of the positive part of the program.  Negative
    /// literals are rejected; use [`DatalogEngine::stratified_model`] or
    /// [`DatalogEngine::well_founded_model`] for programs with negation.
    pub fn least_model(&self) -> Result<BTreeSet<Term>, DatalogError> {
        if self.program.has_negation() {
            return Err(DatalogError::NotStratified(
                "least_model only evaluates negation-free programs".into(),
            ));
        }
        let db = self.evaluate_stratum(
            &self.program.rules,
            &Database::default(),
            &Database::default(),
        )?;
        Ok(db.atoms())
    }

    /// Evaluates a stratified program stratum by stratum (Definition 6.1 /
    /// the classical iterated-fixpoint semantics).  The result is total.
    pub fn stratified_model(&self) -> Result<DatalogModel, DatalogError> {
        let graph = hilog_core::analysis::DependencyGraph::predicate_graph(&self.program);
        let strata = graph.strata().ok_or_else(|| {
            DatalogError::NotStratified(
                "the predicate dependency graph has a negative cycle".into(),
            )
        })?;
        let max_level = strata.values().copied().max().unwrap_or(0);
        let mut settled = Database::default();
        for level in 0..=max_level {
            let rules: Vec<Rule> = self
                .program
                .iter()
                .filter(|r| {
                    strata
                        .get(r.head.name())
                        .map(|&l| l == level)
                        .unwrap_or(level == 0)
                })
                .cloned()
                .collect();
            let new_db = self.evaluate_stratum(&rules, &settled, &settled)?;
            for atom in new_db.atoms() {
                settled.insert_atom(&atom);
            }
        }
        Ok(Model::from_true_atoms(settled.atoms()))
    }

    /// Evaluates one stratum to a fixpoint.  Negative literals are tested
    /// against `negative_db` (the settled lower strata); positive literals
    /// join against the union of `positive_db` and the atoms derived so far.
    fn evaluate_stratum(
        &self,
        rules: &[Rule],
        positive_db: &Database,
        negative_db: &Database,
    ) -> Result<Database, DatalogError> {
        let mut db = positive_db.clone();
        loop {
            let mut changed = false;
            for rule in rules {
                for theta in self.match_body(rule, &db, negative_db)? {
                    let head = theta.apply(&rule.head);
                    if !head.is_ground() {
                        return Err(DatalogError::Floundering(format!(
                            "rule `{rule}` derives the non-ground head `{head}`"
                        )));
                    }
                    if db.insert_atom(&head) {
                        changed = true;
                        if db.len() > self.options.max_atoms {
                            return Err(DatalogError::Limit(format!(
                                "more than {} derived atoms",
                                self.options.max_atoms
                            )));
                        }
                    }
                }
            }
            if !changed {
                return Ok(db);
            }
        }
    }

    fn match_body(
        &self,
        rule: &Rule,
        db: &Database,
        negative_db: &Database,
    ) -> Result<Vec<Substitution>, DatalogError> {
        let mut thetas = vec![Substitution::new()];
        for lit in &rule.body {
            if thetas.is_empty() {
                break;
            }
            match lit {
                Literal::Pos(atom) => {
                    thetas = extend_matches(thetas, atom, db);
                }
                Literal::Neg(atom) => {
                    let mut next = Vec::new();
                    for theta in thetas {
                        let instantiated = theta.apply(atom);
                        if !instantiated.is_ground() {
                            return Err(DatalogError::Floundering(format!(
                                "negative literal `not {instantiated}` of `{rule}` is not ground"
                            )));
                        }
                        if !negative_db.contains_atom(&instantiated) {
                            next.push(theta);
                        }
                    }
                    thetas = next;
                }
                Literal::Builtin(b) => {
                    thetas = eval_builtin(b, thetas)?;
                }
                Literal::Aggregate(_) => {
                    return Err(DatalogError::NotNormal(
                        "the baseline engine does not evaluate aggregates".into(),
                    ))
                }
            }
        }
        Ok(thetas)
    }

    /// The normal well-founded model, computed over the relevant ground
    /// instantiation of the program (an independent implementation of
    /// Definitions 3.3–3.5, used to cross-check the HiLog engine on normal
    /// programs).
    pub fn well_founded_model(&self) -> Result<DatalogModel, DatalogError> {
        // Over-approximate the derivable atoms by ignoring negation.
        let positive: Vec<Rule> = self
            .program
            .iter()
            .map(|r| {
                Rule::new(
                    r.head.clone(),
                    r.body
                        .iter()
                        .filter(|l| !l.is_negative_atom())
                        .cloned()
                        .collect(),
                )
            })
            .collect();
        let possibly =
            self.evaluate_stratum(&positive, &Database::default(), &Database::default())?;

        // Relevant ground instantiation.
        let mut ground: Vec<(Term, Vec<Term>, Vec<Term>)> = Vec::new();
        for rule in self.program.iter() {
            let context = Rule::new(
                rule.head.clone(),
                rule.body
                    .iter()
                    .filter(|l| !l.is_negative_atom())
                    .cloned()
                    .collect(),
            );
            for theta in self.match_body(&context, &possibly, &Database::default())? {
                let head = theta.apply(&rule.head);
                let mut pos = Vec::new();
                let mut neg = Vec::new();
                for lit in &rule.body {
                    match lit {
                        Literal::Pos(a) => pos.push(theta.apply(a)),
                        Literal::Neg(a) => {
                            let a = theta.apply(a);
                            if !a.is_ground() {
                                return Err(DatalogError::Floundering(format!(
                                    "negative literal `not {a}` is not ground after instantiation"
                                )));
                            }
                            neg.push(a);
                        }
                        Literal::Builtin(_) => {}
                        Literal::Aggregate(_) => {
                            return Err(DatalogError::NotNormal(
                                "aggregates are not supported by the baseline engine".into(),
                            ))
                        }
                    }
                }
                ground.push((head, pos, neg));
            }
        }

        // Alternate T_P and the greatest unfounded set to the least fixpoint.
        let mut base: BTreeSet<Term> = BTreeSet::new();
        for (h, pos, neg) in &ground {
            base.insert(h.clone());
            base.extend(pos.iter().cloned());
            base.extend(neg.iter().cloned());
        }
        let mut true_set: BTreeSet<Term> = BTreeSet::new();
        let mut false_set: BTreeSet<Term> = BTreeSet::new();
        loop {
            let mut changed = false;
            for (h, pos, neg) in &ground {
                if pos.iter().all(|a| true_set.contains(a))
                    && neg.iter().all(|a| false_set.contains(a))
                    && true_set.insert(h.clone())
                {
                    changed = true;
                }
            }
            // Greatest unfounded set: complement of the founded atoms.
            let mut founded: BTreeSet<Term> = BTreeSet::new();
            let mut grew = true;
            while grew {
                grew = false;
                for (h, pos, neg) in &ground {
                    if founded.contains(h) {
                        continue;
                    }
                    let usable = pos.iter().all(|a| !false_set.contains(a))
                        && neg.iter().all(|a| !true_set.contains(a));
                    if usable && pos.iter().all(|a| founded.contains(a)) {
                        founded.insert(h.clone());
                        grew = true;
                    }
                }
            }
            for atom in &base {
                if !founded.contains(atom)
                    && !true_set.contains(atom)
                    && false_set.insert(atom.clone())
                {
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let undefined: Vec<Term> = base
            .iter()
            .filter(|a| !true_set.contains(*a) && !false_set.contains(*a))
            .cloned()
            .collect();
        Ok(Model::new(base, true_set, undefined))
    }
}

fn eval_builtin(
    b: &BuiltinCall,
    seeds: Vec<Substitution>,
) -> Result<Vec<Substitution>, DatalogError> {
    let mut out = Vec::new();
    for mut theta in seeds {
        match b.eval(&mut theta) {
            Ok(true) => out.push(theta),
            Ok(false) => {}
            Err(e) => return Err(DatalogError::Builtin(e.to_string())),
        }
    }
    Ok(out)
}

/// The specialised transitive-closure baseline of experiment E11: a direct
/// semi-naive closure over an edge list, with none of the generic HiLog
/// machinery.
pub fn specialized_transitive_closure(edges: &[(Term, Term)]) -> BTreeSet<(Term, Term)> {
    let mut closure: BTreeSet<(Term, Term)> = edges.iter().cloned().collect();
    let mut successors: BTreeMap<Term, BTreeSet<Term>> = BTreeMap::new();
    for (x, y) in edges {
        successors.entry(x.clone()).or_default().insert(y.clone());
    }
    let mut delta: Vec<(Term, Term)> = closure.iter().cloned().collect();
    while !delta.is_empty() {
        let mut next = Vec::new();
        for (x, y) in delta {
            if let Some(succ) = successors.get(&y) {
                for z in succ {
                    let pair = (x.clone(), z.clone());
                    if closure.insert(pair.clone()) {
                        next.push(pair);
                    }
                }
            }
        }
        delta = next;
    }
    closure
}

#[cfg(test)]
mod tests {
    use super::*;
    use hilog_syntax::{parse_program, parse_term};

    fn engine(text: &str) -> DatalogEngine {
        DatalogEngine::new(parse_program(text).unwrap()).unwrap()
    }

    #[test]
    fn rejects_hilog_programs() {
        let p = parse_program("tc(G)(X, Y) :- G(X, Y).").unwrap();
        assert!(matches!(
            DatalogEngine::new(p),
            Err(DatalogError::NotNormal(_))
        ));
    }

    #[test]
    fn least_model_of_transitive_closure() {
        let e = engine(
            "tc(X, Y) :- edge(X, Y). tc(X, Y) :- edge(X, Z), tc(Z, Y).\n\
             edge(a, b). edge(b, c). edge(c, d).",
        );
        let m = e.least_model().unwrap();
        assert!(m.contains(&parse_term("tc(a, d)").unwrap()));
        assert!(!m.contains(&parse_term("tc(d, a)").unwrap()));
        assert_eq!(m.iter().filter(|a| a.name() == &Term::sym("tc")).count(), 6);
    }

    #[test]
    fn least_model_rejects_negation() {
        let e = engine("p :- not q. q.");
        assert!(matches!(
            e.least_model(),
            Err(DatalogError::NotStratified(_))
        ));
    }

    #[test]
    fn stratified_evaluation() {
        let e = engine(
            "reach(X) :- source(X). reach(Y) :- reach(X), edge(X, Y).\n\
             unreachable(X) :- node(X), not reach(X).\n\
             source(a). edge(a, b). node(a). node(b). node(c).",
        );
        let m = e.stratified_model().unwrap();
        assert!(m.is_true(&parse_term("reach(b)").unwrap()));
        assert!(m.is_true(&parse_term("unreachable(c)").unwrap()));
        assert!(m.is_false(&parse_term("unreachable(a)").unwrap()));
        assert!(m.is_total());
    }

    #[test]
    fn stratified_evaluation_rejects_win_move() {
        let e = engine("winning(X) :- move(X, Y), not winning(Y). move(a, b).");
        assert!(matches!(
            e.stratified_model(),
            Err(DatalogError::NotStratified(_))
        ));
    }

    #[test]
    fn well_founded_model_of_win_move_chain() {
        let e = engine("winning(X) :- move(X, Y), not winning(Y). move(a, b). move(b, c).");
        let m = e.well_founded_model().unwrap();
        assert!(m.is_true(&parse_term("winning(b)").unwrap()));
        assert!(m.is_false(&parse_term("winning(a)").unwrap()));
        assert!(m.is_total());
    }

    #[test]
    fn well_founded_model_of_example_3_1() {
        let e = engine("p :- q. q :- p. r :- s, not p. s. t :- not r. u :- not u.");
        let m = e.well_founded_model().unwrap();
        assert!(m.is_true(&parse_term("s").unwrap()));
        assert!(m.is_true(&parse_term("r").unwrap()));
        assert!(m.is_false(&parse_term("p").unwrap()));
        assert!(m.is_false(&parse_term("t").unwrap()));
        assert!(m.is_undefined(&parse_term("u").unwrap()));
    }

    #[test]
    fn well_founded_model_with_even_cycle_is_partial() {
        let e = engine("winning(X) :- move(X, Y), not winning(Y). move(a, b). move(b, a).");
        let m = e.well_founded_model().unwrap();
        assert!(m.is_undefined(&parse_term("winning(a)").unwrap()));
        assert!(m.is_undefined(&parse_term("winning(b)").unwrap()));
    }

    #[test]
    fn builtins_in_stratified_rules() {
        let e = engine("adult(X) :- person(X, A), A >= 18. person(amy, 20). person(tim, 12).");
        let m = e.stratified_model().unwrap();
        assert!(m.is_true(&parse_term("adult(amy)").unwrap()));
        assert!(!m.is_true(&parse_term("adult(tim)").unwrap()));
    }

    #[test]
    fn specialized_closure_matches_rule_based_closure() {
        let edges: Vec<(Term, Term)> = vec![
            (Term::sym("a"), Term::sym("b")),
            (Term::sym("b"), Term::sym("c")),
            (Term::sym("c"), Term::sym("d")),
        ];
        let closure = specialized_transitive_closure(&edges);
        assert_eq!(closure.len(), 6);
        assert!(closure.contains(&(Term::sym("a"), Term::sym("d"))));
        // Agreement with the rule-based evaluation.
        let e = engine(
            "tc(X, Y) :- edge(X, Y). tc(X, Y) :- edge(X, Z), tc(Z, Y).\n\
             edge(a, b). edge(b, c). edge(c, d).",
        );
        let m = e.least_model().unwrap();
        for (x, y) in &closure {
            assert!(m.contains(&Term::apps("tc", vec![x.clone(), y.clone()])));
        }
    }

    #[test]
    fn floundering_is_detected() {
        let e = engine("p(X) :- not q(X).");
        assert!(matches!(
            e.well_founded_model(),
            Err(DatalogError::Floundering(_))
        ));
    }

    #[test]
    fn zero_ary_predicates_are_supported() {
        let e = engine("alarm :- sensor(S), not suppressed. sensor(s1).");
        let m = e.well_founded_model().unwrap();
        assert!(m.is_true(&parse_term("alarm").unwrap()));
    }
}
