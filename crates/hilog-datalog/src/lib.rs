//! # hilog-datalog
//!
//! A conventional, first-order Datalog-with-negation engine: the *normal
//! program* baseline that "On Negation in HiLog" generalises.  It is an
//! independent implementation (it shares only the term/parser crates with the
//! HiLog engine), which serves two purposes in the reproduction:
//!
//! * it is the **baseline comparator** for the benchmarks — e.g. experiment
//!   E11 compares one generic HiLog `tc(G)` program against `k` specialised
//!   Datalog transitive-closure programs;
//! * it is a **cross-check**: Theorems 4.1 and 4.2 say the HiLog semantics of
//!   a range-restricted normal program conservatively extends its normal
//!   semantics, so the two engines must agree on normal programs (the
//!   integration tests verify this).
//!
//! The engine supports relations of ground first-order facts, semi-naive
//! bottom-up evaluation of definite rules, evaluation of *stratified*
//! negation, and a normal well-founded semantics for non-stratified programs
//! (computed over the program's ground instantiation).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod relation;

pub use engine::{DatalogEngine, DatalogError, DatalogModel};
pub use relation::{Relation, RelationName};
