//! Relation storage for the normal Datalog baseline.
//!
//! A relation is a named set of ground first-order tuples.  Tuples are plain
//! vectors of ground [`Term`]s (constants, integers, or first-order function
//! terms); the store indexes them by the value of their first column, which
//! is the access pattern the semi-naive joins use most.

use hilog_core::term::Term;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A relation name together with its arity.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelationName {
    /// The predicate symbol.
    pub name: String,
    /// Number of columns.
    pub arity: usize,
}

impl RelationName {
    /// Creates a relation name.
    pub fn new(name: impl Into<String>, arity: usize) -> Self {
        RelationName {
            name: name.into(),
            arity,
        }
    }
}

impl fmt::Display for RelationName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.arity)
    }
}

/// A set of ground tuples with a first-column index.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Relation {
    tuples: BTreeSet<Vec<Term>>,
    by_first: BTreeMap<Term, Vec<Vec<Term>>>,
}

impl Relation {
    /// The empty relation.
    pub fn new() -> Self {
        Relation::default()
    }

    /// Inserts a tuple; returns `true` if it was new.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the tuple contains variables.
    pub fn insert(&mut self, tuple: Vec<Term>) -> bool {
        debug_assert!(
            tuple.iter().all(Term::is_ground),
            "relations store ground tuples"
        );
        if self.tuples.insert(tuple.clone()) {
            if let Some(first) = tuple.first() {
                self.by_first.entry(first.clone()).or_default().push(tuple);
            }
            true
        } else {
            false
        }
    }

    /// Returns `true` if the tuple is present.
    pub fn contains(&self, tuple: &[Term]) -> bool {
        self.tuples.contains(tuple)
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Returns `true` if the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterates over all tuples.
    pub fn iter(&self) -> impl Iterator<Item = &Vec<Term>> {
        self.tuples.iter()
    }

    /// Tuples whose first column equals `value` (the indexed access path);
    /// falls back to the full scan when the relation is nullary.
    pub fn with_first(&self, value: &Term) -> impl Iterator<Item = &Vec<Term>> {
        self.by_first.get(value).into_iter().flat_map(|v| v.iter())
    }

    /// Merges another relation into this one, returning the number of new
    /// tuples.
    pub fn merge(&mut self, other: &Relation) -> usize {
        let mut added = 0;
        for t in other.iter() {
            if self.insert(t.clone()) {
                added += 1;
            }
        }
        added
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Term {
        Term::sym(s)
    }

    #[test]
    fn insert_and_lookup() {
        let mut r = Relation::new();
        assert!(r.insert(vec![sym("a"), sym("b")]));
        assert!(!r.insert(vec![sym("a"), sym("b")]));
        assert!(r.contains(&[sym("a"), sym("b")]));
        assert!(!r.contains(&[sym("b"), sym("a")]));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn first_column_index() {
        let mut r = Relation::new();
        r.insert(vec![sym("a"), sym("b")]);
        r.insert(vec![sym("a"), sym("c")]);
        r.insert(vec![sym("b"), sym("c")]);
        assert_eq!(r.with_first(&sym("a")).count(), 2);
        assert_eq!(r.with_first(&sym("b")).count(), 1);
        assert_eq!(r.with_first(&sym("z")).count(), 0);
    }

    #[test]
    fn merge_counts_new_tuples() {
        let mut a = Relation::new();
        a.insert(vec![sym("x")]);
        let mut b = Relation::new();
        b.insert(vec![sym("x")]);
        b.insert(vec![sym("y")]);
        assert_eq!(a.merge(&b), 1);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn relation_name_display() {
        assert_eq!(RelationName::new("move", 2).to_string(), "move/2");
    }
}
