//! Modularly stratified aggregation — the parts-explosion evaluator.
//!
//! Section 6 of the paper extends modular stratification to aggregate
//! operators: the parts-explosion program
//!
//! ```text
//! in(Mach, X, Y, null, N)  :- assoc(Mach, Part), Part(X, Y, N).
//! in(Mach, X, Y, Z, N)     :- assoc(Mach, Part), Part(X, Z, P),
//!                             contains(Mach, Z, Y, M), N is P * M.
//! contains(Mach, X, Y, N)  :- N = sum(P, in(Mach, X, Y, W, P)).
//! ```
//!
//! is not stratified — `contains` depends on itself through the aggregation
//! over `in` — but, provided every part relation is acyclic in its first two
//! arguments, "the summation operates on successively lower arguments ...
//! and so there is no looping through summation.  This is the aggregate
//! analog of modular stratification."
//!
//! The evaluator implements that reading with an iterate-and-recompute
//! scheme (documented in DESIGN.md): each round recomputes, from scratch,
//! the least model of the non-aggregate rules together with the aggregate
//! conclusions of the previous round, and then recomputes every aggregate
//! group's value over the fresh atoms.  For acyclic (modularly stratified)
//! part hierarchies the values of groups at subpart depth `d` are correct
//! and stable after round `d + 1`, so the process reaches a fixpoint in at
//! most `depth + 2` rounds and yields the perfect model; a non-terminating
//! (cyclic) hierarchy is reported as not modularly stratified when the round
//! limit is exceeded.

use crate::deadline::check_deadline;
use crate::error::EngineError;
use crate::horn::{join_body, AtomStore, EvalOptions, NegationMode};
use hilog_core::interpretation::Model;
use hilog_core::literal::{AggregateFunc, Literal};
use hilog_core::program::Program;
use hilog_core::rule::Rule;
use hilog_core::subst::Substitution;
use hilog_core::term::{Term, Var};
use hilog_core::unify::{match_with, unify_with};
use std::collections::{BTreeMap, BTreeSet};

/// Result of aggregate evaluation.
#[derive(Debug, Clone)]
pub struct AggregateModel {
    /// The computed (total, two-valued) model.
    pub model: Model,
    /// Number of recomputation rounds performed.
    pub rounds: usize,
}

/// Maximum number of outer recomputation rounds before declaring the program
/// not modularly stratified for aggregation.
const MAX_AGGREGATE_ROUNDS: usize = 10_000;

/// Evaluates a program whose only non-monotone construct is aggregation that
/// is modularly stratified (acyclic at the instance level), such as the
/// parts-explosion program.  Negation in rule bodies is not supported on this
/// path (combine with [`crate::modular`] for programs that need both).
pub fn evaluate_aggregate_program(
    program: &Program,
    opts: EvalOptions,
) -> Result<AggregateModel, EngineError> {
    for rule in program.iter() {
        if rule.has_negation() {
            return Err(EngineError::Unsupported(
                "evaluate_aggregate_program handles aggregation only; use the modular evaluator \
                 for programs that also use negation"
                    .into(),
            ));
        }
    }
    let (aggregate_rules, plain_rules): (Vec<&Rule>, Vec<&Rule>) =
        program.iter().partition(|r| r.has_aggregate());
    let plain_program = Program::from_rules(plain_rules.iter().map(|r| (*r).clone()).collect());

    // The aggregate conclusions of the previous round, as facts.
    let mut aggregate_facts: BTreeSet<Term> = BTreeSet::new();
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        if rounds > MAX_AGGREGATE_ROUNDS {
            return Err(EngineError::NotModularlyStratified(format!(
                "aggregate evaluation did not converge within {MAX_AGGREGATE_ROUNDS} rounds; the \
                 aggregation is cyclic at the instance level"
            )));
        }
        // Recompute the least model of the plain rules plus the current
        // aggregate conclusions.
        let mut seeded = plain_program.clone();
        for fact in &aggregate_facts {
            seeded.push(Rule::fact(fact.clone()));
        }
        let derived = crate::horn::least_model(&seeded, NegationMode::Forbid, opts)?;

        // Recompute every aggregate rule's conclusions over the fresh atoms.
        let mut new_aggregate_facts: BTreeSet<Term> = BTreeSet::new();
        for rule in &aggregate_rules {
            for head in evaluate_aggregate_rule(rule, &derived, opts)? {
                new_aggregate_facts.insert(head);
            }
        }
        if new_aggregate_facts == aggregate_facts {
            // Fixpoint: assemble the final model.
            let mut atoms: BTreeSet<Term> = derived.atoms().clone();
            atoms.extend(aggregate_facts.iter().cloned());
            let model = Model::from_true_atoms(atoms);
            return Ok(AggregateModel { model, rounds });
        }
        aggregate_facts = new_aggregate_facts;
    }
}

/// Evaluates a single aggregate rule against a set of derived atoms,
/// returning the ground heads it concludes.
fn evaluate_aggregate_rule(
    rule: &Rule,
    derived: &AtomStore,
    opts: EvalOptions,
) -> Result<Vec<Term>, EngineError> {
    // Split the body into the aggregate literal and the rest; the rest is
    // joined first (left-to-right) to bind the grouping context.
    let (aggregates, rest): (Vec<&Literal>, Vec<&Literal>) = rule
        .body
        .iter()
        .partition(|l| matches!(l, Literal::Aggregate(_)));
    if aggregates.len() != 1 {
        return Err(EngineError::Unsupported(format!(
            "rule `{rule}` must contain exactly one aggregate literal, found {}",
            aggregates.len()
        )));
    }
    let agg = match aggregates[0] {
        Literal::Aggregate(a) => a,
        _ => unreachable!(),
    };
    let context_rule = Rule::new(
        rule.head.clone(),
        rest.iter().map(|l| (*l).clone()).collect(),
    );
    check_deadline()?;
    let contexts = join_body(&context_rule, derived, None, NegationMode::Forbid)?;
    if contexts.len() > opts.max_atoms {
        return Err(EngineError::LimitExceeded(format!(
            "aggregate rule `{rule}` produced more than {} grouping contexts",
            opts.max_atoms
        )));
    }

    // Grouping variables: pattern variables that occur outside the aggregate
    // literal (head or other body literals).
    let mut outside: Vec<Var> = rule.head.variables();
    for lit in &rest {
        outside.extend(lit.variables());
    }
    let value_vars = agg.value.variables();
    let group_vars: Vec<Var> = agg
        .pattern
        .variables()
        .into_iter()
        .filter(|v| outside.contains(v) && !value_vars.contains(v))
        .collect();

    let mut heads = Vec::new();
    for theta in contexts {
        let pattern = theta.apply(&agg.pattern);
        let mut groups: BTreeMap<Vec<(Var, Term)>, Vec<Term>> = BTreeMap::new();
        for candidate in derived.candidates(&pattern) {
            let mut m = Substitution::new();
            if match_with(&pattern, candidate, &mut m) {
                let key: Vec<(Var, Term)> = group_vars
                    .iter()
                    .filter(|v| !theta.contains(v))
                    .map(|v| (v.clone(), m.apply(&Term::Var(v.clone()))))
                    .collect();
                groups
                    .entry(key)
                    .or_default()
                    .push(m.apply(&theta.apply(&agg.value)));
            }
        }
        for (key, values) in groups {
            // `count` counts every collected tuple; the numeric aggregates
            // combine the integer values (non-integer collected terms cannot
            // be summed and make the rule inapplicable for that group).
            let ints: Vec<i64> = values
                .iter()
                .filter_map(|t| match t {
                    Term::Int(i) => Some(*i),
                    _ => None,
                })
                .collect();
            if agg.func != AggregateFunc::Count && ints.len() != values.len() {
                return Err(EngineError::Unsupported(format!(
                    "aggregate `{agg}` collected non-integer values"
                )));
            }
            let result = match agg.func {
                AggregateFunc::Sum => ints.iter().sum(),
                AggregateFunc::Count => values.len() as i64,
                AggregateFunc::Min => ints.iter().copied().min().unwrap_or(0),
                AggregateFunc::Max => ints.iter().copied().max().unwrap_or(0),
            };
            let mut extended = theta.clone();
            let mut ok = true;
            for (v, t) in &key {
                if !unify_with(&Term::Var(v.clone()), t, &mut extended) {
                    ok = false;
                    break;
                }
            }
            if ok && unify_with(&agg.result, &Term::Int(result), &mut extended) {
                let head = extended.apply(&rule.head);
                if !head.is_ground() {
                    return Err(EngineError::Floundering(format!(
                        "aggregate rule `{rule}` produced the non-ground head `{head}`"
                    )));
                }
                heads.push(head);
            }
        }
    }
    Ok(heads)
}

/// Builds the paper's parts-explosion program for a set of machines.
///
/// `machines` maps a machine name to its part relation name; `parts` lists
/// `(part relation, whole, part, quantity)` facts.  The returned program is
/// exactly the Section 6 program (with `N is P * M` spelled as a builtin and
/// the sum as an aggregation literal) plus the `assoc` and part facts.
pub fn parts_explosion_program(
    machines: &[(&str, &str)],
    parts: &[(&str, &str, &str, i64)],
) -> Program {
    let mut text = String::from(
        "in(Mach, X, Y, null, N) :- assoc(Mach, Part), Part(X, Y, N).\n\
         in(Mach, X, Y, Z, N) :- assoc(Mach, Part), Part(X, Z, P), contains(Mach, Z, Y, M), N is P * M.\n\
         contains(Mach, X, Y, N) :- N = sum(P, in(Mach, X, Y, W, P)).\n",
    );
    for (machine, part_rel) in machines {
        text.push_str(&format!("assoc({machine}, {part_rel}).\n"));
    }
    for (rel, whole, part, qty) in parts {
        text.push_str(&format!("{rel}({whole}, {part}, {qty}).\n"));
    }
    hilog_syntax::parse_program(&text).expect("parts-explosion program is syntactically valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hilog_syntax::{parse_program, parse_term};

    #[test]
    fn bicycle_example_from_section_6() {
        // "if a bicycle has two wheels, and each wheel has 47 spokes, then we
        // would like to infer that a bicycle has 94 spokes."
        let program = parts_explosion_program(
            &[("bike_machine", "bike_parts")],
            &[
                ("bike_parts", "bicycle", "wheel", 2),
                ("bike_parts", "wheel", "spoke", 47),
            ],
        );
        let result = evaluate_aggregate_program(&program, EvalOptions::default()).unwrap();
        let m = &result.model;
        assert!(m.is_true(&parse_term("contains(bike_machine, bicycle, wheel, 2)").unwrap()));
        assert!(m.is_true(&parse_term("contains(bike_machine, wheel, spoke, 47)").unwrap()));
        assert!(m.is_true(&parse_term("contains(bike_machine, bicycle, spoke, 94)").unwrap()));
        assert!(result.rounds <= 5);
    }

    #[test]
    fn deeper_hierarchy_multiplies_quantities_along_paths() {
        // car -> 4 wheels -> 5 bolts each -> 2 washers each = 40 washers.
        let program = parts_explosion_program(
            &[("car_machine", "car_parts")],
            &[
                ("car_parts", "car", "wheel", 4),
                ("car_parts", "wheel", "bolt", 5),
                ("car_parts", "bolt", "washer", 2),
            ],
        );
        let m = evaluate_aggregate_program(&program, EvalOptions::default())
            .unwrap()
            .model;
        assert!(m.is_true(&parse_term("contains(car_machine, car, bolt, 20)").unwrap()));
        assert!(m.is_true(&parse_term("contains(car_machine, car, washer, 40)").unwrap()));
        assert!(m.is_true(&parse_term("contains(car_machine, wheel, washer, 10)").unwrap()));
    }

    #[test]
    fn shared_subparts_are_summed_across_paths() {
        // A diamond: gadget has 2 arms and 3 legs; arms and legs each use 1
        // screw; total screws = 2 + 3 = 5.
        let program = parts_explosion_program(
            &[("g", "gp")],
            &[
                ("gp", "gadget", "arm", 2),
                ("gp", "gadget", "leg", 3),
                ("gp", "arm", "screw", 1),
                ("gp", "leg", "screw", 1),
            ],
        );
        let m = evaluate_aggregate_program(&program, EvalOptions::default())
            .unwrap()
            .model;
        assert!(m.is_true(&parse_term("contains(g, gadget, screw, 5)").unwrap()));
    }

    #[test]
    fn multiple_machines_share_part_hierarchies_via_assoc() {
        // "Having an assoc relation allows machines that share part
        // hierarchies" — two machines referencing the same part relation get
        // the same totals, independently grouped by machine.
        let program = parts_explosion_program(
            &[("m1", "shared_parts"), ("m2", "shared_parts")],
            &[("shared_parts", "box", "panel", 6)],
        );
        let m = evaluate_aggregate_program(&program, EvalOptions::default())
            .unwrap()
            .model;
        assert!(m.is_true(&parse_term("contains(m1, box, panel, 6)").unwrap()));
        assert!(m.is_true(&parse_term("contains(m2, box, panel, 6)").unwrap()));
    }

    #[test]
    fn cyclic_part_hierarchy_is_rejected() {
        // widget contains itself: the aggregation never stabilises.
        let program = parts_explosion_program(&[("m", "p")], &[("p", "widget", "widget", 2)]);
        // The evaluation diverges: either the round limit detects the cycle or
        // the multiplied quantities overflow first — in both cases the
        // program is rejected rather than silently producing values.
        let err = evaluate_aggregate_program(&program, EvalOptions::default()).unwrap_err();
        assert!(
            matches!(
                err,
                EngineError::NotModularlyStratified(_)
                    | EngineError::LimitExceeded(_)
                    | EngineError::Core(_)
            ),
            "{err}"
        );
    }

    #[test]
    fn count_min_max_aggregates() {
        let program = parse_program(
            "kinds(X, N) :- item(X), N = count(P, part(X, P, Q)).\n\
             biggest(X, N) :- item(X), N = max(Q, part(X, P, Q)).\n\
             smallest(X, N) :- item(X), N = min(Q, part(X, P, Q)).\n\
             item(bike).\n\
             part(bike, wheel, 2). part(bike, spoke, 94). part(bike, frame, 1).",
        )
        .unwrap();
        let m = evaluate_aggregate_program(&program, EvalOptions::default())
            .unwrap()
            .model;
        assert!(m.is_true(&parse_term("kinds(bike, 3)").unwrap()));
        assert!(m.is_true(&parse_term("biggest(bike, 94)").unwrap()));
        assert!(m.is_true(&parse_term("smallest(bike, 1)").unwrap()));
    }

    #[test]
    fn negation_is_rejected_on_this_path() {
        let program = parse_program(
            "total(X, N) :- item(X), not hidden(X), N = sum(P, part(X, Y, P)). item(a).",
        )
        .unwrap();
        assert!(matches!(
            evaluate_aggregate_program(&program, EvalOptions::default()),
            Err(EngineError::Unsupported(_))
        ));
    }

    #[test]
    fn rules_with_two_aggregates_are_rejected() {
        let program = parse_program(
            "weird(X, N, M) :- item(X), N = sum(P, a(X, P)), M = sum(Q, b(X, Q)). item(i). a(i, 1). b(i, 2).",
        )
        .unwrap();
        assert!(matches!(
            evaluate_aggregate_program(&program, EvalOptions::default()),
            Err(EngineError::Unsupported(_))
        ));
    }

    #[test]
    fn hilog_parameterised_parts_relation() {
        // The Part variable of the paper's program is a genuine HiLog
        // feature: the part relation *name* is data.  Two machines with
        // different part relations coexist in one program.
        let program = parts_explosion_program(
            &[("m1", "parts_a"), ("m2", "parts_b")],
            &[
                ("parts_a", "alpha", "gear", 3),
                ("parts_b", "beta", "gear", 7),
            ],
        );
        let m = evaluate_aggregate_program(&program, EvalOptions::default())
            .unwrap()
            .model;
        assert!(m.is_true(&parse_term("contains(m1, alpha, gear, 3)").unwrap()));
        assert!(m.is_true(&parse_term("contains(m2, beta, gear, 7)").unwrap()));
        assert!(!m.is_true(&parse_term("contains(m1, beta, gear, 7)").unwrap()));
    }
}
