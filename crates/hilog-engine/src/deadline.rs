//! Per-query deadlines, checked at the resource-limit hook sites.
//!
//! HiLog Herbrand universes are infinite, so the engine already refuses to
//! run unbounded: every fixpoint, grounding and search loop consults the
//! `EvalOptions` limits and returns [`EngineError::LimitExceeded`] when a
//! count is blown.  A *deadline* is the wall-clock analogue — a serving
//! system cannot let one pathological query pin a worker for seconds even
//! when its atom counts stay legal.  [`check_deadline`] piggybacks on the
//! exact same hook sites the limits use (fixpoint rounds, grounding passes,
//! magic-settle iterations, stable search nodes), so the cost is one
//! thread-local read per hook and a runaway query surfaces
//! [`EngineError::DeadlineExceeded`] within one loop iteration of the
//! deadline passing.
//!
//! The deadline is scoped, not ambient: [`with_deadline`] installs it for
//! the duration of one closure (one query) and restores the previous value
//! on exit, panic included, so nested evaluations and pooled worker threads
//! that never install one are unaffected.  It lives in a thread-local
//! because queries evaluate on the calling thread (the parallel pool's
//! tasks are bounded per-wave and re-checked between waves by the caller);
//! threading an `Instant` through every evaluator signature would touch
//! dozens of call sites for the same effect.
//!
//! The per-thread counters mirror [`crate::horn::probe_counters`]: they are
//! cumulative, and callers report per-query values by differencing around
//! the query.

use crate::error::EngineError;
use std::cell::Cell;
use std::time::Instant;

thread_local! {
    static DEADLINE: Cell<Option<Instant>> = const { Cell::new(None) };
    static CHECKS: Cell<u64> = const { Cell::new(0) };
    static EXCEEDED: Cell<u64> = const { Cell::new(0) };
}

/// Runs `f` with the calling thread's evaluation deadline set to
/// `deadline` (`None` disables checking), restoring the previous deadline
/// afterwards — panic-safe, so a poisoned query cannot leak its deadline
/// into the next one served on the same worker thread.
pub fn with_deadline<T>(deadline: Option<Instant>, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<Instant>);
    impl Drop for Restore {
        fn drop(&mut self) {
            DEADLINE.with(|cell| cell.set(self.0));
        }
    }
    let _restore = Restore(DEADLINE.with(|cell| cell.replace(deadline)));
    f()
}

/// Returns `Err(EngineError::DeadlineExceeded)` when the calling thread's
/// deadline has passed; a no-op (not even a clock read) when none is set.
/// Evaluation loops call this exactly where they check resource limits.
pub fn check_deadline() -> Result<(), EngineError> {
    let Some(deadline) = DEADLINE.with(|cell| cell.get()) else {
        return Ok(());
    };
    CHECKS.with(|cell| cell.set(cell.get() + 1));
    if Instant::now() >= deadline {
        EXCEEDED.with(|cell| cell.set(cell.get() + 1));
        return Err(EngineError::DeadlineExceeded(
            "query deadline passed during evaluation".into(),
        ));
    }
    Ok(())
}

/// Cumulative `(checks, exceeded)` counters for the calling thread, in the
/// style of [`crate::horn::probe_counters`] — difference around a query to
/// get its per-query values.  Exact, not sampled: the deadline is
/// thread-local, so every check a query performs happens on the thread
/// that installed it.
pub fn deadline_counters() -> (u64, u64) {
    (
        CHECKS.with(|cell| cell.get()),
        EXCEEDED.with(|cell| cell.get()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn no_deadline_means_no_checks_counted() {
        let (before, _) = deadline_counters();
        check_deadline().unwrap();
        check_deadline().unwrap();
        let (after, _) = deadline_counters();
        assert_eq!(after, before, "unset deadline costs no counted check");
    }

    #[test]
    fn future_deadline_passes_and_counts() {
        let (checks_before, exceeded_before) = deadline_counters();
        with_deadline(Some(Instant::now() + Duration::from_secs(60)), || {
            check_deadline().unwrap();
            check_deadline().unwrap();
        });
        let (checks_after, exceeded_after) = deadline_counters();
        assert_eq!(checks_after - checks_before, 2);
        assert_eq!(exceeded_after, exceeded_before);
    }

    #[test]
    fn past_deadline_fails_with_deadline_exceeded() {
        let (_, exceeded_before) = deadline_counters();
        let result = with_deadline(Some(Instant::now() - Duration::from_millis(1)), || {
            check_deadline()
        });
        assert!(matches!(result, Err(EngineError::DeadlineExceeded(_))));
        let (_, exceeded_after) = deadline_counters();
        assert_eq!(exceeded_after - exceeded_before, 1);
    }

    #[test]
    fn deadline_is_scoped_and_restored() {
        let outer = Instant::now() + Duration::from_secs(60);
        with_deadline(Some(outer), || {
            with_deadline(Some(Instant::now() - Duration::from_millis(1)), || {
                assert!(check_deadline().is_err());
            });
            // Back under the outer (future) deadline.
            check_deadline().unwrap();
        });
        // No deadline outside.
        let (before, _) = deadline_counters();
        check_deadline().unwrap();
        let (after, _) = deadline_counters();
        assert_eq!(after, before);
    }
}
