//! Engine error types.

use hilog_core::error::CoreError;
use std::fmt;

/// Errors raised by grounding and evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A rule or query floundered: a variable could not be bound before it
    /// was needed (a non-ground negative subgoal, a non-ground head after
    /// body evaluation, or a subgoal with a variable predicate name selected
    /// while unbound — footnote 10 of the paper).
    Floundering(String),
    /// A resource limit (atom count, iteration count, search nodes) was
    /// exceeded.  The limits exist because HiLog Herbrand universes are
    /// infinite; see `EvalOptions`.
    LimitExceeded(String),
    /// The program is not modularly stratified (for HiLog), reported by the
    /// Figure 1 procedure or by the query-directed evaluator when it detects
    /// a negative dependency cycle.
    NotModularlyStratified(String),
    /// The program has no stable models at all, so the stable-model
    /// semantics (Definition 3.7) assigns no truth values — reported by the
    /// session facade when queries are asked under
    /// [`Semantics::Stable`](crate::session::Semantics).
    NoStableModels,
    /// The query's deadline passed while evaluation was still running.  The
    /// deadline is checked at the same hook sites as the resource limits, so
    /// a runaway query returns instead of pinning a worker; see
    /// [`crate::deadline`].
    DeadlineExceeded(String),
    /// A construct is not supported by the invoked evaluation path (e.g. an
    /// aggregate literal reaching the plain grounder instead of the
    /// aggregation evaluator).
    Unsupported(String),
    /// An error bubbled up from `hilog-core` (arithmetic, preconditions).
    Core(CoreError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Floundering(m) => write!(f, "floundering: {m}"),
            EngineError::LimitExceeded(m) => write!(f, "limit exceeded: {m}"),
            EngineError::NotModularlyStratified(m) => {
                write!(f, "not modularly stratified for HiLog: {m}")
            }
            EngineError::NoStableModels => write!(
                f,
                "no stable models: the stable-model semantics (Definition 3.7) is undefined \
                 for this program"
            ),
            EngineError::DeadlineExceeded(m) => write!(f, "deadline exceeded: {m}"),
            EngineError::Unsupported(m) => write!(f, "unsupported: {m}"),
            EngineError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<CoreError> for EngineError {
    fn from(e: CoreError) -> Self {
        EngineError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(EngineError::Floundering("x".into())
            .to_string()
            .contains("floundering"));
        assert!(EngineError::LimitExceeded("x".into())
            .to_string()
            .contains("limit"));
        assert!(EngineError::NotModularlyStratified("x".into())
            .to_string()
            .contains("modularly stratified"));
        assert!(EngineError::Unsupported("x".into())
            .to_string()
            .contains("unsupported"));
        assert!(EngineError::NoStableModels
            .to_string()
            .contains("no stable models"));
        let core: EngineError = CoreError::Arithmetic("bad".into()).into();
        assert!(core.to_string().contains("arithmetic"));
    }
}
