//! Ground (Herbrand-instantiated) programs.
//!
//! The well-founded and stable-model constructions of Section 3 / Section 4
//! operate on the set of Herbrand-instantiated rules of a program.  A
//! [`GroundRule`] has a ground head, ground positive body atoms and ground
//! negative body atoms; builtins have already been evaluated away by the
//! grounder, and aggregates are handled by the dedicated aggregation
//! evaluator before reaching this representation.
//!
//! [`IndexedProgram`] is the id-based form the fixpoint computations use: it
//! interns atoms into dense indices and groups rules by head.

use hilog_core::term::Term;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// A fully instantiated rule.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroundRule {
    /// The ground head atom.
    pub head: Term,
    /// Ground positive body atoms.
    pub pos: Vec<Term>,
    /// Ground negative body atoms.
    pub neg: Vec<Term>,
}

impl GroundRule {
    /// Creates a ground rule, asserting groundness in debug builds.
    pub fn new(head: Term, pos: Vec<Term>, neg: Vec<Term>) -> Self {
        debug_assert!(head.is_ground(), "non-ground head {head}");
        debug_assert!(pos.iter().all(Term::is_ground), "non-ground positive body");
        debug_assert!(neg.iter().all(Term::is_ground), "non-ground negative body");
        GroundRule { head, pos, neg }
    }

    /// A ground fact.
    pub fn fact(head: Term) -> Self {
        GroundRule::new(head, Vec::new(), Vec::new())
    }

    /// Returns `true` if the body is empty.
    pub fn is_fact(&self) -> bool {
        self.pos.is_empty() && self.neg.is_empty()
    }
}

impl fmt::Display for GroundRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_fact() {
            return write!(f, "{}.", self.head);
        }
        write!(f, "{} :- ", self.head)?;
        let mut first = true;
        for a in &self.pos {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{a}")?;
        }
        for a in &self.neg {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "not {a}")?;
        }
        write!(f, ".")
    }
}

/// A set of ground rules.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GroundProgram {
    /// The rules.
    pub rules: Vec<GroundRule>,
}

impl GroundProgram {
    /// The empty ground program.
    pub fn new() -> Self {
        GroundProgram::default()
    }

    /// Builds a ground program from rules, removing exact duplicates while
    /// preserving first-occurrence order.
    pub fn from_rules(rules: Vec<GroundRule>) -> Self {
        let mut seen = BTreeSet::new();
        let mut out = Vec::with_capacity(rules.len());
        for r in rules {
            if seen.insert(r.clone()) {
                out.push(r);
            }
        }
        GroundProgram { rules: out }
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Returns `true` if there are no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Appends a rule.
    pub fn push(&mut self, rule: GroundRule) {
        self.rules.push(rule);
    }

    /// Every atom occurring in the program (heads and bodies).  This is the
    /// *relevant base* over which computed models are reported.
    pub fn atoms(&self) -> BTreeSet<Term> {
        let mut out = BTreeSet::new();
        for r in &self.rules {
            out.insert(r.head.clone());
            out.extend(r.pos.iter().cloned());
            out.extend(r.neg.iter().cloned());
        }
        out
    }

    /// Merges two ground programs.
    pub fn union(&self, other: &GroundProgram) -> GroundProgram {
        let mut rules = self.rules.clone();
        rules.extend(other.rules.iter().cloned());
        GroundProgram::from_rules(rules)
    }
}

impl fmt::Display for GroundProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

impl FromIterator<GroundRule> for GroundProgram {
    fn from_iter<I: IntoIterator<Item = GroundRule>>(iter: I) -> Self {
        GroundProgram::from_rules(iter.into_iter().collect())
    }
}

/// An atom table interning ground atoms into dense `u32` ids.
#[derive(Debug, Clone, Default)]
pub struct AtomTable {
    atoms: Vec<Term>,
    index: HashMap<Term, u32>,
}

impl AtomTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        AtomTable::default()
    }

    /// Interns an atom, returning its id.
    pub fn intern(&mut self, atom: &Term) -> u32 {
        if let Some(&id) = self.index.get(atom) {
            return id;
        }
        let id = self.atoms.len() as u32;
        self.atoms.push(atom.clone());
        self.index.insert(atom.clone(), id);
        id
    }

    /// Looks up an atom's id without interning.
    pub fn lookup(&self, atom: &Term) -> Option<u32> {
        self.index.get(atom).copied()
    }

    /// The atom for an id.
    pub fn atom(&self, id: u32) -> &Term {
        &self.atoms[id as usize]
    }

    /// Number of interned atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Returns `true` if no atom has been interned.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Iterates over `(id, atom)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Term)> {
        self.atoms.iter().enumerate().map(|(i, a)| (i as u32, a))
    }
}

/// An id-based rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexedRule {
    /// Head atom id.
    pub head: u32,
    /// Positive body atom ids.
    pub pos: Vec<u32>,
    /// Negative body atom ids.
    pub neg: Vec<u32>,
}

/// A ground program interned into dense atom ids, with a rules-by-head index.
#[derive(Debug, Clone)]
pub struct IndexedProgram {
    /// The atom table.
    pub atoms: AtomTable,
    /// The rules.
    pub rules: Vec<IndexedRule>,
    /// For each atom id, the indices of rules whose head is that atom.
    pub rules_by_head: Vec<Vec<u32>>,
}

impl IndexedProgram {
    /// Builds the indexed form of a ground program.
    pub fn build(program: &GroundProgram) -> IndexedProgram {
        let mut atoms = AtomTable::new();
        let mut rules = Vec::with_capacity(program.len());
        for r in &program.rules {
            let head = atoms.intern(&r.head);
            let pos = r.pos.iter().map(|a| atoms.intern(a)).collect();
            let neg = r.neg.iter().map(|a| atoms.intern(a)).collect();
            rules.push(IndexedRule { head, pos, neg });
        }
        let mut rules_by_head = vec![Vec::new(); atoms.len()];
        for (i, r) in rules.iter().enumerate() {
            rules_by_head[r.head as usize].push(i as u32);
        }
        IndexedProgram {
            atoms,
            rules,
            rules_by_head,
        }
    }

    /// Number of atoms.
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    /// Number of rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(name: &str, args: &[&str]) -> Term {
        Term::apps(name, args.iter().map(Term::sym).collect())
    }

    #[test]
    fn ground_rule_display() {
        let r = GroundRule::new(
            atom("winning", &["a"]),
            vec![atom("move", &["a", "b"])],
            vec![atom("winning", &["b"])],
        );
        assert_eq!(r.to_string(), "winning(a) :- move(a, b), not winning(b).");
        assert_eq!(
            GroundRule::fact(atom("move", &["a", "b"])).to_string(),
            "move(a, b)."
        );
    }

    #[test]
    fn from_rules_deduplicates() {
        let r = GroundRule::fact(atom("p", &["a"]));
        let gp = GroundProgram::from_rules(vec![r.clone(), r.clone(), r]);
        assert_eq!(gp.len(), 1);
    }

    #[test]
    fn atoms_collects_relevant_base() {
        let gp = GroundProgram::from_rules(vec![GroundRule::new(
            atom("winning", &["a"]),
            vec![atom("move", &["a", "b"])],
            vec![atom("winning", &["b"])],
        )]);
        let atoms = gp.atoms();
        assert_eq!(atoms.len(), 3);
        assert!(atoms.contains(&atom("winning", &["b"])));
    }

    #[test]
    fn union_merges_and_dedups() {
        let a = GroundProgram::from_rules(vec![GroundRule::fact(atom("p", &["a"]))]);
        let b = GroundProgram::from_rules(vec![
            GroundRule::fact(atom("p", &["a"])),
            GroundRule::fact(atom("q", &["b"])),
        ]);
        assert_eq!(a.union(&b).len(), 2);
    }

    #[test]
    fn atom_table_interns_stably() {
        let mut t = AtomTable::new();
        let a = atom("p", &["a"]);
        let id1 = t.intern(&a);
        let id2 = t.intern(&a);
        assert_eq!(id1, id2);
        assert_eq!(t.atom(id1), &a);
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(&atom("q", &[])), None);
    }

    #[test]
    fn indexed_program_groups_rules_by_head() {
        let gp = GroundProgram::from_rules(vec![
            GroundRule::new(atom("p", &["a"]), vec![], vec![atom("q", &["a"])]),
            GroundRule::new(atom("p", &["a"]), vec![atom("r", &["a"])], vec![]),
            GroundRule::fact(atom("r", &["a"])),
        ]);
        let ip = IndexedProgram::build(&gp);
        assert_eq!(ip.rule_count(), 3);
        assert_eq!(ip.atom_count(), 3);
        let p_id = ip.atoms.lookup(&atom("p", &["a"])).unwrap();
        assert_eq!(ip.rules_by_head[p_id as usize].len(), 2);
    }
}
