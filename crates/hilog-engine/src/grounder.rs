//! Instantiation (grounding) of HiLog programs.
//!
//! Section 4 of the paper extends the well-founded and stable-model
//! semantics to HiLog by instantiating rules over the (infinite) HiLog
//! Herbrand universe.  This module provides the two instantiation strategies
//! described in DESIGN.md:
//!
//! * [`relevant_ground`] — *relevant instantiation*: only substitutions that
//!   make every positive body atom a member of the over-approximated
//!   true-or-undefined set are generated.  For (strongly) range-restricted
//!   programs this is exact: Observation 5.1 / Lemma 6.3 guarantee that every
//!   atom outside the relevant set is false in the well-founded model, so the
//!   omitted ground rules can never fire.
//! * [`ground_over_universe`] — literal instantiation over an explicitly
//!   enumerated (bounded) universe, used when a definition must be exercised
//!   verbatim (e.g. the non-range-restricted programs of Example 4.1).

use crate::error::EngineError;
use crate::ground::{GroundProgram, GroundRule};
use crate::horn::{join_body, least_model, AtomStore, EvalOptions, NegationMode};
use hilog_core::literal::Literal;
use hilog_core::program::Program;
use hilog_core::rule::Rule;
use hilog_core::subst::Substitution;
use hilog_core::term::{Term, Var};

/// Relevant instantiation of a program (negation allowed, aggregates not).
///
/// Returns the ground rules whose positive bodies are satisfiable within the
/// over-approximation of derivable atoms.  Errors with
/// [`EngineError::Floundering`] if a head or negative literal remains
/// non-ground after the positive body is bound — i.e. when the program is not
/// range restricted enough for bottom-up evaluation (Definition 5.5 / 5.6).
pub fn relevant_ground(program: &Program, opts: EvalOptions) -> Result<GroundProgram, EngineError> {
    let possibly_true = least_model(program, NegationMode::Ignore, opts)?;
    ground_against(program, &possibly_true, opts)
}

/// Grounds each rule by joining its positive body against the given store of
/// candidate atoms (plus builtin evaluation), keeping negative literals.
pub fn ground_against(
    program: &Program,
    candidates: &AtomStore,
    opts: EvalOptions,
) -> Result<GroundProgram, EngineError> {
    let mut rules = Vec::new();
    for rule in program.iter() {
        for theta in join_body(rule, candidates, None, NegationMode::Ignore)? {
            rules.push(instantiate_rule(rule, &theta)?);
            if rules.len() > opts.max_atoms {
                return Err(EngineError::LimitExceeded(format!(
                    "relevant instantiation exceeded {} ground rules",
                    opts.max_atoms
                )));
            }
        }
    }
    Ok(GroundProgram::from_rules(rules))
}

fn instantiate_rule(rule: &Rule, theta: &Substitution) -> Result<GroundRule, EngineError> {
    let head = theta.apply(&rule.head);
    if !head.is_ground() {
        return Err(EngineError::Floundering(format!(
            "head `{head}` of rule `{rule}` is not ground after binding the positive body; \
             the rule is not range restricted (Definition 5.5)"
        )));
    }
    let mut pos = Vec::new();
    let mut neg = Vec::new();
    for lit in &rule.body {
        match lit {
            Literal::Pos(a) => {
                let a = theta.apply(a);
                debug_assert!(a.is_ground());
                pos.push(a);
            }
            Literal::Neg(a) => {
                let a = theta.apply(a);
                if !a.is_ground() {
                    return Err(EngineError::Floundering(format!(
                        "negative literal `not {a}` of rule `{rule}` is not ground after binding \
                         the positive body"
                    )));
                }
                neg.push(a);
            }
            Literal::Builtin(_) => {
                // Builtins were checked during the join; they leave no residue
                // in the ground rule.
            }
            Literal::Aggregate(_) => {
                return Err(EngineError::Unsupported(
                    "aggregate literals are handled by the aggregation evaluator".into(),
                ))
            }
        }
    }
    Ok(GroundRule::new(head, pos, neg))
}

/// Literal instantiation over an explicit universe: every variable of every
/// rule ranges over every term of `universe`.  Builtins are evaluated
/// (instances whose builtins fail are dropped); aggregates are rejected.
///
/// The number of instantiations of a rule is `|universe|^(number of
/// variables)`; the function errors with [`EngineError::LimitExceeded`] if
/// this exceeds `opts.max_atoms`, since the full HiLog universe is infinite
/// and only small bounded slices are meant to be used here.
pub fn ground_over_universe(
    program: &Program,
    universe: &[Term],
    opts: EvalOptions,
) -> Result<GroundProgram, EngineError> {
    let mut rules = Vec::new();
    for rule in program.iter() {
        let vars = rule.variables();
        // Guard against combinatorial explosion.
        let mut count: u128 = 1;
        for _ in &vars {
            count = count.saturating_mul(universe.len() as u128);
            if count > opts.max_atoms as u128 {
                return Err(EngineError::LimitExceeded(format!(
                    "instantiating rule `{rule}` over a universe of {} terms needs more than {} \
                     instances",
                    universe.len(),
                    opts.max_atoms
                )));
            }
        }
        enumerate_assignments(
            &vars,
            universe,
            &mut |theta| match instantiate_ground_instance(rule, theta) {
                Ok(Some(r)) => {
                    rules.push(r);
                    Ok(())
                }
                Ok(None) => Ok(()),
                Err(e) => Err(e),
            },
        )?;
        if rules.len() > opts.max_atoms {
            return Err(EngineError::LimitExceeded(format!(
                "universe instantiation exceeded {} ground rules",
                opts.max_atoms
            )));
        }
    }
    Ok(GroundProgram::from_rules(rules))
}

/// Instantiates one rule under a *total* assignment; returns `None` if a
/// builtin fails (the instance is simply not part of the instantiated
/// program).
fn instantiate_ground_instance(
    rule: &Rule,
    theta: &Substitution,
) -> Result<Option<GroundRule>, EngineError> {
    let head = theta.apply(&rule.head);
    debug_assert!(head.is_ground());
    let mut pos = Vec::new();
    let mut neg = Vec::new();
    for lit in &rule.body {
        match lit {
            Literal::Pos(a) => pos.push(theta.apply(a)),
            Literal::Neg(a) => neg.push(theta.apply(a)),
            Literal::Builtin(b) => {
                let mut scratch = theta.clone();
                match b.eval(&mut scratch) {
                    Ok(true) => {}
                    Ok(false) => return Ok(None),
                    // Arithmetic over non-numeric universe terms simply fails
                    // to produce an instance.
                    Err(_) => return Ok(None),
                }
            }
            Literal::Aggregate(_) => {
                return Err(EngineError::Unsupported(
                    "aggregate literals are handled by the aggregation evaluator".into(),
                ))
            }
        }
    }
    Ok(Some(GroundRule::new(head, pos, neg)))
}

fn enumerate_assignments(
    vars: &[Var],
    universe: &[Term],
    f: &mut impl FnMut(&Substitution) -> Result<(), EngineError>,
) -> Result<(), EngineError> {
    if vars.is_empty() {
        return f(&Substitution::new());
    }
    if universe.is_empty() {
        // No assignments exist; rules with variables produce no instances.
        return Ok(());
    }
    let mut indices = vec![0usize; vars.len()];
    loop {
        let theta: Substitution = vars
            .iter()
            .zip(indices.iter())
            .map(|(v, &i)| (v.clone(), universe[i].clone()))
            .collect();
        f(&theta)?;
        // Advance mixed-radix counter.
        let mut k = 0;
        loop {
            if k == vars.len() {
                return Ok(());
            }
            indices[k] += 1;
            if indices[k] < universe.len() {
                break;
            }
            indices[k] = 0;
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hilog_core::herbrand::{HerbrandBounds, HerbrandUniverse};
    use hilog_syntax::parse_program;

    fn ground(text: &str) -> GroundProgram {
        relevant_ground(&parse_program(text).unwrap(), EvalOptions::default()).unwrap()
    }

    #[test]
    fn relevant_grounding_of_win_move() {
        let gp = ground(
            "winning(X) :- move(X, Y), not winning(Y).\n\
             move(a, b). move(b, c).",
        );
        // Two facts + two instantiated rules (for X/a and X/b).
        assert_eq!(gp.len(), 4);
        let texts: Vec<String> = gp.rules.iter().map(|r| r.to_string()).collect();
        assert!(texts.contains(&"winning(a) :- move(a, b), not winning(b).".to_string()));
        assert!(texts.contains(&"winning(b) :- move(b, c), not winning(c).".to_string()));
    }

    #[test]
    fn relevant_grounding_of_hilog_game() {
        let gp = ground(
            "winning(M)(X) :- game(M), M(X, Y), not winning(M)(Y).\n\
             game(move1). move1(a, b). move1(b, c).",
        );
        let texts: Vec<String> = gp.rules.iter().map(|r| r.to_string()).collect();
        assert!(texts.contains(
            &"winning(move1)(a) :- game(move1), move1(a, b), not winning(move1)(b).".to_string()
        ));
        assert!(texts.contains(
            &"winning(move1)(b) :- game(move1), move1(b, c), not winning(move1)(c).".to_string()
        ));
    }

    #[test]
    fn relevant_grounding_only_produces_supported_instances() {
        let gp = ground(
            "winning(X) :- move(X, Y), not winning(Y).\n\
             move(a, b). irrelevant(z, w).",
        );
        // The irrelevant fact does not generate winning instances.
        assert_eq!(gp.len(), 3);
        assert!(!gp
            .atoms()
            .contains(&Term::apps("winning", vec![Term::sym("z")])));
    }

    #[test]
    fn builtins_are_resolved_during_grounding() {
        let gp = ground("big(X) :- size(X, N), N > 2. size(a, 1). size(b, 5).");
        let texts: Vec<String> = gp.rules.iter().map(|r| r.to_string()).collect();
        assert!(texts.contains(&"big(b) :- size(b, 5).".to_string()));
        assert!(!texts.iter().any(|t| t.starts_with("big(a)")));
    }

    #[test]
    fn floundering_head_is_reported() {
        // X(a, b). cannot be grounded bottom-up (Section 6.1 / Lemma 6.3
        // remark about programs that are not strongly range restricted).
        let p = parse_program("q(c). r(X) :- q(X), not s(X, Y).").unwrap();
        let err = relevant_ground(&p, EvalOptions::default()).unwrap_err();
        assert!(matches!(err, EngineError::Floundering(_)));
        let p2 = parse_program("p(X, X, a).").unwrap();
        assert!(matches!(
            relevant_ground(&p2, EvalOptions::default()),
            Err(EngineError::Floundering(_))
        ));
    }

    #[test]
    fn aggregates_are_rejected_by_the_grounder() {
        let p = parse_program("total(N) :- N = sum(P, in(X, P)). in(a, 3).").unwrap();
        assert!(matches!(
            relevant_ground(&p, EvalOptions::default()),
            Err(EngineError::Unsupported(_))
        ));
    }

    #[test]
    fn universe_grounding_of_example_4_1() {
        // p :- not q(X).  q(a).  Over the normal universe {a} there is a
        // single instance of the rule; over a HiLog slice there are many.
        let p = parse_program("p :- not q(X). q(a).").unwrap();
        let normal = HerbrandUniverse::normal(&p, HerbrandBounds::default());
        let gp = ground_over_universe(&p, normal.terms(), EvalOptions::default()).unwrap();
        assert_eq!(gp.len(), 2);
        assert!(gp.rules.iter().any(|r| r.to_string() == "p :- not q(a)."));

        let hilog = HerbrandUniverse::hilog(&p, HerbrandBounds::new(1, 0, 100));
        let gh = ground_over_universe(&p, hilog.terms(), EvalOptions::default()).unwrap();
        // One instance per universe term (p, q, a) plus the fact.
        assert_eq!(gh.len(), 4);
    }

    #[test]
    fn universe_grounding_evaluates_builtins() {
        let p = parse_program("q(X, Y) :- r(X), r(Y), X \\= Y. r(a). r(b).").unwrap();
        let u = vec![Term::sym("a"), Term::sym("b")];
        let gp = ground_over_universe(&p, &u, EvalOptions::default()).unwrap();
        // Only the two instances with distinct arguments survive, plus 2 facts.
        assert_eq!(gp.len(), 4);
    }

    #[test]
    fn universe_grounding_guards_against_explosion() {
        let p = parse_program("p(A, B, C, D, E, F) :- q(A, B, C, D, E, F).").unwrap();
        let u: Vec<Term> = (0..50).map(Term::int).collect();
        assert!(matches!(
            ground_over_universe(&p, &u, EvalOptions::with_max_atoms(10_000)),
            Err(EngineError::LimitExceeded(_))
        ));
    }

    #[test]
    fn empty_universe_produces_only_ground_rule_instances() {
        let p = parse_program("p :- not q(X). s.").unwrap();
        let gp = ground_over_universe(&p, &[], EvalOptions::default()).unwrap();
        // The rule has a variable and produces no instances; the fact stays.
        assert_eq!(gp.len(), 1);
    }
}
