//! Least models of definite (negation-free) programs, and the atom store /
//! join machinery shared with the grounder.
//!
//! Section 2 of the paper: a negation-free HiLog program — for instance the
//! image of a program under the universal-relation transformation — is a Horn
//! program whose least model gives its semantics.  The least model is
//! computed bottom-up by semi-naive iteration; the same join machinery drives
//! the *relevant instantiation* used to ground programs with negation.

use crate::error::EngineError;
use hilog_core::literal::Literal;
use hilog_core::program::Program;
use hilog_core::rule::Rule;
use hilog_core::subst::Substitution;
use hilog_core::term::Term;
use hilog_core::unify::match_with;
use std::collections::{BTreeSet, HashMap};

/// Resource limits for bottom-up evaluation.  They exist because HiLog
/// Herbrand universes are infinite: a non-range-restricted program (or a
/// range-restricted one with recursively applied function symbols, as the
/// paper notes at the end of Section 6.1) may not have a finite relevant
/// instantiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalOptions {
    /// Maximum number of distinct derived atoms before aborting.
    pub max_atoms: usize,
    /// Maximum number of semi-naive rounds before aborting.
    pub max_rounds: usize,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            max_atoms: 500_000,
            max_rounds: 100_000,
        }
    }
}

impl EvalOptions {
    /// Options with a small atom budget, useful in tests of divergence.
    pub fn with_max_atoms(max_atoms: usize) -> Self {
        EvalOptions {
            max_atoms,
            ..EvalOptions::default()
        }
    }
}

/// How to treat negative literals during a positive (over-approximating)
/// computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NegationMode {
    /// Ignore negative literals (treat them as true).  This yields the
    /// over-approximation of the true-or-undefined atoms used for relevant
    /// instantiation (Observation 5.1 justifies that atoms outside it are
    /// false for range-restricted programs).
    Ignore,
    /// Reject programs containing negative literals.
    Forbid,
}

/// A set of ground atoms indexed by `(predicate name, arity)` for fast
/// candidate lookup during joins.
#[derive(Debug, Clone, Default)]
pub struct AtomStore {
    atoms: BTreeSet<Term>,
    by_key: HashMap<(Term, Option<usize>), Vec<Term>>,
}

impl AtomStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        AtomStore::default()
    }

    /// Builds a store from an iterator of ground atoms.
    pub fn from_atoms(atoms: impl IntoIterator<Item = Term>) -> Self {
        let mut store = AtomStore::new();
        for a in atoms {
            store.insert(a);
        }
        store
    }

    fn key_of(atom: &Term) -> (Term, Option<usize>) {
        (atom.name().clone(), atom.arity())
    }

    /// Inserts a ground atom; returns `true` if it was new.
    pub fn insert(&mut self, atom: Term) -> bool {
        debug_assert!(
            atom.is_ground(),
            "AtomStore::insert of non-ground atom {atom}"
        );
        if self.atoms.insert(atom.clone()) {
            self.by_key
                .entry(Self::key_of(&atom))
                .or_default()
                .push(atom);
            true
        } else {
            false
        }
    }

    /// Removes a ground atom; returns `true` if it was present.
    pub fn remove(&mut self, atom: &Term) -> bool {
        if !self.atoms.remove(atom) {
            return false;
        }
        if let Some(bucket) = self.by_key.get_mut(&Self::key_of(atom)) {
            bucket.retain(|a| a != atom);
        }
        true
    }

    /// Returns `true` if the atom is present.
    pub fn contains(&self, atom: &Term) -> bool {
        self.atoms.contains(atom)
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Returns `true` if the store is empty.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Iterates over all atoms.
    pub fn iter(&self) -> impl Iterator<Item = &Term> {
        self.atoms.iter()
    }

    /// The full atom set.
    pub fn atoms(&self) -> &BTreeSet<Term> {
        &self.atoms
    }

    /// Candidate atoms that could match the given (possibly partially
    /// instantiated) pattern: if the pattern's predicate name is ground the
    /// lookup is by `(name, arity)`; otherwise every atom of the right arity
    /// is a candidate (a variable predicate name can match anything of that
    /// arity).
    ///
    /// Returns a concrete [`Candidates`] iterator (no boxed trait object —
    /// this is the hot path of [`join_body`]).
    pub fn candidates<'a>(&'a self, pattern: &Term) -> Candidates<'a> {
        let arity = pattern.arity();
        let inner = if pattern.name().is_ground() {
            match self.by_key.get(&(pattern.name().clone(), arity)) {
                Some(v) => CandidatesInner::Keyed(v.iter()),
                None => CandidatesInner::Empty,
            }
        } else {
            CandidatesInner::ByArity(self.atoms.iter(), arity)
        };
        Candidates { inner }
    }
}

/// Concrete iterator returned by [`AtomStore::candidates`].
///
/// Ground-named patterns iterate the `(name, arity)` bucket directly; patterns
/// with a variable predicate name scan the whole store, keeping atoms of the
/// pattern's arity.  Every yielded atom therefore has the pattern's arity, and
/// for ground-named patterns also its exact predicate name.
#[derive(Debug, Clone)]
pub struct Candidates<'a> {
    inner: CandidatesInner<'a>,
}

#[derive(Debug, Clone)]
enum CandidatesInner<'a> {
    Empty,
    Keyed(std::slice::Iter<'a, Term>),
    ByArity(std::collections::btree_set::Iter<'a, Term>, Option<usize>),
}

impl<'a> Iterator for Candidates<'a> {
    type Item = &'a Term;

    fn next(&mut self) -> Option<&'a Term> {
        match &mut self.inner {
            CandidatesInner::Empty => None,
            CandidatesInner::Keyed(iter) => iter.next(),
            CandidatesInner::ByArity(iter, arity) => iter.find(|a| a.arity() == *arity),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.inner {
            CandidatesInner::Empty => (0, Some(0)),
            CandidatesInner::Keyed(iter) => iter.size_hint(),
            CandidatesInner::ByArity(iter, _) => (0, iter.size_hint().1),
        }
    }
}

/// Extends the substitutions in `seeds` by matching `pattern` against the
/// atoms of `store`, returning every successful extension.
pub fn extend_by_matching(
    seeds: Vec<Substitution>,
    pattern: &Term,
    store: &AtomStore,
) -> Vec<Substitution> {
    let mut out = Vec::new();
    for theta in seeds {
        let instantiated = theta.apply(pattern);
        if instantiated.is_ground() {
            if store.contains(&instantiated) {
                out.push(theta);
            }
            continue;
        }
        for candidate in store.candidates(&instantiated) {
            let mut extended = theta.clone();
            if match_with(&instantiated, candidate, &mut extended) {
                out.push(extended);
            }
        }
    }
    out
}

/// Joins the body of a rule against an atom store, producing every
/// substitution under which all positive atoms are in the store and all
/// builtins succeed.  Negative literals are handled according to `mode`;
/// aggregates are rejected (they have a dedicated evaluator).
///
/// When `delta` is `Some((store, index))`, the positive literal at position
/// `index` (counting positive literals only) draws its candidates from the
/// delta store instead — the semi-naive restriction.
pub fn join_body(
    rule: &Rule,
    store: &AtomStore,
    delta: Option<(&AtomStore, usize)>,
    mode: NegationMode,
) -> Result<Vec<Substitution>, EngineError> {
    let mut thetas = vec![Substitution::new()];
    let mut positive_index = 0usize;
    for lit in &rule.body {
        if thetas.is_empty() {
            return Ok(thetas);
        }
        match lit {
            Literal::Pos(atom) => {
                let use_store = match delta {
                    Some((delta_store, idx)) if idx == positive_index => delta_store,
                    _ => store,
                };
                thetas = extend_by_matching(thetas, atom, use_store);
                positive_index += 1;
            }
            Literal::Neg(_) => match mode {
                NegationMode::Ignore => {}
                NegationMode::Forbid => {
                    return Err(EngineError::Unsupported(format!(
                        "negative literal `{lit}` in a definite-program computation"
                    )))
                }
            },
            Literal::Builtin(b) => {
                let mut next = Vec::with_capacity(thetas.len());
                for mut theta in thetas {
                    match b.eval(&mut theta) {
                        Ok(true) => next.push(theta),
                        Ok(false) => {}
                        Err(e) => return Err(EngineError::Core(e)),
                    }
                }
                thetas = next;
            }
            Literal::Aggregate(_) => return Err(EngineError::Unsupported(
                "aggregate literals are evaluated by the aggregation evaluator, not the grounder"
                    .into(),
            )),
        }
    }
    Ok(thetas)
}

/// Computes the least model of a definite program by semi-naive bottom-up
/// evaluation.  With [`NegationMode::Ignore`] the result over-approximates
/// the true-or-undefined atoms of any model of the full program (negative
/// literals are treated as true); with [`NegationMode::Forbid`] the program
/// must be negation-free and the result is its least Herbrand model.
pub fn least_model(
    program: &Program,
    mode: NegationMode,
    opts: EvalOptions,
) -> Result<AtomStore, EngineError> {
    let mut store = AtomStore::new();
    let mut delta = AtomStore::new();

    // Round 0: facts and rules whose positive body is empty.
    for rule in program.iter() {
        let positives = rule.positive_atoms().count();
        if positives == 0 {
            for theta in join_body(rule, &store, None, mode)? {
                let head = theta.apply(&rule.head);
                if !head.is_ground() {
                    return Err(EngineError::Floundering(format!(
                        "rule `{rule}` derives the non-ground head `{head}`; the program is not \
                         range restricted (Definition 5.5) so bottom-up evaluation cannot bind it"
                    )));
                }
                if store.insert(head.clone()) {
                    delta.insert(head);
                }
            }
        }
    }

    let mut rounds = 0usize;
    while !delta.is_empty() {
        rounds += 1;
        if rounds > opts.max_rounds {
            return Err(EngineError::LimitExceeded(format!(
                "least-model computation exceeded {} rounds",
                opts.max_rounds
            )));
        }
        let mut next_delta = AtomStore::new();
        for rule in program.iter() {
            let positives = rule.positive_atoms().count();
            for delta_idx in 0..positives {
                for theta in join_body(rule, &store, Some((&delta, delta_idx)), mode)? {
                    let head = theta.apply(&rule.head);
                    if !head.is_ground() {
                        return Err(EngineError::Floundering(format!(
                            "rule `{rule}` derives the non-ground head `{head}`"
                        )));
                    }
                    if !store.contains(&head) {
                        if store.len() >= opts.max_atoms {
                            return Err(EngineError::LimitExceeded(format!(
                                "least-model computation exceeded {} atoms",
                                opts.max_atoms
                            )));
                        }
                        store.insert(head.clone());
                        next_delta.insert(head);
                    }
                }
            }
        }
        delta = next_delta;
    }
    Ok(store)
}

/// A semi-naive evaluation frontier: the atoms added in the most recent
/// round (`frontier`) plus everything accumulated since the continuation
/// started.  This is the unit of work the delta-aware consequence operator
/// [`consequence_round`] consumes, and what
/// [`extend_least_model`] hands back to callers that need to know which
/// atoms an incremental update introduced (the session facade grounds new
/// rule instantiations from exactly this set).
#[derive(Debug, Clone, Default)]
pub struct Delta {
    frontier: AtomStore,
    accumulated: AtomStore,
}

impl Delta {
    /// An empty frontier.
    pub fn new() -> Self {
        Delta::default()
    }

    /// Seeds the frontier with an atom (recorded as accumulated as well).
    /// Returns `true` if the atom was new to the accumulated set.
    pub fn seed(&mut self, atom: Term) -> bool {
        if self.accumulated.insert(atom.clone()) {
            self.frontier.insert(atom);
            true
        } else {
            false
        }
    }

    /// The atoms of the most recent round.
    pub fn frontier(&self) -> &AtomStore {
        &self.frontier
    }

    /// Every atom added since the continuation started.
    pub fn accumulated(&self) -> &AtomStore {
        &self.accumulated
    }

    /// Returns `true` if the frontier is exhausted (fixpoint reached).
    pub fn is_settled(&self) -> bool {
        self.frontier.is_empty()
    }

    /// Replaces the frontier with the next round's atoms, folding them into
    /// the accumulated set.
    fn advance(&mut self, next: AtomStore) {
        for atom in next.iter() {
            self.accumulated.insert(atom.clone());
        }
        self.frontier = next;
    }
}

/// One application of the delta-aware consequence operator: every head
/// derivable by a rule whose body has at least one positive literal matched
/// in `frontier` (the semi-naive restriction), with the remaining positive
/// literals drawn from `store`.  Heads already in `store` are not returned.
///
/// Rules with an empty positive body can never fire from a non-empty
/// frontier, so they are skipped — callers start from a store that already
/// contains round 0 (see [`least_model`]).
pub fn consequence_round(
    program: &Program,
    store: &AtomStore,
    frontier: &AtomStore,
    mode: NegationMode,
) -> Result<Vec<Term>, EngineError> {
    let mut out = Vec::new();
    for rule in program.iter() {
        let positives = rule.positive_atoms().count();
        for delta_idx in 0..positives {
            for theta in join_body(rule, store, Some((frontier, delta_idx)), mode)? {
                let head = theta.apply(&rule.head);
                if !head.is_ground() {
                    return Err(EngineError::Floundering(format!(
                        "rule `{rule}` derives the non-ground head `{head}`"
                    )));
                }
                if !store.contains(&head) {
                    out.push(head);
                }
            }
        }
    }
    Ok(out)
}

/// Semi-naive *continuation*: extends an existing least-model store with new
/// seed atoms, running the delta-aware consequence operator to a fixpoint.
///
/// `store` must be closed under the program's rules before the call (e.g. a
/// previous [`least_model`] result); afterwards it is closed again.  Returns
/// the settled [`Delta`] whose accumulated set is exactly the atoms the seeds
/// introduced — the incremental analogue of re-running [`least_model`] on the
/// extended program, at the cost of only the new derivations.
///
/// On `Err` (a resource limit, or a floundering derivation) the store is
/// left **partially extended** — the seeds plus whatever was derived before
/// the failure — so it is no longer closed; discard it and recompute from
/// scratch, as [`crate::session::HiLogDb`] does.
pub fn extend_least_model(
    program: &Program,
    store: &mut AtomStore,
    seeds: impl IntoIterator<Item = Term>,
    mode: NegationMode,
    opts: EvalOptions,
) -> Result<Delta, EngineError> {
    let mut delta = Delta::new();
    for seed in seeds {
        debug_assert!(seed.is_ground(), "extend_least_model seed must be ground");
        if !store.contains(&seed) {
            delta.seed(seed.clone());
            store.insert(seed);
        }
    }
    let mut rounds = 0usize;
    while !delta.is_settled() {
        rounds += 1;
        if rounds > opts.max_rounds {
            return Err(EngineError::LimitExceeded(format!(
                "incremental least-model continuation exceeded {} rounds",
                opts.max_rounds
            )));
        }
        let derived = consequence_round(program, store, delta.frontier(), mode)?;
        let mut next = AtomStore::new();
        for head in derived {
            if !store.contains(&head) {
                if store.len() >= opts.max_atoms {
                    return Err(EngineError::LimitExceeded(format!(
                        "incremental least-model continuation exceeded {} atoms",
                        opts.max_atoms
                    )));
                }
                store.insert(head.clone());
                next.insert(head);
            }
        }
        delta.advance(next);
    }
    Ok(delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hilog_syntax::parse_program;

    fn lm(text: &str) -> AtomStore {
        least_model(
            &parse_program(text).unwrap(),
            NegationMode::Forbid,
            EvalOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn least_model_of_facts() {
        let m = lm("move(a, b). move(b, c).");
        assert_eq!(m.len(), 2);
        assert!(m.contains(&Term::apps("move", vec![Term::sym("a"), Term::sym("b")])));
    }

    #[test]
    fn transitive_closure_of_chain() {
        let m = lm("tc(X, Y) :- edge(X, Y).\n\
                    tc(X, Y) :- edge(X, Z), tc(Z, Y).\n\
                    edge(a, b). edge(b, c). edge(c, d).");
        // 3 edges + 6 tc facts.
        assert_eq!(m.len(), 9);
        assert!(m.contains(&Term::apps("tc", vec![Term::sym("a"), Term::sym("d")])));
        assert!(!m.contains(&Term::apps("tc", vec![Term::sym("d"), Term::sym("a")])));
    }

    #[test]
    fn generic_hilog_transitive_closure() {
        // Example 2.1 with a bound relation name.
        let m = lm("tc(G)(X, Y) :- graph(G), G(X, Y).\n\
                    tc(G)(X, Y) :- graph(G), G(X, Z), tc(G)(Z, Y).\n\
                    graph(e). e(a, b). e(b, c).");
        let tc_e = |x: &str, y: &str| {
            Term::app(
                Term::apps("tc", vec![Term::sym("e")]),
                vec![Term::sym(x), Term::sym(y)],
            )
        };
        assert!(m.contains(&tc_e("a", "b")));
        assert!(m.contains(&tc_e("a", "c")));
        assert!(m.contains(&tc_e("b", "c")));
        assert!(!m.contains(&tc_e("c", "a")));
    }

    #[test]
    fn maplist_bottom_up_is_infinite_and_hits_the_atom_budget() {
        // Example 2.2 has recursively applied constructors (`cons`), so — as
        // the end of Section 6.1 warns for programs with recursively applied
        // function symbols — its bottom-up relevant instantiation is
        // infinite: ever longer lists keep being derived.  The engine detects
        // this through the atom budget; the query-directed evaluator in
        // `magic_eval` is the right tool for maplist (see its tests).
        let p = parse_program(
            "maplist(F)([], []) :- fun(F).\n\
             maplist(F)([X | R], [Y | Z]) :- F(X, Y), maplist(F)(R, Z).\n\
             fun(double).\n\
             double(one, two). double(two, four).",
        )
        .unwrap();
        let r = least_model(&p, NegationMode::Forbid, EvalOptions::with_max_atoms(300));
        assert!(matches!(r, Err(EngineError::LimitExceeded(_))));
    }

    #[test]
    fn unguarded_maplist_flounders() {
        // The literal Example 2.2 base case has the variable F in its head
        // name; bottom-up evaluation cannot bind it and reports floundering.
        let p = parse_program("maplist(F)([], []).").unwrap();
        assert!(matches!(
            least_model(&p, NegationMode::Forbid, EvalOptions::default()),
            Err(EngineError::Floundering(_))
        ));
    }

    #[test]
    fn builtins_participate_in_joins() {
        let m = lm("cost(a, 3). cost(b, 5).\n\
                    total(X, N) :- cost(X, P), N is P * 2.\n\
                    cheap(X) :- cost(X, P), P < 4.");
        assert!(m.contains(&Term::apps("total", vec![Term::sym("a"), Term::int(6)])));
        assert!(m.contains(&Term::apps("cheap", vec![Term::sym("a")])));
        assert!(!m.contains(&Term::apps("cheap", vec![Term::sym("b")])));
    }

    #[test]
    fn variable_predicate_names_join_against_all_atoms() {
        // p :- X(Y), Y(X).  (Example 5.1) — no derivation without facts, one
        // with the facts q(r), r(q).
        let without = least_model(
            &parse_program("p :- X(Y), Y(X).").unwrap(),
            NegationMode::Forbid,
            EvalOptions::default(),
        )
        .unwrap();
        assert!(!without.contains(&Term::sym("p")));
        let with = lm("p :- X(Y), Y(X). q(r). r(q).");
        assert!(with.contains(&Term::sym("p")));
    }

    #[test]
    fn negation_mode_controls_negative_literals() {
        let p = parse_program("p :- q, not r. q.").unwrap();
        assert!(matches!(
            least_model(&p, NegationMode::Forbid, EvalOptions::default()),
            Err(EngineError::Unsupported(_))
        ));
        let m = least_model(&p, NegationMode::Ignore, EvalOptions::default()).unwrap();
        assert!(m.contains(&Term::sym("p")));
    }

    #[test]
    fn floundering_is_reported() {
        // A fact with a variable cannot be grounded bottom-up.
        let p = parse_program("p(X, X, a).").unwrap();
        assert!(matches!(
            least_model(&p, NegationMode::Forbid, EvalOptions::default()),
            Err(EngineError::Floundering(_))
        ));
    }

    #[test]
    fn atom_limit_stops_runaway_programs() {
        // nat(s(X)) :- nat(X). generates unboundedly many atoms.
        let p = parse_program("nat(z). nat(s(X)) :- nat(X).").unwrap();
        let r = least_model(&p, NegationMode::Forbid, EvalOptions::with_max_atoms(50));
        assert!(matches!(r, Err(EngineError::LimitExceeded(_))));
    }

    #[test]
    fn atom_store_candidates_by_name_and_arity() {
        let mut store = AtomStore::new();
        store.insert(Term::apps("move", vec![Term::sym("a"), Term::sym("b")]));
        store.insert(Term::apps("move", vec![Term::sym("b"), Term::sym("c")]));
        store.insert(Term::apps("game", vec![Term::sym("move1")]));
        let pat = Term::apps("move", vec![Term::var("X"), Term::var("Y")]);
        assert_eq!(store.candidates(&pat).count(), 2);
        let var_name = Term::app(Term::var("G"), vec![Term::var("X"), Term::var("Y")]);
        assert_eq!(store.candidates(&var_name).count(), 2);
        let unary = Term::app(Term::var("G"), vec![Term::var("X")]);
        assert_eq!(store.candidates(&unary).count(), 1);
    }

    #[test]
    fn candidates_never_yield_non_matching_functors() {
        // Micro-assertion for the join hot path: a ground-named pattern must
        // only see atoms with its exact (name, arity) key, and a
        // variable-named pattern must only see atoms of its arity.
        let mut store = AtomStore::new();
        for i in 0..8 {
            store.insert(Term::apps(
                "move",
                vec![Term::sym(format!("a{i}")), Term::sym("b")],
            ));
            store.insert(Term::apps("game", vec![Term::sym(format!("g{i}"))]));
            store.insert(Term::app(
                Term::apps("winning", vec![Term::sym(format!("g{i}"))]),
                vec![Term::sym("p")],
            ));
        }
        let pat = Term::apps("move", vec![Term::var("X"), Term::var("Y")]);
        for cand in store.candidates(&pat) {
            assert_eq!(cand.name(), pat.name(), "wrong functor from keyed lookup");
            assert_eq!(cand.arity(), pat.arity(), "wrong arity from keyed lookup");
        }
        assert_eq!(store.candidates(&pat).count(), 8);
        // Variable predicate name: all unary atoms (game/1 and winning(_)/1),
        // never the binary move atoms.
        let var_pat = Term::app(Term::var("P"), vec![Term::var("X")]);
        let mut seen = 0usize;
        for cand in store.candidates(&var_pat) {
            assert_eq!(cand.arity(), Some(1), "arity filter leaked {cand}");
            seen += 1;
        }
        assert_eq!(seen, 16);
        // A key absent from the store yields nothing.
        assert_eq!(
            store
                .candidates(&Term::apps("absent", vec![Term::var("X")]))
                .count(),
            0
        );
    }

    #[test]
    fn duplicate_insertion_is_idempotent() {
        let mut store = AtomStore::new();
        assert!(store.insert(Term::sym("p")));
        assert!(!store.insert(Term::sym("p")));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn removal_updates_the_candidate_index() {
        let mut store = AtomStore::new();
        let ab = Term::apps("move", vec![Term::sym("a"), Term::sym("b")]);
        let bc = Term::apps("move", vec![Term::sym("b"), Term::sym("c")]);
        store.insert(ab.clone());
        store.insert(bc.clone());
        assert!(store.remove(&ab));
        assert!(!store.remove(&ab));
        assert_eq!(store.len(), 1);
        let pat = Term::apps("move", vec![Term::var("X"), Term::var("Y")]);
        let left: Vec<&Term> = store.candidates(&pat).collect();
        assert_eq!(left, vec![&bc]);
    }

    #[test]
    fn extend_least_model_matches_recomputation() {
        // Closing tc over a chain, then adding the edge that joins two
        // components, must agree with recomputing from scratch.
        let base = "tc(X, Y) :- edge(X, Y).\n\
                    tc(X, Y) :- edge(X, Z), tc(Z, Y).\n\
                    edge(a, b). edge(c, d).";
        let mut program = parse_program(base).unwrap();
        let mut store =
            least_model(&program, NegationMode::Forbid, EvalOptions::default()).unwrap();
        let new_edge = Term::apps("edge", vec![Term::sym("b"), Term::sym("c")]);
        program.push(Rule::fact(new_edge.clone()));
        let delta = extend_least_model(
            &program,
            &mut store,
            [new_edge],
            NegationMode::Forbid,
            EvalOptions::default(),
        )
        .unwrap();
        let fresh = least_model(&program, NegationMode::Forbid, EvalOptions::default()).unwrap();
        assert_eq!(store.atoms(), fresh.atoms());
        // The delta is exactly the difference: the new edge plus the new
        // tc pairs crossing it (a->c, a->d, b->c, b->d, c is already linked
        // to d).
        assert_eq!(delta.accumulated().len(), 5);
        assert!(delta
            .accumulated()
            .contains(&Term::apps("tc", vec![Term::sym("a"), Term::sym("d")])));
        assert!(delta.is_settled());
    }

    #[test]
    fn extending_with_a_known_atom_is_a_no_op() {
        let program = parse_program("p(a). q(X) :- p(X).").unwrap();
        let mut store =
            least_model(&program, NegationMode::Forbid, EvalOptions::default()).unwrap();
        let before = store.atoms().clone();
        let delta = extend_least_model(
            &program,
            &mut store,
            [Term::apps("p", vec![Term::sym("a")])],
            NegationMode::Forbid,
            EvalOptions::default(),
        )
        .unwrap();
        assert!(delta.accumulated().is_empty());
        assert_eq!(store.atoms(), &before);
    }

    #[test]
    fn extension_respects_the_atom_budget() {
        let program = parse_program("nat(z). nat(s(X)) :- nat(X).").unwrap();
        // The base program diverges, so close only the fact by hand.
        let mut store = AtomStore::from_atoms([Term::sym("seed")]);
        let r = extend_least_model(
            &program,
            &mut store,
            [Term::apps("nat", vec![Term::sym("z")])],
            NegationMode::Forbid,
            EvalOptions::with_max_atoms(20),
        );
        assert!(matches!(r, Err(EngineError::LimitExceeded(_))));
    }
}
