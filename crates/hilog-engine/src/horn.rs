//! Least models of definite (negation-free) programs, and the atom store /
//! join machinery shared with the grounder.
//!
//! Section 2 of the paper: a negation-free HiLog program — for instance the
//! image of a program under the universal-relation transformation — is a Horn
//! program whose least model gives its semantics.  The least model is
//! computed bottom-up by semi-naive iteration; the same join machinery drives
//! the *relevant instantiation* used to ground programs with negation.

use crate::deadline::check_deadline;
use crate::error::EngineError;
use crate::storage::RelationStorage;
use hilog_core::intern::{AtomId, TermInterner};
use hilog_core::literal::Literal;
use hilog_core::program::Program;
use hilog_core::rule::Rule;
use hilog_core::subst::Substitution;
use hilog_core::term::Term;
use hilog_core::unify::match_with;
use std::borrow::Borrow;
use std::cell::Cell;
use std::collections::{BTreeSet, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::{PoisonError, RwLock};

/// Resource limits for bottom-up evaluation.  They exist because HiLog
/// Herbrand universes are infinite: a non-range-restricted program (or a
/// range-restricted one with recursively applied function symbols, as the
/// paper notes at the end of Section 6.1) may not have a finite relevant
/// instantiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalOptions {
    /// Maximum number of distinct derived atoms before aborting.
    pub max_atoms: usize,
    /// Maximum number of semi-naive rounds before aborting.
    pub max_rounds: usize,
    /// Worker threads for parallel evaluation: SCC waves of the well-founded
    /// fixpoint and hash-partitioned semi-naive join rounds.  `1` keeps
    /// every route on the exact pre-parallel serial code path; the default
    /// is [`crate::pool::default_eval_threads`] (the machine's available
    /// parallelism, overridable with `HILOG_EVAL_THREADS`).  Evaluation
    /// results are identical at every thread count — only the schedule and
    /// the `parallel_*` stats change.
    pub eval_threads: usize,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            max_atoms: 500_000,
            max_rounds: 100_000,
            eval_threads: crate::pool::default_eval_threads(),
        }
    }
}

impl EvalOptions {
    /// Options with a small atom budget, useful in tests of divergence.
    pub fn with_max_atoms(max_atoms: usize) -> Self {
        EvalOptions {
            max_atoms,
            ..EvalOptions::default()
        }
    }

    /// Options with an explicit worker-thread count (clamped to at least 1).
    pub fn with_eval_threads(eval_threads: usize) -> Self {
        EvalOptions {
            eval_threads: eval_threads.max(1),
            ..EvalOptions::default()
        }
    }

    /// Returns these options with the worker-thread count replaced (clamped
    /// to at least 1).
    pub fn eval_threads(mut self, eval_threads: usize) -> Self {
        self.eval_threads = eval_threads.max(1);
        self
    }
}

/// How to treat negative literals during a positive (over-approximating)
/// computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NegationMode {
    /// Ignore negative literals (treat them as true).  This yields the
    /// over-approximation of the true-or-undefined atoms used for relevant
    /// instantiation (Observation 5.1 justifies that atoms outside it are
    /// false for range-restricted programs).
    Ignore,
    /// Reject programs containing negative literals.
    Forbid,
}

thread_local! {
    /// Whether [`AtomStore::candidates`] may answer from argument indexes.
    /// Disabled by [`scan_only_guard`] so benchmarks and the index-vs-scan
    /// property oracle can measure the pure functor-scan baseline through the
    /// exact same call path.
    static INDEXING_ENABLED: Cell<bool> = const { Cell::new(true) };
    /// Cumulative candidate probes answered from an argument index.
    static INDEX_PROBES: Cell<usize> = const { Cell::new(0) };
    /// Cumulative candidate probes that fell back to a functor-bucket or
    /// whole-store (arity) scan.
    static INDEX_FALLBACK_SCANS: Cell<usize> = const { Cell::new(0) };
}

/// Snapshot of this thread's cumulative `(index_probes, index_fallback_scans)`
/// counters, maintained by every [`AtomStore::candidates`] call.  The session
/// facade subtracts snapshots around a query to report per-query numbers in
/// its `EvalStats`; benchmarks read them directly.  Probes against a
/// `(functor, arity)` key with no stored atoms count as neither (they are
/// O(1) rejections, not scans).
pub fn probe_counters() -> (usize, usize) {
    (
        INDEX_PROBES.with(Cell::get),
        INDEX_FALLBACK_SCANS.with(Cell::get),
    )
}

/// RAII guard returned by [`scan_only_guard`]; restores index probing for
/// this thread when dropped.
#[derive(Debug)]
pub struct ScanOnlyGuard {
    previous: bool,
}

impl Drop for ScanOnlyGuard {
    fn drop(&mut self) {
        INDEXING_ENABLED.with(|flag| flag.set(self.previous));
    }
}

/// Disables argument-index probing on this thread until the returned guard
/// drops: every [`AtomStore::candidates`] call answers with the pre-index
/// functor-bucket (or arity) scan.  This exists for the `bench_join_index`
/// baseline and for the property suite pinning *indexed ≡ scanned*; it is
/// not an evaluation mode.
pub fn scan_only_guard() -> ScanOnlyGuard {
    let previous = INDEXING_ENABLED.with(|flag| flag.replace(false));
    ScanOnlyGuard { previous }
}

/// The `(predicate name, arity)` identity of a stored relation.
type RelKey = (Term, Option<usize>);

/// Borrowed view of a [`RelKey`], so relation lookups can use the pattern's
/// name in place — no `Term` clone or allocation on the probe path (the old
/// `key_of` cloned the name on every insert/contains/candidates call).
trait RelKeyRef {
    fn name(&self) -> &Term;
    fn arity(&self) -> Option<usize>;
}

impl RelKeyRef for RelKey {
    fn name(&self) -> &Term {
        &self.0
    }
    fn arity(&self) -> Option<usize> {
        self.1
    }
}

impl RelKeyRef for (&Term, Option<usize>) {
    fn name(&self) -> &Term {
        self.0
    }
    fn arity(&self) -> Option<usize> {
        self.1
    }
}

// Hash must mirror `RelKey`'s derived tuple hash (field order), so the
// borrowed and owned forms agree inside the relation map.
impl Hash for dyn RelKeyRef + '_ {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.name().hash(state);
        self.arity().hash(state);
    }
}

impl PartialEq for dyn RelKeyRef + '_ {
    fn eq(&self, other: &Self) -> bool {
        self.arity() == other.arity() && self.name() == other.name()
    }
}

impl Eq for dyn RelKeyRef + '_ {}

impl<'a> Borrow<dyn RelKeyRef + 'a> for RelKey {
    fn borrow(&self) -> &(dyn RelKeyRef + 'a) {
        self
    }
}

/// One `(functor, arity)` extension: its live members in insertion order plus
/// the argument-position hash indexes built for it so far.
#[derive(Debug, Default)]
struct Relation {
    /// Live member ids, insertion order (removal compacts in place).
    rows: Vec<AtomId>,
    /// Lazily built argument indexes: position → argument value → posting
    /// list of live rows.  Built on the first probe that binds the position
    /// (under `&self`, hence the lock) and maintained incrementally by every
    /// later insert/remove, so a warm store never rebuilds an index.  An
    /// `RwLock` rather than a `RefCell` so a shared [`AtomStore`] is `Sync`:
    /// concurrent snapshot readers probing the same warm relation only take
    /// the read lock; the write lock is held briefly when a reader is the
    /// first to need an index at some position.
    indexes: RwLock<HashMap<usize, HashMap<Term, Vec<AtomId>>>>,
}

impl Clone for Relation {
    fn clone(&self) -> Self {
        Relation {
            rows: self.rows.clone(),
            indexes: RwLock::new(
                self.indexes
                    .read()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone(),
            ),
        }
    }
}

impl Relation {
    /// Probes the most selective argument index over the pattern's ground
    /// argument positions, building missing indexes on first use.  Returns
    /// the matching posting list (cloned out, so no lock guard escapes) or
    /// `None` when the pattern binds no argument position — the caller then
    /// falls back to the functor-bucket scan.  Warm probes only take the
    /// read lock; a probe that needs a missing index upgrades to the write
    /// lock to build it.
    fn probe(&self, pattern: &Term, interner: &TermInterner) -> Option<Vec<AtomId>> {
        let args = pattern.args();
        let ground: Vec<usize> = args
            .iter()
            .enumerate()
            .filter(|(_, arg)| arg.is_ground())
            .map(|(pos, _)| pos)
            .collect();
        if ground.is_empty() {
            return None;
        }
        let read = self.indexes.read().unwrap_or_else(PoisonError::into_inner);
        if ground.iter().all(|pos| read.contains_key(pos)) {
            return Some(Self::pick_posting(&read, args, &ground));
        }
        drop(read);
        let mut write = self.indexes.write().unwrap_or_else(PoisonError::into_inner);
        for &pos in &ground {
            write
                .entry(pos)
                .or_insert_with(|| Self::build_index(&self.rows, pos, interner));
        }
        Some(Self::pick_posting(&write, args, &ground))
    }

    /// The smallest posting list over the pattern's bound positions; empty if
    /// any bound position has no posting at all (an empty posting list is
    /// maximally selective: no candidate can match the pattern).
    fn pick_posting(
        indexes: &HashMap<usize, HashMap<Term, Vec<AtomId>>>,
        args: &[Term],
        ground: &[usize],
    ) -> Vec<AtomId> {
        let mut best: Option<&Vec<AtomId>> = None;
        for &pos in ground {
            match indexes[&pos].get(&args[pos]) {
                None => return Vec::new(),
                Some(posting) => {
                    if best.is_none_or(|b| posting.len() < b.len()) {
                        best = Some(posting);
                    }
                }
            }
        }
        best.cloned().unwrap_or_default()
    }

    fn build_index(
        rows: &[AtomId],
        pos: usize,
        interner: &TermInterner,
    ) -> HashMap<Term, Vec<AtomId>> {
        let mut index: HashMap<Term, Vec<AtomId>> = HashMap::new();
        for &id in rows {
            if let Some(arg) = interner.resolve(id).args().get(pos) {
                index.entry(arg.clone()).or_default().push(id);
            }
        }
        index
    }
}

/// A set of ground atoms organised for the join hot path: every atom is
/// interned to a stable [`AtomId`], grouped into per-`(predicate name,
/// arity)` relations, and each relation carries lazily built hash indexes on
/// its argument positions.  [`AtomStore::candidates`] probes the most
/// selective index over a pattern's bound argument positions and only falls
/// back to the functor-bucket scan for fully open patterns (or to an arity
/// scan for variable predicate names).
///
/// Indexes are built on the first probe that needs them and maintained
/// incrementally by [`insert`](AtomStore::insert) /
/// [`remove`](AtomStore::remove), so long-lived stores (the session's
/// possibly-true store, the evaluator's subgoal tables) keep their indexes
/// warm across mutations.
#[derive(Debug, Clone, Default)]
pub struct AtomStore {
    /// Stable ids for every atom ever inserted (ids survive removal).
    interner: TermInterner,
    /// Per-id liveness; `false` entries are removed (or never-inserted) ids.
    live: Vec<bool>,
    live_count: usize,
    /// Ordered view of the live atoms: deterministic iteration and the
    /// `atoms()` set view.  Entries share their `Arc`s with the interner.
    atoms: BTreeSet<Term>,
    relations: HashMap<RelKey, Relation>,
}

impl AtomStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        AtomStore::default()
    }

    /// Builds a store from an iterator of ground atoms.
    pub fn from_atoms(atoms: impl IntoIterator<Item = Term>) -> Self {
        let mut store = AtomStore::new();
        for a in atoms {
            store.insert(a);
        }
        store
    }

    fn is_live(&self, id: AtomId) -> bool {
        self.live.get(id.index()).copied().unwrap_or(false)
    }

    /// Inserts a ground atom; returns `true` if it was new.
    pub fn insert(&mut self, atom: Term) -> bool {
        debug_assert!(
            atom.is_ground(),
            "AtomStore::insert of non-ground atom {atom}"
        );
        let id = self.interner.intern(&atom);
        if self.live.len() <= id.index() {
            self.live.resize(id.index() + 1, false);
        }
        if self.live[id.index()] {
            return false;
        }
        self.live[id.index()] = true;
        self.live_count += 1;
        self.atoms.insert(atom.clone());
        let key = (atom.name(), atom.arity());
        if !self.relations.contains_key(&key as &dyn RelKeyRef) {
            self.relations
                .insert((atom.name().clone(), atom.arity()), Relation::default());
        }
        let rel = self
            .relations
            .get_mut(&key as &dyn RelKeyRef)
            .expect("relation just ensured");
        rel.rows.push(id);
        // Keep every already-built index exact (`get_mut` is lock-free: the
        // `&mut self` receiver proves exclusive access).
        for (pos, index) in rel
            .indexes
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
            .iter_mut()
        {
            if let Some(arg) = atom.args().get(*pos) {
                index.entry(arg.clone()).or_default().push(id);
            }
        }
        true
    }

    /// Removes a ground atom; returns `true` if it was present.  The atom's
    /// [`AtomId`] stays reserved (a later re-insert revives it), and every
    /// built index is maintained in place.
    pub fn remove(&mut self, atom: &Term) -> bool {
        let Some(id) = self.interner.get(atom) else {
            return false;
        };
        if !self.is_live(id) {
            return false;
        }
        self.live[id.index()] = false;
        self.live_count -= 1;
        self.atoms.remove(atom);
        if let Some(rel) = self
            .relations
            .get_mut(&(atom.name(), atom.arity()) as &dyn RelKeyRef)
        {
            rel.rows.retain(|&r| r != id);
            for (pos, index) in rel
                .indexes
                .get_mut()
                .unwrap_or_else(PoisonError::into_inner)
                .iter_mut()
            {
                if let Some(arg) = atom.args().get(*pos) {
                    if let Some(posting) = index.get_mut(arg) {
                        posting.retain(|&r| r != id);
                    }
                }
            }
        }
        true
    }

    /// Returns `true` if the atom is present (one hash probe of the interner,
    /// no tree walk).
    pub fn contains(&self, atom: &Term) -> bool {
        self.interner.get(atom).is_some_and(|id| self.is_live(id))
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// Returns `true` if the store is empty.
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// Iterates over all atoms in term order.
    pub fn iter(&self) -> impl Iterator<Item = &Term> {
        self.atoms.iter()
    }

    /// The full atom set.
    pub fn atoms(&self) -> &BTreeSet<Term> {
        &self.atoms
    }

    /// Number of `(name, arity)` relations ever touched.
    pub(crate) fn relation_count(&self) -> usize {
        self.relations.len()
    }

    /// Iterates the ordered atom view from `lower` (inclusive) — the range
    /// walk behind the trait's name-keyed probe.
    pub(crate) fn atoms_from<'a>(&'a self, lower: &Term) -> impl Iterator<Item = &'a Term> {
        use std::ops::Bound;
        self.atoms.range((Bound::Included(lower), Bound::Unbounded))
    }

    /// Candidate atoms that could match the given (possibly partially
    /// instantiated) pattern.
    ///
    /// Selection, most selective first:
    ///
    /// 1. a ground predicate name narrows to the `(name, arity)` relation —
    ///    an absent relation answers empty immediately;
    /// 2. within the relation, the *most selective argument index* over the
    ///    pattern's ground argument positions is probed (indexes are built
    ///    lazily on first use and maintained by insert/remove);
    /// 3. a pattern binding no argument scans the relation's rows;
    /// 4. a variable predicate name scans the whole store by arity.
    ///
    /// Candidates are a superset of the actual matches restricted by the
    /// chosen access path; callers still unify/match against each candidate.
    /// Returns a concrete [`Candidates`] iterator (no boxed trait object —
    /// this is the hot path of [`join_body`]).
    pub fn candidates<'a>(&'a self, pattern: &Term) -> Candidates<'a> {
        let arity = pattern.arity();
        if !pattern.name().is_ground() {
            INDEX_FALLBACK_SCANS.with(|c| c.set(c.get() + 1));
            return Candidates {
                inner: CandidatesInner::ByArity(self.atoms.iter(), arity),
            };
        }
        let Some(rel) = self
            .relations
            .get(&(pattern.name(), arity) as &dyn RelKeyRef)
        else {
            return Candidates {
                inner: CandidatesInner::Empty,
            };
        };
        if INDEXING_ENABLED.with(Cell::get) {
            if let Some(posting) = rel.probe(pattern, &self.interner) {
                INDEX_PROBES.with(|c| c.set(c.get() + 1));
                return Candidates {
                    inner: CandidatesInner::Probe {
                        ids: posting.into_iter(),
                        interner: &self.interner,
                    },
                };
            }
        }
        INDEX_FALLBACK_SCANS.with(|c| c.set(c.get() + 1));
        Candidates {
            inner: CandidatesInner::Keyed {
                ids: rel.rows.iter(),
                interner: &self.interner,
            },
        }
    }
}

/// Concrete iterator returned by [`AtomStore::candidates`].
///
/// Index probes walk a posting list restricted to the pattern's most
/// selective bound argument; keyed fallbacks iterate the `(name, arity)`
/// relation; patterns with a variable predicate name scan the whole store,
/// keeping atoms of the pattern's arity.  Every yielded atom has the
/// pattern's arity, for ground-named patterns also its exact predicate name,
/// and for index probes additionally the probed argument's value.
#[derive(Debug, Clone)]
pub struct Candidates<'a> {
    inner: CandidatesInner<'a>,
}

#[derive(Debug, Clone)]
enum CandidatesInner<'a> {
    Empty,
    Probe {
        ids: std::vec::IntoIter<AtomId>,
        interner: &'a TermInterner,
    },
    Keyed {
        ids: std::slice::Iter<'a, AtomId>,
        interner: &'a TermInterner,
    },
    ByArity(std::collections::btree_set::Iter<'a, Term>, Option<usize>),
}

impl<'a> Iterator for Candidates<'a> {
    type Item = &'a Term;

    fn next(&mut self) -> Option<&'a Term> {
        match &mut self.inner {
            CandidatesInner::Empty => None,
            CandidatesInner::Probe { ids, interner } => ids.next().map(|id| interner.resolve(id)),
            CandidatesInner::Keyed { ids, interner } => ids.next().map(|&id| interner.resolve(id)),
            CandidatesInner::ByArity(iter, arity) => iter.find(|a| a.arity() == *arity),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.inner {
            CandidatesInner::Empty => (0, Some(0)),
            CandidatesInner::Probe { ids, .. } => ids.size_hint(),
            CandidatesInner::Keyed { ids, .. } => ids.size_hint(),
            CandidatesInner::ByArity(iter, _) => (0, iter.size_hint().1),
        }
    }
}

/// Extends the substitutions in `seeds` by matching `pattern` against the
/// atoms of `store`, returning every successful extension.
///
/// Takes the store through the [`RelationStorage`] trait so one compiled
/// join path serves every backend; the dynamic dispatch is one virtual call
/// per *probe*, not per candidate.
pub fn extend_by_matching(
    seeds: Vec<Substitution>,
    pattern: &Term,
    store: &dyn RelationStorage,
) -> Vec<Substitution> {
    let mut out = Vec::new();
    for theta in seeds {
        let instantiated = theta.apply(pattern);
        if instantiated.is_ground() {
            if store.contains(&instantiated) {
                out.push(theta);
            }
            continue;
        }
        store.for_each_candidate(&instantiated, &mut |candidate| {
            let mut extended = theta.clone();
            if match_with(&instantiated, candidate, &mut extended) {
                out.push(extended);
            }
        });
    }
    out
}

/// Joins the body of a rule against an atom store, producing every
/// substitution under which all positive atoms are in the store and all
/// builtins succeed.  Negative literals are handled according to `mode`;
/// aggregates are rejected (they have a dedicated evaluator).
///
/// When `delta` is `Some((store, index))`, the positive literal at position
/// `index` (counting positive literals only) draws its candidates from the
/// delta store instead — the semi-naive restriction.
pub fn join_body(
    rule: &Rule,
    store: &dyn RelationStorage,
    delta: Option<(&dyn RelationStorage, usize)>,
    mode: NegationMode,
) -> Result<Vec<Substitution>, EngineError> {
    let mut thetas = vec![Substitution::new()];
    let mut positive_index = 0usize;
    for lit in &rule.body {
        if thetas.is_empty() {
            return Ok(thetas);
        }
        match lit {
            Literal::Pos(atom) => {
                let use_store = match delta {
                    Some((delta_store, idx)) if idx == positive_index => delta_store,
                    _ => store,
                };
                thetas = extend_by_matching(thetas, atom, use_store);
                positive_index += 1;
            }
            Literal::Neg(_) => match mode {
                NegationMode::Ignore => {}
                NegationMode::Forbid => {
                    return Err(EngineError::Unsupported(format!(
                        "negative literal `{lit}` in a definite-program computation"
                    )))
                }
            },
            Literal::Builtin(b) => {
                let mut next = Vec::with_capacity(thetas.len());
                for mut theta in thetas {
                    match b.eval(&mut theta) {
                        Ok(true) => next.push(theta),
                        Ok(false) => {}
                        Err(e) => return Err(EngineError::Core(e)),
                    }
                }
                thetas = next;
            }
            Literal::Aggregate(_) => return Err(EngineError::Unsupported(
                "aggregate literals are evaluated by the aggregation evaluator, not the grounder"
                    .into(),
            )),
        }
    }
    Ok(thetas)
}

/// Computes the least model of a definite program by semi-naive bottom-up
/// evaluation.  With [`NegationMode::Ignore`] the result over-approximates
/// the true-or-undefined atoms of any model of the full program (negative
/// literals are treated as true); with [`NegationMode::Forbid`] the program
/// must be negation-free and the result is its least Herbrand model.
pub fn least_model(
    program: &Program,
    mode: NegationMode,
    opts: EvalOptions,
) -> Result<AtomStore, EngineError> {
    let mut store = AtomStore::new();
    least_model_into(program, mode, opts, &mut store)?;
    Ok(store)
}

/// [`least_model`] evaluated *into* a caller-provided (empty) store — the
/// backend-polymorphic entry point: pass a spill-backed store and the least
/// model materialises with cold relations paged to disk.
pub fn least_model_into(
    program: &Program,
    mode: NegationMode,
    opts: EvalOptions,
    store: &mut dyn RelationStorage,
) -> Result<(), EngineError> {
    let mut delta = AtomStore::new();

    // Round 0: facts and rules whose positive body is empty.
    for rule in program.iter() {
        let positives = rule.positive_atoms().count();
        if positives == 0 {
            for theta in join_body(rule, &*store, None, mode)? {
                let head = theta.apply(&rule.head);
                if !head.is_ground() {
                    return Err(EngineError::Floundering(format!(
                        "rule `{rule}` derives the non-ground head `{head}`; the program is not \
                         range restricted (Definition 5.5) so bottom-up evaluation cannot bind it"
                    )));
                }
                if store.insert(head.clone()) {
                    delta.insert(head);
                }
            }
        }
    }

    let mut rounds = 0usize;
    while !delta.is_empty() {
        rounds += 1;
        check_deadline()?;
        if rounds > opts.max_rounds {
            return Err(EngineError::LimitExceeded(format!(
                "least-model computation exceeded {} rounds",
                opts.max_rounds
            )));
        }
        let mut next_delta = AtomStore::new();
        if partition_count(delta.len(), opts) > 1 {
            // Partitioned round: the frontier splits by hash of the first
            // bound argument and the partitions join concurrently against
            // the frozen store.  Sound because the frontier is already in
            // `store` (a rule matching frontier atoms from two partitions
            // fires in either one, drawing the other from `store`), and the
            // merge below deduplicates into the same sets the serial round
            // fills.
            for head in consequence_round_partitioned(program, &*store, &delta, mode, opts)? {
                if !store.contains(&head) {
                    if store.len() >= opts.max_atoms {
                        return Err(EngineError::LimitExceeded(format!(
                            "least-model computation exceeded {} atoms",
                            opts.max_atoms
                        )));
                    }
                    store.insert(head.clone());
                    next_delta.insert(head);
                }
            }
        } else {
            for rule in program.iter() {
                let positives = rule.positive_atoms().count();
                for delta_idx in 0..positives {
                    for theta in join_body(rule, &*store, Some((&delta, delta_idx)), mode)? {
                        let head = theta.apply(&rule.head);
                        if !head.is_ground() {
                            return Err(EngineError::Floundering(format!(
                                "rule `{rule}` derives the non-ground head `{head}`"
                            )));
                        }
                        if !store.contains(&head) {
                            if store.len() >= opts.max_atoms {
                                return Err(EngineError::LimitExceeded(format!(
                                    "least-model computation exceeded {} atoms",
                                    opts.max_atoms
                                )));
                            }
                            store.insert(head.clone());
                            next_delta.insert(head);
                        }
                    }
                }
            }
        }
        delta = next_delta;
    }
    Ok(())
}

/// A semi-naive evaluation frontier: the atoms added in the most recent
/// round (`frontier`) plus everything accumulated since the continuation
/// started.  This is the unit of work the delta-aware consequence operator
/// [`consequence_round`] consumes, and what
/// [`extend_least_model`] hands back to callers that need to know which
/// atoms an incremental update introduced (the session facade grounds new
/// rule instantiations from exactly this set).
#[derive(Debug, Clone, Default)]
pub struct Delta {
    frontier: AtomStore,
    accumulated: AtomStore,
}

impl Delta {
    /// An empty frontier.
    pub fn new() -> Self {
        Delta::default()
    }

    /// Seeds the frontier with an atom (recorded as accumulated as well).
    /// Returns `true` if the atom was new to the accumulated set.
    pub fn seed(&mut self, atom: Term) -> bool {
        if self.accumulated.insert(atom.clone()) {
            self.frontier.insert(atom);
            true
        } else {
            false
        }
    }

    /// The atoms of the most recent round.
    pub fn frontier(&self) -> &AtomStore {
        &self.frontier
    }

    /// Every atom added since the continuation started.
    pub fn accumulated(&self) -> &AtomStore {
        &self.accumulated
    }

    /// Returns `true` if the frontier is exhausted (fixpoint reached).
    pub fn is_settled(&self) -> bool {
        self.frontier.is_empty()
    }

    /// Replaces the frontier with the next round's atoms, folding them into
    /// the accumulated set.
    fn advance(&mut self, next: AtomStore) {
        for atom in next.iter() {
            self.accumulated.insert(atom.clone());
        }
        self.frontier = next;
    }
}

/// One application of the delta-aware consequence operator: every head
/// derivable by a rule whose body has at least one positive literal matched
/// in `frontier` (the semi-naive restriction), with the remaining positive
/// literals drawn from `store`.  Heads already in `store` are not returned.
///
/// Rules with an empty positive body can never fire from a non-empty
/// frontier, so they are skipped — callers start from a store that already
/// contains round 0 (see [`least_model`]).
pub fn consequence_round(
    program: &Program,
    store: &dyn RelationStorage,
    frontier: &dyn RelationStorage,
    mode: NegationMode,
) -> Result<Vec<Term>, EngineError> {
    let mut out = Vec::new();
    for rule in program.iter() {
        let positives = rule.positive_atoms().count();
        for delta_idx in 0..positives {
            for theta in join_body(rule, store, Some((frontier, delta_idx)), mode)? {
                let head = theta.apply(&rule.head);
                if !head.is_ground() {
                    return Err(EngineError::Floundering(format!(
                        "rule `{rule}` derives the non-ground head `{head}`"
                    )));
                }
                if !store.contains(&head) {
                    out.push(head);
                }
            }
        }
    }
    Ok(out)
}

/// Frontiers smaller than this evaluate serially even when `eval_threads`
/// allows partitioning: below it the per-partition bookkeeping costs more
/// than the joins it spreads.
const PARTITION_MIN_FRONTIER: usize = 64;

/// How many partitions a frontier should split into under `opts`: the
/// thread count when the frontier is large enough to be worth splitting,
/// otherwise 1 (serial).
fn partition_count(frontier_len: usize, opts: EvalOptions) -> usize {
    if opts.eval_threads > 1 && frontier_len >= PARTITION_MIN_FRONTIER {
        opts.eval_threads
    } else {
        1
    }
}

/// The partition an atom belongs to: hash of its first argument (the
/// position the per-argument indexes make cheap to join on), falling back
/// to the whole atom for 0-ary atoms.  Any within-process assignment works
/// for correctness — partitioning only redistributes which task derives a
/// head, and every sink deduplicates — but hashing the first argument keeps
/// the rows of one join key together, so a partition's joins stay on warm
/// posting lists.
fn partition_of(atom: &Term, partitions: usize) -> usize {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    match atom.args().first() {
        Some(arg) => arg.hash(&mut hasher),
        None => atom.hash(&mut hasher),
    }
    (hasher.finish() as usize) % partitions
}

/// [`consequence_round`] with the frontier split into hash partitions joined
/// concurrently on the engine work pool ([`crate::pool`]).
///
/// Requires the caller's invariant that the frontier is a subset of `store`
/// (both [`least_model`] and [`extend_least_model`] maintain it): a rule
/// whose body matches frontier atoms from several partitions then fires in
/// each of their tasks, drawing the others from `store`, so no derivation is
/// lost to the split.  Duplicated derivations — and the schedule-dependent
/// concatenation order — are absorbed by the deduplicating stores every
/// caller merges into, which is what keeps the computed model independent of
/// the thread count.
pub fn consequence_round_partitioned(
    program: &Program,
    store: &dyn RelationStorage,
    frontier: &dyn RelationStorage,
    mode: NegationMode,
    opts: EvalOptions,
) -> Result<Vec<Term>, EngineError> {
    let partitions = partition_count(frontier.len(), opts);
    if partitions <= 1 {
        return consequence_round(program, store, frontier, mode);
    }
    let mut parts: Vec<AtomStore> = (0..partitions).map(|_| AtomStore::new()).collect();
    frontier.for_each_atom(&mut |atom| {
        parts[partition_of(atom, partitions)].insert(atom.clone());
    });
    parts.retain(|p| !p.is_empty());
    crate::pool::note_partitioned_round();
    let tasks: Vec<_> = parts
        .iter()
        .map(|part| move || consequence_round(program, store, part, mode))
        .collect();
    let mut out = Vec::new();
    for derived in crate::pool::run_tasks(opts.eval_threads, tasks) {
        out.extend(derived?);
    }
    Ok(out)
}

/// Semi-naive *continuation*: extends an existing least-model store with new
/// seed atoms, running the delta-aware consequence operator to a fixpoint.
///
/// `store` must be closed under the program's rules before the call (e.g. a
/// previous [`least_model`] result); afterwards it is closed again.  Returns
/// the settled [`Delta`] whose accumulated set is exactly the atoms the seeds
/// introduced — the incremental analogue of re-running [`least_model`] on the
/// extended program, at the cost of only the new derivations.
///
/// On `Err` (a resource limit, or a floundering derivation) the store is
/// left **partially extended** — the seeds plus whatever was derived before
/// the failure — so it is no longer closed; discard it and recompute from
/// scratch, as [`crate::session::HiLogDb`] does.
pub fn extend_least_model(
    program: &Program,
    store: &mut dyn RelationStorage,
    seeds: impl IntoIterator<Item = Term>,
    mode: NegationMode,
    opts: EvalOptions,
) -> Result<Delta, EngineError> {
    let mut delta = Delta::new();
    for seed in seeds {
        debug_assert!(seed.is_ground(), "extend_least_model seed must be ground");
        if !store.contains(&seed) {
            delta.seed(seed.clone());
            store.insert(seed);
        }
    }
    let mut rounds = 0usize;
    while !delta.is_settled() {
        rounds += 1;
        check_deadline()?;
        if rounds > opts.max_rounds {
            return Err(EngineError::LimitExceeded(format!(
                "incremental least-model continuation exceeded {} rounds",
                opts.max_rounds
            )));
        }
        let derived =
            consequence_round_partitioned(program, &*store, delta.frontier(), mode, opts)?;
        let mut next = AtomStore::new();
        for head in derived {
            if !store.contains(&head) {
                if store.len() >= opts.max_atoms {
                    return Err(EngineError::LimitExceeded(format!(
                        "incremental least-model continuation exceeded {} atoms",
                        opts.max_atoms
                    )));
                }
                store.insert(head.clone());
                next.insert(head);
            }
        }
        delta.advance(next);
    }
    Ok(delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hilog_syntax::parse_program;

    fn lm(text: &str) -> AtomStore {
        least_model(
            &parse_program(text).unwrap(),
            NegationMode::Forbid,
            EvalOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn least_model_of_facts() {
        let m = lm("move(a, b). move(b, c).");
        assert_eq!(m.len(), 2);
        assert!(m.contains(&Term::apps("move", vec![Term::sym("a"), Term::sym("b")])));
    }

    #[test]
    fn transitive_closure_of_chain() {
        let m = lm("tc(X, Y) :- edge(X, Y).\n\
                    tc(X, Y) :- edge(X, Z), tc(Z, Y).\n\
                    edge(a, b). edge(b, c). edge(c, d).");
        // 3 edges + 6 tc facts.
        assert_eq!(m.len(), 9);
        assert!(m.contains(&Term::apps("tc", vec![Term::sym("a"), Term::sym("d")])));
        assert!(!m.contains(&Term::apps("tc", vec![Term::sym("d"), Term::sym("a")])));
    }

    #[test]
    fn generic_hilog_transitive_closure() {
        // Example 2.1 with a bound relation name.
        let m = lm("tc(G)(X, Y) :- graph(G), G(X, Y).\n\
                    tc(G)(X, Y) :- graph(G), G(X, Z), tc(G)(Z, Y).\n\
                    graph(e). e(a, b). e(b, c).");
        let tc_e = |x: &str, y: &str| {
            Term::app(
                Term::apps("tc", vec![Term::sym("e")]),
                vec![Term::sym(x), Term::sym(y)],
            )
        };
        assert!(m.contains(&tc_e("a", "b")));
        assert!(m.contains(&tc_e("a", "c")));
        assert!(m.contains(&tc_e("b", "c")));
        assert!(!m.contains(&tc_e("c", "a")));
    }

    #[test]
    fn maplist_bottom_up_is_infinite_and_hits_the_atom_budget() {
        // Example 2.2 has recursively applied constructors (`cons`), so — as
        // the end of Section 6.1 warns for programs with recursively applied
        // function symbols — its bottom-up relevant instantiation is
        // infinite: ever longer lists keep being derived.  The engine detects
        // this through the atom budget; the query-directed evaluator in
        // `magic_eval` is the right tool for maplist (see its tests).
        let p = parse_program(
            "maplist(F)([], []) :- fun(F).\n\
             maplist(F)([X | R], [Y | Z]) :- F(X, Y), maplist(F)(R, Z).\n\
             fun(double).\n\
             double(one, two). double(two, four).",
        )
        .unwrap();
        let r = least_model(&p, NegationMode::Forbid, EvalOptions::with_max_atoms(300));
        assert!(matches!(r, Err(EngineError::LimitExceeded(_))));
    }

    #[test]
    fn unguarded_maplist_flounders() {
        // The literal Example 2.2 base case has the variable F in its head
        // name; bottom-up evaluation cannot bind it and reports floundering.
        let p = parse_program("maplist(F)([], []).").unwrap();
        assert!(matches!(
            least_model(&p, NegationMode::Forbid, EvalOptions::default()),
            Err(EngineError::Floundering(_))
        ));
    }

    #[test]
    fn builtins_participate_in_joins() {
        let m = lm("cost(a, 3). cost(b, 5).\n\
                    total(X, N) :- cost(X, P), N is P * 2.\n\
                    cheap(X) :- cost(X, P), P < 4.");
        assert!(m.contains(&Term::apps("total", vec![Term::sym("a"), Term::int(6)])));
        assert!(m.contains(&Term::apps("cheap", vec![Term::sym("a")])));
        assert!(!m.contains(&Term::apps("cheap", vec![Term::sym("b")])));
    }

    #[test]
    fn variable_predicate_names_join_against_all_atoms() {
        // p :- X(Y), Y(X).  (Example 5.1) — no derivation without facts, one
        // with the facts q(r), r(q).
        let without = least_model(
            &parse_program("p :- X(Y), Y(X).").unwrap(),
            NegationMode::Forbid,
            EvalOptions::default(),
        )
        .unwrap();
        assert!(!without.contains(&Term::sym("p")));
        let with = lm("p :- X(Y), Y(X). q(r). r(q).");
        assert!(with.contains(&Term::sym("p")));
    }

    #[test]
    fn negation_mode_controls_negative_literals() {
        let p = parse_program("p :- q, not r. q.").unwrap();
        assert!(matches!(
            least_model(&p, NegationMode::Forbid, EvalOptions::default()),
            Err(EngineError::Unsupported(_))
        ));
        let m = least_model(&p, NegationMode::Ignore, EvalOptions::default()).unwrap();
        assert!(m.contains(&Term::sym("p")));
    }

    #[test]
    fn floundering_is_reported() {
        // A fact with a variable cannot be grounded bottom-up.
        let p = parse_program("p(X, X, a).").unwrap();
        assert!(matches!(
            least_model(&p, NegationMode::Forbid, EvalOptions::default()),
            Err(EngineError::Floundering(_))
        ));
    }

    #[test]
    fn atom_limit_stops_runaway_programs() {
        // nat(s(X)) :- nat(X). generates unboundedly many atoms.
        let p = parse_program("nat(z). nat(s(X)) :- nat(X).").unwrap();
        let r = least_model(&p, NegationMode::Forbid, EvalOptions::with_max_atoms(50));
        assert!(matches!(r, Err(EngineError::LimitExceeded(_))));
    }

    #[test]
    fn atom_store_candidates_by_name_and_arity() {
        let mut store = AtomStore::new();
        store.insert(Term::apps("move", vec![Term::sym("a"), Term::sym("b")]));
        store.insert(Term::apps("move", vec![Term::sym("b"), Term::sym("c")]));
        store.insert(Term::apps("game", vec![Term::sym("move1")]));
        let pat = Term::apps("move", vec![Term::var("X"), Term::var("Y")]);
        assert_eq!(store.candidates(&pat).count(), 2);
        let var_name = Term::app(Term::var("G"), vec![Term::var("X"), Term::var("Y")]);
        assert_eq!(store.candidates(&var_name).count(), 2);
        let unary = Term::app(Term::var("G"), vec![Term::var("X")]);
        assert_eq!(store.candidates(&unary).count(), 1);
    }

    #[test]
    fn candidates_never_yield_non_matching_functors() {
        // Micro-assertion for the join hot path: a ground-named pattern must
        // only see atoms with its exact (name, arity) key, and a
        // variable-named pattern must only see atoms of its arity.
        let mut store = AtomStore::new();
        for i in 0..8 {
            store.insert(Term::apps(
                "move",
                vec![Term::sym(format!("a{i}")), Term::sym("b")],
            ));
            store.insert(Term::apps("game", vec![Term::sym(format!("g{i}"))]));
            store.insert(Term::app(
                Term::apps("winning", vec![Term::sym(format!("g{i}"))]),
                vec![Term::sym("p")],
            ));
        }
        let pat = Term::apps("move", vec![Term::var("X"), Term::var("Y")]);
        for cand in store.candidates(&pat) {
            assert_eq!(cand.name(), pat.name(), "wrong functor from keyed lookup");
            assert_eq!(cand.arity(), pat.arity(), "wrong arity from keyed lookup");
        }
        assert_eq!(store.candidates(&pat).count(), 8);
        // Variable predicate name: all unary atoms (game/1 and winning(_)/1),
        // never the binary move atoms.
        let var_pat = Term::app(Term::var("P"), vec![Term::var("X")]);
        let mut seen = 0usize;
        for cand in store.candidates(&var_pat) {
            assert_eq!(cand.arity(), Some(1), "arity filter leaked {cand}");
            seen += 1;
        }
        assert_eq!(seen, 16);
        // A key absent from the store yields nothing.
        assert_eq!(
            store
                .candidates(&Term::apps("absent", vec![Term::var("X")]))
                .count(),
            0
        );
    }

    /// All atoms of `store` matching `pattern`, via whatever access path
    /// `candidates` picks, verified by one-way matching.
    fn matches(store: &AtomStore, pattern: &Term) -> BTreeSet<Term> {
        store
            .candidates(pattern)
            .filter(|c| {
                let mut theta = Substitution::new();
                match_with(pattern, c, &mut theta)
            })
            .cloned()
            .collect()
    }

    #[test]
    fn argument_index_probe_agrees_with_the_functor_scan() {
        let mut store = AtomStore::new();
        for i in 0..10 {
            for j in 0..10 {
                store.insert(Term::apps(
                    "edge",
                    vec![Term::sym(format!("n{i}")), Term::sym(format!("n{j}"))],
                ));
            }
        }
        let bound_first = Term::apps("edge", vec![Term::sym("n3"), Term::var("Y")]);
        let bound_second = Term::apps("edge", vec![Term::var("X"), Term::sym("n7")]);
        let bound_both = Term::apps("edge", vec![Term::sym("n3"), Term::sym("n7")]);
        for pattern in [&bound_first, &bound_second, &bound_both] {
            let (probes_before, _) = probe_counters();
            let indexed = matches(&store, pattern);
            let (probes_after, _) = probe_counters();
            assert!(
                probes_after > probes_before,
                "bound pattern {pattern} did not use an index"
            );
            let scanned = {
                let _guard = scan_only_guard();
                matches(&store, pattern)
            };
            assert_eq!(indexed, scanned, "index and scan disagree on {pattern}");
        }
        assert_eq!(matches(&store, &bound_first).len(), 10);
        assert_eq!(matches(&store, &bound_both).len(), 1);
        // An open pattern still scans the relation (and is counted as such).
        let open = Term::apps("edge", vec![Term::var("X"), Term::var("Y")]);
        let (_, fallbacks_before) = probe_counters();
        assert_eq!(matches(&store, &open).len(), 100);
        let (_, fallbacks_after) = probe_counters();
        assert!(fallbacks_after > fallbacks_before);
    }

    #[test]
    fn built_indexes_are_maintained_by_insert_and_remove() {
        let mut store = AtomStore::new();
        for i in 0..6 {
            store.insert(Term::apps(
                "edge",
                vec![Term::sym("hub"), Term::sym(format!("n{i}"))],
            ));
        }
        let from_hub = Term::apps("edge", vec![Term::sym("hub"), Term::var("Y")]);
        // First probe builds the position-0 index.
        assert_eq!(matches(&store, &from_hub).len(), 6);
        // Mutations after the build must keep it exact: remove two, add one,
        // re-add a removed one.
        let n0 = Term::apps("edge", vec![Term::sym("hub"), Term::sym("n0")]);
        let n1 = Term::apps("edge", vec![Term::sym("hub"), Term::sym("n1")]);
        assert!(store.remove(&n0));
        assert!(store.remove(&n1));
        store.insert(Term::apps(
            "edge",
            vec![Term::sym("hub"), Term::sym("fresh")],
        ));
        store.insert(n0.clone());
        let indexed = matches(&store, &from_hub);
        let scanned = {
            let _guard = scan_only_guard();
            matches(&store, &from_hub)
        };
        assert_eq!(indexed, scanned);
        assert_eq!(indexed.len(), 6);
        assert!(indexed.contains(&n0));
        assert!(!indexed.contains(&n1));
        // The most selective bound position wins: binding the second argument
        // probes its (smaller) posting list and yields exactly that atom.
        let exact = Term::apps("edge", vec![Term::var("X"), Term::sym("fresh")]);
        assert_eq!(matches(&store, &exact).len(), 1);
    }

    #[test]
    fn duplicate_insertion_is_idempotent() {
        let mut store = AtomStore::new();
        assert!(store.insert(Term::sym("p")));
        assert!(!store.insert(Term::sym("p")));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn removal_updates_the_candidate_index() {
        let mut store = AtomStore::new();
        let ab = Term::apps("move", vec![Term::sym("a"), Term::sym("b")]);
        let bc = Term::apps("move", vec![Term::sym("b"), Term::sym("c")]);
        store.insert(ab.clone());
        store.insert(bc.clone());
        assert!(store.remove(&ab));
        assert!(!store.remove(&ab));
        assert_eq!(store.len(), 1);
        let pat = Term::apps("move", vec![Term::var("X"), Term::var("Y")]);
        let left: Vec<&Term> = store.candidates(&pat).collect();
        assert_eq!(left, vec![&bc]);
    }

    #[test]
    fn extend_least_model_matches_recomputation() {
        // Closing tc over a chain, then adding the edge that joins two
        // components, must agree with recomputing from scratch.
        let base = "tc(X, Y) :- edge(X, Y).\n\
                    tc(X, Y) :- edge(X, Z), tc(Z, Y).\n\
                    edge(a, b). edge(c, d).";
        let mut program = parse_program(base).unwrap();
        let mut store =
            least_model(&program, NegationMode::Forbid, EvalOptions::default()).unwrap();
        let new_edge = Term::apps("edge", vec![Term::sym("b"), Term::sym("c")]);
        program.push(Rule::fact(new_edge.clone()));
        let delta = extend_least_model(
            &program,
            &mut store,
            [new_edge],
            NegationMode::Forbid,
            EvalOptions::default(),
        )
        .unwrap();
        let fresh = least_model(&program, NegationMode::Forbid, EvalOptions::default()).unwrap();
        assert_eq!(store.atoms(), fresh.atoms());
        // The delta is exactly the difference: the new edge plus the new
        // tc pairs crossing it (a->c, a->d, b->c, b->d, c is already linked
        // to d).
        assert_eq!(delta.accumulated().len(), 5);
        assert!(delta
            .accumulated()
            .contains(&Term::apps("tc", vec![Term::sym("a"), Term::sym("d")])));
        assert!(delta.is_settled());
    }

    #[test]
    fn extending_with_a_known_atom_is_a_no_op() {
        let program = parse_program("p(a). q(X) :- p(X).").unwrap();
        let mut store =
            least_model(&program, NegationMode::Forbid, EvalOptions::default()).unwrap();
        let before = store.atoms().clone();
        let delta = extend_least_model(
            &program,
            &mut store,
            [Term::apps("p", vec![Term::sym("a")])],
            NegationMode::Forbid,
            EvalOptions::default(),
        )
        .unwrap();
        assert!(delta.accumulated().is_empty());
        assert_eq!(store.atoms(), &before);
    }

    #[test]
    fn extension_respects_the_atom_budget() {
        let program = parse_program("nat(z). nat(s(X)) :- nat(X).").unwrap();
        // The base program diverges, so close only the fact by hand.
        let mut store = AtomStore::from_atoms([Term::sym("seed")]);
        let r = extend_least_model(
            &program,
            &mut store,
            [Term::apps("nat", vec![Term::sym("z")])],
            NegationMode::Forbid,
            EvalOptions::with_max_atoms(20),
        );
        assert!(matches!(r, Err(EngineError::LimitExceeded(_))));
    }
}
