//! # hilog-engine
//!
//! Evaluation engine for the reproduction of Ross, *"On Negation in HiLog"*
//! (PODS 1991 / JLP 1994).  The crate provides every computational artifact
//! the paper defines or relies on:
//!
//! * **Grounding** ([`grounder`]): relevant instantiation for (strongly)
//!   range-restricted programs and literal instantiation over bounded
//!   Herbrand-universe slices (Section 4).
//! * **Horn least models** ([`horn`]): semi-naive bottom-up evaluation of
//!   definite programs — the semantics of negation-free HiLog programs and of
//!   their universal-relation images (Section 2).
//! * **Well-founded semantics** ([`wfs`]): the `T_P` / `U_P` / `W_P`
//!   construction of Definitions 3.3–3.5, applied to normal and HiLog
//!   instantiations alike (Section 4).
//! * **Stable models** ([`stable`]): two-valued fixpoints of `W_P`
//!   (Definition 3.6) with a WFS-guided search and a Gelfond–Lifschitz
//!   cross-check.
//! * **Modular stratification for HiLog** ([`modular`]): the Figure 1
//!   procedure, HiLog reduction (Definition 6.5), and the normal-program
//!   specialisation (Definition 6.4, Lemma 6.2).
//! * **Magic sets** ([`magic`], [`magic_eval`]): the Section 6.1 rewriting in
//!   the shape of Example 6.6, and the query-directed (memoising,
//!   negation-settling) evaluator that realises its relevance behaviour.
//! * **Modularly stratified aggregation** ([`aggregate`]): the parts-explosion
//!   program of Section 6.
//! * **Preservation under extensions / domain independence** ([`extension`]):
//!   checkers for the Section 5 properties on concrete extension witnesses.
//! * **The session facade** ([`session`], [`plan`]): a stateful [`HiLogDb`]
//!   that owns a program, caches grounding, dependency analysis, models and
//!   subgoal tables across queries, accepts incremental facts with targeted
//!   cache invalidation, and routes every query through an explainable
//!   [`QueryPlan`].  The one-shot free functions remain available as
//!   deprecated shims.
//! * **The concurrent serving split** ([`snapshot`]): an immutable,
//!   `Send + Sync` [`DbSnapshot`] whose query routes take `&self`, published
//!   per batch by a single [`DbWriter`] through an epoch-swapped shared cell
//!   — readers never block and never observe a half-applied batch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod deadline;
pub mod error;
pub mod extension;
pub mod ground;
pub mod grounder;
pub mod horn;
pub mod magic;
pub mod magic_eval;
pub mod modular;
pub mod plan;
pub mod pool;
pub mod session;
pub mod snapshot;
pub mod spill;
pub mod stable;
pub mod storage;
pub mod wfs;

pub use aggregate::{evaluate_aggregate_program, parts_explosion_program, AggregateModel};
pub use deadline::{check_deadline, deadline_counters, with_deadline};
pub use error::EngineError;
pub use extension::{
    domain_independent_wfs_with_constants, preserved_by_extension_stable,
    preserved_by_extension_wfs, PreservationVerdict,
};
pub use ground::{GroundProgram, GroundRule};
pub use grounder::{ground_delta, ground_over_universe, relevant_ground};
pub use horn::{
    consequence_round, extend_least_model, least_model, least_model_into, probe_counters,
    scan_only_guard, AtomStore, Candidates, Delta, EvalOptions, NegationMode, ScanOnlyGuard,
};
pub use magic::{magic_transform, MagicProgram};
pub use magic_eval::{EvalStats, ModelSource, QueryEvaluator};
pub use modular::ModularOutcome;
pub use plan::{PlanStrategy, QueryPlan};
pub use pool::{default_eval_threads, parallel_counters, run_tasks};
pub use session::{HiLogDb, HiLogDbBuilder, QueryAnswer, QueryResult, Semantics};
pub use snapshot::{DbSnapshot, DbWriter, SnapshotHandle};
pub use spill::SpillStore;
pub use stable::{stable_models_over_universe, StableOptions};
pub use storage::{
    clear_spill_faults, inject_spill_faults, spill_io_errors, storage_counters, FactStore,
    RelationStorage, RelationStorageStats, StorageConfig, DEFAULT_SPILL_BUDGET,
};
pub use wfs::{
    well_founded_eval, well_founded_model_over_universe, well_founded_of_ground,
    well_founded_patch, well_founded_patch_with,
};

// Deprecated one-shot entry points, kept as working shims over the session.
#[allow(deprecated)]
pub use magic_eval::answer_query;
#[allow(deprecated)]
pub use modular::{modularly_stratified_hilog, modularly_stratified_normal};
#[allow(deprecated)]
pub use stable::stable_models;
#[allow(deprecated)]
pub use wfs::well_founded_model;

/// Convenience prelude pulling in the most frequently used engine items.
pub mod prelude {
    pub use crate::aggregate::{evaluate_aggregate_program, parts_explosion_program};
    pub use crate::error::EngineError;
    pub use crate::extension::{preserved_by_extension_stable, preserved_by_extension_wfs};
    pub use crate::ground::{GroundProgram, GroundRule};
    pub use crate::grounder::{ground_over_universe, relevant_ground};
    pub use crate::horn::{
        extend_least_model, least_model, AtomStore, Delta, EvalOptions, NegationMode,
    };
    pub use crate::magic::magic_transform;
    pub use crate::magic_eval::{EvalStats, ModelSource, QueryEvaluator};
    pub use crate::modular::ModularOutcome;
    pub use crate::plan::{PlanStrategy, QueryPlan};
    pub use crate::pool::{default_eval_threads, parallel_counters, run_tasks};
    pub use crate::session::{HiLogDb, HiLogDbBuilder, QueryAnswer, QueryResult, Semantics};
    pub use crate::snapshot::{DbSnapshot, DbWriter, SnapshotHandle};
    pub use crate::stable::StableOptions;
    pub use crate::storage::{FactStore, RelationStorage, StorageConfig};
    pub use crate::wfs::{
        well_founded_eval, well_founded_model_over_universe, well_founded_patch,
        well_founded_patch_with,
    };

    // Deprecated shims, still re-exported so existing downstream code keeps
    // compiling (their use sites get the deprecation pointer to `HiLogDb`).
    #[allow(deprecated)]
    pub use crate::magic_eval::answer_query;
    #[allow(deprecated)]
    pub use crate::modular::modularly_stratified_hilog;
    #[allow(deprecated)]
    pub use crate::stable::stable_models;
    #[allow(deprecated)]
    pub use crate::wfs::well_founded_model;
}
