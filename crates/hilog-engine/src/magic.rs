//! The magic-sets transformation for modularly stratified HiLog programs
//! (Section 6.1, Example 6.6).
//!
//! Given a strongly range-restricted program and a query, the transformation
//! produces a rewritten program in the style of Example 6.6:
//!
//! * a `magic(Q, +)` seed for the query atom;
//! * one supplementary predicate `sup_{r,j}(...)` per rule `r` and body
//!   position `j`, chaining the bindings passed left to right (the sideways
//!   information passing strategy);
//! * `magic(A, +)` / `magic(A, -)` rules generating sub-queries for positive
//!   and negative subgoals respectively;
//! * the rewritten rules themselves, guarded by their last supplementary
//!   predicate, with negative subgoals replaced by the □ ("settled false")
//!   wrapper;
//! * the `dp` / `dn` / `dn'` dependency-bookkeeping rules of Ross \[16\] that
//!   drive the evaluation of negative subgoals.
//!
//! The transformation is a *syntactic artifact*: it can be printed, compared
//! against Example 6.6 and analysed.  Query evaluation with the same
//! relevance behaviour is performed by [`crate::magic_eval`], which settles
//! negative subgoals component-at-a-time with memoised subqueries (see
//! DESIGN.md for why the □ fixpoint machinery of \[16\] is replaced by that
//! equivalent strategy).

use crate::error::EngineError;
use hilog_core::literal::Literal;
use hilog_core::program::Program;
use hilog_core::restriction::is_strongly_range_restricted;
use hilog_core::rule::{Query, Rule};
use hilog_core::term::{Term, Var};
use std::collections::BTreeSet;
use std::fmt;

/// Reserved predicate names introduced by the transformation.
pub mod names {
    /// The magic predicate.
    pub const MAGIC: &str = "magic";
    /// The supplementary predicate prefix (`sup_r_j`).
    pub const SUP: &str = "sup";
    /// "Depends positively".
    pub const DP: &str = "dp";
    /// "Depends negatively".
    pub const DN: &str = "dn";
    /// "Settled" negative dependencies.
    pub const DN_SETTLED: &str = "dn_settled";
    /// The □ wrapper: the atom has been settled false.
    pub const BOX_FALSE: &str = "settled_false";
    /// Positive-call annotation.
    pub const PLUS: &str = "+";
    /// Negative-call annotation.
    pub const MINUS: &str = "-";
}

/// The polarity of an instance-level subgoal dependency, as recorded by the
/// query-directed evaluator's tables.
///
/// This is the evaluation-side counterpart of the `dp` / `dn` bookkeeping
/// predicates the transformation emits (see [`names::DP`] / [`names::DN`]):
/// where the rewritten program *derives* `dp(H, A)` / `dn(H, A)` facts for
/// every head instance `H` whose rule selected the subgoal instance `A`,
/// [`crate::magic_eval::QueryEvaluator`] records the same edge on `H`'s
/// subgoal table.  A dependency used both positively and negatively is
/// recorded as [`DepSign::Neg`] — only the negative edges matter for the
/// Example 6.4 cycle check, and either polarity propagates invalidation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DepSign {
    /// The subgoal was selected positively (`dp`).
    Pos,
    /// The subgoal was selected under negation or aggregation (`dn`): its
    /// table had to be *completely settled* before the selecting rule could
    /// proceed, so a cycle through such an edge is a cycle through negation.
    Neg,
}

impl DepSign {
    /// Returns `true` for [`DepSign::Neg`].
    pub fn is_negative(self) -> bool {
        self == DepSign::Neg
    }
}

/// The output of the magic-sets transformation.
#[derive(Debug, Clone)]
pub struct MagicProgram {
    /// The seed fact `magic(Q, +)` for the query.
    pub seed: Rule,
    /// The rewritten rules (supplementary, magic and guarded original rules).
    pub rewritten: Program,
    /// The dependency-bookkeeping rules (`dp`, `dn`, `dn_settled`,
    /// `settled_false`).
    pub bookkeeping: Program,
    /// The names of the supplementary predicates that were introduced, in
    /// `(rule index, body position)` order.
    pub supplementary: Vec<(usize, usize)>,
}

impl MagicProgram {
    /// The full rewritten program: seed + rewritten rules + bookkeeping.
    pub fn full_program(&self) -> Program {
        let mut p = Program::new();
        p.push(self.seed.clone());
        p.extend_with(&self.rewritten);
        p.extend_with(&self.bookkeeping);
        p
    }

    /// Total number of rules in the rewritten program.
    pub fn len(&self) -> usize {
        1 + self.rewritten.len() + self.bookkeeping.len()
    }

    /// Returns `true` if the transformation produced no rules (impossible for
    /// a non-empty input program, present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Display for MagicProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "% magic seed")?;
        writeln!(f, "{}", self.seed)?;
        writeln!(f, "% rewritten rules")?;
        write!(f, "{}", self.rewritten)?;
        writeln!(f, "% dependency bookkeeping")?;
        write!(f, "{}", self.bookkeeping)
    }
}

fn magic_atom(atom: &Term, sign: &str) -> Term {
    Term::apps(names::MAGIC, vec![atom.clone(), Term::sym(sign)])
}

fn sup_atom(rule_index: usize, position: usize, vars: &[Var]) -> Term {
    Term::apps(
        format!("{}_{}_{}", names::SUP, rule_index, position),
        vars.iter().map(|v| Term::Var(v.clone())).collect(),
    )
}

fn box_false(atom: &Term) -> Term {
    Term::apps(names::BOX_FALSE, vec![atom.clone()])
}

/// Applies the magic-sets transformation to a strongly range-restricted
/// program and a single-atom query.
///
/// Errors if the program is not strongly range restricted (Section 6.1
/// assumes strong range restriction so that queries with variables in
/// predicate names are permitted) or if the query is not a single atom.
pub fn magic_transform(program: &Program, query: &Query) -> Result<MagicProgram, EngineError> {
    if !is_strongly_range_restricted(program) {
        return Err(EngineError::Unsupported(
            "the magic-sets transformation of Section 6.1 requires a strongly range-restricted \
             program (Definition 5.6)"
                .into(),
        ));
    }
    let query_atom = match query.literals.as_slice() {
        [Literal::Pos(a)] => a.clone(),
        _ => {
            return Err(EngineError::Unsupported(
                "magic_transform expects a query consisting of a single positive atom".into(),
            ))
        }
    };

    let seed = Rule::fact(magic_atom(&query_atom, names::PLUS));
    let mut rewritten = Program::new();
    let mut bookkeeping = Program::new();
    let mut supplementary = Vec::new();

    for (rule_index, rule) in program.iter().enumerate() {
        let head = &rule.head;
        let head_vars: Vec<Var> = head.variables();

        // sup_{r,0}(head vars) :- magic(head, +).
        // (A magic(head, -) seed also feeds the rule: negative calls need the
        // same answers to decide settledness.)
        let sup0 = sup_atom(rule_index, 0, &head_vars);
        supplementary.push((rule_index, 0));
        rewritten.push(Rule::new(
            sup0.clone(),
            vec![Literal::Pos(magic_atom(head, names::PLUS))],
        ));
        rewritten.push(Rule::new(
            sup0.clone(),
            vec![Literal::Pos(magic_atom(head, names::MINUS))],
        ));

        // Chain through the body, accumulating bound variables.
        let mut bound: Vec<Var> = head_vars.clone();
        let mut previous_sup = sup0;
        for (j, lit) in rule.body.iter().enumerate() {
            let position = j + 1;
            match lit {
                Literal::Pos(atom) => {
                    // magic(A, +) :- sup_{r,j-1}(...).
                    rewritten.push(Rule::new(
                        magic_atom(atom, names::PLUS),
                        vec![Literal::Pos(previous_sup.clone())],
                    ));
                    // dp(H, A) :- sup_{r,j-1}(...): the head depends
                    // positively on the subgoal.
                    bookkeeping.push(Rule::new(
                        Term::apps(names::DP, vec![head.clone(), atom.clone()]),
                        vec![Literal::Pos(previous_sup.clone())],
                    ));
                    // sup_{r,j}(bound ∪ vars(A)) :- sup_{r,j-1}(...), A.
                    for v in atom.variables() {
                        if !bound.contains(&v) {
                            bound.push(v);
                        }
                    }
                    let sup_j = sup_atom(rule_index, position, &bound);
                    supplementary.push((rule_index, position));
                    rewritten.push(Rule::new(
                        sup_j.clone(),
                        vec![
                            Literal::Pos(previous_sup.clone()),
                            Literal::Pos(atom.clone()),
                        ],
                    ));
                    previous_sup = sup_j;
                }
                Literal::Neg(atom) => {
                    // magic(A, -) :- sup_{r,j-1}(...).
                    rewritten.push(Rule::new(
                        magic_atom(atom, names::MINUS),
                        vec![Literal::Pos(previous_sup.clone())],
                    ));
                    // dn(H, A) :- sup_{r,j-1}(...): the head depends
                    // negatively on the subgoal.
                    bookkeeping.push(Rule::new(
                        Term::apps(names::DN, vec![head.clone(), atom.clone()]),
                        vec![Literal::Pos(previous_sup.clone())],
                    ));
                    // sup_{r,j}(bound) :- sup_{r,j-1}(...), settled_false(A).
                    let sup_j = sup_atom(rule_index, position, &bound);
                    supplementary.push((rule_index, position));
                    rewritten.push(Rule::new(
                        sup_j.clone(),
                        vec![
                            Literal::Pos(previous_sup.clone()),
                            Literal::Pos(box_false(atom)),
                        ],
                    ));
                    previous_sup = sup_j;
                }
                Literal::Builtin(b) => {
                    // Builtins are carried along inside the supplementary
                    // chain; they bind new variables (e.g. `N is P * M`).
                    for v in b.variables() {
                        if !bound.contains(&v) {
                            bound.push(v);
                        }
                    }
                    let sup_j = sup_atom(rule_index, position, &bound);
                    supplementary.push((rule_index, position));
                    rewritten.push(Rule::new(
                        sup_j.clone(),
                        vec![
                            Literal::Pos(previous_sup.clone()),
                            Literal::Builtin(b.clone()),
                        ],
                    ));
                    previous_sup = sup_j;
                }
                Literal::Aggregate(agg) => {
                    // Aggregates behave like negative subgoals for the
                    // dependency bookkeeping (they need their pattern
                    // relation settled), and like builtins for the binding
                    // chain.
                    rewritten.push(Rule::new(
                        magic_atom(&agg.pattern, names::MINUS),
                        vec![Literal::Pos(previous_sup.clone())],
                    ));
                    bookkeeping.push(Rule::new(
                        Term::apps(names::DN, vec![head.clone(), agg.pattern.clone()]),
                        vec![Literal::Pos(previous_sup.clone())],
                    ));
                    for v in agg.variables() {
                        if !bound.contains(&v) {
                            bound.push(v);
                        }
                    }
                    let sup_j = sup_atom(rule_index, position, &bound);
                    supplementary.push((rule_index, position));
                    rewritten.push(Rule::new(
                        sup_j.clone(),
                        vec![
                            Literal::Pos(previous_sup.clone()),
                            Literal::Aggregate(agg.clone()),
                        ],
                    ));
                    previous_sup = sup_j;
                }
            }
        }

        // H :- sup_{r,n}(...).
        rewritten.push(Rule::new(head.clone(), vec![Literal::Pos(previous_sup)]));
    }

    // Generic bookkeeping rules (Example 6.6, last block):
    //   dn_settled(Q) :- magic(Q, -), Q.
    //   dn_settled(Q) :- magic(Q, -), settled_false(Q).
    //   settled_false(Q) :- magic(Q, -), "Q has been settled and is not true".
    // The third rule's side condition is operational (the □ evaluation of
    // [16]); it is realised by the query-directed evaluator in
    // `crate::magic_eval`, so here it is recorded as a rule over the reserved
    // `dn_settled` predicate for documentation and shape tests.
    let q = Term::var("Q");
    bookkeeping.push(Rule::new(
        Term::apps(names::DN_SETTLED, vec![q.clone()]),
        vec![
            Literal::Pos(magic_atom(&q, names::MINUS)),
            Literal::Pos(q.clone()),
        ],
    ));
    bookkeeping.push(Rule::new(
        Term::apps(names::DN_SETTLED, vec![q.clone()]),
        vec![
            Literal::Pos(magic_atom(&q, names::MINUS)),
            Literal::Pos(box_false(&q)),
        ],
    ));

    Ok(MagicProgram {
        seed,
        rewritten,
        bookkeeping,
        supplementary,
    })
}

/// Collects the predicate names (outermost functors) introduced by the
/// transformation, for shape tests.
pub fn introduced_predicates(magic: &MagicProgram) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for rule in magic.full_program().iter() {
        if let Term::Sym(s) = rule.head.outermost_functor() {
            let name = s.name();
            if name == names::MAGIC
                || name == names::DP
                || name == names::DN
                || name == names::DN_SETTLED
                || name == names::BOX_FALSE
                || name.starts_with(names::SUP)
            {
                out.insert(name.to_string());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hilog_syntax::{parse_program, parse_query};

    /// The abbreviated game program of Example 6.6.
    fn game_program() -> Program {
        parse_program(
            "w(M)(X) :- g(M), M(X, Y), not w(M)(Y).\n\
             g(m). m(a, b). m(b, c).",
        )
        .unwrap()
    }

    #[test]
    fn example_6_6_shape() {
        let magic = magic_transform(&game_program(), &parse_query("?- w(m)(a).").unwrap()).unwrap();
        // The seed is magic(w(m)(a), +).
        assert_eq!(magic.seed.to_string(), "magic(w(m)(a), '+').");
        let text = magic.full_program().to_string();
        // Supplementary predicates for the three body literals of the game
        // rule exist (sup_0_0 .. sup_0_3).
        assert!(text.contains("sup_0_0(M, X)"));
        assert!(text.contains("sup_0_1(M, X)"));
        assert!(text.contains("sup_0_2(M, X, Y)"));
        assert!(text.contains("sup_0_3(M, X, Y)"));
        // The negative subgoal generates a negatively annotated magic call
        // and a settled_false guard, as in the paper's listing.
        assert!(text.contains("magic(w(M)(Y), '-') :- sup_0_2(M, X, Y)."));
        assert!(text.contains("settled_false(w(M)(Y))"));
        // Positive subgoals generate positively annotated magic calls.
        assert!(text.contains("magic(g(M), '+') :- sup_0_0(M, X)."));
        assert!(text.contains("magic(M(X, Y), '+') :- sup_0_1(M, X)."));
        // dp / dn bookkeeping is present.
        assert!(text.contains("dp(w(M)(X), g(M)) :- sup_0_0(M, X)."));
        assert!(text.contains("dn(w(M)(X), w(M)(Y)) :- sup_0_2(M, X, Y)."));
        // The rewritten head rule is guarded by the final supplementary
        // predicate.
        assert!(text.contains("w(M)(X) :- sup_0_3(M, X, Y)."));
    }

    #[test]
    fn introduced_predicate_inventory() {
        let magic = magic_transform(&game_program(), &parse_query("?- w(m)(a).").unwrap()).unwrap();
        let preds = introduced_predicates(&magic);
        assert!(preds.contains("magic"));
        assert!(preds.contains("dp"));
        assert!(preds.contains("dn"));
        assert!(preds.contains("dn_settled"));
        assert!(preds.iter().any(|p| p.starts_with("sup_")));
    }

    #[test]
    fn every_rule_gets_a_supplementary_chain() {
        let program = parse_program(
            "tc(G, X, Y) :- graph(G), G(X, Y).\n\
             tc(G, X, Y) :- graph(G), G(X, Z), tc(G, Z, Y).\n\
             graph(e). e(a, b).",
        )
        .unwrap();
        let magic = magic_transform(&program, &parse_query("?- tc(e, a, Y).").unwrap()).unwrap();
        // Rule 0 has 2 body literals -> positions 0..=2; rule 1 has 3 -> 0..=3;
        // facts contribute a single position 0 each.
        let for_rule = |r: usize| {
            magic
                .supplementary
                .iter()
                .filter(|(ri, _)| *ri == r)
                .count()
        };
        assert_eq!(for_rule(0), 3);
        assert_eq!(for_rule(1), 4);
        assert_eq!(for_rule(2), 1);
        assert_eq!(for_rule(3), 1);
    }

    #[test]
    fn rejects_programs_that_are_not_strongly_range_restricted() {
        // tc(G)(X, Y) :- G(X, Y). is range restricted but not strongly.
        let program = parse_program("tc(G)(X, Y) :- G(X, Y).").unwrap();
        let err = magic_transform(&program, &parse_query("?- tc(e)(a, Y).").unwrap()).unwrap_err();
        assert!(matches!(err, EngineError::Unsupported(_)));
    }

    #[test]
    fn rejects_non_atomic_queries() {
        let program = game_program();
        let err =
            magic_transform(&program, &parse_query("?- g(M), w(M)(a).").unwrap()).unwrap_err();
        assert!(matches!(err, EngineError::Unsupported(_)));
        let err2 = magic_transform(&program, &parse_query("?- not w(m)(a).").unwrap()).unwrap_err();
        assert!(matches!(err2, EngineError::Unsupported(_)));
    }

    #[test]
    fn builtins_are_carried_in_the_supplementary_chain() {
        let program = parse_program(
            "price(X, N) :- item(X, P), N is P * 2.\n\
             item(a, 3).",
        )
        .unwrap();
        let magic = magic_transform(&program, &parse_query("?- price(a, N).").unwrap()).unwrap();
        let text = magic.full_program().to_string();
        // The head variables (X, N) seed the supplementary chain; the builtin
        // is carried along in the chain.
        assert!(text.contains("sup_0_2(X, N, P) :- sup_0_1(X, N, P), N is '*'(P, 2)."));
    }

    #[test]
    fn queries_with_variable_predicate_names_are_allowed() {
        // "Because the program is assumed to be strongly range restricted,
        // queries with variables in their names are permitted." (Section 6.1)
        let magic = magic_transform(&game_program(), &parse_query("?- w(M)(a).").unwrap()).unwrap();
        assert_eq!(magic.seed.to_string(), "magic(w(M)(a), '+').");
    }
}
