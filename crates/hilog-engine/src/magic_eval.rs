//! Query-directed evaluation for modularly stratified HiLog programs.
//!
//! Section 6.1 uses the magic-sets rewriting to evaluate queries bottom-up
//! while only ever touching atoms relevant to the query.  As documented in
//! DESIGN.md, this crate realises the *evaluation* side of that method with a
//! memoising, query/subquery engine: subgoals are tabled, answers are
//! computed to a fixpoint, and a negative (or aggregate) subgoal is handled
//! by *completely settling* its own subquery first — which is exactly what
//! modular stratification guarantees to be possible, and exactly what the
//! dp/dn/□ machinery of Ross \[16\] arranges in the rewritten program.  The
//! relevance behaviour (irrelevant parts of the database are never visited)
//! is the same, which is what experiment E7 measures.
//!
//! Every subgoal table records the positive/negative dependency edges
//! discovered while it was filled (the instance-level counterpart of the
//! `dp` / `dn` bookkeeping predicates — see [`crate::magic::DepSign`]).  When
//! settling a subgoal requires a subgoal that is still being evaluated
//! higher up the chain — a negative dependency cycle at the instance level,
//! as in Example 6.4 — the evaluator reports
//! [`EngineError::NotModularlyStratified`] with the offending cycle read
//! back from that recorded graph, mirroring the paper's remark that the
//! magic-sets method "would notice the negative dependency of `p(a)` on
//! itself ... and not get as far as checking `p(b)`".  Because every scope
//! is saturated to a true fixpoint (including answers contributed by nested
//! settles) the set of selected subgoal instances — and therefore the
//! verdict — depends only on the program and the query, not on which tables
//! happen to be complete already: a session that reuses completed tables
//! reaches the same verdict and the same answers as a cold evaluator.
//! Completed tables keep their edges, which is also what lets
//! [`crate::session::HiLogDb`] *maintain* tables under mutation instead of
//! dropping whole predicate closures.
//!
//! Subgoals must have ground predicate names and ground negative subgoals at
//! selection time (the program must not *flounder*, footnote 10); the
//! left-to-right subgoal order of the source rules is the sideways
//! information passing strategy.

use crate::deadline::check_deadline;
use crate::error::EngineError;
use crate::horn::EvalOptions;
use crate::magic::DepSign;
use crate::storage::{FactStore, StorageConfig};
use hilog_core::literal::{AggregateFunc, Literal};
use hilog_core::program::Program;
use hilog_core::rule::{Query, Rule};
use hilog_core::subst::Substitution;
use hilog_core::term::{Term, Var};
use hilog_core::unify::{match_with, unify_with};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// Head predicate name of the auxiliary rule that wraps conjunctive queries,
/// shared by [`QueryEvaluator::answer_query`] and the session facade (which
/// must recognise — and drop — the auxiliary tables it creates).
pub(crate) const QUERY_HEAD: &str = "__query_answer";

/// Statistics collected during query evaluation, used by the benchmarks to
/// show the relevance advantage of query-directed evaluation and by
/// [`crate::session::HiLogDb`] to make cache reuse observable.
///
/// Serialises to JSON via the workspace `serde` stub, so the experiments
/// runner (and a future server) can emit it directly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct EvalStats {
    /// Number of distinct tabled subgoals.  A raw [`QueryEvaluator`] reports
    /// its lifetime total (seeded tables included);
    /// [`HiLogDb::query`](crate::session::HiLogDb::query) subtracts the
    /// seeded tables so the count covers one query.
    pub subqueries: usize,
    /// Number of answers derived across the tables counted by `subqueries`
    /// (same raw-total vs per-query convention).
    pub answers: usize,
    /// Number of rule-body expansions attempted.
    pub rule_applications: usize,
    /// Number of subgoals answered from an already-complete table without
    /// any re-evaluation (cache hits; only a session-held evaluator that
    /// reuses tables across queries can observe a second-query hit).
    pub cached_subqueries: usize,
    /// Number of grounding passes performed while answering.  The
    /// query-directed evaluator never grounds, so this is only non-zero for
    /// full-model plans executed by [`crate::session::HiLogDb`]; a cached
    /// model answers with `groundings == 0`.
    pub groundings: usize,
    /// Number of incremental model patches (semi-naive delta propagation
    /// over the affected components) applied while answering.  Non-zero only
    /// for full-model plans of a [`crate::session::HiLogDb`] whose cached
    /// model had pending fact-level deltas.
    pub patches: usize,
    /// How the model that answered this query was obtained — the
    /// observability hook for the session's incremental maintenance.
    /// Magic-sets plans never consult a model and report
    /// [`ModelSource::NotUsed`].
    pub model_source: ModelSource,
    /// Number of subgoal tables the session *patched in place* (exact
    /// answer-level edit of fact-backed tables) across the mutations since
    /// the previous query.  Always zero for a raw [`QueryEvaluator`].
    pub tables_patched: usize,
    /// Number of subgoal tables the session dropped (instance-level reverse
    /// dependency closure of the mutated atoms) across the mutations since
    /// the previous query.
    pub tables_dropped: usize,
    /// Number of derived subgoal tables the session *refilled eagerly*
    /// instead of dropping: an asserted fact whose recorded dependency
    /// closure is all-positive can only *add* answers, so the affected
    /// tables are re-solved immediately, seeded with every surviving warm
    /// table.  Always zero for a raw [`QueryEvaluator`].
    pub tables_refilled: usize,
    /// Number of completed subgoal tables that survived into this query and
    /// were available for reuse when it started.
    pub tables_reused: usize,
    /// Number of candidate lookups answered from an **argument index** while
    /// this query ran (`AtomStore::candidates` probing the most selective
    /// index over the pattern's bound argument positions) — grounding joins
    /// and subgoal-table joins both count.  Filled per query by
    /// [`crate::session::HiLogDb::query`]; a raw [`QueryEvaluator`] reports 0
    /// (read [`crate::horn::probe_counters`] directly instead).
    pub index_probes: usize,
    /// Number of candidate lookups that fell back to a functor-bucket or
    /// whole-store scan (fully open patterns, or patterns with a variable
    /// predicate name).  A sudden growth relative to `index_probes` is the
    /// observable signature of a regression to full scans.
    pub index_fallback_scans: usize,
    /// Number of names in the global symbol pool with at least one live
    /// reference when this query finished — the observability hook for the
    /// pool's checkpoint-time garbage collection
    /// ([`hilog_core::symbol::gc_symbol_pool`]).  A raw [`QueryEvaluator`]
    /// reports 0; the session and snapshot query paths fill it.
    pub live_symbols: usize,
    /// Number of SCC waves the well-founded evaluator (full or patch)
    /// scheduled onto the work pool while this query ran.  Zero whenever the
    /// query reused a cached model or `eval_threads <= 1` (the serial path
    /// never touches the pool).  Like the other parallel counters this is a
    /// delta of process-wide totals — concurrent sessions see each other's
    /// pool activity (see [`crate::pool::parallel_counters`]).
    pub parallel_waves: usize,
    /// Number of semi-naive rounds evaluated as hash-partitioned concurrent
    /// joins (frontier split by the first bound argument, partitions joined
    /// on the pool) while this query ran.
    pub parallel_partitioned_rounds: usize,
    /// Number of tasks (SCC evaluations + join partitions) executed on pool
    /// worker threads while this query ran.  Inline serial fallbacks don't
    /// count, so a non-zero value certifies parallel execution happened.
    pub parallel_tasks: usize,
    /// Facts resident in memory across the session's relation stores (the
    /// possibly-true store plus every subgoal table) when this query
    /// finished.  Under the in-memory backend this is the total fact count.
    pub storage_resident_facts: usize,
    /// Facts whose payloads currently live only in spill segment files
    /// (always zero under the in-memory backend).
    pub storage_spilled_facts: usize,
    /// Bytes appended to spill segment files by the session's stores.
    pub storage_segment_bytes: u64,
    /// Residency faults (spilled rows decoded back into memory) while this
    /// query ran.  Like the index and parallel counters this is a delta of
    /// process-wide totals (see [`crate::storage::storage_counters`]).
    pub storage_residency_faults: u64,
    /// Rows paged out to spill segments while this query ran (same
    /// process-wide delta convention).
    pub storage_spill_writes: u64,
    /// Deadline checks performed while this query ran (one per resource-
    /// limit hook visit when a deadline was installed; zero when the query
    /// carried no deadline).  A thread-local delta, exact per query — see
    /// [`crate::deadline::deadline_counters`].
    pub deadline_checks: u64,
    /// Deadline checks that found the deadline already passed while this
    /// query ran (0 or 1 in practice: the first hit aborts evaluation with
    /// [`crate::EngineError::DeadlineExceeded`]).
    pub deadline_exceeded: u64,
}

/// How a full-model plan obtained the model it answered from.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ModelSource {
    /// No model was consulted (magic-sets plans, or an error before the
    /// model was needed).
    #[default]
    NotUsed,
    /// The cached model was still exact and was reused as-is.
    Cached,
    /// The cached model had pending fact-level deltas and was *patched* in
    /// place: the affected strongly connected components were re-evaluated
    /// against the incrementally maintained ground program.
    Patched,
    /// No usable cached model existed; it was rebuilt from scratch.
    Rebuilt,
}

impl std::fmt::Display for ModelSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelSource::NotUsed => write!(f, "not-used"),
            ModelSource::Cached => write!(f, "cached"),
            ModelSource::Patched => write!(f, "patched"),
            ModelSource::Rebuilt => write!(f, "rebuilt"),
        }
    }
}

impl serde::Serialize for ModelSource {
    fn write_json(&self, out: &mut String) {
        serde::write_json_string(out, &self.to_string());
    }
}

/// One subgoal table: the normalised pattern (which is also its key in the
/// table map), the ground answers derived for it, and the direct dependency
/// edges discovered while it was filled.  The edges of a *complete* table
/// describe its entire evaluation: refilling the table from scratch would
/// select exactly the subgoal instances recorded here, so the session can
/// use the recorded graph both to propagate invalidation at the instance
/// level and to rule out masked negative cycles (a complete table's
/// transitive dependency closure is settled and cycle-free).
#[derive(Debug, Clone)]
pub(crate) struct Table {
    pub(crate) pattern: Term,
    /// Ground answers, held in an argument-indexed [`FactStore`] so that
    /// joining a partially instantiated subgoal against a (large, warm)
    /// table probes an index on its bound argument positions instead of
    /// scanning every answer.  The indexes are maintained by the session's
    /// in-place table patches, so they stay warm across mutations; on the
    /// spill backend a cold table's answer payloads page to disk while its
    /// indexes stay resident.
    pub(crate) answers: FactStore,
    pub(crate) complete: bool,
    /// Direct subgoal edges: normalised key of the dependency, strongest
    /// polarity it was selected under ([`DepSign::Neg`] dominates).
    pub(crate) deps: BTreeMap<Term, DepSign>,
}

impl Table {
    fn new(pattern: Term, storage: &StorageConfig) -> Self {
        Table {
            pattern,
            answers: FactStore::new(storage),
            complete: false,
            deps: BTreeMap::new(),
        }
    }
}

/// A memoising query/subquery evaluator over a fixed program.
#[derive(Debug)]
pub struct QueryEvaluator<'p> {
    program: &'p Program,
    opts: EvalOptions,
    /// Subgoal tables keyed by their normalised pattern *structurally* (the
    /// `Arc`-backed [`Term`] itself), so seeding, lookup and the session's
    /// maintenance never render a pattern to text — and two patterns that
    /// would print identically can never share a table.  Tables are `Arc`d
    /// so seeding from a published [`crate::snapshot::DbSnapshot`] shares
    /// them structurally; `Arc::make_mut` copies a table on its first write
    /// only if a snapshot still holds it (copy-on-write).
    tables: HashMap<Term, Arc<Table>>,
    rename_counter: u32,
    stats: EvalStats,
    /// Number of answers inserted by *this* evaluator (seeded answers are
    /// not counted): the resource-limit measure, so that a warm evaluator
    /// and a cold one face the same per-query derivation budget.
    derived: usize,
    /// Rule indices grouped by the (ground) outermost functor and arity of
    /// their head, so that a subgoal only considers rules that could match it
    /// (the discrimination the magic predicates provide in the rewritten
    /// program).
    rules_by_head: HashMap<(Term, Option<usize>), Vec<usize>>,
    /// Rules whose head outermost functor is a variable: candidates for every
    /// subgoal.
    wildcard_rules: Vec<usize>,
    /// Backend configuration for tables this evaluator creates (seeded
    /// tables keep whatever backend they were built on).
    storage: StorageConfig,
}

impl<'p> QueryEvaluator<'p> {
    /// Creates an evaluator for the program.
    pub fn new(program: &'p Program, opts: EvalOptions) -> Self {
        Self::with_tables(program, opts, HashMap::new(), StorageConfig::default())
    }

    /// Creates an evaluator seeded with tables from a previous run over the
    /// same (or an extended) program.  Complete tables are trusted as-is,
    /// which is how [`crate::session::HiLogDb`] reuses work across queries.
    pub(crate) fn with_tables(
        program: &'p Program,
        opts: EvalOptions,
        tables: HashMap<Term, Arc<Table>>,
        storage: StorageConfig,
    ) -> Self {
        let mut rules_by_head: HashMap<(Term, Option<usize>), Vec<usize>> = HashMap::new();
        let mut wildcard_rules = Vec::new();
        for (i, rule) in program.iter().enumerate() {
            let functor = rule.head.outermost_functor();
            if functor.is_ground() {
                rules_by_head
                    .entry((functor.clone(), rule.head.arity()))
                    .or_default()
                    .push(i);
            } else {
                wildcard_rules.push(i);
            }
        }
        QueryEvaluator {
            program,
            opts,
            tables,
            rename_counter: 0,
            stats: EvalStats::default(),
            derived: 0,
            rules_by_head,
            wildcard_rules,
            storage,
        }
    }

    /// Consumes the evaluator, handing its subgoal tables back to the caller
    /// (the session keeps the complete ones for the next query).
    pub(crate) fn into_tables(self) -> HashMap<Term, Arc<Table>> {
        self.tables
    }

    /// The rule indices that could match a subgoal with the given pattern.
    fn candidate_rules(&self, pattern: &Term) -> Vec<usize> {
        let functor = pattern.outermost_functor();
        if !functor.is_ground() {
            return (0..self.program.len()).collect();
        }
        let mut out: Vec<usize> = self
            .rules_by_head
            .get(&(functor.clone(), pattern.arity()))
            .cloned()
            .unwrap_or_default();
        out.extend(self.wildcard_rules.iter().copied());
        out.sort_unstable();
        out
    }

    /// Evaluation statistics so far.
    pub fn stats(&self) -> EvalStats {
        EvalStats {
            subqueries: self.tables.len(),
            answers: self.tables.values().map(|t| t.answers.len()).sum(),
            rule_applications: self.stats.rule_applications,
            cached_subqueries: self.stats.cached_subqueries,
            ..EvalStats::default()
        }
    }

    /// Answers a single-atom subgoal: returns all ground instances of
    /// `pattern` that are true in the well-founded model of the program.
    pub fn solve_atom(&mut self, pattern: &Term) -> Result<Vec<Term>, EngineError> {
        if pattern.is_var() {
            return Err(EngineError::Floundering(format!(
                "subgoal `{pattern}` is an unbound variable"
            )));
        }
        let key = self.normalize(pattern);
        let key = self.evaluate_completely(key, &mut Vec::new())?;
        Ok(self.tables[&key].answers.collect_atoms())
    }

    /// Answers a query (a conjunction of literals), returning one
    /// substitution of the query's variables per answer.
    pub fn answer_query(&mut self, query: &Query) -> Result<Vec<Substitution>, EngineError> {
        let vars = query.variables();
        // Wrap the query in an auxiliary rule so conjunctions and negative
        // literals are handled uniformly (the `answer` rule of Section 5).
        let head = Term::apps(
            QUERY_HEAD,
            vars.iter().map(|v| Term::Var(v.clone())).collect(),
        );
        let rule = Rule::new(head.clone(), query.literals.clone());
        let mut extended = self.program.clone();
        extended.push(rule);
        let mut sub =
            QueryEvaluator::with_tables(&extended, self.opts, HashMap::new(), self.storage.clone());
        let answers = sub.solve_atom(&head)?;
        self.stats.rule_applications += sub.stats().rule_applications;
        let mut out = Vec::new();
        for answer in answers {
            let mut theta = Substitution::new();
            if match_with(&head, &answer, &mut theta) {
                out.push(theta.restrict(&vars));
            }
        }
        Ok(out)
    }

    /// Returns `true` if the ground atom is true in the well-founded model.
    pub fn holds(&mut self, atom: &Term) -> Result<bool, EngineError> {
        if !atom.is_ground() {
            return Err(EngineError::Floundering(format!(
                "holds() requires a ground atom, got `{atom}`"
            )));
        }
        let answers = self.solve_atom(atom)?;
        Ok(answers.iter().any(|a| a == atom))
    }

    /// Canonical key for a subgoal pattern: variables are renamed in order of
    /// first occurrence so that variants share a table.  The normalised term
    /// itself is the (structural) table key.
    fn normalize(&self, pattern: &Term) -> Term {
        normalize_pattern(pattern)
    }

    fn fresh_generation(&mut self) -> u32 {
        self.rename_counter += 1;
        self.rename_counter
    }

    /// Records the dependency edge `from -> to` with the given polarity
    /// ([`DepSign::Neg`] dominates a previously recorded positive edge).
    fn record_edge(&mut self, from: &Term, to: Term, sign: DepSign) {
        if let Some(table) = self.tables.get_mut(from) {
            let table = Arc::make_mut(table);
            let entry = table.deps.entry(to).or_insert(sign);
            if sign == DepSign::Neg {
                *entry = DepSign::Neg;
            }
        }
    }

    /// Builds the [`EngineError::NotModularlyStratified`] report for a
    /// request to settle `key` while it is still being settled: reads a
    /// dependency cycle through `key` containing at least one negative edge
    /// back from the recorded graph.  By construction the closing edge has
    /// just been recorded, so the cycle is present; the search is bounded by
    /// visiting each table at most twice (once per "negative edge seen yet"
    /// state).
    fn not_modularly_stratified(&self, key: &Term) -> EngineError {
        /// One DFS frame: the table reached, whether the path to it crossed
        /// a negative edge, and the edges walked so far (for the report).
        type Frame = (Term, bool, Vec<(Term, DepSign)>);
        let mut stack: Vec<Frame> = vec![(key.clone(), false, Vec::new())];
        let mut visited: BTreeSet<(Term, bool)> = BTreeSet::new();
        while let Some((node, has_neg, path)) = stack.pop() {
            if !visited.insert((node.clone(), has_neg)) {
                continue;
            }
            let Some(table) = self.tables.get(&node) else {
                continue;
            };
            for (dep, sign) in &table.deps {
                let neg = has_neg || sign.is_negative();
                if dep == key && neg {
                    let mut rendered = format!("`{key}`");
                    for (step, sign) in path.iter().chain([(dep.clone(), *sign)].iter()) {
                        rendered.push_str(if sign.is_negative() {
                            " -not-> "
                        } else {
                            " -> "
                        });
                        rendered.push_str(&format!("`{step}`"));
                    }
                    return EngineError::NotModularlyStratified(format!(
                        "the subgoal `{key}` depends on itself through negation or aggregation \
                         (cf. Example 6.4): {rendered}"
                    ));
                }
                if !visited.contains(&(dep.clone(), neg)) {
                    let mut next_path = path.clone();
                    next_path.push((dep.clone(), *sign));
                    stack.push((dep.clone(), neg, next_path));
                }
            }
        }
        // Defensive: the closing edge is recorded before this runs, so a
        // cycle must exist; keep a generic report in case it does not.
        EngineError::NotModularlyStratified(format!(
            "the subgoal `{key}` depends on itself through negation or aggregation \
             (cf. Example 6.4)"
        ))
    }

    /// Sum of the answers currently held by the tables in `scope` — the
    /// fixpoint measure of [`Self::evaluate_completely`].  Computed over the
    /// scope (not per-expansion deltas) so that answers contributed to a
    /// scope table by a *nested* settle — e.g. a negative subgoal elsewhere
    /// in the scope completing a table this scope also reads positively —
    /// are observed and the affected rule bodies are re-joined.
    fn scope_answers(&self, scope: &[Term]) -> usize {
        scope
            .iter()
            .map(|k| self.tables.get(k).map_or(0, |t| t.answers.len()))
            .sum()
    }

    /// Ensures the table for the *normalised* key exists and is complete,
    /// evaluating the subgoal (and, recursively, everything it needs) to a
    /// fixpoint.  Callers normalise once and pass the key (also recording
    /// the dependency edge first, so a cycle-closing request is already in
    /// the graph when this detects it).
    ///
    /// `in_progress` tracks the subgoal keys currently being settled; a
    /// request to *completely* settle a key that is already in progress is a
    /// negative dependency cycle and the program is rejected as not
    /// modularly stratified.
    fn evaluate_completely(
        &mut self,
        key: Term,
        in_progress: &mut Vec<Term>,
    ) -> Result<Term, EngineError> {
        if !key.name().is_ground() && key.is_var() {
            return Err(EngineError::Floundering(format!(
                "subgoal `{key}` is an unbound variable"
            )));
        }
        if let Some(table) = self.tables.get(&key) {
            if table.complete {
                self.stats.cached_subqueries += 1;
                return Ok(key);
            }
            // The subgoal is already being settled further up the negation
            // chain: a dependency cycle through negation at the instance
            // level (Example 6.4), reported from the recorded dependency
            // graph (the closing edge was recorded by the caller).  A merely
            // *incomplete* table that is not an ancestor (it belongs to an
            // enclosing positive fixpoint) is fine — we saturate it here,
            // which only brings its completion forward.
            if in_progress.contains(&key) {
                return Err(self.not_modularly_stratified(&key));
            }
        } else {
            self.tables.insert(
                key.clone(),
                Arc::new(Table::new(key.clone(), &self.storage)),
            );
        }
        in_progress.push(key.clone());

        // The set of subgoal keys whose fixpoint this evaluation owns.  New
        // positive subgoals encountered during expansion join the scope.
        //
        // The round criterion compares the scope's total answer count, not a
        // per-expansion "changed" flag: a nested settle (of a negative
        // subgoal selected within this scope) can complete a table the scope
        // also reads positively, and the rule bodies whose branches died on
        // that table while it was still empty must be re-joined — otherwise
        // the scope completes prematurely, missing answers and masking
        // negative cycles behind them.
        let mut scope: Vec<Term> = vec![key.clone()];
        loop {
            check_deadline()?;
            let before = self.scope_answers(&scope);
            let mut i = 0;
            while i < scope.len() {
                let subgoal_key = scope[i].clone();
                i += 1;
                self.expand(&subgoal_key, &mut scope, in_progress)?;
            }
            if self.scope_answers(&scope) == before {
                break;
            }
            if self.derived > self.opts.max_atoms {
                return Err(EngineError::LimitExceeded(format!(
                    "query evaluation derived more than {} answers",
                    self.opts.max_atoms
                )));
            }
        }
        for k in &scope {
            if let Some(t) = self.tables.get_mut(k) {
                Arc::make_mut(t).complete = true;
            }
        }
        in_progress.pop();
        Ok(key)
    }

    /// Registers (or finds) the table for a positive subgoal's *normalised*
    /// key, adding it to the evaluation scope if it is new.
    fn table_for_positive(
        &mut self,
        key: Term,
        scope: &mut Vec<Term>,
        in_progress: &[Term],
    ) -> Result<Term, EngineError> {
        if let Some(table) = self.tables.get(&key) {
            if !table.complete && !scope.contains(&key) {
                // The subgoal is being settled in an enclosing evaluation
                // whose completion transitively needs *this* evaluation: a
                // dependency cycle through negation (the chain from the
                // ancestor down to this scope crosses at least one settle
                // boundary, so the recorded cycle has a negative edge).
                if in_progress.contains(&key) {
                    return Err(self.not_modularly_stratified(&key));
                }
                scope.push(key.clone());
            }
            return Ok(key);
        }
        self.tables.insert(
            key.clone(),
            Arc::new(Table::new(key.clone(), &self.storage)),
        );
        scope.push(key.clone());
        Ok(key)
    }

    /// One expansion pass over all rules whose head unifies with the
    /// subgoal's pattern.  Dependency edges are recorded as subgoals are
    /// selected — *before* they are settled, so that a cycle-closing
    /// selection is already in the graph when the settle detects it.
    fn expand(
        &mut self,
        subgoal_key: &Term,
        scope: &mut Vec<Term>,
        in_progress: &mut Vec<Term>,
    ) -> Result<(), EngineError> {
        let pattern = self.tables[subgoal_key].pattern.clone();
        let mut derived: Vec<Term> = Vec::new();
        for rule_index in self.candidate_rules(&pattern) {
            let rule = &self.program.rules[rule_index];
            let generation = self.fresh_generation();
            let renamed = rule.rename(generation);
            let mut theta = Substitution::new();
            if !unify_with(&renamed.head, &pattern, &mut theta) {
                continue;
            }
            self.stats.rule_applications += 1;
            let mut branches = vec![theta];
            for lit in &renamed.body {
                if branches.is_empty() {
                    break;
                }
                let mut next = Vec::new();
                for theta in branches {
                    match lit {
                        Literal::Pos(atom) => {
                            let instantiated = theta.apply(atom);
                            if !instantiated.name().is_ground() && instantiated.is_var() {
                                return Err(EngineError::Floundering(format!(
                                    "positive subgoal `{instantiated}` is an unbound variable \
                                     when selected"
                                )));
                            }
                            let target = self.normalize(&instantiated);
                            self.record_edge(subgoal_key, target.clone(), DepSign::Pos);
                            let key = self.table_for_positive(target, scope, in_progress)?;
                            // Probe the table's argument indexes with the
                            // already-resolved subgoal: only answers agreeing
                            // with its bound argument positions are visited.
                            let answers: Vec<Term> =
                                self.tables[&key].answers.collect_candidates(&instantiated);
                            for answer in answers {
                                let mut extended = theta.clone();
                                if unify_with(&instantiated, &answer, &mut extended) {
                                    next.push(extended);
                                }
                            }
                        }
                        Literal::Neg(atom) => {
                            let instantiated = theta.apply(atom);
                            if !instantiated.is_ground() {
                                return Err(EngineError::Floundering(format!(
                                    "negative subgoal `not {instantiated}` is selected while \
                                     non-ground (the rule order flounders, footnote 10)"
                                )));
                            }
                            let target = self.normalize(&instantiated);
                            self.record_edge(subgoal_key, target.clone(), DepSign::Neg);
                            let key = self.evaluate_completely(target, in_progress)?;
                            let is_true = self.tables[&key].answers.contains(&instantiated);
                            if !is_true {
                                next.push(theta);
                            }
                        }
                        Literal::Builtin(b) => {
                            let mut extended = theta.clone();
                            match b.eval(&mut extended) {
                                Ok(true) => next.push(extended),
                                Ok(false) => {}
                                Err(e) => return Err(EngineError::Core(e)),
                            }
                        }
                        Literal::Aggregate(agg) => {
                            let instantiated_pattern = theta.apply(&agg.pattern);
                            let target = self.normalize(&instantiated_pattern);
                            self.record_edge(subgoal_key, target.clone(), DepSign::Neg);
                            let key = self.evaluate_completely(target, in_progress)?;
                            let answers: Vec<Term> = self.tables[&key]
                                .answers
                                .collect_candidates(&instantiated_pattern);
                            // Group by the pattern variables that occur
                            // outside the aggregate literal.  All variable
                            // sets are taken *after* applying `theta`: the
                            // subgoal pattern may have aliased rule variables
                            // (e.g. a head variable renamed to a table's
                            // normalised variable), and grouping must bind
                            // exactly the variables the instantiated pattern
                            // still carries.
                            let mut outside: Vec<Var> = theta.apply(&renamed.head).variables();
                            for other in renamed.body.iter().filter(|l| *l != lit) {
                                outside.extend(other.apply(&theta).variables());
                            }
                            let value_vars = theta.apply(&agg.value).variables();
                            let group_vars: Vec<Var> = instantiated_pattern
                                .variables()
                                .into_iter()
                                .filter(|v| outside.contains(v) && !value_vars.contains(v))
                                .collect();
                            let mut groups: BTreeMap<Vec<(Var, Term)>, Vec<i64>> = BTreeMap::new();
                            for answer in answers {
                                let mut m = Substitution::new();
                                if match_with(&instantiated_pattern, &answer, &mut m) {
                                    let k: Vec<(Var, Term)> = group_vars
                                        .iter()
                                        .map(|v| (v.clone(), m.apply(&Term::Var(v.clone()))))
                                        .collect();
                                    if let Term::Int(i) = m.apply(&theta.apply(&agg.value)) {
                                        groups.entry(k).or_default().push(i);
                                    }
                                }
                            }
                            for (group_key, values) in groups {
                                let result = match agg.func {
                                    AggregateFunc::Sum => values.iter().sum(),
                                    AggregateFunc::Count => values.len() as i64,
                                    AggregateFunc::Min => values.iter().copied().min().unwrap_or(0),
                                    AggregateFunc::Max => values.iter().copied().max().unwrap_or(0),
                                };
                                let mut extended = theta.clone();
                                let mut ok = true;
                                for (v, t) in &group_key {
                                    if !unify_with(&Term::Var(v.clone()), t, &mut extended) {
                                        ok = false;
                                        break;
                                    }
                                }
                                if ok && unify_with(&agg.result, &Term::Int(result), &mut extended)
                                {
                                    next.push(extended);
                                }
                            }
                        }
                    }
                }
                branches = next;
            }
            for theta in branches {
                let answer = theta.apply(&renamed.head);
                if answer.is_ground() {
                    derived.push(answer);
                } else {
                    return Err(EngineError::Floundering(format!(
                        "rule `{rule}` produced the non-ground answer `{answer}`"
                    )));
                }
            }
        }
        let table = self.tables.get_mut(subgoal_key).expect("table exists");
        let before = table.answers.len();
        if !derived.is_empty() {
            let table = Arc::make_mut(table);
            for d in derived {
                // Only keep instances of the subgoal pattern.
                let mut m = Substitution::new();
                if match_with(&table.pattern, &d, &mut m) {
                    table.answers.insert(d);
                }
            }
        }
        self.derived += self.tables[subgoal_key].answers.len() - before;
        Ok(())
    }
}

/// Canonical table key for a subgoal pattern: variables renamed to `_N0`,
/// `_N1`, … in order of first occurrence, so variant patterns share a table.
/// Exposed to the session facade so a warm single-atom query can look its
/// table up without constructing an evaluator.
pub(crate) fn normalize_pattern(pattern: &Term) -> Term {
    let vars = pattern.variables();
    let theta: Substitution = vars
        .iter()
        .enumerate()
        .map(|(i, v)| (v.clone(), Term::var(format!("_N{i}"))))
        .collect();
    theta.apply(pattern)
}

/// Convenience function: answers a query against a program with a fresh
/// evaluator, returning the substitutions and the evaluation statistics.
#[deprecated(
    note = "construct a `HiLogDb` (`crate::session`) and call `.query(..)`, or share a \
            `DbSnapshot` (`crate::snapshot`) across threads; both reuse subgoal tables \
            across queries instead of starting from scratch"
)]
pub fn answer_query(
    program: &Program,
    query: &Query,
    opts: EvalOptions,
) -> Result<(Vec<Substitution>, EvalStats), EngineError> {
    // One-shot over the snapshot read path: bound queries take the tabled
    // route exactly as before, unbound ones now answer from the full model
    // (the session facade's planning applied to a single-use snapshot).
    let (_writer, handle) = crate::session::HiLogDb::builder()
        .program(program.clone())
        .options(opts)
        .build()
        .into_serving();
    let result = handle.current().query(query)?;
    let answers = result
        .answers
        .into_iter()
        .filter(|a| a.truth == hilog_core::interpretation::Truth::True)
        .map(|a| a.bindings.into_iter().collect::<Substitution>())
        .collect();
    Ok((answers, result.stats))
}

#[cfg(test)]
// The deprecated `answer_query` shim must keep working; these tests exercise
// it on purpose.
#[allow(deprecated)]
mod tests {
    use super::*;
    use hilog_syntax::{parse_program, parse_query, parse_term};

    fn game(n: usize) -> Program {
        // A chain game a0 -> a1 -> ... -> an.
        let mut text = String::from("winning(M)(X) :- game(M), M(X, Y), not winning(M)(Y).\n");
        text.push_str("game(move1).\n");
        for i in 0..n {
            text.push_str(&format!("move1(p{}, p{}).\n", i, i + 1));
        }
        parse_program(&text).unwrap()
    }

    #[test]
    fn ground_query_on_the_game_program() {
        let program = game(4);
        let mut ev = QueryEvaluator::new(&program, EvalOptions::default());
        // p3 can move to the dead end p4, so p3 is winning; p4 is not.
        assert!(ev
            .holds(&parse_term("winning(move1)(p3)").unwrap())
            .unwrap());
        assert!(!ev
            .holds(&parse_term("winning(move1)(p4)").unwrap())
            .unwrap());
        // Positions alternate along the chain.
        assert!(!ev
            .holds(&parse_term("winning(move1)(p2)").unwrap())
            .unwrap());
        assert!(ev
            .holds(&parse_term("winning(move1)(p1)").unwrap())
            .unwrap());
    }

    #[test]
    fn open_query_enumerates_answers() {
        let program = game(4);
        let (answers, _) = answer_query(
            &program,
            &parse_query("?- winning(move1)(X).").unwrap(),
            EvalOptions::default(),
        )
        .unwrap();
        let xs: BTreeSet<String> = answers
            .iter()
            .map(|s| s.apply(&Term::var("X")).to_string())
            .collect();
        assert_eq!(
            xs,
            ["p1".to_string(), "p3".to_string()].into_iter().collect()
        );
    }

    #[test]
    fn query_with_variable_predicate_name() {
        // ?- game(M), winning(M)(p1). binds the game name first, as the
        // strongly range-restricted discipline requires.
        let program = game(2);
        let (answers, _) = answer_query(
            &program,
            &parse_query("?- game(M), winning(M)(X).").unwrap(),
            EvalOptions::default(),
        )
        .unwrap();
        assert!(!answers.is_empty());
        for a in &answers {
            assert_eq!(a.apply(&Term::var("M")).to_string(), "move1");
        }
    }

    #[test]
    fn agreement_with_bottom_up_wfs() {
        let program = game(6);
        let wfm = crate::wfs::well_founded_model(&program, EvalOptions::default()).unwrap();
        let mut ev = QueryEvaluator::new(&program, EvalOptions::default());
        for i in 0..=6 {
            let atom = parse_term(&format!("winning(move1)(p{i})")).unwrap();
            assert_eq!(
                ev.holds(&atom).unwrap(),
                wfm.is_true(&atom),
                "disagreement on winning(move1)(p{i})"
            );
        }
    }

    #[test]
    fn relevance_point_query_does_not_touch_other_games() {
        // Two games; querying one should not table subgoals of the other.
        let program = parse_program(
            "winning(M)(X) :- game(M), M(X, Y), not winning(M)(Y).\n\
             game(move1). game(move2).\n\
             move1(a, b). move1(b, c).\n\
             move2(x1, x2). move2(x2, x3). move2(x3, x4).",
        )
        .unwrap();
        let mut ev = QueryEvaluator::new(&program, EvalOptions::default());
        assert!(!ev.holds(&parse_term("winning(move1)(a)").unwrap()).unwrap());
        let stats = ev.stats();
        // No table mentions move2 positions.
        assert!(
            !ev.tables.keys().any(|k| k.to_string().contains("move2(x")),
            "irrelevant subgoals were tabled: {:?}",
            ev.tables.keys().collect::<Vec<_>>()
        );
        assert!(stats.subqueries > 0);
    }

    #[test]
    fn positive_recursion_is_tabled_to_fixpoint() {
        // Generic transitive closure with a bound relation name.
        let program = parse_program(
            "tc(G)(X, Y) :- graph(G), G(X, Y).\n\
             tc(G)(X, Y) :- graph(G), G(X, Z), tc(G)(Z, Y).\n\
             graph(e). e(a, b). e(b, c). e(c, d).",
        )
        .unwrap();
        let (answers, _) = answer_query(
            &program,
            &parse_query("?- tc(e)(a, Y).").unwrap(),
            EvalOptions::default(),
        )
        .unwrap();
        let ys: BTreeSet<String> = answers
            .iter()
            .map(|s| s.apply(&Term::var("Y")).to_string())
            .collect();
        assert_eq!(
            ys,
            ["b".to_string(), "c".to_string(), "d".to_string()]
                .into_iter()
                .collect()
        );
    }

    #[test]
    fn maplist_example_2_2_evaluates_top_down() {
        // Example 2.2: the query-directed evaluator handles maplist, which
        // bottom-up evaluation cannot (its relevant instantiation is
        // infinite — see the horn module's maplist test).
        let program = parse_program(
            "maplist(F)([], []) :- fun(F).\n\
             maplist(F)([X | R], [Y | Z]) :- F(X, Y), maplist(F)(R, Z).\n\
             fun(double).\n\
             double(one, two). double(two, four).",
        )
        .unwrap();
        let (answers, _) = answer_query(
            &program,
            &parse_query("?- maplist(double)([one, two], L).").unwrap(),
            EvalOptions::default(),
        )
        .unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].apply(&Term::var("L")).to_string(), "[two, four]");
        // maplist also runs "backwards": which input list doubles to
        // [two, four]?
        let (back, _) = answer_query(
            &program,
            &parse_query("?- maplist(double)(In, [two, four]).").unwrap(),
            EvalOptions::default(),
        )
        .unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].apply(&Term::var("In")).to_string(), "[one, two]");
    }

    #[test]
    fn example_6_4_self_dependency_is_rejected_when_encountered() {
        // Example 6.4 is not modularly stratified: the instantiated rule
        // p(a) :- t(a, b, a, p), not p(b), not p(a) makes p(a) depend
        // negatively on itself.  Whether the sequential evaluator actually
        // *reaches* that dependency depends on the left-to-right subgoal
        // order (the method of Section 6.1 is "modular stratification from
        // left to right").  With `not p(Z)` selected first the cycle is hit
        // and the program is rejected, exactly as the paper describes
        // ("notice the negative dependency of p(a) on itself ... and not get
        // as far as checking p(b)").
        let reordered = parse_program(
            "p(X) :- t(X, Y, Z, P), not p(Z), not p(Y).\n\
             t(a, b, a, p).\n\
             t(c, a, b, p).\n\
             p(b) :- t(X, Y, b, P).",
        )
        .unwrap();
        let mut ev = QueryEvaluator::new(&reordered, EvalOptions::default());
        let err = ev.holds(&parse_term("p(a)").unwrap()).unwrap_err();
        assert!(matches!(err, EngineError::NotModularlyStratified(_)));

        // With the paper's original literal order, the offending branch is
        // killed by `not p(b)` before `not p(a)` is selected, so the
        // evaluator happens to terminate with the correct well-founded
        // values — a conservative improvement over the paper's method, which
        // gives up.  The Figure 1 procedure still classifies the program as
        // not modularly stratified (see the modular module's tests).
        let original = parse_program(
            "p(X) :- t(X, Y, Z, P), not p(Y), not p(Z).\n\
             t(a, b, a, p).\n\
             t(c, a, b, p).\n\
             p(b) :- t(X, Y, b, P).",
        )
        .unwrap();
        let mut ev2 = QueryEvaluator::new(&original, EvalOptions::default());
        assert!(!ev2.holds(&parse_term("p(a)").unwrap()).unwrap());
        assert!(ev2.holds(&parse_term("p(b)").unwrap()).unwrap());
    }

    #[test]
    fn floundering_negative_subgoal_is_reported() {
        let program = parse_program("p(X) :- not q(X, Y), r(X). r(a). q(a, b).").unwrap();
        let mut ev = QueryEvaluator::new(&program, EvalOptions::default());
        let err = ev.holds(&parse_term("p(a)").unwrap()).unwrap_err();
        assert!(matches!(err, EngineError::Floundering(_)));
    }

    #[test]
    fn builtins_in_rule_bodies() {
        let program = parse_program(
            "price(X, N) :- base(X, P), N is P * 2.\n\
             cheap(X) :- price(X, N), N < 10.\n\
             base(a, 3). base(b, 7).",
        )
        .unwrap();
        let mut ev = QueryEvaluator::new(&program, EvalOptions::default());
        assert!(ev.holds(&parse_term("cheap(a)").unwrap()).unwrap());
        assert!(!ev.holds(&parse_term("cheap(b)").unwrap()).unwrap());
        assert!(ev.holds(&parse_term("price(b, 14)").unwrap()).unwrap());
    }

    #[test]
    fn aggregates_via_query_evaluation() {
        // A one-level sum: total(X, N) where N sums the quantities of X's
        // direct parts.
        let program = parse_program(
            "total(X, N) :- item(X), N = sum(P, part(X, Y, P)).\n\
             item(bike).\n\
             part(bike, wheel, 2). part(bike, frame, 1).",
        )
        .unwrap();
        let (answers, _) = answer_query(
            &program,
            &parse_query("?- total(bike, N).").unwrap(),
            EvalOptions::default(),
        )
        .unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].apply(&Term::var("N")), Term::int(3));
    }

    #[test]
    fn aggregates_with_free_grouping_variables() {
        // Regression: when the aggregate is the only body literal, the
        // grouping variables reach the aggregate already aliased to the
        // subgoal pattern's normalised variables; grouping must still bind
        // them (previously this floundered with a non-ground answer).
        let program = parse_program(
            "total(X, N) :- N = sum(P, part(X, Y, P)).\n\
             part(bike, wheel, 2). part(bike, frame, 1). part(car, wheel, 4).",
        )
        .unwrap();
        let (answers, _) = answer_query(
            &program,
            &parse_query("?- total(X, N).").unwrap(),
            EvalOptions::default(),
        )
        .unwrap();
        let rendered: BTreeSet<String> = answers
            .iter()
            .map(|s| format!("{}={}", s.apply(&Term::var("X")), s.apply(&Term::var("N"))))
            .collect();
        assert_eq!(
            rendered,
            ["bike=3".to_string(), "car=4".to_string()]
                .into_iter()
                .collect()
        );
    }

    #[test]
    fn stats_reflect_work_done() {
        let program = game(8);
        let mut ev = QueryEvaluator::new(&program, EvalOptions::default());
        ev.holds(&parse_term("winning(move1)(p0)").unwrap())
            .unwrap();
        let stats = ev.stats();
        assert!(stats.subqueries >= 8);
        assert!(stats.rule_applications > 0);
        assert!(stats.answers > 0);
    }
}
