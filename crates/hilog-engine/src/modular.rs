//! Modular stratification for HiLog — the Figure 1 procedure.
//!
//! Section 6 of the paper generalises the modularly stratified programs of
//! Ross \[16\] to HiLog.  Because predicate names may contain variables, the
//! strongly connected components of the program cannot be computed a priori
//! (Example 6.2); instead the Figure 1 procedure settles the *lowest*
//! components one at a time:
//!
//! 1. partition the remaining rules into those with variables in the head
//!    predicate name (`R_v`) and the rest (`R_g`);
//! 2. reject if a ground-headed rule's head predicate is already settled
//!    (the conservative treatment of Example 6.5), or if `R_g` is empty;
//! 3. build the dependency graph over the *ground* predicate names of the
//!    remaining rules, with edges from each ground-headed rule's head to the
//!    ground names in its body;
//! 4. let `T` be the names in components with no outgoing edge;
//! 5. the rules with heads in `T` must contain no variable predicate names
//!    and must be locally stratified once instantiated; compute their (total)
//!    well-founded model `M_T`;
//! 6. add `T` to the settled set, merge `M_T` into the accumulated model and
//!    replace the remaining rules by their *HiLog reduction* modulo the model
//!    (Definition 6.5); repeat.
//!
//! If the procedure terminates with no rules left, the program is modularly
//! stratified for HiLog and the accumulated model is its total well-founded
//! model, which is also its unique stable model (Theorem 6.1).
//!
//! For normal programs the procedure specialises to modular stratification in
//! the sense of Definition 6.4 (Lemma 6.2); [`modularly_stratified_normal`]
//! exposes that entry point.

use crate::deadline::check_deadline;
use crate::error::EngineError;
use crate::grounder::relevant_ground;
use crate::horn::EvalOptions;
use crate::wfs::well_founded_eval;
use hilog_core::analysis::{ground_predicate_name, DependencyGraph, EdgeSign};
use hilog_core::interpretation::Model;
use hilog_core::literal::{AggregateFunc, Literal};
use hilog_core::program::Program;
use hilog_core::rule::Rule;
use hilog_core::subst::Substitution;
use hilog_core::term::Term;
use hilog_core::unify::match_with;
use std::collections::BTreeSet;

/// The result of running the Figure 1 procedure.
#[derive(Debug, Clone)]
pub struct ModularOutcome {
    /// `true` if the program is modularly stratified for HiLog.
    pub modularly_stratified: bool,
    /// The accumulated (total) well-founded model when stratified.
    pub model: Option<Model>,
    /// Human-readable reason for rejection.
    pub reason: Option<String>,
    /// The sets of predicate names settled at each round, in order.
    pub rounds: Vec<Vec<Term>>,
}

impl ModularOutcome {
    fn accepted(model: Model, rounds: Vec<Vec<Term>>) -> Self {
        ModularOutcome {
            modularly_stratified: true,
            model: Some(model),
            reason: None,
            rounds,
        }
    }

    fn rejected(reason: String, rounds: Vec<Vec<Term>>) -> Self {
        ModularOutcome {
            modularly_stratified: false,
            model: None,
            reason: Some(reason),
            rounds,
        }
    }
}

/// Runs the Figure 1 procedure on a HiLog program.
///
/// The program should be strongly range restricted (Definition 6.6 assumes
/// it); programs that flounder during instantiation are rejected with the
/// floundering message as the reason rather than raising an error, since
/// Figure 1 treats every failure of its side conditions as "not modularly
/// stratified".
#[deprecated(
    note = "construct a `HiLogDb` (`crate::session`) and call `.check_modular()` (or query \
            under `Semantics::ModularCheck`), or share a `DbSnapshot` (`crate::snapshot`) \
            across threads; both cache the outcome"
)]
pub fn modularly_stratified_hilog(
    program: &Program,
    opts: EvalOptions,
) -> Result<ModularOutcome, EngineError> {
    one_shot_check(program, opts)
}

/// Non-deprecated internal form of [`modularly_stratified_hilog`], shared by
/// the session facade.
pub(crate) fn figure1_procedure(
    program: &Program,
    opts: EvalOptions,
) -> Result<ModularOutcome, EngineError> {
    let mut remaining: Vec<Rule> = program.rules.clone();
    let mut settled: BTreeSet<Term> = BTreeSet::new();
    let mut model = Model::empty();
    let mut rounds: Vec<Vec<Term>> = Vec::new();
    let mut guard = 0usize;

    while !remaining.is_empty() {
        guard += 1;
        check_deadline()?;
        if guard > opts.max_rounds {
            return Err(EngineError::LimitExceeded(format!(
                "Figure 1 procedure exceeded {} rounds",
                opts.max_rounds
            )));
        }

        // Step 1: partition by groundness of the head predicate name.
        let (ground_headed, variable_headed): (Vec<&Rule>, Vec<&Rule>) =
            remaining.iter().partition(|r| r.head.name().is_ground());

        // Step 2: conflicts with already-settled names, or nothing to settle.
        for rule in &ground_headed {
            let name = rule.head.name().clone();
            if settled.contains(&name) {
                return Ok(ModularOutcome::rejected(
                    format!(
                        "rule `{rule}` has head predicate `{name}` which was already settled \
                         (a variable head name was instantiated too late, cf. Example 6.5)"
                    ),
                    rounds,
                ));
            }
        }
        if ground_headed.is_empty() {
            return Ok(ModularOutcome::rejected(
                format!(
                    "no rules with ground head predicate names remain ({} variable-headed rules \
                     cannot be instantiated)",
                    variable_headed.len()
                ),
                rounds,
            ));
        }

        // Step 3: dependency graph over ground predicate names of R.
        let mut graph = DependencyGraph::new();
        for rule in &remaining {
            for atom in
                std::iter::once(&rule.head).chain(rule.body.iter().filter_map(|l| match l {
                    Literal::Pos(a) | Literal::Neg(a) => Some(a),
                    Literal::Aggregate(a) => Some(&a.pattern),
                    Literal::Builtin(_) => None,
                }))
            {
                if let Some(name) = ground_predicate_name(atom) {
                    graph.add_node(name);
                }
            }
        }
        for rule in &ground_headed {
            let head_name = rule.head.name().clone();
            for lit in &rule.body {
                let (atom, sign) = match lit {
                    Literal::Pos(a) => (a, EdgeSign::Positive),
                    Literal::Neg(a) => (a, EdgeSign::Negative),
                    Literal::Aggregate(a) => (&a.pattern, EdgeSign::Negative),
                    Literal::Builtin(_) => continue,
                };
                if let Some(body_name) = ground_predicate_name(atom) {
                    graph.add_edge(head_name.clone(), body_name, sign);
                }
            }
        }

        // Step 4: the lowest (sink) components.
        let lowest: BTreeSet<Term> = graph.sink_component_nodes().into_iter().collect();
        if lowest.is_empty() {
            return Ok(ModularOutcome::rejected(
                "dependency graph has no sink components".into(),
                rounds,
            ));
        }

        // Step 5: the rules defining the lowest components.
        let lowest_rules: Vec<Rule> = ground_headed
            .iter()
            .filter(|r| lowest.contains(r.head.name()))
            .map(|r| (*r).clone())
            .collect();
        for rule in &lowest_rules {
            if rule_has_variable_predicate_name(rule) {
                return Ok(ModularOutcome::rejected(
                    format!(
                        "rule `{rule}` in the lowest component contains a variable predicate name"
                    ),
                    rounds,
                ));
            }
        }
        let component_program = Program::from_rules(lowest_rules);
        let ground_component = match relevant_ground(&component_program, opts) {
            Ok(g) => g,
            Err(EngineError::Floundering(msg)) => {
                return Ok(ModularOutcome::rejected(
                    format!("lowest component cannot be instantiated bottom-up: {msg}"),
                    rounds,
                ))
            }
            Err(other) => return Err(other),
        };
        let ground_rules: Vec<Rule> = ground_component
            .rules
            .iter()
            .map(|gr| {
                Rule::new(
                    gr.head.clone(),
                    gr.pos
                        .iter()
                        .map(|a| Literal::Pos(a.clone()))
                        .chain(gr.neg.iter().map(|a| Literal::Neg(a.clone())))
                        .collect(),
                )
            })
            .collect();
        if !hilog_core::analysis::is_locally_stratified_ground(&ground_rules) {
            return Ok(ModularOutcome::rejected(
                format!(
                    "the reduction of the lowest component {:?} is not locally stratified",
                    lowest.iter().map(|t| t.to_string()).collect::<Vec<_>>()
                ),
                rounds,
            ));
        }
        let component_model = well_founded_eval(&ground_component, opts.eval_threads);
        debug_assert!(
            component_model.is_total(),
            "locally stratified component must have a total well-founded model"
        );

        // Step 6: settle, merge, reduce.
        rounds.push(lowest.iter().cloned().collect());
        settled.extend(lowest.iter().cloned());
        model.merge(&component_model);
        let survivors: Vec<Rule> = remaining
            .iter()
            .filter(|r| !(r.head.name().is_ground() && lowest.contains(r.head.name())))
            .cloned()
            .collect();
        remaining = match hilog_reduce(&survivors, &settled, &model, opts) {
            Ok(rules) => rules,
            Err(reason) => return Ok(ModularOutcome::rejected(reason, rounds)),
        };
    }
    Ok(ModularOutcome::accepted(model, rounds))
}

/// Modular stratification for normal programs (Definition 6.4).  By Lemma 6.2
/// this coincides with the HiLog procedure on normal programs, so the same
/// procedure is run after checking normality.
#[deprecated(
    note = "construct a `HiLogDb` (`crate::session`) and call `.check_modular()`, or share a \
            `DbSnapshot` (`crate::snapshot`) across threads; both cache the outcome"
)]
pub fn modularly_stratified_normal(
    program: &Program,
    opts: EvalOptions,
) -> Result<ModularOutcome, EngineError> {
    if !program.is_normal() {
        return Err(EngineError::Unsupported(
            "modularly_stratified_normal requires a normal program; use modularly_stratified_hilog"
                .into(),
        ));
    }
    one_shot_check(program, opts)
}

/// Shared body of the deprecated shims: a one-shot run over the snapshot
/// read path (the same route concurrent readers take).
fn one_shot_check(program: &Program, opts: EvalOptions) -> Result<ModularOutcome, EngineError> {
    let (_writer, handle) = crate::session::HiLogDb::builder()
        .program(program.clone())
        .options(opts)
        .semantics(crate::session::Semantics::ModularCheck)
        .build()
        .into_serving();
    Ok(handle.current().check_modular()?.as_ref().clone())
}

fn rule_has_variable_predicate_name(rule: &Rule) -> bool {
    let atom_has = |a: &Term| !a.name().is_ground();
    if atom_has(&rule.head) {
        return true;
    }
    rule.body.iter().any(|l| match l {
        Literal::Pos(a) | Literal::Neg(a) => atom_has(a),
        Literal::Aggregate(a) => atom_has(&a.pattern),
        Literal::Builtin(_) => false,
    })
}

/// The HiLog reduction of a set of rules modulo a (total) model for the
/// settled predicates (Definition 6.5).
///
/// Literals whose (ground) predicate name is settled are resolved against the
/// model: true positive literals instantiate the rule's variables, false ones
/// delete the instance; negative settled literals delete the literal (if
/// false in the model) or the instance (if true).  Literals over unsettled
/// predicates are kept.  A settled negative or aggregate literal that is
/// still non-ground after the positive settled literals have been joined
/// cannot be resolved; the reduction reports failure (the conservative
/// behaviour discussed in DESIGN.md).
pub fn hilog_reduce(
    rules: &[Rule],
    settled: &BTreeSet<Term>,
    model: &Model,
    opts: EvalOptions,
) -> Result<Vec<Rule>, String> {
    let mut out: Vec<Rule> = Vec::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for rule in rules {
        // Each partial instantiation carries its substitution and the
        // literals kept (not yet resolvable).
        let mut branches: Vec<(Substitution, Vec<Literal>)> =
            vec![(Substitution::new(), Vec::new())];
        for lit in &rule.body {
            let mut next: Vec<(Substitution, Vec<Literal>)> = Vec::new();
            for (theta, kept) in branches {
                let lit_inst = lit.apply(&theta);
                match &lit_inst {
                    Literal::Pos(atom)
                        if atom.name().is_ground() && settled.contains(atom.name()) =>
                    {
                        if atom.is_ground() {
                            if model.is_true(atom) {
                                next.push((theta, kept));
                            }
                            continue;
                        }
                        for candidate in model.true_atoms() {
                            let mut extended = theta.clone();
                            if match_with(atom, candidate, &mut extended) {
                                next.push((extended, kept.clone()));
                            }
                        }
                    }
                    Literal::Neg(atom)
                        if atom.name().is_ground() && settled.contains(atom.name()) =>
                    {
                        if !atom.is_ground() {
                            return Err(format!(
                                "cannot reduce the non-ground settled negative literal `not {atom}` \
                                 of rule `{rule}`"
                            ));
                        }
                        if !model.is_true(atom) {
                            next.push((theta, kept));
                        }
                    }
                    Literal::Builtin(b) => {
                        let mut extended = theta.clone();
                        if b.variables().iter().all(|v| extended.get(v).is_some())
                            || b.left.is_ground() && b.right.is_ground()
                        {
                            match b.apply(&theta).eval(&mut extended) {
                                Ok(true) => next.push((extended, kept)),
                                Ok(false) => {}
                                Err(_) => {
                                    // Not yet evaluable; defer.
                                    let mut kept = kept;
                                    kept.push(lit.clone());
                                    next.push((theta, kept));
                                }
                            }
                        } else {
                            let mut kept = kept;
                            kept.push(lit.clone());
                            next.push((theta, kept));
                        }
                    }
                    Literal::Aggregate(agg)
                        if agg.pattern.name().is_ground()
                            && settled.contains(agg.pattern.name()) =>
                    {
                        // Evaluate the aggregate over the settled model.  The
                        // grouping variables are the pattern variables that
                        // also occur outside the aggregate literal (in the
                        // head or another body literal) — "the sum is grouped
                        // by Mach, X and Y" in the paper's example; variables
                        // local to the pattern are aggregated over.
                        let pattern = &agg.pattern;
                        let mut groups: std::collections::BTreeMap<
                            Vec<(hilog_core::term::Var, Term)>,
                            Vec<i64>,
                        > = std::collections::BTreeMap::new();
                        let mut outside_vars: Vec<hilog_core::term::Var> = rule.head.variables();
                        for other in rule.body.iter().filter(|l| *l != lit) {
                            outside_vars.extend(other.variables());
                        }
                        let value_vars = agg.value.variables();
                        let group_vars: Vec<hilog_core::term::Var> = pattern
                            .variables()
                            .into_iter()
                            .filter(|v| outside_vars.contains(v) && !value_vars.contains(v))
                            .collect();
                        for candidate in model.true_atoms() {
                            let mut m = Substitution::new();
                            if match_with(pattern, candidate, &mut m) {
                                let key: Vec<(hilog_core::term::Var, Term)> = group_vars
                                    .iter()
                                    .map(|v| (v.clone(), m.apply(&Term::Var(v.clone()))))
                                    .collect();
                                if let Term::Int(i) = m.apply(&agg.value) {
                                    groups.entry(key).or_default().push(i);
                                }
                            }
                        }
                        for (key, values) in groups {
                            let result = apply_aggregate(agg.func, &values);
                            let mut extended = theta.clone();
                            let mut ok = true;
                            for (v, t) in &key {
                                if !hilog_core::unify::unify_with(
                                    &Term::Var(v.clone()),
                                    t,
                                    &mut extended,
                                ) {
                                    ok = false;
                                    break;
                                }
                            }
                            if ok
                                && hilog_core::unify::unify_with(
                                    &agg.result,
                                    &Term::Int(result),
                                    &mut extended,
                                )
                            {
                                next.push((extended, kept.clone()));
                            }
                        }
                    }
                    _ => {
                        let mut kept = kept;
                        kept.push(lit.clone());
                        next.push((theta, kept));
                    }
                }
                if next.len() > opts.max_atoms {
                    return Err(format!(
                        "HiLog reduction of rule `{rule}` exceeded {} partial instantiations",
                        opts.max_atoms
                    ));
                }
            }
            branches = next;
        }
        for (theta, kept) in branches {
            let head = theta.apply(&rule.head);
            let body: Vec<Literal> = kept.iter().map(|l| l.apply(&theta)).collect();
            let reduced = Rule::new(head, body);
            let key = reduced.to_string();
            if seen.insert(key) {
                out.push(reduced);
            }
        }
    }
    Ok(out)
}

fn apply_aggregate(func: AggregateFunc, values: &[i64]) -> i64 {
    match func {
        AggregateFunc::Sum => values.iter().sum(),
        AggregateFunc::Count => values.len() as i64,
        AggregateFunc::Min => values.iter().copied().min().unwrap_or(0),
        AggregateFunc::Max => values.iter().copied().max().unwrap_or(0),
    }
}

#[cfg(test)]
// The deprecated shims must keep working; these tests exercise them on
// purpose.
#[allow(deprecated)]
mod tests {
    use super::*;
    use hilog_core::interpretation::Truth;
    use hilog_syntax::{parse_program, parse_term};

    fn run(text: &str) -> ModularOutcome {
        modularly_stratified_hilog(&parse_program(text).unwrap(), EvalOptions::default()).unwrap()
    }

    fn t(s: &str) -> Term {
        parse_term(s).unwrap()
    }

    #[test]
    fn example_6_1_acyclic_game_is_modularly_stratified() {
        let out = run("winning(X) :- move(X, Y), not winning(Y).\n\
                       move(a, b). move(b, c). move(a, c).");
        assert!(out.modularly_stratified, "{:?}", out.reason);
        let m = out.model.unwrap();
        assert!(m.is_total());
        assert_eq!(m.truth(&t("winning(b)")), Truth::True);
        assert_eq!(m.truth(&t("winning(a)")), Truth::True);
        assert_eq!(m.truth(&t("winning(c)")), Truth::False);
        // Two rounds: the move component, then the winning component.
        assert_eq!(out.rounds.len(), 2);
    }

    #[test]
    fn cyclic_game_is_rejected() {
        let out = run("winning(X) :- move(X, Y), not winning(Y).\n\
                       move(a, b). move(b, a).");
        assert!(!out.modularly_stratified);
        assert!(out.reason.unwrap().contains("locally stratified"));
    }

    #[test]
    fn example_6_3_hilog_game_is_modularly_stratified() {
        let out = run("winning(M)(X) :- game(M), M(X, Y), not winning(M)(Y).\n\
                       game(move1). game(move2).\n\
                       move1(a, b). move1(b, c).\n\
                       move2(x, y). move2(y, z).");
        assert!(out.modularly_stratified, "{:?}", out.reason);
        let m = out.model.unwrap();
        assert_eq!(m.truth(&t("winning(move1)(a)")), Truth::False);
        assert_eq!(m.truth(&t("winning(move1)(b)")), Truth::True);
        assert_eq!(m.truth(&t("winning(move2)(x)")), Truth::False);
        assert_eq!(m.truth(&t("winning(move2)(y)")), Truth::True);
        // The model coincides with the HiLog well-founded model (Theorem 6.1).
        let wfm = crate::wfs::well_founded_model(
            &parse_program(
                "winning(M)(X) :- game(M), M(X, Y), not winning(M)(Y).\n\
                 game(move1). game(move2).\n\
                 move1(a, b). move1(b, c).\n\
                 move2(x, y). move2(y, z).",
            )
            .unwrap(),
            EvalOptions::default(),
        )
        .unwrap();
        for atom in wfm.base() {
            assert_eq!(m.truth(atom), wfm.truth(atom), "{atom}");
        }
    }

    #[test]
    fn example_6_3_hilog_game_with_cyclic_member_is_rejected() {
        let out = run("winning(M)(X) :- game(M), M(X, Y), not winning(M)(Y).\n\
                       game(move1). move1(a, b). move1(b, a).");
        assert!(!out.modularly_stratified);
    }

    #[test]
    fn example_6_4_two_valued_but_not_modularly_stratified() {
        let out = run("p(X) :- t(X, Y, Z, P), not p(Y), not p(Z).\n\
                       t(a, b, a, p).\n\
                       t(c, a, b, p).\n\
                       p(b) :- t(X, Y, b, P).");
        assert!(!out.modularly_stratified);
        assert!(out.reason.unwrap().contains("locally stratified"));
    }

    #[test]
    fn example_6_5_late_instantiation_to_settled_name_is_rejected() {
        // aux depends negatively on winning(move1); the variable-headed rule
        // X :- aux(X) therefore only becomes instantiable after move1 has
        // been settled (as empty), and the procedure rejects the program.
        let out = run("winning(M)(X) :- game(M), M(X, Y), not winning(M)(Y).\n\
                       game(move1). move1(a, b).\n\
                       X :- aux(X).\n\
                       aux(move1(b, c)) :- not winning(move1)(a).");
        assert!(!out.modularly_stratified);
        assert!(out.reason.unwrap().contains("already settled"));
    }

    #[test]
    fn benign_variable_head_is_accepted() {
        // The variable-headed rule instantiates early (q is settled in the
        // first round), so the program is modularly stratified.
        let out = run("winning(M)(X) :- game(M), M(X, Y), not winning(M)(Y).\n\
                       X :- q(X).\n\
                       game(move1). q(move1(a, b)). q(move1(b, c)).");
        assert!(out.modularly_stratified, "{:?}", out.reason);
        let m = out.model.unwrap();
        assert_eq!(m.truth(&t("move1(a, b)")), Truth::True);
        assert_eq!(m.truth(&t("winning(move1)(b)")), Truth::True);
        assert_eq!(m.truth(&t("winning(move1)(a)")), Truth::False);
    }

    #[test]
    fn stratified_normal_program_is_modularly_stratified() {
        let out = modularly_stratified_normal(
            &parse_program(
                "p(X) :- q(X), not r(X).\n\
                 q(a). q(b). r(b).",
            )
            .unwrap(),
            EvalOptions::default(),
        )
        .unwrap();
        assert!(out.modularly_stratified);
        let m = out.model.unwrap();
        assert_eq!(m.truth(&t("p(a)")), Truth::True);
        assert_eq!(m.truth(&t("p(b)")), Truth::False);
    }

    #[test]
    fn normal_entry_point_rejects_hilog_programs() {
        let p = parse_program("winning(M)(X) :- game(M), M(X, Y), not winning(M)(Y). game(m).")
            .unwrap();
        assert!(matches!(
            modularly_stratified_normal(&p, EvalOptions::default()),
            Err(EngineError::Unsupported(_))
        ));
    }

    #[test]
    fn lemma_6_2_agreement_on_normal_programs() {
        // For normal programs the procedure accepts exactly when the
        // conventional component-by-component definition does; spot-check a
        // modularly stratified (win-move, acyclic) and a non-modularly
        // stratified (win-move, cyclic) instance, comparing against the
        // two-valuedness of the well-founded model as a sanity bound.
        let acyclic = "winning(X) :- move(X, Y), not winning(Y). move(a, b). move(b, c).";
        let cyclic = "winning(X) :- move(X, Y), not winning(Y). move(a, b). move(b, a).";
        assert!(run(acyclic).modularly_stratified);
        assert!(!run(cyclic).modularly_stratified);
    }

    #[test]
    fn parts_explosion_aggregate_component_is_reducible() {
        // A one-level parts explosion where the aggregate's pattern relation
        // is settled before the aggregate rule: reduction evaluates the sum.
        let out = run("in(bike, wheel, 2).\n\
                       in(bike, frame, 1).\n\
                       total(X, N) :- item(X), N = sum(P, in(X, Y, P)).\n\
                       item(bike).");
        assert!(out.modularly_stratified, "{:?}", out.reason);
        let m = out.model.unwrap();
        assert_eq!(m.truth(&t("total(bike, 3)")), Truth::True);
    }

    #[test]
    fn settled_rounds_are_reported_in_order() {
        let out = run("a(X) :- b(X), not c(X).\n\
                       c(X) :- d(X).\n\
                       b(1). b(2). d(2).");
        assert!(out.modularly_stratified);
        // b and d are settled before c, which is settled before a.
        let flat: Vec<String> = out.rounds.iter().flatten().map(|t| t.to_string()).collect();
        let pos = |name: &str| flat.iter().position(|x| x == name).unwrap();
        assert!(pos("b") < pos("a"));
        assert!(pos("d") <= pos("c"));
        assert!(pos("c") < pos("a"));
    }
}
