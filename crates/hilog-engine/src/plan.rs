//! Explainable query plans for the [`HiLogDb`](crate::session::HiLogDb)
//! session facade.
//!
//! Section 6.1 of the paper motivates two complementary evaluation routes
//! for a modularly stratified HiLog program: the magic-sets / query-directed
//! route, which only visits atoms *relevant* to a bound query, and full
//! bottom-up evaluation of the (relevant) instantiation, which answers any
//! query at the price of materialising the whole model.  A [`QueryPlan`]
//! records which route the session picks for a query and why, so callers can
//! inspect (and log or serialise) the decision before running it:
//!
//! ```
//! use hilog_engine::plan::{query_is_bound, PlanStrategy};
//! use hilog_engine::session::HiLogDb;
//! use hilog_syntax::{parse_program, parse_query};
//!
//! let program = parse_program(
//!     "winning(X) :- move(X, Y), not winning(Y). move(a, b). move(b, c).",
//! )
//! .unwrap();
//! let db = HiLogDb::new(program);
//! // A bound query (ground predicate name) gets the magic-sets route...
//! let bound = parse_query("?- winning(a).").unwrap();
//! assert!(query_is_bound(&bound));
//! assert_eq!(db.explain(&bound).strategy, PlanStrategy::MagicSets);
//! // ...an unbound one (variable predicate name) falls back to the model.
//! let open = parse_query("?- P(a, X).").unwrap();
//! assert_eq!(db.explain(&open).strategy, PlanStrategy::FullModel);
//! ```

use crate::session::Semantics;
use hilog_core::literal::Literal;
use hilog_core::rule::Query;
use serde::Serialize;
use std::fmt;

/// The evaluation route a [`QueryPlan`] commits to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanStrategy {
    /// Query-directed (magic-sets style) tabled evaluation: only subgoals
    /// relevant to the query are touched, and completed subgoal tables are
    /// kept by the session for later queries (Section 6.1).
    MagicSets,
    /// Evaluate against the full model of the program, which the session
    /// computes once from the cached relevant instantiation and reuses for
    /// every subsequent full-model query.
    FullModel,
}

impl fmt::Display for PlanStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanStrategy::MagicSets => write!(f, "magic-sets"),
            PlanStrategy::FullModel => write!(f, "full-model"),
        }
    }
}

impl Serialize for PlanStrategy {
    fn write_json(&self, out: &mut String) {
        serde::write_json_string(out, &self.to_string());
    }
}

/// An explainable query plan, as returned by
/// [`HiLogDb::explain`](crate::session::HiLogDb::explain).
///
/// The plan is purely descriptive: building one performs no evaluation.
/// [`HiLogDb::query`](crate::session::HiLogDb::query) attaches the plan it
/// executed to every [`QueryResult`](crate::session::QueryResult), and the
/// whole struct serialises to JSON via the workspace `serde` stub.
#[derive(Debug, Clone, Serialize)]
pub struct QueryPlan {
    /// The chosen evaluation route.
    pub strategy: PlanStrategy,
    /// The semantics the session answers under.
    pub semantics: Semantics,
    /// Rendering of the planned query.
    pub query: String,
    /// Binding pattern of the first positive literal, one character per
    /// argument: `b` for a ground (bound) argument, `f` for a free one —
    /// the classical magic-sets adornment.  Empty for argument-less atoms
    /// and for queries without a leading positive literal.
    pub adornment: String,
    /// Whether a cached full model exists that a full-model route could
    /// answer from without re-grounding.
    pub cached_model: bool,
    /// Whether the cached model has pending fact-level deltas: a full-model
    /// route will *patch* it (semi-naive re-evaluation of the affected
    /// components) before answering, rather than rebuild it.  `false`
    /// whenever `cached_model` is `false`.
    pub stale_model: bool,
    /// Number of completed subgoal tables the session holds; a magic-sets
    /// route reuses any of them that the query touches.
    pub cached_subqueries: usize,
    /// Number of subgoal tables the mutations since the last query *patched
    /// in place* (exact answer-level edits of fact-backed tables, via the
    /// recorded instance-level dependency graph).
    pub patched_subqueries: usize,
    /// Number of subgoal tables the mutations since the last query dropped
    /// (the instance-level reverse dependency closure of the mutated atoms;
    /// tables outside it survive untouched).
    pub dropped_subqueries: usize,
    /// Human-readable reason for the routing decision.
    pub reason: String,
}

impl QueryPlan {
    /// Returns `true` if the plan uses query-directed (magic-sets style)
    /// evaluation.
    pub fn is_magic_sets(&self) -> bool {
        self.strategy == PlanStrategy::MagicSets
    }

    /// Returns `true` if the plan evaluates against the full model.
    pub fn is_full_model(&self) -> bool {
        self.strategy == PlanStrategy::FullModel
    }
}

impl fmt::Display for QueryPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "plan for {}", self.query)?;
        writeln!(f, "  strategy:  {} ({})", self.strategy, self.semantics)?;
        if !self.adornment.is_empty() {
            writeln!(f, "  adornment: {}", self.adornment)?;
        }
        writeln!(
            f,
            "  caches:    model {}, {} complete subgoal tables",
            if !self.cached_model {
                "cold"
            } else if self.stale_model {
                "warm (stale, will patch)"
            } else {
                "warm"
            },
            self.cached_subqueries
        )?;
        if self.patched_subqueries > 0 || self.dropped_subqueries > 0 {
            writeln!(
                f,
                "  tables:    {} patched in place, {} dropped since the last query",
                self.patched_subqueries, self.dropped_subqueries
            )?;
        }
        write!(f, "  because:   {}", self.reason)
    }
}

/// Returns `true` if the query is *bound* in the sense the session's planner
/// uses: its first literal is a positive atom whose predicate name is ground,
/// so query-directed evaluation can seed a subgoal from it (the left-to-right
/// sideways information passing of Section 6.1).
pub fn query_is_bound(query: &Query) -> bool {
    match query.literals.first() {
        Some(Literal::Pos(atom)) => atom.name().is_ground(),
        _ => false,
    }
}

/// The magic-sets adornment of the query's first positive literal: `b` per
/// ground argument, `f` per open one.
pub fn adornment(query: &Query) -> String {
    match query.literals.first() {
        Some(Literal::Pos(atom)) => atom
            .args()
            .iter()
            .map(|arg| if arg.is_ground() { 'b' } else { 'f' })
            .collect(),
        _ => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hilog_syntax::parse_query;

    #[test]
    fn boundness_follows_the_first_literal() {
        assert!(query_is_bound(&parse_query("?- winning(a).").unwrap()));
        assert!(query_is_bound(&parse_query("?- winning(X).").unwrap()));
        assert!(query_is_bound(
            &parse_query("?- winning(move1)(X).").unwrap()
        ));
        // Variable predicate name: unbound.
        assert!(!query_is_bound(&parse_query("?- P(a, b).").unwrap()));
        // Leading negative literal: unbound (would flounder top-down).
        assert!(!query_is_bound(&parse_query("?- not winning(a).").unwrap()));
    }

    #[test]
    fn adornment_marks_bound_and_free_arguments() {
        assert_eq!(adornment(&parse_query("?- tc(a, Y).").unwrap()), "bf");
        assert_eq!(
            adornment(&parse_query("?- winning(move1)(X).").unwrap()),
            "f"
        );
        assert_eq!(adornment(&parse_query("?- p.").unwrap()), "");
    }
}
