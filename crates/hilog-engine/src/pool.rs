//! A small scoped-thread work pool for parallel evaluation.
//!
//! The vendored-stub build environment has no rayon, so the engine brings
//! its own fork/join primitive: [`run_tasks`] runs a batch of independent
//! closures on up to `threads` scoped worker threads and returns their
//! results **in task order**, which is what makes the SCC-wave scheduler in
//! [`crate::wfs`] and the partitioned semi-naive rounds in [`crate::horn`]
//! deterministic — workers race over the queue, but every result lands in
//! its task's slot and is merged in a fixed order afterwards.
//!
//! The pool is deliberately batch-shaped (spawn, drain, join) rather than a
//! long-lived executor: evaluation work arrives in waves with a barrier
//! between them, and scoped threads let tasks borrow the shared read-only
//! evaluation state (`IndexedProgram`, `AtomStore`, the settled assignment)
//! without `Arc` plumbing.  `hilog-server` uses the same primitive for its
//! request workers (see `hilog-server/src/threadpool.rs`).
//!
//! The module also owns the process-wide observability counters surfaced as
//! `EvalStats.parallel_{waves,partitioned_rounds,tasks}`.  They are global
//! atomics rather than thread-locals because the work they count happens on
//! pool workers, not on the thread that later reads the counters.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// SCC waves dispatched to the pool (by the wave-parallel well-founded
/// fixpoint and its incremental patch variant).
static PARALLEL_WAVES: AtomicUsize = AtomicUsize::new(0);
/// Semi-naive rounds evaluated as hash-partitioned concurrent joins.
static PARALLEL_PARTITIONED_ROUNDS: AtomicUsize = AtomicUsize::new(0);
/// Tasks executed on pool worker threads (serial fallbacks don't count).
static PARALLEL_TASKS: AtomicUsize = AtomicUsize::new(0);

/// Snapshot of the process-wide cumulative `(parallel_waves,
/// parallel_partitioned_rounds, parallel_tasks)` counters.  The session and
/// snapshot facades subtract snapshots taken around a query to report
/// per-query numbers in `EvalStats`; benchmarks read the deltas directly.
///
/// Unlike the thread-local join-index probe counters, these are process
/// totals: concurrent sessions evaluating at the same time attribute each
/// other's pool work to their own queries.  They are observability, not part
/// of the answer, and are excluded from determinism comparisons.
pub fn parallel_counters() -> (usize, usize, usize) {
    (
        PARALLEL_WAVES.load(Ordering::Relaxed),
        PARALLEL_PARTITIONED_ROUNDS.load(Ordering::Relaxed),
        PARALLEL_TASKS.load(Ordering::Relaxed),
    )
}

/// Records one SCC wave scheduled onto the pool.
pub(crate) fn note_wave() {
    PARALLEL_WAVES.fetch_add(1, Ordering::Relaxed);
}

/// Records one semi-naive round evaluated as partitioned concurrent joins.
pub(crate) fn note_partitioned_round() {
    PARALLEL_PARTITIONED_ROUNDS.fetch_add(1, Ordering::Relaxed);
}

/// The default `eval_threads` for [`crate::horn::EvalOptions`]: the
/// `HILOG_EVAL_THREADS` environment variable when set (clamped to at least
/// 1, read once per process — this is how CI runs the whole suite with a
/// parallel default), otherwise the machine's available parallelism.
pub fn default_eval_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        if let Some(n) = std::env::var("HILOG_EVAL_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            return n.max(1);
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Runs every task, on up to `threads` scoped worker threads, and returns
/// the results in task order.
///
/// With `threads <= 1` or fewer than two tasks the batch runs inline on the
/// calling thread — no threads are spawned, no counters move, and the call
/// is exactly a `map`.  Otherwise `min(threads, tasks)` workers race over a
/// shared queue; each finished task's result is stored in its own slot, so
/// the returned order never depends on the schedule.  A panicking task
/// propagates through the scope and panics the caller.
pub fn run_tasks<T, F>(threads: usize, tasks: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    if threads <= 1 || tasks.len() <= 1 {
        return tasks.into_iter().map(|task| task()).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = tasks.iter().map(|_| Mutex::new(None)).collect();
    let queue: Vec<(usize, F)> = tasks.into_iter().enumerate().collect();
    let queue = Mutex::new(queue.into_iter());
    let workers = threads.min(slots.len());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // Hold the queue lock only for the dequeue, not the task.
                let next = queue.lock().unwrap_or_else(PoisonError::into_inner).next();
                let Some((index, task)) = next else { break };
                let out = task();
                PARALLEL_TASKS.fetch_add(1, Ordering::Relaxed);
                *slots[index].lock().unwrap_or_else(PoisonError::into_inner) = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("every queued task ran to completion")
        })
        .collect()
}

/// A worker pool whose threads persist across many small batches.
///
/// [`run_tasks`] spawns fresh threads per call, which is fine for a handful
/// of chunky tasks but ruinous for the SCC-wave scheduler: a deep program
/// produces dozens of waves of sub-microsecond component evaluations, and a
/// thread spawn costs more than an entire wave.  [`with_wave_pool`] spawns
/// the workers once per evaluation; each [`WavePool::run_batch`] then costs
/// one mutex round-trip per job, and the publishing thread drains the queue
/// alongside the workers, so a single-job wave usually runs inline without
/// waking anyone.
///
/// Jobs return nothing — they communicate through state they capture (the
/// wave evaluator writes per-atom cells owned by exactly one job, so batch
/// results are schedule-independent).  `run_batch` returns only when every
/// published job has finished; the mutex hand-off makes those writes
/// visible to the next batch's jobs.
pub struct WavePool<'scope> {
    state: Mutex<WaveState<'scope>>,
    /// Signalled when jobs are published (workers wait on this).
    work_ready: Condvar,
    /// Signalled when the last pending job of a batch finishes (the
    /// publisher waits on this).
    batch_done: Condvar,
}

/// A boxed batch job for [`WavePool::run_batch`]; communicates through
/// captured state rather than a return value.
pub type Job<'scope> = Box<dyn FnOnce() + Send + 'scope>;

struct WaveState<'scope> {
    queue: VecDeque<Job<'scope>>,
    /// Jobs published but not yet finished (queued + running).
    pending: usize,
    shutdown: bool,
}

fn lock_state<'a, 'scope>(pool: &'a WavePool<'scope>) -> MutexGuard<'a, WaveState<'scope>> {
    pool.state.lock().unwrap_or_else(PoisonError::into_inner)
}

impl<'scope> WavePool<'scope> {
    fn new() -> Self {
        WavePool {
            state: Mutex::new(WaveState {
                queue: VecDeque::new(),
                pending: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            batch_done: Condvar::new(),
        }
    }

    /// Worker loop: take a job or sleep until one is published; exit on
    /// shutdown.  A guard decrements `pending` even if the job panics, so
    /// the publisher is never left waiting on a batch that cannot finish.
    fn work(&self) {
        loop {
            let job = {
                let mut state = lock_state(self);
                loop {
                    if let Some(job) = state.queue.pop_front() {
                        break job;
                    }
                    if state.shutdown {
                        return;
                    }
                    state = self
                        .work_ready
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            self.finish_one(job);
        }
    }

    /// Runs one dequeued job and retires it from the pending count.
    fn finish_one(&self, job: Job<'scope>) {
        struct Retire<'a, 'scope>(&'a WavePool<'scope>);
        impl Drop for Retire<'_, '_> {
            fn drop(&mut self) {
                let mut state = lock_state(self.0);
                state.pending -= 1;
                if state.pending == 0 {
                    self.0.batch_done.notify_all();
                }
            }
        }
        let retire = Retire(self);
        job();
        PARALLEL_TASKS.fetch_add(1, Ordering::Relaxed);
        drop(retire);
    }

    /// Publishes a batch of jobs, helps drain the queue on the calling
    /// thread, and returns when every job of the batch has finished.
    ///
    /// `wake_workers: false` keeps the workers asleep so the whole batch
    /// runs inline on the calling thread — the right call when the batch is
    /// smaller than the cost of a context switch.  The hint changes only
    /// *where* jobs run, never their results, so callers may derive it from
    /// workload shape without losing schedule independence.
    pub fn run_batch(&self, jobs: Vec<Job<'scope>>, wake_workers: bool) {
        if jobs.is_empty() {
            return;
        }
        let multiple = jobs.len() > 1;
        {
            let mut state = lock_state(self);
            state.pending += jobs.len();
            state.queue.extend(jobs);
        }
        if wake_workers && multiple {
            self.work_ready.notify_all();
        }
        // Help: the publisher drains alongside the workers, so a
        // single-job batch usually runs right here with no context switch.
        loop {
            let job = lock_state(self).queue.pop_front();
            match job {
                Some(job) => self.finish_one(job),
                None => break,
            }
        }
        let mut state = lock_state(self);
        while state.pending > 0 {
            state = self
                .batch_done
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Runs `body` with a [`WavePool`] of `threads - 1` persistent workers (the
/// publishing thread itself is the remaining one).  With `threads <= 1` no
/// worker is spawned and every batch drains inline on the calling thread —
/// still through the pool API, still counting tasks.
///
/// `'env` is the lifetime of the evaluation state the jobs borrow; it
/// outlives the pool, so batches can capture references to it freely.
pub fn with_wave_pool<'env, R>(threads: usize, body: impl FnOnce(&WavePool<'env>) -> R) -> R {
    // Declared before the scope so the workers' borrow of it outlives them.
    let pool: WavePool<'env> = WavePool::new();
    // Wakes the workers for shutdown even if `body` panics — otherwise the
    // scope's implicit join would wait on sleeping workers forever.
    struct Shutdown<'a, 'env>(&'a WavePool<'env>);
    impl Drop for Shutdown<'_, '_> {
        fn drop(&mut self) {
            lock_state(self.0).shutdown = true;
            self.0.work_ready.notify_all();
        }
    }
    std::thread::scope(|scope| {
        let shutdown = Shutdown(&pool);
        for _ in 1..threads.max(1) {
            scope.spawn(|| pool.work());
        }
        let out = body(&pool);
        drop(shutdown);
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_task_order() {
        let tasks: Vec<_> = (0..64).map(|i| move || i * 2).collect();
        let out = run_tasks(4, tasks);
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_fallback_does_not_touch_the_task_counter() {
        let (_, _, before) = parallel_counters();
        assert_eq!(run_tasks(1, vec![|| 1, || 2, || 3]), vec![1, 2, 3]);
        assert_eq!(run_tasks(8, vec![|| 42]), vec![42]);
        let (_, _, after) = parallel_counters();
        assert_eq!(after, before, "inline execution must not count as pooled");
    }

    #[test]
    fn pooled_execution_counts_tasks() {
        let (_, _, before) = parallel_counters();
        let tasks: Vec<_> = (0..10).map(|i| move || i).collect();
        assert_eq!(run_tasks(3, tasks), (0..10).collect::<Vec<_>>());
        let (_, _, after) = parallel_counters();
        assert!(after >= before + 10);
    }

    #[test]
    fn tasks_can_borrow_shared_state() {
        let data: Vec<usize> = (0..100).collect();
        let tasks: Vec<_> = (0..4)
            .map(|chunk| {
                let data = &data;
                move || data.iter().skip(chunk * 25).take(25).sum::<usize>()
            })
            .collect();
        let partials = run_tasks(2, tasks);
        assert_eq!(partials.iter().sum::<usize>(), 4950);
    }

    #[test]
    fn default_eval_threads_is_at_least_one() {
        assert!(default_eval_threads() >= 1);
    }
}
