//! The `HiLogDb` session facade: one stateful entry point over the engine.
//!
//! Every other entry point in this crate is a free function that takes a
//! [`Program`] and re-derives grounding and dependency information from
//! scratch.  A [`HiLogDb`] instead *owns* its program and amortises that work
//! across queries: the relevant instantiation, the full model, the
//! predicate-dependency analysis and the completed subgoal tables of the
//! query-directed evaluator are all cached, and
//! [`assert_fact`](HiLogDb::assert_fact) / [`retract_fact`](HiLogDb::retract_fact)
//! invalidate only the caches that the mutated predicate can actually reach.
//! Queries are routed through an explainable [`QueryPlan`]: bound queries use
//! magic-sets style tabled evaluation (Section 6.1 of the paper), unbound
//! ones fall back to the cached full model.
//!
//! ```
//! use hilog_engine::session::HiLogDb;
//! use hilog_syntax::{parse_program, parse_query};
//!
//! let program = parse_program(
//!     "winning(X) :- move(X, Y), not winning(Y). move(a, b). move(b, c).",
//! )
//! .unwrap();
//! let mut db = HiLogDb::builder().program(program).build();
//! let query = parse_query("?- winning(X).").unwrap();
//! let first = db.query(&query).unwrap();
//! assert_eq!(first.answers.len(), 1); // only b wins
//! // The second run answers from the session's subgoal tables.
//! let second = db.query(&query).unwrap();
//! assert_eq!(second.stats.rule_applications, 0);
//! assert!(second.stats.cached_subqueries > 0);
//! ```

use crate::error::EngineError;
use crate::ground::{GroundProgram, GroundRule};
use crate::grounder::relevant_ground;
use crate::horn::EvalOptions;
use crate::magic_eval::{EvalStats, QueryEvaluator, Table, QUERY_HEAD};
use crate::modular::{figure1_procedure, ModularOutcome};
use crate::plan::{adornment, query_is_bound, PlanStrategy, QueryPlan};
use crate::stable::{stable_models_of_ground, StableOptions};
use crate::wfs::well_founded_of_ground;
use hilog_core::interpretation::{Model, Truth};
use hilog_core::literal::Literal;
use hilog_core::program::Program;
use hilog_core::rule::{Query, Rule};
use hilog_core::subst::Substitution;
use hilog_core::term::{Term, Var};
use hilog_core::unify::match_with;
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// Which semantics a [`HiLogDb`] answers queries under.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Semantics {
    /// The (three-valued) well-founded semantics of Sections 3.1 / 4 — the
    /// default, and the only semantics with a magic-sets route.
    #[default]
    WellFounded,
    /// Stable-model consensus truth (Definition 3.7): an atom is true if it
    /// is true in every stable model, false if false in every stable model,
    /// and undefined otherwise.  Queries fail with
    /// [`EngineError::NoStableModels`] when no stable model exists.
    Stable,
    /// The Figure 1 modular-stratification procedure: queries are answered
    /// from the procedure's accumulated total model, and fail with
    /// [`EngineError::NotModularlyStratified`] when the program is rejected.
    ModularCheck,
}

impl fmt::Display for Semantics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Semantics::WellFounded => write!(f, "well-founded"),
            Semantics::Stable => write!(f, "stable"),
            Semantics::ModularCheck => write!(f, "modular-check"),
        }
    }
}

impl Serialize for Semantics {
    fn write_json(&self, out: &mut String) {
        serde::write_json_string(out, &self.to_string());
    }
}

/// One answer to a query: bindings for the query's free variables together
/// with the three-valued truth of that instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryAnswer {
    /// Bindings in first-occurrence order of the query's variables.
    pub bindings: Vec<(Var, Term)>,
    /// Truth of this instance.  Magic-sets plans only report true instances;
    /// full-model plans also surface undefined ones.
    pub truth: Truth,
}

impl QueryAnswer {
    /// The binding of the named variable, if any.
    pub fn binding(&self, name: &str) -> Option<&Term> {
        self.bindings
            .iter()
            .find(|(v, _)| v.name() == name && v.generation() == 0)
            .map(|(_, t)| t)
    }
}

impl fmt::Display for QueryAnswer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (v, t)) in self.bindings.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} = {}", v.name(), t)?;
        }
        write!(f, "}} ({})", self.truth)
    }
}

impl Serialize for QueryAnswer {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        out.push_str("\"bindings\":{");
        for (i, (v, t)) in self.bindings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            serde::write_json_string(out, v.name());
            out.push(':');
            serde::write_json_string(out, &t.to_string());
        }
        out.push('}');
        out.push(',');
        serde::write_json_string(out, "truth");
        out.push(':');
        serde::write_json_string(out, &self.truth.to_string());
        out.push('}');
    }
}

/// The unified result of [`HiLogDb::query`]: answers, an overall truth
/// value, the statistics of the evaluation and the plan that produced it.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// One entry per derived instance of the query.
    pub answers: Vec<QueryAnswer>,
    /// Overall truth: `True` if some instance is true, else `Undefined` if
    /// some instance is undefined, else `False`.
    pub truth: Truth,
    /// Statistics of this evaluation (not cumulative across queries).
    pub stats: EvalStats,
    /// The plan that was executed.
    pub plan: QueryPlan,
    /// When the magic-sets route could not settle the query (it detected a
    /// negative dependency cycle, or floundered) the session transparently
    /// re-answers from the full model; the original error is recorded here.
    pub fallback: Option<String>,
}

impl QueryResult {
    /// Returns `true` if the overall truth is `True`.
    pub fn is_true(&self) -> bool {
        self.truth == Truth::True
    }
}

impl Serialize for QueryResult {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        serde::write_field(out, "answers", &self.answers, true);
        serde::write_field(out, "truth", &self.truth.to_string(), false);
        serde::write_field(out, "stats", &self.stats, false);
        serde::write_field(out, "plan", &self.plan, false);
        serde::write_field(out, "fallback", &self.fallback, false);
        out.push('}');
    }
}

/// Builder for [`HiLogDb`]; obtained from [`HiLogDb::builder`].
#[derive(Debug, Clone, Default)]
pub struct HiLogDbBuilder {
    program: Program,
    opts: EvalOptions,
    stable_opts: StableOptions,
    semantics: Semantics,
}

impl HiLogDbBuilder {
    /// Uses `program` as the initial rule set (replacing any previous one).
    pub fn program(mut self, program: Program) -> Self {
        self.program = program;
        self
    }

    /// Appends a single rule (or fact) to the initial program.
    pub fn rule(mut self, rule: Rule) -> Self {
        self.program.push(rule);
        self
    }

    /// Sets the evaluation limits used by every route — the session's single
    /// stored copy of [`EvalOptions`].
    pub fn options(mut self, opts: EvalOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Sets the stable-model search limits (only used under
    /// [`Semantics::Stable`]).
    pub fn stable_options(mut self, opts: StableOptions) -> Self {
        self.stable_opts = opts;
        self
    }

    /// Chooses the semantics queries are answered under.
    pub fn semantics(mut self, semantics: Semantics) -> Self {
        self.semantics = semantics;
        self
    }

    /// Builds the session.  No evaluation happens yet; every cache is filled
    /// lazily by the first query that needs it.
    pub fn build(self) -> HiLogDb {
        HiLogDb {
            program: self.program,
            opts: self.opts,
            stable_opts: self.stable_opts,
            semantics: self.semantics,
            analysis: None,
            ground: None,
            model: None,
            stable: None,
            modular: None,
            tables: HashMap::new(),
            scratch: None,
            groundings: 0,
        }
    }
}

/// A stateful HiLog database session.
///
/// Owns a [`Program`] plus every cache the engine can amortise across
/// queries; see the [module documentation](crate::session) for the overall
/// shape and a usage example.
#[derive(Debug)]
pub struct HiLogDb {
    program: Program,
    opts: EvalOptions,
    stable_opts: StableOptions,
    semantics: Semantics,
    /// Cached predicate-dependency analysis; survives fact-level mutations
    /// (facts add no dependency edges) and is rebuilt after `assert_rule`.
    analysis: Option<DepAnalysis>,
    /// Cached relevant instantiation of the program.
    ground: Option<GroundProgram>,
    /// Cached full model under `semantics`.
    model: Option<Model>,
    /// Cached stable models (only filled under [`Semantics::Stable`]).
    stable: Option<Vec<Model>>,
    /// Cached Figure 1 outcome.
    modular: Option<ModularOutcome>,
    /// Completed subgoal tables of the query-directed evaluator, keyed by
    /// normalised subgoal pattern.
    tables: HashMap<String, Table>,
    /// Scratch copy of the program used to host the auxiliary rule of
    /// conjunctive queries (cloned lazily, reused until the program mutates).
    scratch: Option<Program>,
    /// Total grounding passes performed since construction.
    groundings: usize,
}

impl HiLogDb {
    /// Starts building a session.
    pub fn builder() -> HiLogDbBuilder {
        HiLogDbBuilder::default()
    }

    /// A session over `program` with default options and well-founded
    /// semantics.
    pub fn new(program: Program) -> Self {
        Self::builder().program(program).build()
    }

    /// The current program (initial rules plus asserted facts and rules,
    /// minus retracted facts).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The session's evaluation limits.
    pub fn options(&self) -> EvalOptions {
        self.opts
    }

    /// The semantics queries are answered under.
    pub fn semantics(&self) -> Semantics {
        self.semantics
    }

    // ------------------------------------------------------------------
    // Mutation with targeted cache invalidation
    // ------------------------------------------------------------------

    /// Asserts a ground fact.
    ///
    /// The dependency analysis is kept (facts add no edges); subgoal tables
    /// are dropped only for predicates that can reach the fact's predicate,
    /// and when nothing reads the predicate at all the cached ground program
    /// and model are *patched* instead of discarded.
    pub fn assert_fact(&mut self, fact: Term) -> Result<(), EngineError> {
        if !fact.is_ground() {
            return Err(EngineError::Floundering(format!(
                "assert_fact requires a ground atom, got `{fact}`"
            )));
        }
        self.program.push(Rule::fact(fact.clone()));
        self.invalidate_for_fact(&fact, true);
        Ok(())
    }

    /// Retracts one occurrence of a ground fact; returns `false` if the
    /// program contains no such fact.
    pub fn retract_fact(&mut self, fact: &Term) -> bool {
        let Some(pos) = self
            .program
            .rules
            .iter()
            .position(|r| r.is_fact() && r.head == *fact)
        else {
            return false;
        };
        self.program.rules.remove(pos);
        self.scratch = None;
        // A duplicate assertion may still be present; then nothing changed
        // semantically and every cache stays valid.
        let still_present = self
            .program
            .rules
            .iter()
            .any(|r| r.is_fact() && r.head == *fact);
        if !still_present {
            self.invalidate_for_fact(fact, false);
        }
        true
    }

    /// Asserts a rule.  Rules add dependency edges, so every cache
    /// (including the dependency analysis itself) is rebuilt lazily.
    pub fn assert_rule(&mut self, rule: Rule) {
        self.program.push(rule);
        self.invalidate_all();
    }

    fn invalidate_all(&mut self) {
        self.analysis = None;
        self.ground = None;
        self.model = None;
        self.stable = None;
        self.modular = None;
        self.tables.clear();
        self.scratch = None;
    }

    /// Targeted invalidation after a fact-level change to `fact`.
    /// `asserted` is `true` for assertion, `false` for retraction.
    fn invalidate_for_fact(&mut self, fact: &Term, asserted: bool) {
        // The scratch program mirrors `self.program` and is always stale
        // after a fact-level change, whatever the dependency analysis says.
        self.scratch = None;
        // `assert_fact` only admits ground atoms, but `assert_rule` (and the
        // builder) accept facts with variable predicate names, and those can
        // reach here through `retract_fact`; without a predicate identity the
        // change is global.
        let keyed = match pred_key(fact) {
            Some(key) => self.analysis().affected_by(&key).map(|set| (key, set)),
            None => None,
        };
        let Some((key, affected)) = keyed else {
            // A rule can define arbitrary predicates (variable head name):
            // everything may have changed.
            self.ground = None;
            self.model = None;
            self.stable = None;
            self.modular = None;
            self.tables.clear();
            return;
        };
        self.tables
            .retain(|_, table| pred_key(&table.pattern).is_some_and(|k| !affected.contains(&k)));
        let analysis = self.analysis.as_ref().expect("analysis just built");
        let pure_edb = affected.len() == 1 && !analysis.derived.contains(&key);
        if pure_edb && asserted {
            // Nothing reads the predicate and no rule derives it: the fact
            // only adds itself to the ground program and the model.
            if let Some(ground) = &mut self.ground {
                ground.push(GroundRule::fact(fact.clone()));
            }
            if let Some(model) = &mut self.model {
                model.set_true(fact.clone());
            }
            if let Some(models) = &mut self.stable {
                for m in models.iter_mut() {
                    m.set_true(fact.clone());
                }
            }
        } else if pure_edb {
            if let Some(ground) = &mut self.ground {
                ground.rules.retain(|r| !(r.is_fact() && r.head == *fact));
            }
            if let Some(model) = &mut self.model {
                model.set_false(fact.clone());
            }
            if let Some(models) = &mut self.stable {
                for m in models.iter_mut() {
                    m.set_false(fact.clone());
                }
            }
        } else {
            self.ground = None;
            self.model = None;
            self.stable = None;
        }
        // The Figure 1 outcome records the settling order, which even a pure
        // EDB fact can extend; recompute it on demand.
        self.modular = None;
    }

    // ------------------------------------------------------------------
    // Cached analyses and models
    // ------------------------------------------------------------------

    fn analysis(&mut self) -> &DepAnalysis {
        if self.analysis.is_none() {
            self.analysis = Some(DepAnalysis::build(&self.program));
        }
        self.analysis.as_ref().expect("just built")
    }

    fn ensure_ground(&mut self) -> Result<(), EngineError> {
        if self.ground.is_none() {
            self.ground = Some(relevant_ground(&self.program, self.opts)?);
            self.groundings += 1;
        }
        Ok(())
    }

    /// The cached relevant instantiation of the program, grounding on first
    /// use.
    pub fn ground_program(&mut self) -> Result<&GroundProgram, EngineError> {
        self.ensure_ground()?;
        Ok(self.ground.as_ref().expect("just grounded"))
    }

    /// The cached full model under the session's semantics, computing it on
    /// first use.  For [`Semantics::Stable`] this is the consensus model of
    /// Definition 3.7; for [`Semantics::ModularCheck`] it is the Figure 1
    /// model (or an error if the program is rejected).
    pub fn model(&mut self) -> Result<&Model, EngineError> {
        self.ensure_model()?;
        Ok(self.model.as_ref().expect("just built"))
    }

    fn ensure_model(&mut self) -> Result<(), EngineError> {
        if self.model.is_some() {
            return Ok(());
        }
        let model = match self.semantics {
            Semantics::WellFounded => {
                self.ensure_ground()?;
                well_founded_of_ground(self.ground.as_ref().expect("just grounded"))
            }
            Semantics::Stable => consensus_model(self.stable_models()?)?,
            Semantics::ModularCheck => {
                let outcome = self.check_modular()?;
                match (&outcome.model, &outcome.reason) {
                    (Some(model), _) => model.clone(),
                    (None, reason) => {
                        return Err(EngineError::NotModularlyStratified(
                            reason.clone().unwrap_or_else(|| {
                                "the Figure 1 procedure rejected the program".into()
                            }),
                        ))
                    }
                }
            }
        };
        self.model = Some(model);
        Ok(())
    }

    /// The cached stable models of the program (computing them on first
    /// use), regardless of the session's query semantics.
    pub fn stable_models(&mut self) -> Result<&[Model], EngineError> {
        if self.stable.is_none() {
            self.ensure_ground()?;
            let ground = self.ground.as_ref().expect("just grounded");
            self.stable = Some(stable_models_of_ground(ground, self.stable_opts)?);
        }
        Ok(self.stable.as_deref().expect("just computed"))
    }

    /// Runs (and caches) the Figure 1 modular-stratification procedure.
    pub fn check_modular(&mut self) -> Result<&ModularOutcome, EngineError> {
        if self.modular.is_none() {
            self.modular = Some(figure1_procedure(&self.program, self.opts)?);
        }
        Ok(self.modular.as_ref().expect("just checked"))
    }

    // ------------------------------------------------------------------
    // Planning and querying
    // ------------------------------------------------------------------

    /// Builds the plan [`query`](HiLogDb::query) would execute, without
    /// evaluating anything.
    pub fn explain(&self, query: &Query) -> QueryPlan {
        let bound = query_is_bound(query);
        let (strategy, reason) = if self.semantics != Semantics::WellFounded {
            (
                PlanStrategy::FullModel,
                format!(
                    "the {} semantics is defined through the full model, so the query is \
                     answered from the session's cached model",
                    self.semantics
                ),
            )
        } else if bound {
            (
                PlanStrategy::MagicSets,
                "the first literal has a ground predicate name, so query-directed \
                 (magic-sets) evaluation visits only the relevant subgoals and reuses the \
                 session's completed tables"
                    .to_string(),
            )
        } else {
            (
                PlanStrategy::FullModel,
                "the query has no leading positive literal with a ground predicate name \
                 (it is unbound), so it is answered from the session's cached full model"
                    .to_string(),
            )
        };
        QueryPlan {
            strategy,
            semantics: self.semantics,
            query: query.to_string(),
            adornment: adornment(query),
            cached_model: self.model.is_some(),
            cached_subqueries: self.tables.values().filter(|t| t.complete).count(),
            reason,
        }
    }

    /// Answers a query through the plan [`explain`](HiLogDb::explain)
    /// chooses, reusing every cache the session holds.
    pub fn query(&mut self, query: &Query) -> Result<QueryResult, EngineError> {
        let plan = self.explain(query);
        match plan.strategy {
            PlanStrategy::MagicSets => match self.query_magic(query) {
                Ok((answers, stats)) => Ok(assemble(answers, stats, plan, None)),
                Err(
                    err @ (EngineError::NotModularlyStratified(_) | EngineError::Floundering(_)),
                ) => {
                    // The tabled route cannot settle this query; the
                    // bottom-up well-founded construction still can.
                    let note = err.to_string();
                    let (answers, stats) = self.query_full(query)?;
                    Ok(assemble(answers, stats, plan, Some(note)))
                }
                Err(err) => Err(err),
            },
            PlanStrategy::FullModel => {
                let (answers, stats) = self.query_full(query)?;
                Ok(assemble(answers, stats, plan, None))
            }
        }
    }

    /// Three-valued truth of a single ground atom under the session's
    /// semantics.
    pub fn holds(&mut self, atom: &Term) -> Result<Truth, EngineError> {
        if !atom.is_ground() {
            return Err(EngineError::Floundering(format!(
                "holds() requires a ground atom, got `{atom}`"
            )));
        }
        Ok(self.query(&Query::atom(atom.clone()))?.truth)
    }

    /// Magic-sets route: tabled evaluation seeded with the session's
    /// completed tables; completed tables flow back into the session.
    fn query_magic(&mut self, query: &Query) -> Result<(Vec<QueryAnswer>, EvalStats), EngineError> {
        let vars = query.variables();
        let tables = std::mem::take(&mut self.tables);
        // `QueryEvaluator::stats` totals over every table it holds, seeded
        // ones included; subtract the seeded counts so the reported stats
        // cover this query only (seeded tables are complete and gain no
        // answers during the run).
        let seeded_tables = tables.len();
        let seeded_answers: usize = tables.values().map(|t| t.answers.len()).sum();
        let per_query = move |mut stats: EvalStats| {
            stats.subqueries = stats.subqueries.saturating_sub(seeded_tables);
            stats.answers = stats.answers.saturating_sub(seeded_answers);
            stats
        };
        if let [Literal::Pos(atom)] = query.literals.as_slice() {
            // Single-atom queries table the pattern itself — the second run
            // of the same query is a pure cache hit.
            let mut evaluator = QueryEvaluator::with_tables(&self.program, self.opts, tables);
            let solved = evaluator.solve_atom(atom);
            let stats = per_query(evaluator.stats());
            let mut tables = evaluator.into_tables();
            tables.retain(|_, t| t.complete);
            self.tables = tables;
            let answers = solved?
                .into_iter()
                .filter_map(|answer| {
                    let mut theta = Substitution::new();
                    match_with(atom, &answer, &mut theta).then(|| true_answer(&theta, &vars))
                })
                .collect();
            Ok((answers, stats))
        } else {
            // Conjunctions run through an auxiliary `__query_answer` rule
            // appended to the session's scratch copy of the program (cloned
            // once, reused across queries); every table except the auxiliary
            // one remains a valid table of the base program.
            let head = Term::apps(
                QUERY_HEAD,
                vars.iter().map(|v| Term::Var(v.clone())).collect(),
            );
            if self.scratch.is_none() {
                self.scratch = Some(self.program.clone());
            }
            let scratch = self.scratch.as_mut().expect("just cloned");
            scratch.push(Rule::new(head.clone(), query.literals.clone()));
            let mut evaluator = QueryEvaluator::with_tables(scratch, self.opts, tables);
            let solved = evaluator.solve_atom(&head);
            let stats = per_query(evaluator.stats());
            let mut tables = evaluator.into_tables();
            self.scratch.as_mut().expect("just cloned").rules.pop();
            // The auxiliary table must not leak into later conjunctions: its
            // key is the *rendered* pattern (where `__query_answer` comes out
            // quoted), so compare the pattern's functor, not the key string.
            let aux_functor = Term::sym(QUERY_HEAD);
            tables.retain(|_, t| t.complete && t.pattern.outermost_functor() != &aux_functor);
            self.tables = tables;
            let answers = solved?
                .into_iter()
                .filter_map(|answer| {
                    let mut theta = Substitution::new();
                    match_with(&head, &answer, &mut theta).then(|| true_answer(&theta, &vars))
                })
                .collect();
            Ok((answers, stats))
        }
    }

    /// Full-model route: match the query against the cached model.
    fn query_full(&mut self, query: &Query) -> Result<(Vec<QueryAnswer>, EvalStats), EngineError> {
        let groundings_before = self.groundings;
        self.ensure_model()?;
        let model = self.model.as_ref().expect("just built");
        let answers = eval_against_model(model, query)?;
        let stats = EvalStats {
            answers: answers.len(),
            groundings: self.groundings - groundings_before,
            ..EvalStats::default()
        };
        Ok((answers, stats))
    }
}

fn assemble(
    answers: Vec<QueryAnswer>,
    stats: EvalStats,
    plan: QueryPlan,
    fallback: Option<String>,
) -> QueryResult {
    let truth = overall_truth(&answers);
    QueryResult {
        answers,
        truth,
        stats,
        plan,
        fallback,
    }
}

fn overall_truth(answers: &[QueryAnswer]) -> Truth {
    let mut best = Truth::False;
    for a in answers {
        match a.truth {
            Truth::True => return Truth::True,
            Truth::Undefined => best = Truth::Undefined,
            Truth::False => {}
        }
    }
    best
}

fn true_answer(theta: &Substitution, vars: &[Var]) -> QueryAnswer {
    QueryAnswer {
        bindings: vars
            .iter()
            .map(|v| (v.clone(), theta.apply(&Term::Var(v.clone()))))
            .collect(),
        truth: Truth::True,
    }
}

/// Three-valued conjunctive evaluation of a query against a model.  Branches
/// carry the weakest truth seen so far; false literals prune.
fn eval_against_model(model: &Model, query: &Query) -> Result<Vec<QueryAnswer>, EngineError> {
    let vars = query.variables();
    let mut branches: Vec<(Substitution, Truth)> = vec![(Substitution::new(), Truth::True)];
    for lit in &query.literals {
        let mut next = Vec::new();
        for (theta, truth) in branches {
            match lit {
                Literal::Pos(atom) => {
                    let instantiated = theta.apply(atom);
                    if instantiated.is_ground() {
                        match model.truth(&instantiated) {
                            Truth::False => {}
                            t => next.push((theta.clone(), conj(truth, t))),
                        }
                    } else {
                        for candidate in model.base() {
                            let t = model.truth(candidate);
                            if t == Truth::False {
                                continue;
                            }
                            let mut extended = theta.clone();
                            if match_with(&instantiated, candidate, &mut extended) {
                                next.push((extended, conj(truth, t)));
                            }
                        }
                    }
                }
                Literal::Neg(atom) => {
                    let instantiated = theta.apply(atom);
                    if !instantiated.is_ground() {
                        return Err(EngineError::Floundering(format!(
                            "negative literal `not {instantiated}` is non-ground when selected \
                             (bind its variables with an earlier positive literal)"
                        )));
                    }
                    match model.truth(&instantiated) {
                        Truth::True => {}
                        Truth::False => next.push((theta.clone(), truth)),
                        Truth::Undefined => next.push((theta.clone(), Truth::Undefined)),
                    }
                }
                Literal::Builtin(b) => {
                    let mut extended = theta.clone();
                    match b.eval(&mut extended) {
                        Ok(true) => next.push((extended, truth)),
                        Ok(false) => {}
                        Err(e) => return Err(EngineError::Core(e)),
                    }
                }
                Literal::Aggregate(_) => {
                    return Err(EngineError::Unsupported(
                        "aggregate literals in full-model query evaluation are unsupported; \
                         ask a bound query (magic-sets plan) or use the aggregation evaluator"
                            .into(),
                    ))
                }
            }
        }
        branches = next;
    }
    // Group by bindings, keeping the strongest truth per instance.
    let mut best: BTreeMap<Vec<(Var, Term)>, Truth> = BTreeMap::new();
    for (theta, truth) in branches {
        let bindings: Vec<(Var, Term)> = vars
            .iter()
            .map(|v| (v.clone(), theta.apply(&Term::Var(v.clone()))))
            .collect();
        let entry = best.entry(bindings).or_insert(truth);
        if *entry == Truth::Undefined && truth == Truth::True {
            *entry = Truth::True;
        }
    }
    Ok(best
        .into_iter()
        .map(|(bindings, truth)| QueryAnswer { bindings, truth })
        .collect())
}

fn conj(a: Truth, b: Truth) -> Truth {
    if a == Truth::Undefined || b == Truth::Undefined {
        Truth::Undefined
    } else {
        Truth::True
    }
}

/// The consensus model of Definition 3.7 over a set of stable models.
fn consensus_model(models: &[Model]) -> Result<Model, EngineError> {
    if models.is_empty() {
        return Err(EngineError::NoStableModels);
    }
    let mut base: BTreeSet<Term> = BTreeSet::new();
    for m in models {
        base.extend(m.base().iter().cloned());
    }
    let mut true_atoms = Vec::new();
    let mut undefined = Vec::new();
    for atom in &base {
        if models.iter().all(|m| m.is_true(atom)) {
            true_atoms.push(atom.clone());
        } else if !models.iter().all(|m| m.is_false(atom)) {
            undefined.push(atom.clone());
        }
    }
    Ok(Model::new(base, true_atoms, undefined))
}

// ----------------------------------------------------------------------
// Predicate-dependency analysis for targeted invalidation
// ----------------------------------------------------------------------

/// A predicate identity: rendered ground predicate name plus arity.
type PredKey = (String, Option<usize>);

fn pred_key(atom: &Term) -> Option<PredKey> {
    let name = atom.name();
    name.is_ground().then(|| (name.to_string(), atom.arity()))
}

/// Reverse dependency information over the program's predicates, used to
/// decide which caches a fact-level mutation can reach.
#[derive(Debug, Clone, Default)]
struct DepAnalysis {
    /// `dependents[p]` = head predicates of rules whose body reads `p`.
    dependents: HashMap<PredKey, BTreeSet<PredKey>>,
    /// Head predicates of rules with a variable predicate name somewhere in
    /// the body: they read *every* predicate.
    universal_readers: BTreeSet<PredKey>,
    /// `true` when some proper rule's head predicate name is non-ground; such
    /// a rule can define any predicate, so every mutation is global.
    wildcard_heads: bool,
    /// Head predicates of proper (non-fact) rules.
    derived: BTreeSet<PredKey>,
}

impl DepAnalysis {
    fn build(program: &Program) -> Self {
        let mut analysis = DepAnalysis::default();
        for rule in program.proper_rules() {
            let Some(head) = pred_key(&rule.head) else {
                analysis.wildcard_heads = true;
                continue;
            };
            analysis.derived.insert(head.clone());
            for lit in &rule.body {
                let atom = match lit {
                    Literal::Pos(a) | Literal::Neg(a) => a,
                    Literal::Aggregate(a) => &a.pattern,
                    Literal::Builtin(_) => continue,
                };
                match pred_key(atom) {
                    Some(body_key) => {
                        analysis
                            .dependents
                            .entry(body_key)
                            .or_default()
                            .insert(head.clone());
                    }
                    None => {
                        analysis.universal_readers.insert(head.clone());
                    }
                }
            }
        }
        analysis
    }

    /// Every predicate whose cached state may change when `key` gains or
    /// loses a fact (transitive reverse closure, always including the
    /// universal readers).  `None` means "everything" — a variable-headed
    /// rule exists.
    fn affected_by(&self, key: &PredKey) -> Option<BTreeSet<PredKey>> {
        if self.wildcard_heads {
            return None;
        }
        let mut affected: BTreeSet<PredKey> = BTreeSet::new();
        let mut queue: Vec<PredKey> = vec![key.clone()];
        queue.extend(self.universal_readers.iter().cloned());
        while let Some(k) = queue.pop() {
            if !affected.insert(k.clone()) {
                continue;
            }
            if let Some(readers) = self.dependents.get(&k) {
                queue.extend(readers.iter().cloned());
            }
        }
        Some(affected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hilog_syntax::{parse_program, parse_query, parse_term};

    fn game_db() -> HiLogDb {
        HiLogDb::new(
            parse_program(
                "winning(X) :- move(X, Y), not winning(Y).\n\
                 move(a, b). move(b, c).",
            )
            .unwrap(),
        )
    }

    #[test]
    fn bound_query_twice_reuses_tables_without_rule_applications() {
        let mut db = game_db();
        let query = parse_query("?- winning(X).").unwrap();
        let first = db.query(&query).unwrap();
        assert!(first.stats.rule_applications > 0);
        assert_eq!(first.answers.len(), 1);
        let second = db.query(&query).unwrap();
        assert_eq!(second.stats.rule_applications, 0, "tables were not reused");
        assert!(second.stats.cached_subqueries > 0);
        assert_eq!(second.answers, first.answers);
    }

    #[test]
    fn unbound_query_grounds_once_then_reuses_the_model() {
        let mut db = game_db();
        let query = parse_query("?- P(a, X).").unwrap();
        let first = db.query(&query).unwrap();
        assert_eq!(first.stats.groundings, 1);
        let second = db.query(&query).unwrap();
        assert_eq!(second.stats.groundings, 0, "model was re-grounded");
        assert_eq!(second.answers, first.answers);
        // P(a, X) matches move(a, b).
        assert_eq!(first.answers.len(), 1);
        assert_eq!(first.answers[0].binding("P").unwrap(), &Term::sym("move"));
    }

    #[test]
    fn explain_routes_bound_vs_unbound() {
        let db = game_db();
        let bound = db.explain(&parse_query("?- winning(a).").unwrap());
        assert!(bound.is_magic_sets());
        assert_eq!(bound.adornment, "b");
        let unbound = db.explain(&parse_query("?- P(a, b).").unwrap());
        assert!(unbound.is_full_model());
    }

    #[test]
    fn holds_is_three_valued() {
        let mut db =
            HiLogDb::new(parse_program("p :- not q. q :- not p. r. s :- r, not r.").unwrap());
        assert_eq!(db.holds(&parse_term("r").unwrap()).unwrap(), Truth::True);
        assert_eq!(
            db.holds(&parse_term("p").unwrap()).unwrap(),
            Truth::Undefined
        );
        assert_eq!(db.holds(&parse_term("s").unwrap()).unwrap(), Truth::False);
    }

    #[test]
    fn magic_route_falls_back_on_negative_cycles() {
        // `p :- not p.` makes the tabled route report a cycle; the session
        // transparently answers from the well-founded model instead.
        let mut db = HiLogDb::new(parse_program("p :- not p. q.").unwrap());
        let result = db.query(&parse_query("?- p.").unwrap()).unwrap();
        assert!(result.fallback.is_some());
        assert_eq!(result.truth, Truth::Undefined);
    }

    #[test]
    fn assert_fact_invalidates_only_dependent_tables() {
        let mut db = HiLogDb::new(
            parse_program(
                "winning(X) :- move(X, Y), not winning(Y).\n\
                 reach(X) :- edge(X, Y).\n\
                 move(a, b). move(b, c). edge(u, v).",
            )
            .unwrap(),
        );
        let win = parse_query("?- winning(X).").unwrap();
        let reach = parse_query("?- reach(X).").unwrap();
        db.query(&win).unwrap();
        db.query(&reach).unwrap();
        let warm = db.explain(&win).cached_subqueries;
        assert!(warm > 0);
        // A new edge fact only reaches `reach`: the winning tables survive.
        db.assert_fact(parse_term("edge(v, w)").unwrap()).unwrap();
        let after = db.explain(&win).cached_subqueries;
        assert!(after > 0, "unrelated tables were dropped");
        let second = db.query(&win).unwrap();
        assert_eq!(second.stats.rule_applications, 0);
        // And the reach query sees the new fact.
        let reach_result = db.query(&reach).unwrap();
        assert!(reach_result
            .answers
            .iter()
            .any(|a| a.binding("X").unwrap() == &Term::sym("v")));
    }

    #[test]
    fn assert_fact_on_read_predicate_updates_answers() {
        let mut db = game_db();
        let query = parse_query("?- winning(X).").unwrap();
        let before = db.query(&query).unwrap();
        assert_eq!(before.answers.len(), 1); // b
        db.assert_fact(parse_term("move(c, d)").unwrap()).unwrap();
        let after = db.query(&query).unwrap();
        // Chain a -> b -> c -> d: now c wins too and b loses.
        let xs: Vec<String> = after
            .answers
            .iter()
            .map(|a| a.binding("X").unwrap().to_string())
            .collect();
        assert!(xs.contains(&"c".to_string()));
    }

    #[test]
    fn retract_fact_restores_the_original_answers() {
        let mut db = game_db();
        let query = parse_query("?- winning(X).").unwrap();
        let before = db.query(&query).unwrap();
        db.assert_fact(parse_term("move(c, d)").unwrap()).unwrap();
        db.query(&query).unwrap();
        assert!(db.retract_fact(&parse_term("move(c, d)").unwrap()));
        let after = db.query(&query).unwrap();
        assert_eq!(after.answers, before.answers);
        assert!(!db.retract_fact(&parse_term("move(zz, zz)").unwrap()));
    }

    #[test]
    fn pure_edb_fact_patches_the_cached_model() {
        // `colour` is read by no rule: asserting a colour fact keeps the
        // cached model (no re-grounding) and still answers correctly.
        let mut db = HiLogDb::new(
            parse_program(
                "winning(X) :- move(X, Y), not winning(Y).\n\
                 move(a, b). colour(a, red).",
            )
            .unwrap(),
        );
        let unbound = parse_query("?- P(a, X).").unwrap();
        assert_eq!(db.query(&unbound).unwrap().stats.groundings, 1);
        db.assert_fact(parse_term("colour(b, blue)").unwrap())
            .unwrap();
        let after = db.query(&unbound).unwrap();
        assert_eq!(
            after.stats.groundings, 0,
            "pure EDB fact forced re-grounding"
        );
        assert_eq!(
            db.holds(&parse_term("colour(b, blue)").unwrap()).unwrap(),
            Truth::True
        );
        assert!(db.retract_fact(&parse_term("colour(b, blue)").unwrap()));
        assert_eq!(
            db.holds(&parse_term("colour(b, blue)").unwrap()).unwrap(),
            Truth::False
        );
    }

    #[test]
    fn assert_rule_rebuilds_everything() {
        let mut db = game_db();
        db.query(&parse_query("?- winning(X).").unwrap()).unwrap();
        db.assert_rule(
            parse_program("winning(X) :- bonus(X).")
                .unwrap()
                .rules
                .remove(0),
        );
        db.assert_fact(parse_term("bonus(c)").unwrap()).unwrap();
        assert_eq!(
            db.holds(&parse_term("winning(c)").unwrap()).unwrap(),
            Truth::True
        );
    }

    #[test]
    fn stable_semantics_answers_consensus_truth() {
        let mut db = HiLogDb::builder()
            .program(parse_program("p :- not q. q :- not p. r :- p. r :- q.").unwrap())
            .semantics(Semantics::Stable)
            .build();
        assert_eq!(db.holds(&parse_term("r").unwrap()).unwrap(), Truth::True);
        assert_eq!(
            db.holds(&parse_term("p").unwrap()).unwrap(),
            Truth::Undefined
        );
        assert_eq!(db.stable_models().unwrap().len(), 2);
    }

    #[test]
    fn stable_semantics_reports_missing_stable_models() {
        let mut db = HiLogDb::builder()
            .program(parse_program("u :- not u. v.").unwrap())
            .semantics(Semantics::Stable)
            .build();
        let err = db.holds(&parse_term("v").unwrap()).unwrap_err();
        assert!(matches!(err, EngineError::NoStableModels));
    }

    #[test]
    fn modular_check_semantics_accepts_and_rejects() {
        let mut accepted = HiLogDb::builder()
            .program(
                parse_program("winning(X) :- move(X, Y), not winning(Y). move(a, b). move(b, c).")
                    .unwrap(),
            )
            .semantics(Semantics::ModularCheck)
            .build();
        assert_eq!(
            accepted.holds(&parse_term("winning(b)").unwrap()).unwrap(),
            Truth::True
        );
        assert!(accepted.check_modular().unwrap().modularly_stratified);

        let mut rejected = HiLogDb::builder()
            .program(
                parse_program("winning(X) :- move(X, Y), not winning(Y). move(a, b). move(b, a).")
                    .unwrap(),
            )
            .semantics(Semantics::ModularCheck)
            .build();
        let err = rejected
            .holds(&parse_term("winning(a)").unwrap())
            .unwrap_err();
        assert!(matches!(err, EngineError::NotModularlyStratified(_)));
    }

    #[test]
    fn conjunctive_queries_bind_across_literals() {
        let mut db = HiLogDb::new(
            parse_program(
                "winning(M)(X) :- game(M), M(X, Y), not winning(M)(Y).\n\
                 game(m). m(a, b). m(b, c).",
            )
            .unwrap(),
        );
        let result = db
            .query(&parse_query("?- game(M), winning(M)(X).").unwrap())
            .unwrap();
        assert_eq!(result.answers.len(), 1);
        assert_eq!(result.answers[0].binding("M").unwrap(), &Term::sym("m"));
        assert_eq!(result.answers[0].binding("X").unwrap(), &Term::sym("b"));
        // The conjunction's subgoal tables are retained (the auxiliary
        // `__query_answer` table is not).
        let cached = db
            .explain(&parse_query("?- game(M).").unwrap())
            .cached_subqueries;
        assert!(cached > 0);
    }

    #[test]
    fn stats_are_per_query_not_cumulative() {
        let mut db = game_db();
        let query = parse_query("?- winning(X).").unwrap();
        let first = db.query(&query).unwrap();
        assert!(first.stats.subqueries > 0);
        assert!(first.stats.answers > 0);
        // The repeat run creates no new tables and derives no new answers;
        // its stats must not re-count the seeded tables.
        let second = db.query(&query).unwrap();
        assert_eq!(second.stats.subqueries, 0);
        assert_eq!(second.stats.answers, 0);
        assert!(second.stats.cached_subqueries > 0);
    }

    #[test]
    fn retracting_a_variable_named_fact_does_not_panic() {
        // `assert_rule` accepts facts with variable predicate names; a later
        // retract must fall back to global invalidation, not panic.
        let mut db = HiLogDb::new(parse_program("q(r). r(q).").unwrap());
        let var_fact = Term::app(Term::var("P"), vec![Term::sym("a")]);
        db.assert_rule(Rule::fact(var_fact.clone()));
        assert!(db.retract_fact(&var_fact));
        assert_eq!(db.holds(&parse_term("q(r)").unwrap()).unwrap(), Truth::True);
    }

    #[test]
    fn conjunctive_queries_do_not_share_auxiliary_tables() {
        // Regression: the auxiliary `__query_answer` table's key is the
        // *rendered* pattern (quoted, since the name starts with `_`); a
        // string-prefix cleanup missed it, so a later conjunction with the
        // same variable count silently returned the first query's answers.
        let mut db = HiLogDb::new(parse_program("p(a). p(b). q(b). r(c).").unwrap());
        let first = db.query(&parse_query("?- p(X), q(X).").unwrap()).unwrap();
        assert_eq!(first.answers.len(), 1);
        assert_eq!(first.answers[0].binding("X").unwrap(), &Term::sym("b"));
        let second = db.query(&parse_query("?- r(X), r(X).").unwrap()).unwrap();
        assert_eq!(second.answers.len(), 1);
        assert_eq!(second.answers[0].binding("X").unwrap(), &Term::sym("c"));
    }

    #[test]
    fn results_and_plans_serialise_to_json() {
        let mut db = game_db();
        let result = db.query(&parse_query("?- winning(X).").unwrap()).unwrap();
        let json = serde_json::to_string(&result).unwrap();
        assert!(json.contains("\"answers\""));
        assert!(json.contains("\"X\":\"b\""));
        assert!(json.contains("\"truth\":\"true\""));
        assert!(json.contains("\"strategy\":\"magic-sets\""));
        let plan_json = serde_json::to_string(&result.plan).unwrap();
        assert!(plan_json.contains("\"semantics\":\"well-founded\""));
        let stats_json = serde_json::to_string(&result.stats).unwrap();
        assert!(stats_json.contains("\"rule_applications\""));
    }

    #[test]
    fn builder_options_are_honoured() {
        let mut db = HiLogDb::builder()
            .program(parse_program("nat(z). nat(s(X)) :- nat(X).").unwrap())
            .options(EvalOptions::with_max_atoms(10))
            .build();
        let err = db.query(&parse_query("?- P(X).").unwrap()).unwrap_err();
        assert!(matches!(err, EngineError::LimitExceeded(_)));
    }
}
