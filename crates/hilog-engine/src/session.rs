//! The `HiLogDb` session facade: one stateful entry point over the engine.
//!
//! Every other entry point in this crate is a free function that takes a
//! [`Program`] and re-derives grounding and dependency information from
//! scratch.  A [`HiLogDb`] instead *owns* its program and amortises that work
//! across queries: the relevant instantiation, the full model, the
//! predicate-dependency analysis and the completed subgoal tables of the
//! query-directed evaluator are all cached, and
//! [`assert_fact`](HiLogDb::assert_fact) / [`retract_fact`](HiLogDb::retract_fact)
//! invalidate only the caches that the mutated predicate can actually reach.
//! Queries are routed through an explainable [`QueryPlan`]: bound queries use
//! magic-sets style tabled evaluation (Section 6.1 of the paper), unbound
//! ones fall back to the cached full model.
//!
//! ```
//! use hilog_engine::session::HiLogDb;
//! use hilog_syntax::{parse_program, parse_query};
//!
//! let program = parse_program(
//!     "winning(X) :- move(X, Y), not winning(Y). move(a, b). move(b, c).",
//! )
//! .unwrap();
//! let mut db = HiLogDb::builder().program(program).build();
//! let query = parse_query("?- winning(X).").unwrap();
//! let first = db.query(&query).unwrap();
//! assert_eq!(first.answers.len(), 1); // only b wins
//! // The second run answers from the session's subgoal tables.
//! let second = db.query(&query).unwrap();
//! assert_eq!(second.stats.rule_applications, 0);
//! assert!(second.stats.cached_subqueries > 0);
//! ```

use crate::error::EngineError;
use crate::ground::{GroundProgram, GroundRule};
use crate::grounder::{ground_against, ground_delta};
use crate::horn::{join_body, least_model_into, AtomStore, EvalOptions, NegationMode};
use crate::magic::DepSign;
use crate::magic_eval::{
    normalize_pattern, EvalStats, ModelSource, QueryEvaluator, Table, QUERY_HEAD,
};
use crate::modular::{figure1_procedure, ModularOutcome};
use crate::plan::{adornment, query_is_bound, PlanStrategy, QueryPlan};
use crate::stable::{stable_models_of_ground, StableOptions};
use crate::storage::{FactStore, RelationStorageStats, StorageConfig};
use crate::wfs::{affected_closure, well_founded_eval, well_founded_patch_with};
use hilog_core::interpretation::{Model, Truth};
use hilog_core::literal::Literal;
use hilog_core::program::Program;
use hilog_core::rule::{Query, Rule};
use hilog_core::subst::Substitution;
use hilog_core::term::{Term, Var};
use hilog_core::unify::{match_with, unify_with};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

/// Which semantics a [`HiLogDb`] answers queries under.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Semantics {
    /// The (three-valued) well-founded semantics of Sections 3.1 / 4 — the
    /// default, and the only semantics with a magic-sets route.
    #[default]
    WellFounded,
    /// Stable-model consensus truth (Definition 3.7): an atom is true if it
    /// is true in every stable model, false if false in every stable model,
    /// and undefined otherwise.  Queries fail with
    /// [`EngineError::NoStableModels`] when no stable model exists.
    Stable,
    /// The Figure 1 modular-stratification procedure: queries are answered
    /// from the procedure's accumulated total model, and fail with
    /// [`EngineError::NotModularlyStratified`] when the program is rejected.
    ModularCheck,
}

impl fmt::Display for Semantics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Semantics::WellFounded => write!(f, "well-founded"),
            Semantics::Stable => write!(f, "stable"),
            Semantics::ModularCheck => write!(f, "modular-check"),
        }
    }
}

impl Serialize for Semantics {
    fn write_json(&self, out: &mut String) {
        serde::write_json_string(out, &self.to_string());
    }
}

/// One answer to a query: bindings for the query's free variables together
/// with the three-valued truth of that instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryAnswer {
    /// Bindings in first-occurrence order of the query's variables.
    pub bindings: Vec<(Var, Term)>,
    /// Truth of this instance.  Magic-sets plans only report true instances;
    /// full-model plans also surface undefined ones.
    pub truth: Truth,
}

impl QueryAnswer {
    /// The binding of the named variable, if any.
    pub fn binding(&self, name: &str) -> Option<&Term> {
        self.bindings
            .iter()
            .find(|(v, _)| v.name() == name && v.generation() == 0)
            .map(|(_, t)| t)
    }
}

impl fmt::Display for QueryAnswer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (v, t)) in self.bindings.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} = {}", v.name(), t)?;
        }
        write!(f, "}} ({})", self.truth)
    }
}

impl Serialize for QueryAnswer {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        out.push_str("\"bindings\":{");
        for (i, (v, t)) in self.bindings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            serde::write_json_string(out, v.name());
            out.push(':');
            serde::write_json_string(out, &t.to_string());
        }
        out.push('}');
        out.push(',');
        serde::write_json_string(out, "truth");
        out.push(':');
        serde::write_json_string(out, &self.truth.to_string());
        out.push('}');
    }
}

/// The unified result of [`HiLogDb::query`]: answers, an overall truth
/// value, the statistics of the evaluation and the plan that produced it.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// One entry per derived instance of the query.
    pub answers: Vec<QueryAnswer>,
    /// Overall truth: `True` if some instance is true, else `Undefined` if
    /// some instance is undefined, else `False`.
    pub truth: Truth,
    /// Statistics of this evaluation (not cumulative across queries).
    pub stats: EvalStats,
    /// The plan that was executed.
    pub plan: QueryPlan,
    /// When the magic-sets route could not settle the query (it detected a
    /// negative dependency cycle, or floundered) the session transparently
    /// re-answers from the full model; the original error is recorded here.
    pub fallback: Option<String>,
}

impl QueryResult {
    /// Returns `true` if the overall truth is `True`.
    pub fn is_true(&self) -> bool {
        self.truth == Truth::True
    }
}

impl Serialize for QueryResult {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        serde::write_field(out, "answers", &self.answers, true);
        serde::write_field(out, "truth", &self.truth.to_string(), false);
        serde::write_field(out, "stats", &self.stats, false);
        serde::write_field(out, "plan", &self.plan, false);
        serde::write_field(out, "fallback", &self.fallback, false);
        out.push('}');
    }
}

/// Builder for [`HiLogDb`]; obtained from [`HiLogDb::builder`].
#[derive(Debug, Clone, Default)]
pub struct HiLogDbBuilder {
    program: Program,
    opts: EvalOptions,
    stable_opts: StableOptions,
    semantics: Semantics,
    warm_model: Option<Model>,
    storage: StorageConfig,
}

impl HiLogDbBuilder {
    /// Uses `program` as the initial rule set (replacing any previous one).
    pub fn program(mut self, program: Program) -> Self {
        self.program = program;
        self
    }

    /// Appends a single rule (or fact) to the initial program.
    pub fn rule(mut self, rule: Rule) -> Self {
        self.program.push(rule);
        self
    }

    /// Sets the evaluation limits used by every route — the session's single
    /// stored copy of [`EvalOptions`].
    pub fn options(mut self, opts: EvalOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Sets the stable-model search limits (only used under
    /// [`Semantics::Stable`]).
    pub fn stable_options(mut self, opts: StableOptions) -> Self {
        self.stable_opts = opts;
        self
    }

    /// Chooses the semantics queries are answered under.
    pub fn semantics(mut self, semantics: Semantics) -> Self {
        self.semantics = semantics;
        self
    }

    /// Seeds the session with an already-computed full model for the initial
    /// program, so the first full-model query skips evaluation entirely.
    ///
    /// This is the recovery path of the durable storage layer: a checkpoint
    /// persists the model alongside the program, and restoring it here makes
    /// restart-to-first-answer independent of model (re)computation.  The
    /// caller asserts the model is *the* model of `program` under the chosen
    /// semantics — grounding and subgoal tables still rebuild lazily, and
    /// every mutation path treats the seeded model exactly like one the
    /// session computed itself (patched in place when the grounding is warm,
    /// dropped when it cannot be maintained).
    pub fn warm_model(mut self, model: Model) -> Self {
        self.warm_model = Some(model);
        self
    }

    /// Chooses the relation-storage backend for the session's long-lived
    /// stores (the possibly-true store and the subgoal-table answers).  The
    /// default is [`StorageConfig::from_env`]: in-memory unless
    /// `HILOG_STORAGE=spill` flips the process-wide default.
    pub fn storage(mut self, storage: StorageConfig) -> Self {
        self.storage = storage;
        self
    }

    /// Builds the session.  No evaluation happens yet; every cache is filled
    /// lazily by the first query that needs it.
    pub fn build(self) -> HiLogDb {
        HiLogDb {
            program: Arc::new(self.program),
            opts: self.opts,
            stable_opts: self.stable_opts,
            semantics: self.semantics,
            analysis: None,
            ground: None,
            possibly: None,
            model: self.warm_model.map(Arc::new),
            dirty: None,
            stable: None,
            modular: None,
            tables: HashMap::new(),
            scratch: None,
            groundings: 0,
            patches: 0,
            pending_patched: 0,
            pending_dropped: 0,
            pending_refilled: 0,
            storage: self.storage,
        }
    }
}

/// Returns `true` if `atom` falls inside an optional predicate-level scope
/// (`None` means "everything" — a variable-headed rule or a fact without a
/// predicate identity made the mutation global).  Used only to bound the
/// DRed sweep of [`HiLogDb::retract_from_ground`]; the *model* patch works
/// at the finer instance level (seed atoms + [`affected_closure`]).
fn pred_scope_affects(preds: Option<&BTreeSet<PredKey>>, atom: &Term) -> bool {
    match preds {
        None => true,
        // Ground atoms always have a predicate key; default to affected
        // for safety.
        Some(preds) => pred_key(atom).is_none_or(|k| preds.contains(&k)),
    }
}

/// A stateful HiLog database session.
///
/// Owns a [`Program`] plus every cache the engine can amortise across
/// queries; see the [module documentation](crate::session) for the overall
/// shape and a usage example.
#[derive(Debug)]
pub struct HiLogDb {
    /// The program, `Arc`d so publishing a [`crate::snapshot::DbSnapshot`]
    /// shares it with the session; mutations go through `Arc::make_mut`
    /// (copy-on-write: the clone happens only while a snapshot still holds
    /// the previous version).  Every other heavyweight cache below is `Arc`d
    /// for the same reason.
    program: Arc<Program>,
    opts: EvalOptions,
    stable_opts: StableOptions,
    semantics: Semantics,
    /// Cached predicate-dependency analysis; survives fact-level mutations
    /// (facts add no dependency edges) and is rebuilt after rule-level ones.
    analysis: Option<DepAnalysis>,
    /// Cached relevant instantiation of the program, maintained
    /// *incrementally* under fact-level mutations (delta grounding on
    /// assert, DRed overdelete/rederive on retract).
    ground: Option<Arc<GroundProgram>>,
    /// The over-approximated true-or-undefined store backing `ground` (the
    /// least model of the positive program).  Kept in lockstep with `ground`
    /// so the semi-naive continuation has a closed store to extend.
    possibly: Option<Arc<FactStore>>,
    /// Cached full model under `semantics`.
    model: Option<Arc<Model>>,
    /// Pending fact-level deltas not yet folded into `model`: the **seed
    /// atoms** the mutations actually touched (new facts, heads of new or
    /// dropped ground-rule instances), accumulated across mutations.  `Some`
    /// only while both `model` and `ground` are warm under
    /// [`Semantics::WellFounded`]; discharged lazily by the next query that
    /// needs the model, which re-evaluates only the seeds' instance-level
    /// reverse closure ([`affected_closure`]) with the rest of the model —
    /// even inside the same strongly connected component — frozen at its
    /// previous values.
    dirty: Option<BTreeSet<Term>>,
    /// Cached stable models (only filled under [`Semantics::Stable`]).
    stable: Option<Arc<Vec<Model>>>,
    /// Cached Figure 1 outcome.
    modular: Option<Arc<ModularOutcome>>,
    /// Completed subgoal tables of the query-directed evaluator, keyed
    /// structurally by their normalised subgoal pattern.  Each table carries
    /// the dependency edges recorded while it was filled; mutations walk the
    /// *reverse* closure of those edges (instance-level, unlike the
    /// predicate-level `DepAnalysis`) to decide which tables to patch in
    /// place, which to drop, and which to leave untouched.
    tables: HashMap<Term, Arc<Table>>,
    /// Scratch copy of the program used to host the auxiliary rule of
    /// conjunctive queries (cloned lazily, reused until the program mutates).
    scratch: Option<Program>,
    /// Total grounding passes performed since construction.
    groundings: usize,
    /// Total incremental model patches performed since construction.
    patches: usize,
    /// Subgoal tables patched in place by mutations since the last query
    /// (reported through [`EvalStats::tables_patched`], then reset).
    pending_patched: usize,
    /// Subgoal tables dropped by mutations since the last query.
    pending_dropped: usize,
    /// Derived subgoal tables *refilled eagerly* (monotone delta: the
    /// mutation reaches them through positive edges only, so their old
    /// answers stay valid and only additions are derived) since the last
    /// query.
    pending_refilled: usize,
    /// Relation-storage backend for the session's long-lived stores.
    storage: StorageConfig,
}

impl HiLogDb {
    /// Starts building a session.
    pub fn builder() -> HiLogDbBuilder {
        HiLogDbBuilder::default()
    }

    /// A session over `program` with default options and well-founded
    /// semantics.
    pub fn new(program: Program) -> Self {
        Self::builder().program(program).build()
    }

    /// The current program (initial rules plus asserted facts and rules,
    /// minus retracted facts).
    pub fn program(&self) -> &Program {
        self.program.as_ref()
    }

    /// The session's evaluation limits.
    pub fn options(&self) -> EvalOptions {
        self.opts
    }

    /// Overrides the evaluation thread count (clamped to at least 1) without
    /// touching any cache: the thread count changes the evaluation schedule,
    /// never its result, so cached models and tables stay valid.
    pub fn set_eval_threads(&mut self, eval_threads: usize) {
        self.opts.eval_threads = eval_threads.max(1);
    }

    /// The semantics queries are answered under.
    pub fn semantics(&self) -> Semantics {
        self.semantics
    }

    /// The session's stable-model search limits.
    pub fn stable_options(&self) -> StableOptions {
        self.stable_opts
    }

    // ------------------------------------------------------------------
    // Mutation with targeted cache invalidation
    // ------------------------------------------------------------------

    /// Asserts a ground fact.
    ///
    /// The dependency analysis is kept (facts add no edges); subgoal tables
    /// are maintained through their recorded dependency edges (tables
    /// outside the instance-level closure survive, fact-backed tables are
    /// patched in place), and when nothing reads the predicate at all the
    /// cached ground program and model are *patched* instead of discarded.
    pub fn assert_fact(&mut self, fact: Term) -> Result<(), EngineError> {
        if !fact.is_ground() {
            return Err(EngineError::Floundering(format!(
                "assert_fact requires a ground atom, got `{fact}`"
            )));
        }
        // A duplicate of an already-present fact changes nothing
        // semantically; every cache stays valid (the mirror image of
        // `retract_fact`'s duplicate short-circuit).
        let already_present = self
            .program
            .rules
            .iter()
            .any(|r| r.is_fact() && r.head == fact);
        Arc::make_mut(&mut self.program).push(Rule::fact(fact.clone()));
        if already_present {
            self.scratch = None;
            return Ok(());
        }
        self.invalidate_for_fact(&fact, true);
        Ok(())
    }

    /// Retracts one occurrence of a ground fact; returns `false` if the
    /// program contains no such fact.
    pub fn retract_fact(&mut self, fact: &Term) -> bool {
        let Some(pos) = self
            .program
            .rules
            .iter()
            .position(|r| r.is_fact() && r.head == *fact)
        else {
            return false;
        };
        Arc::make_mut(&mut self.program).rules.remove(pos);
        self.scratch = None;
        // A duplicate assertion may still be present; then nothing changed
        // semantically and every cache stays valid.
        let still_present = self
            .program
            .rules
            .iter()
            .any(|r| r.is_fact() && r.head == *fact);
        if !still_present {
            self.invalidate_for_fact(fact, false);
        }
        true
    }

    /// Asserts a rule.  Rules add predicate-level dependency edges, so the
    /// analysis/grounding/model caches are rebuilt lazily — but the subgoal
    /// tables are maintained at the instance level: the new rule can only
    /// derive instances of its head, so only the tables whose pattern
    /// overlaps the head (plus their recorded-edge reverse closure) are
    /// dropped, and every other table survives.
    pub fn assert_rule(&mut self, rule: Rule) {
        self.drop_tables_for_head(&rule.head);
        Arc::make_mut(&mut self.program).push(rule);
        self.invalidate_caches_keeping_tables();
    }

    /// Retracts the first rule structurally equal to `rule`; returns `false`
    /// if the program contains no such rule.
    ///
    /// Subgoal tables survive outside the instance-level reverse closure of
    /// the rule's head, exactly as for [`Self::assert_rule`].  The
    /// grounding/model caches have no provenance for the retracted rule's
    /// instantiations and are rebuilt lazily.
    pub fn retract_rule(&mut self, rule: &Rule) -> bool {
        let Some(pos) = self.program.rules.iter().position(|r| r == rule) else {
            return false;
        };
        Arc::make_mut(&mut self.program).rules.remove(pos);
        // A structurally identical copy may remain; then nothing changed.
        if self.program.rules.iter().any(|r| r == rule) {
            self.scratch = None;
            return true;
        }
        self.drop_tables_for_head(&rule.head);
        self.invalidate_caches_keeping_tables();
        true
    }

    /// Resets every cache except the subgoal tables (the one cache with
    /// finer-than-global invalidation, maintained through the recorded
    /// dependency edges instead).
    fn invalidate_caches_keeping_tables(&mut self) {
        self.analysis = None;
        self.ground = None;
        self.possibly = None;
        self.model = None;
        self.dirty = None;
        self.stable = None;
        self.modular = None;
        self.scratch = None;
    }

    // ------------------------------------------------------------------
    // Instance-level subgoal-table maintenance over recorded edges
    // ------------------------------------------------------------------

    /// The keys of every subgoal table whose answers could change when the
    /// set of atoms matching `probe` changes: the tables whose pattern
    /// unifies with `probe`, plus the reverse closure under the dependency
    /// edges the tables recorded while they were filled.
    ///
    /// This is *instance-level* where [`DepAnalysis::affected_by`] is
    /// predicate-level: a mutation to one game of a HiLog win/move database
    /// leaves the other games' `winning(g)(x)` tables untouched even though
    /// every one of them shares the (variable-headed) winning rule.  It is
    /// sound because a kept table's evaluation only ever consulted the
    /// tables its recorded closure names: if none of them overlaps `probe`,
    /// refilling the kept table would never read a changed atom — and any
    /// *newly selectable* subgoal requires some consulted table to gain
    /// answers first, which puts it inside the closure.
    fn tables_affected_by(&self, probe: &Term) -> BTreeSet<Term> {
        let renamed = rename_apart(probe);
        let mut queue: Vec<Term> = self
            .tables
            .iter()
            .filter(|(_, t)| {
                let mut theta = Substitution::new();
                unify_with(&t.pattern, &renamed, &mut theta)
            })
            .map(|(key, _)| key.clone())
            .collect();
        let mut readers: HashMap<&Term, Vec<&Term>> = HashMap::new();
        for (key, table) in &self.tables {
            for dep in table.deps.keys() {
                readers.entry(dep).or_default().push(key);
            }
        }
        let mut affected: BTreeSet<Term> = BTreeSet::new();
        while let Some(key) = queue.pop() {
            if !affected.insert(key.clone()) {
                continue;
            }
            if let Some(rs) = readers.get(&key) {
                queue.extend(rs.iter().map(|r| (*r).clone()));
            }
        }
        affected
    }

    /// Folds a fact-level change into the subgoal tables: tables outside
    /// the instance-level affected set survive untouched; affected tables
    /// with no recorded subgoal edges (their answers are exactly the
    /// matching bodyless instances) are *patched* by the exact answer
    /// delta; affected tables with rule-derived answers are dropped and
    /// refilled by the next query that needs them.
    fn maintain_tables_for_fact(&mut self, fact: &Term, asserted: bool) {
        let affected = self.tables_affected_by(fact);
        if affected.is_empty() {
            return;
        }
        // The retracted ground instance survives in a table if some other
        // bodyless route still derives it (a builtin-guarded twin) — the
        // same check the DRed path applies to the ground program.
        let spontaneous = !asserted && fact.is_ground() && spontaneous_fact(&self.program, fact);
        // Classify before mutating the table map: the monotone check walks
        // recorded edges into tables that may themselves be affected.
        let monotone: BTreeSet<Term> = if asserted {
            affected
                .iter()
                .filter(|key| self.positive_closure(key))
                .cloned()
                .collect()
        } else {
            BTreeSet::new()
        };
        let mut refill = Vec::new();
        for key in affected {
            let table = self.tables.get_mut(&key).expect("affected keys exist");
            let mut theta = Substitution::new();
            if table.deps.is_empty()
                && fact.is_ground()
                && match_with(&table.pattern, fact, &mut theta)
            {
                let table = Arc::make_mut(table);
                if asserted {
                    table.answers.insert(fact.clone());
                } else if !spontaneous {
                    table.answers.remove(fact);
                }
                self.pending_patched += 1;
            } else if monotone.contains(&key) {
                // The assert reaches this derived table through positive
                // edges only, so its answer delta is monotone: re-solve it
                // now, seeded with every surviving warm table, instead of
                // leaving a cold miss for the next query.
                self.tables.remove(&key);
                refill.push(key);
            } else {
                self.tables.remove(&key);
                self.pending_dropped += 1;
            }
        }
        self.refill_tables(refill);
    }

    /// `true` when every recorded dependency edge in `key`'s transitive
    /// downward closure is positive.  An asserted fact reaching such a table
    /// can only add answers (the evaluation consulted no negated subgoal),
    /// so the table can be rebuilt eagerly rather than dropped.  A dep whose
    /// table is gone makes the answer conservatively `false`.
    fn positive_closure(&self, key: &Term) -> bool {
        let mut queue = vec![key.clone()];
        let mut seen = BTreeSet::new();
        while let Some(key) = queue.pop() {
            if !seen.insert(key.clone()) {
                continue;
            }
            let Some(table) = self.tables.get(&key) else {
                return false;
            };
            for (dep, sign) in &table.deps {
                if *sign == DepSign::Neg {
                    return false;
                }
                queue.push(dep.clone());
            }
        }
        true
    }

    /// Re-solves dropped-but-monotone table patterns against the updated
    /// program.  The evaluator is seeded with every surviving table, so the
    /// refill only re-derives the affected subtree; tables it completes
    /// (including any fresh dependencies) flow back into the session.  A
    /// pattern the evaluator cannot settle falls back to the drop counter —
    /// the next query recovers exactly as it would have without the refill.
    fn refill_tables(&mut self, keys: Vec<Term>) {
        if keys.is_empty() {
            return;
        }
        let tables = std::mem::take(&mut self.tables);
        let mut evaluator =
            QueryEvaluator::with_tables(&self.program, self.opts, tables, self.storage.clone());
        let mut failed = 0usize;
        for key in &keys {
            if evaluator.solve_atom(key).is_err() {
                failed += 1;
            }
        }
        let mut tables = evaluator.into_tables();
        tables.retain(|_, t| t.complete);
        self.tables = tables;
        self.pending_refilled += keys.len() - failed;
        self.pending_dropped += failed;
    }

    /// Drops every table in the instance-level reverse closure of a rule
    /// head (a new or retracted rule can change exactly the instances its
    /// head covers, and whatever reads them).
    fn drop_tables_for_head(&mut self, head: &Term) {
        for key in self.tables_affected_by(head) {
            self.tables.remove(&key);
            self.pending_dropped += 1;
        }
    }

    /// Targeted invalidation + incremental maintenance after a fact-level
    /// change to `fact`.  `asserted` is `true` for assertion, `false` for
    /// retraction.
    ///
    /// Subgoal tables are maintained through the instance-level recorded
    /// dependency graph ([`Self::maintain_tables_for_fact`]: unaffected
    /// tables survive, fact-backed tables are patched in place, the rest of
    /// the affected closure is dropped).  The cached grounding is
    /// *maintained* semi-naively (delta instantiation on assert, DRed
    /// overdelete/rederive on retract), and under the well-founded semantics
    /// the cached model is marked dirty for the predicate-level closure —
    /// the next query that needs it re-evaluates only the affected
    /// components.
    fn invalidate_for_fact(&mut self, fact: &Term, asserted: bool) {
        // The scratch program mirrors `self.program` and is always stale
        // after a fact-level change, whatever the dependency analysis says.
        self.scratch = None;
        // The Figure 1 outcome records the settling order, which even a pure
        // EDB fact can extend; recompute it on demand.
        self.modular = None;
        self.maintain_tables_for_fact(fact, asserted);
        // `assert_fact` only admits ground atoms, but `assert_rule` (and the
        // builder) accept facts with variable predicate names, and those can
        // reach here through `retract_fact`; without a predicate identity
        // the predicate-level scope is global.  (The *model* patch is scoped
        // at the instance level either way — see `apply_fact_delta`.)
        let keyed = match pred_key(fact) {
            Some(key) => self.analysis().affected_by(&key).map(|set| (key, set)),
            None => None,
        };
        let Some((key, affected)) = keyed else {
            self.apply_fact_delta(fact, asserted, None);
            return;
        };
        let analysis = self.analysis.as_ref().expect("analysis just built");
        let pure_edb = affected.len() == 1 && !analysis.derived.contains(&key);
        if pure_edb && asserted {
            // Nothing reads the predicate and no rule derives it: the fact
            // only adds itself to the stores, the ground program and the
            // model — an exact patch, no re-evaluation needed.  (The
            // duplicate short-circuit in `assert_fact` guarantees this is a
            // genuinely new fact.)
            if let Some(possibly) = &mut self.possibly {
                Arc::make_mut(possibly).insert(fact.clone());
            }
            if let Some(ground) = &mut self.ground {
                Arc::make_mut(ground).push(GroundRule::fact(fact.clone()));
            }
            // Same cumulative cap as `assert_into_ground`: fall back to full
            // re-grounding (and its `LimitExceeded`) instead of silently
            // growing past what a fresh session would reject.
            if self
                .ground
                .as_ref()
                .is_some_and(|g| g.rules.len() > self.opts.max_atoms)
            {
                self.ground = None;
                self.possibly = None;
                self.model = None;
                self.stable = None;
                self.dirty = None;
                return;
            }
            if let Some(model) = &mut self.model {
                Arc::make_mut(model).set_true(fact.clone());
            }
            if let Some(models) = &mut self.stable {
                for m in Arc::make_mut(models).iter_mut() {
                    m.set_true(fact.clone());
                }
            }
        } else if pure_edb {
            if let Some(possibly) = &mut self.possibly {
                Arc::make_mut(possibly).remove(fact);
            }
            if let Some(ground) = &mut self.ground {
                Arc::make_mut(ground)
                    .rules
                    .retain(|r| !(r.is_fact() && r.head == *fact));
            }
            if let Some(model) = &mut self.model {
                Arc::make_mut(model).set_false(fact.clone());
            }
            if let Some(models) = &mut self.stable {
                for m in Arc::make_mut(models).iter_mut() {
                    m.set_false(fact.clone());
                }
            }
        } else {
            self.apply_fact_delta(fact, asserted, Some(affected));
        }
    }

    // ------------------------------------------------------------------
    // Semi-naive incremental maintenance of the grounding and the model
    // ------------------------------------------------------------------

    /// Folds a fact-level change into the warm caches: the grounding is
    /// patched in place, and the model is marked dirty with the **seed
    /// atoms** the maintenance actually touched, so the next use re-evaluates
    /// only their instance-level reverse closure.  `preds` is the
    /// predicate-level reverse closure (when one exists) and only bounds the
    /// DRed sweep of a retraction.  Cold (or unmaintainable) caches are
    /// dropped and rebuilt lazily as before.
    fn apply_fact_delta(&mut self, fact: &Term, asserted: bool, preds: Option<BTreeSet<PredKey>>) {
        // Stable models are not patchable (the delta can flip whole models in
        // and out of existence), but they are rebuilt from the *maintained*
        // grounding, which is where the expensive work sits.
        self.stable = None;
        let seeds = if self.ground.is_some() && self.possibly.is_some() {
            if asserted {
                self.assert_into_ground(fact)
            } else {
                self.retract_from_ground(fact, preds.as_ref())
            }
        } else {
            None
        };
        let Some(seeds) = seeds else {
            self.ground = None;
            self.possibly = None;
            self.model = None;
            self.dirty = None;
            return;
        };
        if self.semantics == Semantics::WellFounded && self.model.is_some() {
            match self.dirty.as_mut() {
                Some(previous) => previous.extend(seeds),
                None => self.dirty = Some(seeds),
            }
        } else {
            self.model = None;
            self.dirty = None;
        }
    }

    /// Semi-naive continuation for an asserted fact: extends the
    /// possibly-true store from the new fact, instantiating the rules each
    /// round's frontier enables *as the frontier lands* (one join pass per
    /// round — the heads and the instantiations come from the same joins,
    /// never re-joined against the accumulated delta), and appends them
    /// (deduplicated) to the cached ground program.
    ///
    /// Returns the **seed atoms** of the change — the fact plus the head of
    /// every appended instantiation, i.e. every atom whose rule set grew —
    /// from which the model patch derives its instance-level affected
    /// closure.  Returns `None` when the continuation cannot be completed
    /// (e.g. a resource limit); the caller then falls back to full
    /// re-grounding.
    fn assert_into_ground(&mut self, fact: &Term) -> Option<BTreeSet<Term>> {
        let possibly = Arc::make_mut(self.possibly.as_mut().expect("checked by caller"));
        let ground = Arc::make_mut(self.ground.as_mut().expect("checked by caller"));
        let mut seeds: BTreeSet<Term> = BTreeSet::new();
        seeds.insert(fact.clone());
        let fact_was_new = !possibly.contains(fact);
        // The asserted fact's bodyless instance is new unless the atom was
        // already a ground fact (a duplicate assertion, or a builtin-guarded
        // rule's instance): only then is a scan needed.
        if fact_was_new || !ground.rules.iter().any(|r| r.is_fact() && r.head == *fact) {
            ground.push(GroundRule::fact(fact.clone()));
        }
        if fact_was_new {
            possibly.insert(fact.clone());
            // Frontier instantiations carry at least one brand-new positive
            // body atom, so they cannot duplicate any pre-existing rule —
            // only each other (one copy per delta position they match).
            let mut appended: BTreeSet<GroundRule> = BTreeSet::new();
            let mut frontier = AtomStore::from_atoms([fact.clone()]);
            let mut rounds = 0usize;
            while !frontier.is_empty() {
                rounds += 1;
                if rounds > self.opts.max_rounds {
                    return None;
                }
                // Ground this frontier while the store holds exactly the
                // rounds up to it.  The instantiations' heads *are* the
                // delta-aware consequence operator's output, so the next
                // frontier falls out of the same single join pass.
                let rules = match ground_delta(&self.program, possibly, &frontier, self.opts) {
                    Ok(rules) => rules,
                    Err(_) => return None,
                };
                let mut next = AtomStore::new();
                for rule in rules {
                    if !possibly.contains(&rule.head) {
                        if possibly.len() >= self.opts.max_atoms {
                            return None;
                        }
                        possibly.insert(rule.head.clone());
                        next.insert(rule.head.clone());
                    }
                    if appended.insert(rule.clone()) {
                        seeds.insert(rule.head.clone());
                        ground.push(rule);
                    }
                }
                frontier = next;
            }
        }
        // `ground_delta` only bounds each call; enforce the same *cumulative*
        // limit a fresh grounding would hit, so a long-lived session cannot
        // silently grow past what `ensure_ground` would reject.  Falling back
        // surfaces the `LimitExceeded` on the next query, exactly like a
        // fresh session.
        (ground.rules.len() <= self.opts.max_atoms).then_some(seeds)
    }

    /// DRed-style maintenance for a retracted fact: *overdelete* the forward
    /// closure of the fact through the cached ground rules, then *rederive*
    /// every overdeleted atom that still has a supported instantiation, and
    /// finally drop the instantiations that lost support.
    ///
    /// Returns the **seed atoms** of the change — the fact, every atom that
    /// stayed deleted, and the head of every dropped instantiation (an atom
    /// that lost a rule may change truth even if other rules keep it
    /// possibly-true) — or `None` if the caches cannot be maintained.
    ///
    /// `preds` is the predicate-level reverse-dependency closure (when one
    /// exists): every atom that can be overdeleted (and every rule that can
    /// lose support) has its head inside it, so the index and the final
    /// sweep skip rules headed outside it entirely — a retraction confined
    /// to one component never walks the others' rules.
    fn retract_from_ground(
        &mut self,
        fact: &Term,
        preds: Option<&BTreeSet<PredKey>>,
    ) -> Option<BTreeSet<Term>> {
        let possibly = Arc::make_mut(self.possibly.as_mut()?);
        let ground = Arc::make_mut(self.ground.as_mut()?);
        // One pass over the in-scope rules builds the index both fixpoints
        // run on (rules by positive body atom), so neither loop ever rescans
        // the ground program per round.
        let mut rules_by_pos: HashMap<&Term, Vec<usize>> = HashMap::new();
        for (i, rule) in ground.rules.iter().enumerate() {
            if !pred_scope_affects(preds, &rule.head) {
                continue;
            }
            for atom in &rule.pos {
                rules_by_pos.entry(atom).or_default().push(i);
            }
        }
        // Overdelete: everything whose derivation may pass through `fact`,
        // by worklist over the index.
        let mut deleted: BTreeSet<Term> = BTreeSet::new();
        deleted.insert(fact.clone());
        let mut worklist = vec![fact.clone()];
        while let Some(atom) = worklist.pop() {
            let Some(readers) = rules_by_pos.get(&atom) else {
                continue;
            };
            for &ri in readers {
                let head = &ground.rules[ri].head;
                if !deleted.contains(head) {
                    deleted.insert(head.clone());
                    worklist.push(head.clone());
                }
            }
        }
        for atom in &deleted {
            possibly.remove(atom);
        }
        // The retracted EDB instance only survives if another bodyless route
        // to the same ground fact exists (e.g. a builtin-guarded rule).
        let spontaneous = spontaneous_fact(&self.program, fact);
        // Rederive: a deleted atom returns as soon as one of its cached
        // instantiations is fully supported by surviving atoms.  Only rules
        // whose head was overdeleted can rederive anything; seed with those,
        // then chase the index from each re-added atom.
        let candidates: Vec<usize> = ground
            .rules
            .iter()
            .enumerate()
            .filter(|(_, r)| deleted.contains(&r.head))
            .map(|(i, _)| i)
            .collect();
        let rederives = |rule: &GroundRule, possibly: &FactStore| {
            rule.pos.iter().all(|a| possibly.contains(a))
                && !(rule.is_fact() && rule.head == *fact && !spontaneous)
        };
        let mut worklist: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&ri| rederives(&ground.rules[ri], possibly))
            .collect();
        while let Some(ri) = worklist.pop() {
            let head = &ground.rules[ri].head;
            if !deleted.remove(head) {
                continue;
            }
            possibly.insert(head.clone());
            // Re-adding `head` can revalidate overdeleted rules reading it.
            if let Some(readers) = rules_by_pos.get(head) {
                for &reader in readers {
                    let rule = &ground.rules[reader];
                    if deleted.contains(&rule.head) && rederives(rule, possibly) {
                        worklist.push(reader);
                    }
                }
            }
        }
        // Seeds for the instance-level model patch: the fact, whatever
        // stayed deleted, and (below) the head of every dropped rule.
        let mut seeds: BTreeSet<Term> = BTreeSet::new();
        seeds.insert(fact.clone());
        seeds.extend(deleted.iter().cloned());
        // Drop the instantiations that lost support.  (`possibly` shrank, so
        // this is exactly what a fresh relevant instantiation would omit;
        // out-of-scope rules cannot have lost anything.)
        ground.rules.retain(|r| {
            let keep = !pred_scope_affects(preds, &r.head)
                || (r.pos.iter().all(|a| possibly.contains(a))
                    && !(r.is_fact() && r.head == *fact && !spontaneous));
            if !keep {
                seeds.insert(r.head.clone());
            }
            keep
        });
        Some(seeds)
    }

    // ------------------------------------------------------------------
    // Cached analyses and models
    // ------------------------------------------------------------------

    fn analysis(&mut self) -> &DepAnalysis {
        if self.analysis.is_none() {
            self.analysis = Some(DepAnalysis::build(&self.program));
        }
        self.analysis.as_ref().expect("just built")
    }

    fn ensure_ground(&mut self) -> Result<(), EngineError> {
        if self.ground.is_none() {
            // Ground in two steps (rather than through `relevant_ground`) so
            // the possibly-true store is kept: it is the closed store the
            // semi-naive continuation of `assert_fact` extends.  Built on the
            // session's configured backend, so a spill session pages the
            // possibly-true store's cold relations to disk from the start.
            let mut possibly = FactStore::new(&self.storage);
            least_model_into(
                &self.program,
                NegationMode::Ignore,
                self.opts,
                &mut possibly,
            )?;
            self.ground = Some(Arc::new(ground_against(
                &self.program,
                &possibly,
                self.opts,
            )?));
            self.possibly = Some(Arc::new(possibly));
            self.groundings += 1;
        }
        Ok(())
    }

    /// The cached relevant instantiation of the program, grounding on first
    /// use.
    pub fn ground_program(&mut self) -> Result<&GroundProgram, EngineError> {
        self.ensure_ground()?;
        Ok(self.ground.as_deref().expect("just grounded"))
    }

    /// The cached full model under the session's semantics, computing it on
    /// first use.  For [`Semantics::Stable`] this is the consensus model of
    /// Definition 3.7; for [`Semantics::ModularCheck`] it is the Figure 1
    /// model (or an error if the program is rejected).
    pub fn model(&mut self) -> Result<&Model, EngineError> {
        self.ensure_model()?;
        Ok(self.model.as_deref().expect("just built"))
    }

    /// Ensures the cached model is usable and *exact*, reporting how it was
    /// obtained: reused as-is, patched in place (pending fact-level deltas
    /// folded in by re-evaluating only the affected components), or rebuilt.
    fn ensure_model(&mut self) -> Result<ModelSource, EngineError> {
        if self.model.is_some() {
            let Some(seeds) = self.dirty.take() else {
                return Ok(ModelSource::Cached);
            };
            // Invariant: `dirty` is only set while the grounding is warm and
            // the semantics is well-founded.
            debug_assert!(self.semantics == Semantics::WellFounded);
            self.ensure_ground()?;
            let ground = self.ground.as_ref().expect("dirty implies warm ground");
            // Instance-level warm start: only the seeds' reverse closure
            // through the maintained ground rules is re-evaluated; everything
            // else — including untouched atoms of the *same* strongly
            // connected component — keeps its previous truth as frozen
            // context.
            let closure = affected_closure(ground, seeds);
            let previous = Arc::unwrap_or_clone(self.model.take().expect("checked above"));
            let patched = well_founded_patch_with(
                ground,
                previous,
                |atom| closure.contains(atom),
                self.opts.eval_threads,
            );
            self.model = Some(Arc::new(patched));
            self.patches += 1;
            return Ok(ModelSource::Patched);
        }
        self.dirty = None;
        let model = match self.semantics {
            Semantics::WellFounded => {
                self.ensure_ground()?;
                well_founded_eval(
                    self.ground.as_deref().expect("just grounded"),
                    self.opts.eval_threads,
                )
            }
            Semantics::Stable => consensus_model(self.stable_models()?)?,
            Semantics::ModularCheck => {
                let outcome = self.check_modular()?;
                match (&outcome.model, &outcome.reason) {
                    (Some(model), _) => model.clone(),
                    (None, reason) => {
                        return Err(EngineError::NotModularlyStratified(
                            reason.clone().unwrap_or_else(|| {
                                "the Figure 1 procedure rejected the program".into()
                            }),
                        ))
                    }
                }
            }
        };
        self.model = Some(Arc::new(model));
        Ok(ModelSource::Rebuilt)
    }

    /// The cached stable models of the program (computing them on first
    /// use), regardless of the session's query semantics.
    pub fn stable_models(&mut self) -> Result<&[Model], EngineError> {
        if self.stable.is_none() {
            self.ensure_ground()?;
            let ground = self.ground.as_deref().expect("just grounded");
            self.stable = Some(Arc::new(stable_models_of_ground(ground, self.stable_opts)?));
        }
        Ok(self.stable.as_deref().expect("just computed"))
    }

    /// Runs (and caches) the Figure 1 modular-stratification procedure.
    pub fn check_modular(&mut self) -> Result<&ModularOutcome, EngineError> {
        if self.modular.is_none() {
            self.modular = Some(Arc::new(figure1_procedure(&self.program, self.opts)?));
        }
        Ok(self.modular.as_deref().expect("just checked"))
    }

    // ------------------------------------------------------------------
    // Planning and querying
    // ------------------------------------------------------------------

    /// Builds the plan [`query`](HiLogDb::query) would execute, without
    /// evaluating anything.
    pub fn explain(&self, query: &Query) -> QueryPlan {
        build_plan(
            self.semantics,
            query,
            self.model.is_some(),
            self.model.is_some() && self.dirty.is_some(),
            self.tables.values().filter(|t| t.complete).count(),
            self.pending_patched,
            self.pending_dropped,
        )
    }

    /// Answers a query through the plan [`explain`](HiLogDb::explain)
    /// chooses, reusing every cache the session holds.
    pub fn query(&mut self, query: &Query) -> Result<QueryResult, EngineError> {
        let plan = self.explain(query);
        // Table-maintenance observability: how many tables survived into
        // this query (read before the route consumes the table map).
        let tables_reused = self.tables.len();
        // Join-index observability: every candidate lookup this query causes
        // (grounding joins and subgoal-table joins alike) lands in these
        // thread-cumulative counters; the deltas are the per-query numbers.
        let (probes_before, fallbacks_before) = crate::horn::probe_counters();
        // Parallel observability: process-wide pool counters, read as deltas
        // around the query (see `pool::parallel_counters` for the caveats).
        let (waves_before, rounds_before, tasks_before) = crate::pool::parallel_counters();
        // Storage observability: spill faults and page-outs, same
        // process-wide delta convention as the probe/pool counters.
        let (faults_before, spills_before) = crate::storage::storage_counters();
        // Deadline observability: thread-local, so the delta is exact.
        let (dl_checks_before, dl_exceeded_before) = crate::deadline::deadline_counters();
        let mut result = match plan.strategy {
            PlanStrategy::MagicSets => match self.query_magic(query) {
                Ok((answers, stats)) => assemble(answers, stats, plan, None),
                Err(
                    err @ (EngineError::NotModularlyStratified(_) | EngineError::Floundering(_)),
                ) => {
                    // The tabled route cannot settle this query; the
                    // bottom-up well-founded construction still can.
                    let note = err.to_string();
                    let (answers, stats) = self.query_full(query)?;
                    assemble(answers, stats, plan, Some(note))
                }
                Err(err) => return Err(err),
            },
            PlanStrategy::FullModel => {
                let (answers, stats) = self.query_full(query)?;
                assemble(answers, stats, plan, None)
            }
        };
        // Consumed only on success, so a failed query (no stats to carry
        // them) leaves the mutation window's counters for the next one.
        result.stats.tables_patched = std::mem::take(&mut self.pending_patched);
        result.stats.tables_dropped = std::mem::take(&mut self.pending_dropped);
        result.stats.tables_refilled = std::mem::take(&mut self.pending_refilled);
        result.stats.tables_reused = tables_reused;
        let (probes_after, fallbacks_after) = crate::horn::probe_counters();
        result.stats.index_probes = probes_after - probes_before;
        result.stats.index_fallback_scans = fallbacks_after - fallbacks_before;
        let (waves_after, rounds_after, tasks_after) = crate::pool::parallel_counters();
        result.stats.parallel_waves = waves_after - waves_before;
        result.stats.parallel_partitioned_rounds = rounds_after - rounds_before;
        result.stats.parallel_tasks = tasks_after - tasks_before;
        result.stats.live_symbols = hilog_core::symbol::symbol_pool_stats().live;
        let (faults_after, spills_after) = crate::storage::storage_counters();
        result.stats.storage_residency_faults = faults_after.saturating_sub(faults_before);
        result.stats.storage_spill_writes = spills_after.saturating_sub(spills_before);
        let (dl_checks_after, dl_exceeded_after) = crate::deadline::deadline_counters();
        result.stats.deadline_checks = dl_checks_after - dl_checks_before;
        result.stats.deadline_exceeded = dl_exceeded_after - dl_exceeded_before;
        let storage = self.storage_stats();
        result.stats.storage_resident_facts = storage.resident_facts;
        result.stats.storage_spilled_facts = storage.spilled_facts;
        result.stats.storage_segment_bytes = storage.segment_bytes;
        Ok(result)
    }

    /// Aggregate relation-storage statistics over the session's stores: the
    /// possibly-true store (when grounding has run) and every subgoal
    /// table's answer store.  Under [`StorageConfig::InMemory`] everything
    /// is resident and the spill fields are zero.
    pub fn storage_stats(&self) -> RelationStorageStats {
        let mut total = RelationStorageStats::default();
        if let Some(possibly) = &self.possibly {
            total.merge(&possibly.storage_stats());
        }
        for table in self.tables.values() {
            total.merge(&table.answers.storage_stats());
        }
        total
    }

    /// Three-valued truth of a single ground atom under the session's
    /// semantics.
    pub fn holds(&mut self, atom: &Term) -> Result<Truth, EngineError> {
        if !atom.is_ground() {
            return Err(EngineError::Floundering(format!(
                "holds() requires a ground atom, got `{atom}`"
            )));
        }
        Ok(self.query(&Query::atom(atom.clone()))?.truth)
    }

    /// Magic-sets route: tabled evaluation seeded with the session's
    /// completed tables; completed tables flow back into the session.
    fn query_magic(&mut self, query: &Query) -> Result<(Vec<QueryAnswer>, EvalStats), EngineError> {
        let vars = query.variables();
        // Fast path: a single-atom query whose table is already complete is
        // answered straight from the session's tables — no evaluator (and no
        // per-query rule index) is built at all.  Sound because a complete
        // table's recorded dependency closure is settled and cycle-free, so
        // a cold evaluation of the same pattern would reach the same
        // answers and the same (non-)verdict.
        if let [Literal::Pos(atom)] = query.literals.as_slice() {
            let key = normalize_pattern(atom);
            if let Some(table) = self.tables.get(&key) {
                if table.complete {
                    let answers = table
                        .answers
                        .collect_atoms()
                        .into_iter()
                        .filter_map(|answer| {
                            let mut theta = Substitution::new();
                            match_with(atom, &answer, &mut theta)
                                .then(|| true_answer(&theta, &vars))
                        })
                        .collect();
                    let stats = EvalStats {
                        cached_subqueries: 1,
                        ..EvalStats::default()
                    };
                    return Ok((answers, stats));
                }
            }
        }
        let tables = std::mem::take(&mut self.tables);
        // `QueryEvaluator::stats` totals over every table it holds, seeded
        // ones included; subtract the seeded counts so the reported stats
        // cover this query only (seeded tables are complete and gain no
        // answers during the run).
        let seeded_tables = tables.len();
        let seeded_answers: usize = tables.values().map(|t| t.answers.len()).sum();
        let per_query = move |mut stats: EvalStats| {
            stats.subqueries = stats.subqueries.saturating_sub(seeded_tables);
            stats.answers = stats.answers.saturating_sub(seeded_answers);
            stats
        };
        if let [Literal::Pos(atom)] = query.literals.as_slice() {
            // Single-atom queries table the pattern itself — the second run
            // of the same query is a pure cache hit.
            let mut evaluator =
                QueryEvaluator::with_tables(&self.program, self.opts, tables, self.storage.clone());
            let solved = evaluator.solve_atom(atom);
            let stats = per_query(evaluator.stats());
            let mut tables = evaluator.into_tables();
            tables.retain(|_, t| t.complete);
            self.tables = tables;
            let answers = solved?
                .into_iter()
                .filter_map(|answer| {
                    let mut theta = Substitution::new();
                    match_with(atom, &answer, &mut theta).then(|| true_answer(&theta, &vars))
                })
                .collect();
            Ok((answers, stats))
        } else {
            // Conjunctions run through an auxiliary `__query_answer` rule
            // appended to the session's scratch copy of the program (cloned
            // once, reused across queries); every table except the auxiliary
            // one remains a valid table of the base program.
            let head = Term::apps(
                QUERY_HEAD,
                vars.iter().map(|v| Term::Var(v.clone())).collect(),
            );
            if self.scratch.is_none() {
                self.scratch = Some(Program::clone(&self.program));
            }
            let scratch = self.scratch.as_mut().expect("just cloned");
            scratch.push(Rule::new(head.clone(), query.literals.clone()));
            let mut evaluator =
                QueryEvaluator::with_tables(scratch, self.opts, tables, self.storage.clone());
            let solved = evaluator.solve_atom(&head);
            let stats = per_query(evaluator.stats());
            let mut tables = evaluator.into_tables();
            self.scratch.as_mut().expect("just cloned").rules.pop();
            // The auxiliary table must not leak into later conjunctions: its
            // key is the *rendered* pattern (where `__query_answer` comes out
            // quoted), so compare the pattern's functor, not the key string.
            let aux_functor = Term::sym(QUERY_HEAD);
            tables.retain(|_, t| t.complete && t.pattern.outermost_functor() != &aux_functor);
            self.tables = tables;
            let answers = solved?
                .into_iter()
                .filter_map(|answer| {
                    let mut theta = Substitution::new();
                    match_with(&head, &answer, &mut theta).then(|| true_answer(&theta, &vars))
                })
                .collect();
            Ok((answers, stats))
        }
    }

    /// Full-model route: match the query against the cached model.
    fn query_full(&mut self, query: &Query) -> Result<(Vec<QueryAnswer>, EvalStats), EngineError> {
        let groundings_before = self.groundings;
        let patches_before = self.patches;
        let model_source = self.ensure_model()?;
        let model = self.model.as_ref().expect("just built");
        let answers = eval_against_model(model, query)?;
        let stats = EvalStats {
            answers: answers.len(),
            groundings: self.groundings - groundings_before,
            patches: self.patches - patches_before,
            model_source,
            ..EvalStats::default()
        };
        Ok((answers, stats))
    }

    // ------------------------------------------------------------------
    // Snapshot export (the writer half of the serving split)
    // ------------------------------------------------------------------

    /// Converts the session into a serving pair: a single
    /// [`DbWriter`](crate::snapshot::DbWriter) owning this session's
    /// incremental mutation path, and a [`SnapshotHandle`](crate::snapshot::SnapshotHandle)
    /// any number of reader threads can clone to pin immutable
    /// [`DbSnapshot`](crate::snapshot::DbSnapshot)s.  The initial snapshot
    /// (epoch 0) is published immediately.
    pub fn into_serving(self) -> (crate::snapshot::DbWriter, crate::snapshot::SnapshotHandle) {
        crate::snapshot::DbWriter::from_db(self)
    }

    /// [`HiLogDb::into_serving`], but with the initial snapshot published at
    /// `epoch` instead of 0.  This is the recovery path: a session restored
    /// from a checkpoint plus a WAL tail resumes serving at the epoch it had
    /// reached when it went down, so clients never observe epochs moving
    /// backwards across a restart.
    pub fn into_serving_at(
        self,
        epoch: u64,
    ) -> (crate::snapshot::DbWriter, crate::snapshot::SnapshotHandle) {
        crate::snapshot::DbWriter::from_db_at(self, epoch)
    }

    /// The cached full model, if one is warm — pending fact-level deltas are
    /// discharged first so the returned model is exact (`None` if the
    /// discharge fails or no model has been computed).  Checkpointing uses
    /// this to persist the model without forcing an evaluation: a session
    /// that never computed its model simply checkpoints without one.
    pub fn cached_model(&mut self) -> Option<Arc<Model>> {
        if self.dirty.is_some() && self.ensure_model().is_err() {
            self.model = None;
            self.dirty = None;
        }
        self.model.clone()
    }

    /// Cheap `Arc` clones of every cache a published snapshot shares with the
    /// session.  Pending model deltas are discharged first (the incremental
    /// patch the next query would have applied), so the exported model is
    /// exact; if the discharge fails the model is dropped and the snapshot
    /// rebuilds it lazily, surfacing the error per query exactly like a
    /// fresh session would.
    pub(crate) fn snapshot_parts(&mut self) -> SnapshotParts {
        if self.dirty.is_some() && self.ensure_model().is_err() {
            self.model = None;
            self.dirty = None;
        }
        SnapshotParts {
            program: self.program.clone(),
            opts: self.opts,
            stable_opts: self.stable_opts,
            semantics: self.semantics,
            ground: self.ground.clone(),
            possibly: self.possibly.clone(),
            model: self.model.clone(),
            stable: self.stable.clone(),
            modular: self.modular.clone(),
            tables: self.tables.clone(),
            storage: self.storage.clone(),
        }
    }

    /// Folds completed subgoal tables a snapshot derived (against the same
    /// program epoch) back into the session, so queries answered on reader
    /// threads warm the writer's table cache too.  Only fills gaps: a table
    /// the session already holds (and maintains under mutation) wins.
    pub(crate) fn adopt_tables(&mut self, fresh: HashMap<Term, Arc<Table>>) {
        for (key, table) in fresh {
            self.tables.entry(key).or_insert(table);
        }
    }
}

/// `Arc` clones of the session caches a [`crate::snapshot::DbSnapshot`] is
/// assembled from; produced by [`HiLogDb::snapshot_parts`].
pub(crate) struct SnapshotParts {
    pub(crate) program: Arc<Program>,
    pub(crate) opts: EvalOptions,
    pub(crate) stable_opts: StableOptions,
    pub(crate) semantics: Semantics,
    pub(crate) ground: Option<Arc<GroundProgram>>,
    pub(crate) possibly: Option<Arc<FactStore>>,
    pub(crate) model: Option<Arc<Model>>,
    pub(crate) stable: Option<Arc<Vec<Model>>>,
    pub(crate) modular: Option<Arc<ModularOutcome>>,
    pub(crate) tables: HashMap<Term, Arc<Table>>,
    pub(crate) storage: StorageConfig,
}

/// Builds the [`QueryPlan`] for a query given the cache state of whichever
/// side is planning it — the mutable [`HiLogDb`] session or an immutable
/// [`crate::snapshot::DbSnapshot`] (whose model is never stale and whose
/// tables are never patched or dropped, only gained).
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_plan(
    semantics: Semantics,
    query: &Query,
    cached_model: bool,
    stale_model: bool,
    cached_subqueries: usize,
    patched_subqueries: usize,
    dropped_subqueries: usize,
) -> QueryPlan {
    let bound = query_is_bound(query);
    let (strategy, reason) = if semantics != Semantics::WellFounded {
        (
            PlanStrategy::FullModel,
            format!(
                "the {semantics} semantics is defined through the full model, so the query is \
                 answered from the session's cached model"
            ),
        )
    } else if bound {
        (
            PlanStrategy::MagicSets,
            "the first literal has a ground predicate name, so query-directed \
             (magic-sets) evaluation visits only the relevant subgoals and reuses the \
             session's completed tables"
                .to_string(),
        )
    } else {
        (
            PlanStrategy::FullModel,
            "the query has no leading positive literal with a ground predicate name \
             (it is unbound), so it is answered from the session's cached full model"
                .to_string(),
        )
    };
    QueryPlan {
        strategy,
        semantics,
        query: query.to_string(),
        adornment: adornment(query),
        cached_model,
        stale_model,
        cached_subqueries,
        patched_subqueries,
        dropped_subqueries,
        reason,
    }
}

pub(crate) fn assemble(
    answers: Vec<QueryAnswer>,
    stats: EvalStats,
    plan: QueryPlan,
    fallback: Option<String>,
) -> QueryResult {
    let truth = overall_truth(&answers);
    QueryResult {
        answers,
        truth,
        stats,
        plan,
        fallback,
    }
}

fn overall_truth(answers: &[QueryAnswer]) -> Truth {
    let mut best = Truth::False;
    for a in answers {
        match a.truth {
            Truth::True => return Truth::True,
            Truth::Undefined => best = Truth::Undefined,
            Truth::False => {}
        }
    }
    best
}

pub(crate) fn true_answer(theta: &Substitution, vars: &[Var]) -> QueryAnswer {
    QueryAnswer {
        bindings: vars
            .iter()
            .map(|v| (v.clone(), theta.apply(&Term::Var(v.clone()))))
            .collect(),
        truth: Truth::True,
    }
}

/// Three-valued conjunctive evaluation of a query against a model.  Branches
/// carry the weakest truth seen so far; false literals prune.
pub(crate) fn eval_against_model(
    model: &Model,
    query: &Query,
) -> Result<Vec<QueryAnswer>, EngineError> {
    let vars = query.variables();
    let mut branches: Vec<(Substitution, Truth)> = vec![(Substitution::new(), Truth::True)];
    for lit in &query.literals {
        let mut next = Vec::new();
        for (theta, truth) in branches {
            match lit {
                Literal::Pos(atom) => {
                    let instantiated = theta.apply(atom);
                    if instantiated.is_ground() {
                        match model.truth(&instantiated) {
                            Truth::False => {}
                            t => next.push((theta.clone(), conj(truth, t))),
                        }
                    } else {
                        // Ground-named patterns walk only the name's
                        // contiguous range of the ordered base.
                        for candidate in model.base_candidates(&instantiated) {
                            let t = model.truth(candidate);
                            if t == Truth::False {
                                continue;
                            }
                            let mut extended = theta.clone();
                            if match_with(&instantiated, candidate, &mut extended) {
                                next.push((extended, conj(truth, t)));
                            }
                        }
                    }
                }
                Literal::Neg(atom) => {
                    let instantiated = theta.apply(atom);
                    if !instantiated.is_ground() {
                        return Err(EngineError::Floundering(format!(
                            "negative literal `not {instantiated}` is non-ground when selected \
                             (bind its variables with an earlier positive literal)"
                        )));
                    }
                    match model.truth(&instantiated) {
                        Truth::True => {}
                        Truth::False => next.push((theta.clone(), truth)),
                        Truth::Undefined => next.push((theta.clone(), Truth::Undefined)),
                    }
                }
                Literal::Builtin(b) => {
                    let mut extended = theta.clone();
                    match b.eval(&mut extended) {
                        Ok(true) => next.push((extended, truth)),
                        Ok(false) => {}
                        Err(e) => return Err(EngineError::Core(e)),
                    }
                }
                Literal::Aggregate(_) => {
                    return Err(EngineError::Unsupported(
                        "aggregate literals in full-model query evaluation are unsupported; \
                         ask a bound query (magic-sets plan) or use the aggregation evaluator"
                            .into(),
                    ))
                }
            }
        }
        branches = next;
    }
    // Group by bindings, keeping the strongest truth per instance.
    let mut best: BTreeMap<Vec<(Var, Term)>, Truth> = BTreeMap::new();
    for (theta, truth) in branches {
        let bindings: Vec<(Var, Term)> = vars
            .iter()
            .map(|v| (v.clone(), theta.apply(&Term::Var(v.clone()))))
            .collect();
        let entry = best.entry(bindings).or_insert(truth);
        if *entry == Truth::Undefined && truth == Truth::True {
            *entry = Truth::True;
        }
    }
    Ok(best
        .into_iter()
        .map(|(bindings, truth)| QueryAnswer { bindings, truth })
        .collect())
}

fn conj(a: Truth, b: Truth) -> Truth {
    if a == Truth::Undefined || b == Truth::Undefined {
        Truth::Undefined
    } else {
        Truth::True
    }
}

/// The consensus model of Definition 3.7 over a set of stable models.
pub(crate) fn consensus_model(models: &[Model]) -> Result<Model, EngineError> {
    if models.is_empty() {
        return Err(EngineError::NoStableModels);
    }
    let mut base: BTreeSet<Term> = BTreeSet::new();
    for m in models {
        base.extend(m.base().iter().cloned());
    }
    let mut true_atoms = Vec::new();
    let mut undefined = Vec::new();
    for atom in &base {
        if models.iter().all(|m| m.is_true(atom)) {
            true_atoms.push(atom.clone());
        } else if !models.iter().all(|m| m.is_false(atom)) {
            undefined.push(atom.clone());
        }
    }
    Ok(Model::new(base, true_atoms, undefined))
}

// ----------------------------------------------------------------------
// Predicate-dependency analysis for targeted invalidation
// ----------------------------------------------------------------------

/// A predicate identity: the (ground) predicate-name term plus arity.
/// Symbols are `Arc`-backed, so cloning a first-order name is one refcount
/// bump — this key is on the per-atom hot path of the model patch.
type PredKey = (Term, Option<usize>);

fn pred_key(atom: &Term) -> Option<PredKey> {
    let name = atom.name();
    name.is_ground().then(|| (name.clone(), atom.arity()))
}

/// Renames a probe term's variables into a reserved generation so that
/// unifying it against a table's normalised pattern (whose variables are
/// generation-0 `_N*`) can never capture a variable by name.
fn rename_apart(probe: &Term) -> Term {
    let theta: Substitution = probe
        .variables()
        .iter()
        .map(|v| (v.clone(), Term::Var(v.with_generation(u32::MAX))))
        .collect();
    theta.apply(probe)
}

/// Returns `true` if some rule with no positive or negative body atoms (a
/// remaining bare fact, or a builtin-guarded rule like `f :- 1 < 2.`) still
/// produces `fact` as a bodyless ground instance.  Used by the DRed
/// retraction path to decide whether the ground fact survives the removal of
/// its program-fact occurrence.
fn spontaneous_fact(program: &Program, fact: &Term) -> bool {
    let empty = AtomStore::new();
    program.iter().any(|rule| {
        rule.positive_atoms().count() == 0
            && rule.negative_atoms().count() == 0
            && join_body(rule, &empty, None, NegationMode::Ignore)
                .map(|thetas| thetas.iter().any(|theta| theta.apply(&rule.head) == *fact))
                .unwrap_or(false)
    })
}

/// Reverse dependency information over the program's predicates, used to
/// decide which caches a fact-level mutation can reach.
#[derive(Debug, Clone, Default)]
struct DepAnalysis {
    /// `dependents[p]` = head predicates of rules whose body reads `p`.
    dependents: HashMap<PredKey, BTreeSet<PredKey>>,
    /// Head predicates of rules with a variable predicate name somewhere in
    /// the body: they read *every* predicate.
    universal_readers: BTreeSet<PredKey>,
    /// `true` when some proper rule's head predicate name is non-ground; such
    /// a rule can define any predicate, so every mutation is global.
    wildcard_heads: bool,
    /// Head predicates of proper (non-fact) rules.
    derived: BTreeSet<PredKey>,
}

impl DepAnalysis {
    fn build(program: &Program) -> Self {
        let mut analysis = DepAnalysis::default();
        for rule in program.proper_rules() {
            let Some(head) = pred_key(&rule.head) else {
                analysis.wildcard_heads = true;
                continue;
            };
            analysis.derived.insert(head.clone());
            for lit in &rule.body {
                let atom = match lit {
                    Literal::Pos(a) | Literal::Neg(a) => a,
                    Literal::Aggregate(a) => &a.pattern,
                    Literal::Builtin(_) => continue,
                };
                match pred_key(atom) {
                    Some(body_key) => {
                        analysis
                            .dependents
                            .entry(body_key)
                            .or_default()
                            .insert(head.clone());
                    }
                    None => {
                        analysis.universal_readers.insert(head.clone());
                    }
                }
            }
        }
        analysis
    }

    /// Every predicate whose cached state may change when `key` gains or
    /// loses a fact (transitive reverse closure, always including the
    /// universal readers).  `None` means "everything" — a variable-headed
    /// rule exists.
    fn affected_by(&self, key: &PredKey) -> Option<BTreeSet<PredKey>> {
        if self.wildcard_heads {
            return None;
        }
        let mut affected: BTreeSet<PredKey> = BTreeSet::new();
        let mut queue: Vec<PredKey> = vec![key.clone()];
        queue.extend(self.universal_readers.iter().cloned());
        while let Some(k) = queue.pop() {
            if !affected.insert(k.clone()) {
                continue;
            }
            if let Some(readers) = self.dependents.get(&k) {
                queue.extend(readers.iter().cloned());
            }
        }
        Some(affected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hilog_syntax::{parse_program, parse_query, parse_term};

    fn game_db() -> HiLogDb {
        HiLogDb::new(
            parse_program(
                "winning(X) :- move(X, Y), not winning(Y).\n\
                 move(a, b). move(b, c).",
            )
            .unwrap(),
        )
    }

    #[test]
    fn expired_deadline_aborts_the_query_and_counts_in_stats() {
        use std::time::{Duration, Instant};
        let mut db = game_db();
        let query = parse_query("?- winning(X).").unwrap();
        let err =
            crate::deadline::with_deadline(Some(Instant::now() - Duration::from_millis(1)), || {
                db.query(&query).unwrap_err()
            });
        assert!(matches!(err, EngineError::DeadlineExceeded(_)));
        // The session stays usable: without a deadline the same query
        // answers, and its stats carry the (zero) per-query deadline deltas.
        let result = db.query(&query).unwrap();
        assert_eq!(result.answers.len(), 1);
        assert_eq!(result.stats.deadline_checks, 0);
        assert_eq!(result.stats.deadline_exceeded, 0);
        // A generous deadline passes while still being checked.
        let result =
            crate::deadline::with_deadline(Some(Instant::now() + Duration::from_secs(60)), || {
                let mut fresh = game_db();
                fresh.query(&query).unwrap()
            });
        assert_eq!(result.answers.len(), 1);
        assert!(result.stats.deadline_checks > 0);
        assert_eq!(result.stats.deadline_exceeded, 0);
    }

    #[test]
    fn bound_query_twice_reuses_tables_without_rule_applications() {
        let mut db = game_db();
        let query = parse_query("?- winning(X).").unwrap();
        let first = db.query(&query).unwrap();
        assert!(first.stats.rule_applications > 0);
        assert_eq!(first.answers.len(), 1);
        let second = db.query(&query).unwrap();
        assert_eq!(second.stats.rule_applications, 0, "tables were not reused");
        assert!(second.stats.cached_subqueries > 0);
        assert_eq!(second.answers, first.answers);
    }

    #[test]
    fn unbound_query_grounds_once_then_reuses_the_model() {
        let mut db = game_db();
        let query = parse_query("?- P(a, X).").unwrap();
        let first = db.query(&query).unwrap();
        assert_eq!(first.stats.groundings, 1);
        let second = db.query(&query).unwrap();
        assert_eq!(second.stats.groundings, 0, "model was re-grounded");
        assert_eq!(second.answers, first.answers);
        // P(a, X) matches move(a, b).
        assert_eq!(first.answers.len(), 1);
        assert_eq!(first.answers[0].binding("P").unwrap(), &Term::sym("move"));
    }

    #[test]
    fn explain_routes_bound_vs_unbound() {
        let db = game_db();
        let bound = db.explain(&parse_query("?- winning(a).").unwrap());
        assert!(bound.is_magic_sets());
        assert_eq!(bound.adornment, "b");
        let unbound = db.explain(&parse_query("?- P(a, b).").unwrap());
        assert!(unbound.is_full_model());
    }

    #[test]
    fn holds_is_three_valued() {
        let mut db =
            HiLogDb::new(parse_program("p :- not q. q :- not p. r. s :- r, not r.").unwrap());
        assert_eq!(db.holds(&parse_term("r").unwrap()).unwrap(), Truth::True);
        assert_eq!(
            db.holds(&parse_term("p").unwrap()).unwrap(),
            Truth::Undefined
        );
        assert_eq!(db.holds(&parse_term("s").unwrap()).unwrap(), Truth::False);
    }

    #[test]
    fn magic_route_falls_back_on_negative_cycles() {
        // `p :- not p.` makes the tabled route report a cycle; the session
        // transparently answers from the well-founded model instead.
        let mut db = HiLogDb::new(parse_program("p :- not p. q.").unwrap());
        let result = db.query(&parse_query("?- p.").unwrap()).unwrap();
        assert!(result.fallback.is_some());
        assert_eq!(result.truth, Truth::Undefined);
    }

    #[test]
    fn assert_fact_invalidates_only_dependent_tables() {
        let mut db = HiLogDb::new(
            parse_program(
                "winning(X) :- move(X, Y), not winning(Y).\n\
                 reach(X) :- edge(X, Y).\n\
                 move(a, b). move(b, c). edge(u, v).",
            )
            .unwrap(),
        );
        let win = parse_query("?- winning(X).").unwrap();
        let reach = parse_query("?- reach(X).").unwrap();
        db.query(&win).unwrap();
        db.query(&reach).unwrap();
        let warm = db.explain(&win).cached_subqueries;
        assert!(warm > 0);
        // A new edge fact only reaches `reach`: the winning tables survive.
        db.assert_fact(parse_term("edge(v, w)").unwrap()).unwrap();
        let after = db.explain(&win).cached_subqueries;
        assert!(after > 0, "unrelated tables were dropped");
        let second = db.query(&win).unwrap();
        assert_eq!(second.stats.rule_applications, 0);
        // And the reach query sees the new fact.
        let reach_result = db.query(&reach).unwrap();
        assert!(reach_result
            .answers
            .iter()
            .any(|a| a.binding("X").unwrap() == &Term::sym("v")));
    }

    #[test]
    fn assert_fact_on_read_predicate_updates_answers() {
        let mut db = game_db();
        let query = parse_query("?- winning(X).").unwrap();
        let before = db.query(&query).unwrap();
        assert_eq!(before.answers.len(), 1); // b
        db.assert_fact(parse_term("move(c, d)").unwrap()).unwrap();
        let after = db.query(&query).unwrap();
        // Chain a -> b -> c -> d: now c wins too and b loses.
        let xs: Vec<String> = after
            .answers
            .iter()
            .map(|a| a.binding("X").unwrap().to_string())
            .collect();
        assert!(xs.contains(&"c".to_string()));
    }

    #[test]
    fn retract_fact_restores_the_original_answers() {
        let mut db = game_db();
        let query = parse_query("?- winning(X).").unwrap();
        let before = db.query(&query).unwrap();
        db.assert_fact(parse_term("move(c, d)").unwrap()).unwrap();
        db.query(&query).unwrap();
        assert!(db.retract_fact(&parse_term("move(c, d)").unwrap()));
        let after = db.query(&query).unwrap();
        assert_eq!(after.answers, before.answers);
        assert!(!db.retract_fact(&parse_term("move(zz, zz)").unwrap()));
    }

    #[test]
    fn pure_edb_fact_patches_the_cached_model() {
        // `colour` is read by no rule: asserting a colour fact keeps the
        // cached model (no re-grounding) and still answers correctly.
        let mut db = HiLogDb::new(
            parse_program(
                "winning(X) :- move(X, Y), not winning(Y).\n\
                 move(a, b). colour(a, red).",
            )
            .unwrap(),
        );
        let unbound = parse_query("?- P(a, X).").unwrap();
        assert_eq!(db.query(&unbound).unwrap().stats.groundings, 1);
        db.assert_fact(parse_term("colour(b, blue)").unwrap())
            .unwrap();
        let after = db.query(&unbound).unwrap();
        assert_eq!(
            after.stats.groundings, 0,
            "pure EDB fact forced re-grounding"
        );
        assert_eq!(
            db.holds(&parse_term("colour(b, blue)").unwrap()).unwrap(),
            Truth::True
        );
        assert!(db.retract_fact(&parse_term("colour(b, blue)").unwrap()));
        assert_eq!(
            db.holds(&parse_term("colour(b, blue)").unwrap()).unwrap(),
            Truth::False
        );
    }

    #[test]
    fn assert_rule_rebuilds_everything() {
        let mut db = game_db();
        db.query(&parse_query("?- winning(X).").unwrap()).unwrap();
        db.assert_rule(
            parse_program("winning(X) :- bonus(X).")
                .unwrap()
                .rules
                .remove(0),
        );
        db.assert_fact(parse_term("bonus(c)").unwrap()).unwrap();
        assert_eq!(
            db.holds(&parse_term("winning(c)").unwrap()).unwrap(),
            Truth::True
        );
    }

    #[test]
    fn stable_semantics_answers_consensus_truth() {
        let mut db = HiLogDb::builder()
            .program(parse_program("p :- not q. q :- not p. r :- p. r :- q.").unwrap())
            .semantics(Semantics::Stable)
            .build();
        assert_eq!(db.holds(&parse_term("r").unwrap()).unwrap(), Truth::True);
        assert_eq!(
            db.holds(&parse_term("p").unwrap()).unwrap(),
            Truth::Undefined
        );
        assert_eq!(db.stable_models().unwrap().len(), 2);
    }

    #[test]
    fn stable_semantics_reports_missing_stable_models() {
        let mut db = HiLogDb::builder()
            .program(parse_program("u :- not u. v.").unwrap())
            .semantics(Semantics::Stable)
            .build();
        let err = db.holds(&parse_term("v").unwrap()).unwrap_err();
        assert!(matches!(err, EngineError::NoStableModels));
    }

    #[test]
    fn modular_check_semantics_accepts_and_rejects() {
        let mut accepted = HiLogDb::builder()
            .program(
                parse_program("winning(X) :- move(X, Y), not winning(Y). move(a, b). move(b, c).")
                    .unwrap(),
            )
            .semantics(Semantics::ModularCheck)
            .build();
        assert_eq!(
            accepted.holds(&parse_term("winning(b)").unwrap()).unwrap(),
            Truth::True
        );
        assert!(accepted.check_modular().unwrap().modularly_stratified);

        let mut rejected = HiLogDb::builder()
            .program(
                parse_program("winning(X) :- move(X, Y), not winning(Y). move(a, b). move(b, a).")
                    .unwrap(),
            )
            .semantics(Semantics::ModularCheck)
            .build();
        let err = rejected
            .holds(&parse_term("winning(a)").unwrap())
            .unwrap_err();
        assert!(matches!(err, EngineError::NotModularlyStratified(_)));
    }

    #[test]
    fn conjunctive_queries_bind_across_literals() {
        let mut db = HiLogDb::new(
            parse_program(
                "winning(M)(X) :- game(M), M(X, Y), not winning(M)(Y).\n\
                 game(m). m(a, b). m(b, c).",
            )
            .unwrap(),
        );
        let result = db
            .query(&parse_query("?- game(M), winning(M)(X).").unwrap())
            .unwrap();
        assert_eq!(result.answers.len(), 1);
        assert_eq!(result.answers[0].binding("M").unwrap(), &Term::sym("m"));
        assert_eq!(result.answers[0].binding("X").unwrap(), &Term::sym("b"));
        // The conjunction's subgoal tables are retained (the auxiliary
        // `__query_answer` table is not).
        let cached = db
            .explain(&parse_query("?- game(M).").unwrap())
            .cached_subqueries;
        assert!(cached > 0);
    }

    #[test]
    fn stats_are_per_query_not_cumulative() {
        let mut db = game_db();
        let query = parse_query("?- winning(X).").unwrap();
        let first = db.query(&query).unwrap();
        assert!(first.stats.subqueries > 0);
        assert!(first.stats.answers > 0);
        // The repeat run creates no new tables and derives no new answers;
        // its stats must not re-count the seeded tables.
        let second = db.query(&query).unwrap();
        assert_eq!(second.stats.subqueries, 0);
        assert_eq!(second.stats.answers, 0);
        assert!(second.stats.cached_subqueries > 0);
    }

    #[test]
    fn retracting_a_variable_named_fact_does_not_panic() {
        // `assert_rule` accepts facts with variable predicate names; a later
        // retract must fall back to global invalidation, not panic.
        let mut db = HiLogDb::new(parse_program("q(r). r(q).").unwrap());
        let var_fact = Term::app(Term::var("P"), vec![Term::sym("a")]);
        db.assert_rule(Rule::fact(var_fact.clone()));
        assert!(db.retract_fact(&var_fact));
        assert_eq!(db.holds(&parse_term("q(r)").unwrap()).unwrap(), Truth::True);
    }

    #[test]
    fn conjunctive_queries_do_not_share_auxiliary_tables() {
        // Regression: the auxiliary `__query_answer` table's key is the
        // *rendered* pattern (quoted, since the name starts with `_`); a
        // string-prefix cleanup missed it, so a later conjunction with the
        // same variable count silently returned the first query's answers.
        let mut db = HiLogDb::new(parse_program("p(a). p(b). q(b). r(c).").unwrap());
        let first = db.query(&parse_query("?- p(X), q(X).").unwrap()).unwrap();
        assert_eq!(first.answers.len(), 1);
        assert_eq!(first.answers[0].binding("X").unwrap(), &Term::sym("b"));
        let second = db.query(&parse_query("?- r(X), r(X).").unwrap()).unwrap();
        assert_eq!(second.answers.len(), 1);
        assert_eq!(second.answers[0].binding("X").unwrap(), &Term::sym("c"));
    }

    #[test]
    fn results_and_plans_serialise_to_json() {
        let mut db = game_db();
        let result = db.query(&parse_query("?- winning(X).").unwrap()).unwrap();
        let json = serde_json::to_string(&result).unwrap();
        assert!(json.contains("\"answers\""));
        assert!(json.contains("\"X\":\"b\""));
        assert!(json.contains("\"truth\":\"true\""));
        assert!(json.contains("\"strategy\":\"magic-sets\""));
        let plan_json = serde_json::to_string(&result.plan).unwrap();
        assert!(plan_json.contains("\"semantics\":\"well-founded\""));
        let stats_json = serde_json::to_string(&result.stats).unwrap();
        assert!(stats_json.contains("\"rule_applications\""));
    }

    #[test]
    fn assert_fact_patches_the_model_without_regrounding() {
        let mut db = game_db();
        let unbound = parse_query("?- P(a, X).").unwrap();
        let first = db.query(&unbound).unwrap();
        assert_eq!(first.stats.groundings, 1);
        assert_eq!(first.stats.model_source, ModelSource::Rebuilt);
        // `move` is read by `winning`: not pure EDB, so the old session
        // dropped the model and re-grounded; now it patches instead.
        db.assert_fact(parse_term("move(c, d)").unwrap()).unwrap();
        let plan = db.explain(&unbound);
        assert!(plan.cached_model);
        assert!(plan.stale_model, "pending delta not reported by the plan");
        let second = db.query(&unbound).unwrap();
        assert_eq!(second.stats.groundings, 0, "patching must not re-ground");
        assert_eq!(second.stats.patches, 1);
        assert_eq!(second.stats.model_source, ModelSource::Patched);
        // The patched model agrees with a fresh session on every atom.
        let mut fresh = HiLogDb::new(db.program().clone());
        let fresh_model = fresh.model().unwrap().clone();
        let patched = db.model().unwrap();
        for atom in patched.base().iter().chain(fresh_model.base()) {
            assert_eq!(patched.truth(atom), fresh_model.truth(atom), "{atom}");
        }
        let third = db.query(&unbound).unwrap();
        assert_eq!(third.stats.model_source, ModelSource::Cached);
        assert_eq!(third.stats.patches, 0);
    }

    #[test]
    fn single_scc_patch_freezes_untouched_instances() {
        // One long chain game is a single predicate-level SCC; asserting an
        // edge at its tail must patch the model by re-evaluating only the
        // instance-level reverse closure of the change (the upstream
        // positions), with every downstream truth frozen — and agree with a
        // fresh session on every atom.
        let mut text = String::from("winning(X) :- move(X, Y), not winning(Y).\n");
        for i in 0..30 {
            text.push_str(&format!("move(p{}, p{}).\n", i, i + 1));
        }
        let mut db = HiLogDb::new(parse_program(&text).unwrap());
        let open = parse_query("?- P(p0, X).").unwrap();
        db.query(&open).unwrap();
        db.assert_fact(parse_term("move(p30, p31)").unwrap())
            .unwrap();
        let result = db.query(&open).unwrap();
        assert_eq!(result.stats.groundings, 0);
        assert_eq!(result.stats.model_source, ModelSource::Patched);
        let mut fresh = HiLogDb::new(db.program().clone());
        let fresh_model = fresh.model().unwrap().clone();
        let patched = db.model().unwrap();
        for atom in patched.base().iter().chain(fresh_model.base()) {
            assert_eq!(patched.truth(atom), fresh_model.truth(atom), "{atom}");
        }
    }

    #[test]
    fn stats_surface_index_probes_and_serialise() {
        let mut db = HiLogDb::new(
            parse_program(
                "tc(X, Y) :- e(X, Y).\n\
                 tc(X, Y) :- e(X, Z), tc(Z, Y).\n\
                 e(a, b). e(b, c). e(c, d).",
            )
            .unwrap(),
        );
        // The full-model route grounds the program: the tc(Z, Y) join probes
        // the argument index on Z.
        let result = db.query(&parse_query("?- P(a, X).").unwrap()).unwrap();
        assert!(
            result.stats.index_probes > 0,
            "grounding joins never probed"
        );
        let json = serde_json::to_string(&result.stats).unwrap();
        assert!(json.contains("\"index_probes\""));
        assert!(json.contains("\"index_fallback_scans\""));
        // The magic route joins warm tables through the same API.
        let bound = db.query(&parse_query("?- tc(a, Y).").unwrap()).unwrap();
        assert_eq!(bound.answers.len(), 3);
    }

    #[test]
    fn consecutive_asserts_are_folded_into_one_patch() {
        let mut db = game_db();
        let unbound = parse_query("?- P(a, X).").unwrap();
        db.query(&unbound).unwrap();
        db.assert_fact(parse_term("move(c, d)").unwrap()).unwrap();
        db.assert_fact(parse_term("move(d, e)").unwrap()).unwrap();
        let result = db.query(&unbound).unwrap();
        assert_eq!(result.stats.patches, 1, "deltas were not accumulated");
        assert_eq!(result.stats.groundings, 0);
        assert_eq!(
            db.holds(&parse_term("winning(d)").unwrap()).unwrap(),
            Truth::True
        );
    }

    #[test]
    fn retract_fact_uses_dred_and_matches_fresh_recomputation() {
        // tc is derived through the retracted edge: DRed must overdelete the
        // downstream closure and rederive what other edges still support.
        let mut db = HiLogDb::new(
            parse_program(
                "tc(X, Y) :- edge(X, Y).\n\
                 tc(X, Y) :- edge(X, Z), tc(Z, Y).\n\
                 edge(a, b). edge(b, c). edge(a, c).",
            )
            .unwrap(),
        );
        let unbound = parse_query("?- P(a, X).").unwrap();
        assert_eq!(db.query(&unbound).unwrap().stats.groundings, 1);
        db.assert_fact(parse_term("edge(c, d)").unwrap()).unwrap();
        db.query(&unbound).unwrap();
        // Retract edge(b, c): tc(a, c) survives via edge(a, c); tc(b, c),
        // tc(b, d) die.
        assert!(db.retract_fact(&parse_term("edge(b, c)").unwrap()));
        let result = db.query(&unbound).unwrap();
        assert_eq!(result.stats.groundings, 0, "DRed path re-grounded");
        assert_eq!(result.stats.model_source, ModelSource::Patched);
        let mut fresh = HiLogDb::new(db.program().clone());
        let fresh_model = fresh.model().unwrap().clone();
        let patched = db.model().unwrap();
        for atom in patched.base().iter().chain(fresh_model.base()) {
            assert_eq!(patched.truth(atom), fresh_model.truth(atom), "{atom}");
        }
        assert_eq!(
            db.holds(&parse_term("tc(b, c)").unwrap()).unwrap(),
            Truth::False
        );
        assert_eq!(
            db.holds(&parse_term("tc(a, c)").unwrap()).unwrap(),
            Truth::True
        );
    }

    #[test]
    fn retracting_a_derived_support_fact_removes_dependent_atoms() {
        // The acceptance case: retracting a fact that transitively supports
        // derived atoms provably removes the no-longer-derivable ones.
        let mut db = HiLogDb::new(
            parse_program(
                "reach(Y) :- reach(X), edge(X, Y). reach(a).\n\
                 edge(a, b). edge(b, c).",
            )
            .unwrap(),
        );
        let unbound = parse_query("?- P(X).").unwrap();
        db.query(&unbound).unwrap();
        assert!(db.retract_fact(&parse_term("edge(a, b)").unwrap()));
        let result = db.query(&unbound).unwrap();
        assert_eq!(result.stats.groundings, 0);
        assert_eq!(
            db.holds(&parse_term("reach(b)").unwrap()).unwrap(),
            Truth::False
        );
        assert_eq!(
            db.holds(&parse_term("reach(c)").unwrap()).unwrap(),
            Truth::False
        );
        assert_eq!(
            db.holds(&parse_term("reach(a)").unwrap()).unwrap(),
            Truth::True
        );
    }

    #[test]
    fn dred_rederives_atoms_with_cyclic_support_correctly() {
        // p and q support each other, but only through the seed fact p: after
        // retracting p, neither may be rederived through the cycle.
        let mut db = HiLogDb::new(parse_program("p :- q. q :- p. p. r.").unwrap());
        let unbound = parse_query("?- P(X).").unwrap(); // warms ground+model
        let _ = db.query(&unbound);
        db.model().unwrap();
        assert!(db.retract_fact(&parse_term("p").unwrap()));
        assert_eq!(db.holds(&parse_term("p").unwrap()).unwrap(), Truth::False);
        assert_eq!(db.holds(&parse_term("q").unwrap()).unwrap(), Truth::False);
        assert_eq!(db.holds(&parse_term("r").unwrap()).unwrap(), Truth::True);
    }

    #[test]
    fn builtin_guarded_facts_survive_retraction_of_their_edb_twin() {
        // `s :- 1 < 2.` grounds to the same ground fact as the EDB `s.`;
        // retracting the EDB occurrence must keep s true (spontaneous
        // justification), and a second retraction is a no-op returning false.
        let mut db = HiLogDb::new(parse_program("s :- 1 < 2. s. t :- s.").unwrap());
        db.model().unwrap();
        assert!(db.retract_fact(&parse_term("s").unwrap()));
        assert_eq!(db.holds(&parse_term("s").unwrap()).unwrap(), Truth::True);
        assert_eq!(db.holds(&parse_term("t").unwrap()).unwrap(), Truth::True);
        assert!(!db.retract_fact(&parse_term("s").unwrap()));
    }

    #[test]
    fn hilog_programs_with_variable_heads_still_patch_the_grounding() {
        // The HiLog game rule has a non-ground head predicate name, so the
        // per-predicate dirty scope degenerates to All — but the grounding is
        // still maintained incrementally (no re-grounding pass).
        let mut db = HiLogDb::new(
            parse_program(
                "winning(M)(X) :- game(M), M(X, Y), not winning(M)(Y).\n\
                 game(m). m(a, b). m(b, c).",
            )
            .unwrap(),
        );
        let unbound = parse_query("?- game(M), winning(M)(X).").unwrap();
        // Unbound? game(M) is bound (ground name) — force the model route.
        let open = parse_query("?- P(a, b).").unwrap();
        assert_eq!(db.query(&open).unwrap().stats.groundings, 1);
        db.assert_fact(parse_term("m(c, d)").unwrap()).unwrap();
        let after = db.query(&open).unwrap();
        assert_eq!(after.stats.groundings, 0, "HiLog delta re-grounded");
        assert_eq!(after.stats.model_source, ModelSource::Patched);
        assert_eq!(
            db.holds(&parse_term("winning(m)(c)").unwrap()).unwrap(),
            Truth::True
        );
        let _ = db.query(&unbound);
    }

    #[test]
    fn retract_rule_removes_derivations_and_keeps_unrelated_tables() {
        let mut db = HiLogDb::new(
            parse_program(
                "winning(X) :- move(X, Y), not winning(Y).\n\
                 reach(X) :- edge(X, Y).\n\
                 bonus(X) :- extra(X).\n\
                 move(a, b). edge(u, v). extra(c).",
            )
            .unwrap(),
        );
        let win = parse_query("?- winning(X).").unwrap();
        let reach = parse_query("?- reach(X).").unwrap();
        let bonus_rule = parse_program("bonus(X) :- extra(X).").unwrap().rules[0].clone();
        db.query(&win).unwrap();
        db.query(&reach).unwrap();
        assert_eq!(
            db.holds(&parse_term("bonus(c)").unwrap()).unwrap(),
            Truth::True
        );
        assert!(db.retract_rule(&bonus_rule));
        // Unrelated tables survive...
        let plan = db.explain(&win);
        assert!(plan.cached_subqueries > 0, "unrelated tables were dropped");
        // ...and the retracted rule derives nothing any more.
        assert_eq!(
            db.holds(&parse_term("bonus(c)").unwrap()).unwrap(),
            Truth::False
        );
        // Retracting an absent rule reports false.
        assert!(!db.retract_rule(&bonus_rule));
    }

    #[test]
    fn retract_rule_undoes_assert_rule() {
        let mut db = game_db();
        let query = parse_query("?- winning(X).").unwrap();
        let before = db.query(&query).unwrap();
        let rule = parse_program("winning(X) :- bonus(X).").unwrap().rules[0].clone();
        db.assert_rule(rule.clone());
        db.assert_fact(parse_term("bonus(c)").unwrap()).unwrap();
        assert_eq!(
            db.holds(&parse_term("winning(c)").unwrap()).unwrap(),
            Truth::True
        );
        assert!(db.retract_rule(&rule));
        assert!(db.retract_fact(&parse_term("bonus(c)").unwrap()));
        let after = db.query(&query).unwrap();
        assert_eq!(after.answers, before.answers);
    }

    #[test]
    fn duplicate_asserts_keep_every_cache() {
        let mut db = game_db();
        let query = parse_query("?- winning(X).").unwrap();
        db.query(&query).unwrap();
        let warm = db.explain(&query).cached_subqueries;
        assert!(warm > 0);
        // `move(a, b)` is already a program fact: re-asserting it must not
        // drop the tables in move's dependency closure.
        db.assert_fact(parse_term("move(a, b)").unwrap()).unwrap();
        assert_eq!(
            db.explain(&query).cached_subqueries,
            warm,
            "duplicate assert invalidated caches"
        );
        let repeat = db.query(&query).unwrap();
        assert_eq!(repeat.stats.rule_applications, 0);
        // Retracting one of the two copies is equally a no-op; retracting
        // the second is not: the winning tables are dropped, while the
        // fact-backed move tables are patched in place and survive.
        assert!(db.retract_fact(&parse_term("move(a, b)").unwrap()));
        assert_eq!(db.explain(&query).cached_subqueries, warm);
        assert!(db.retract_fact(&parse_term("move(a, b)").unwrap()));
        let plan = db.explain(&query);
        assert!(plan.dropped_subqueries > 0, "winning tables must drop");
        assert!(plan.patched_subqueries > 0, "move tables must be patched");
        assert!(
            plan.cached_subqueries >= plan.patched_subqueries,
            "patched and untouched tables must survive"
        );
        // The patched tables answer correctly: b still wins through
        // move(b, c), and nothing else does.
        let after = db.query(&query).unwrap();
        assert_eq!(after.answers.len(), 1);
        assert_eq!(after.answers[0].binding("X").unwrap(), &Term::sym("b"));
    }

    #[test]
    fn pure_edb_asserts_respect_the_cumulative_ground_cap() {
        // 4 ground rules after the first query; cap at 6 and pour in pure-EDB
        // facts: the session must fall back to re-grounding (and report the
        // same LimitExceeded a fresh session would) instead of growing past
        // the cap.
        let mut db = HiLogDb::builder()
            .program(
                parse_program(
                    "winning(X) :- move(X, Y), not winning(Y).\n\
                     move(a, b). colour(a, red).",
                )
                .unwrap(),
            )
            .options(EvalOptions::with_max_atoms(6))
            .build();
        let unbound = parse_query("?- P(a, X).").unwrap();
        db.query(&unbound).unwrap();
        for i in 0..4 {
            db.assert_fact(parse_term(&format!("colour(c{i}, blue)")).unwrap())
                .unwrap();
        }
        let err = db.query(&unbound).unwrap_err();
        assert!(matches!(err, EngineError::LimitExceeded(_)));
    }

    #[test]
    fn builder_options_are_honoured() {
        let mut db = HiLogDb::builder()
            .program(parse_program("nat(z). nat(s(X)) :- nat(X).").unwrap())
            .options(EvalOptions::with_max_atoms(10))
            .build();
        let err = db.query(&parse_query("?- P(X).").unwrap()).unwrap_err();
        assert!(matches!(err, EngineError::LimitExceeded(_)));
    }
}
