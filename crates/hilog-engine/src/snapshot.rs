//! The concurrent serving split: an immutable, shareable [`DbSnapshot`] for
//! readers and a single-writer [`DbWriter`] that publishes snapshots.
//!
//! [`HiLogDb`] amortises work across queries, but every read route takes
//! `&mut self` because its caches fill lazily — so not even two concurrent
//! readers are possible.  This module splits that API in two:
//!
//! * A [`DbSnapshot`] is an **immutable** view of the database at one
//!   *epoch*: the program and every heavyweight cache are shared with the
//!   session by `Arc` (publishing is a handful of refcount bumps, never a
//!   deep copy).  All of its query routes take `&self` and the type is
//!   `Send + Sync`, so any number of threads can answer queries from the
//!   same snapshot in parallel.  Caches the writer had not filled yet are
//!   built lazily *inside* the snapshot under interior locks — the first
//!   reader that needs the full model builds it, later readers reuse it.
//! * A [`DbWriter`] owns the underlying [`HiLogDb`] and with it the whole
//!   incremental mutation path (semi-naive delta grounding on assert, DRed
//!   overdelete/rederive on retract, instance-level table maintenance).
//!   Mutations accumulate into a batch; [`DbWriter::publish`] exports the
//!   session's caches as the next snapshot and swaps it into the shared
//!   cell.  Readers never block on the writer and the writer never waits
//!   for readers: a reader keeps whatever snapshot it pinned until it asks
//!   the handle for the current one.
//! * A [`SnapshotHandle`] is the cloneable reader endpoint:
//!   [`SnapshotHandle::current`] pins the most recently published snapshot.
//!
//! Subgoal tables flow in both directions.  A published snapshot starts
//! with the writer's completed tables; queries answered on reader threads
//! add tables to the snapshot's own map; and the writer *adopts* those
//! reader-computed tables back — but only while its program is still
//! exactly the program the snapshot was built from (before the first
//! mutation of a batch, or at a mutation-free publish).  Adopted tables
//! then enjoy the session's instance-level maintenance like any other.
//!
//! ```
//! use hilog_engine::session::HiLogDb;
//! use hilog_syntax::{parse_program, parse_query, parse_term};
//!
//! let program = parse_program(
//!     "winning(X) :- move(X, Y), not winning(Y). move(a, b). move(b, c).",
//! )
//! .unwrap();
//! let (mut writer, handle) = HiLogDb::new(program).into_serving();
//! let query = parse_query("?- winning(X).").unwrap();
//!
//! // Readers pin the published snapshot; queries take `&self`.
//! let snapshot = handle.current();
//! assert_eq!(snapshot.query(&query).unwrap().answers.len(), 1);
//!
//! // The writer mutates and publishes the next epoch; the pinned snapshot
//! // is untouched and keeps answering at epoch 0.
//! writer.assert_fact(parse_term("move(c, d)").unwrap()).unwrap();
//! writer.publish();
//! assert_eq!(snapshot.epoch(), 0);
//! assert_eq!(handle.current().epoch(), 1);
//! assert_eq!(handle.current().query(&query).unwrap().answers.len(), 2);
//! ```

use crate::error::EngineError;
use crate::ground::GroundProgram;
use crate::grounder::ground_against;
use crate::horn::{least_model_into, EvalOptions, NegationMode};
use crate::magic_eval::{
    normalize_pattern, EvalStats, ModelSource, QueryEvaluator, Table, QUERY_HEAD,
};
use crate::modular::{figure1_procedure, ModularOutcome};
use crate::plan::{PlanStrategy, QueryPlan};
use crate::session::{
    assemble, build_plan, consensus_model, eval_against_model, true_answer, HiLogDb, QueryAnswer,
    QueryResult, Semantics, SnapshotParts,
};
use crate::stable::{stable_models_of_ground, StableOptions};
use crate::storage::{FactStore, StorageConfig};
use crate::wfs::well_founded_eval;
use hilog_core::interpretation::{Model, Truth};
use hilog_core::literal::Literal;
use hilog_core::program::Program;
use hilog_core::rule::{Query, Rule};
use hilog_core::subst::Substitution;
use hilog_core::term::Term;
use hilog_core::unify::match_with;
use std::collections::HashMap;
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Reads a possibly poisoned lock.  Every critical section in this module
/// either only swaps `Arc`s or leaves the caches in a consistent (possibly
/// merely colder) state on unwind, so a poisoned lock is safe to keep using.
fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Writes a possibly poisoned lock; see [`read_lock`].
fn write_lock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

/// The lazily fillable caches of a snapshot, guarded together: the model
/// routes fill them in dependency order (grounding before model before
/// stable models) under one write lock, so concurrent first-readers do the
/// expensive work once instead of racing.
#[derive(Debug, Default)]
struct SnapCore {
    /// Relevant instantiation of the program (shared with the writer when it
    /// was warm at publish time, built here otherwise).
    ground: Option<Arc<GroundProgram>>,
    /// The possibly-true store backing `ground`; kept alongside it so a
    /// snapshot-built grounding has the same shape a writer-built one has.
    possibly: Option<Arc<FactStore>>,
    /// Full model under the snapshot's semantics.
    model: Option<Arc<Model>>,
    /// Stable models (filled by [`DbSnapshot::stable_models`]).
    stable: Option<Arc<Vec<Model>>>,
    /// Figure 1 outcome (filled by [`DbSnapshot::check_modular`]).
    modular: Option<Arc<ModularOutcome>>,
}

/// An immutable view of the database at one publication epoch.
///
/// All query routes take `&self`, and the type is `Send + Sync`: wrap it in
/// an `Arc` (which is what [`SnapshotHandle::current`] hands out) and share
/// it across as many reader threads as you like.  See the [module
/// documentation](crate::snapshot) for the overall shape.
#[derive(Debug)]
pub struct DbSnapshot {
    /// The program at this epoch, shared with the writer.
    program: Arc<Program>,
    opts: EvalOptions,
    stable_opts: StableOptions,
    semantics: Semantics,
    /// Publication counter: 0 for the snapshot [`HiLogDb::into_serving`]
    /// publishes, +1 per [`DbWriter::publish`].
    epoch: u64,
    /// Lazily fillable model-side caches (interior mutability: the routes
    /// take `&self`).
    core: RwLock<SnapCore>,
    /// Completed subgoal tables, seeded from the writer at publish time and
    /// extended by the queries answered on this snapshot.  Tables are only
    /// ever *added* here — the program is frozen, so a completed table can
    /// never go stale within a snapshot's lifetime.
    tables: RwLock<HashMap<Term, Arc<Table>>>,
    /// Relation-storage backend for stores this snapshot builds lazily.
    storage: StorageConfig,
}

impl DbSnapshot {
    /// Assembles a snapshot from the writer's exported cache handles.
    pub(crate) fn from_parts(parts: SnapshotParts, epoch: u64) -> Self {
        DbSnapshot {
            program: parts.program,
            opts: parts.opts,
            stable_opts: parts.stable_opts,
            semantics: parts.semantics,
            epoch,
            core: RwLock::new(SnapCore {
                ground: parts.ground,
                possibly: parts.possibly,
                model: parts.model,
                stable: parts.stable,
                modular: parts.modular,
            }),
            tables: RwLock::new(parts.tables),
            storage: parts.storage,
        }
    }

    /// The program this snapshot answers from.
    pub fn program(&self) -> &Program {
        self.program.as_ref()
    }

    /// The snapshot's evaluation limits.
    pub fn options(&self) -> EvalOptions {
        self.opts
    }

    /// The semantics queries are answered under.
    pub fn semantics(&self) -> Semantics {
        self.semantics
    }

    /// The publication epoch: 0 for the initial snapshot, incremented by
    /// every [`DbWriter::publish`].
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of completed subgoal tables currently held (seeded plus
    /// derived by queries on this snapshot).
    pub fn cached_subqueries(&self) -> usize {
        read_lock(&self.tables)
            .values()
            .filter(|t| t.complete)
            .count()
    }

    /// Aggregate relation-storage statistics over this snapshot's stores:
    /// the lazily built possibly-true store and every subgoal table's answer
    /// store (the snapshot-side mirror of
    /// [`HiLogDb::storage_stats`](crate::session::HiLogDb::storage_stats)).
    pub fn storage_stats(&self) -> crate::storage::RelationStorageStats {
        let mut total = crate::storage::RelationStorageStats::default();
        if let Some(possibly) = &read_lock(&self.core).possibly {
            total.merge(&possibly.storage_stats());
        }
        for table in read_lock(&self.tables).values() {
            total.merge(&table.answers.storage_stats());
        }
        total
    }

    /// Builds the plan [`query`](DbSnapshot::query) would execute, without
    /// evaluating anything.  A snapshot's model is never stale and its
    /// tables are never patched or dropped, so those plan fields are always
    /// `false`/zero here.
    pub fn explain(&self, query: &Query) -> QueryPlan {
        let cached_model = read_lock(&self.core).model.is_some();
        build_plan(
            self.semantics,
            query,
            cached_model,
            false,
            self.cached_subqueries(),
            0,
            0,
        )
    }

    /// Answers a query through the plan [`explain`](DbSnapshot::explain)
    /// chooses — the same routes as [`HiLogDb::query`], over shared caches.
    pub fn query(&self, query: &Query) -> Result<QueryResult, EngineError> {
        let plan = self.explain(query);
        let tables_reused = read_lock(&self.tables).len();
        // The join-index probe counters are thread-local, so the deltas are
        // per-query even with many readers querying concurrently.
        let (probes_before, fallbacks_before) = crate::horn::probe_counters();
        // Parallel counters are process-wide (pool workers can't write a
        // reader's thread-locals), so with concurrent readers the deltas may
        // include each other's pool work — observability, not answers.
        let (waves_before, rounds_before, tasks_before) = crate::pool::parallel_counters();
        // Deadline counters are thread-local like the probe counters.
        let (dl_checks_before, dl_exceeded_before) = crate::deadline::deadline_counters();
        let mut result = match plan.strategy {
            PlanStrategy::MagicSets => match self.query_magic(query) {
                Ok((answers, stats)) => assemble(answers, stats, plan, None),
                Err(
                    err @ (EngineError::NotModularlyStratified(_) | EngineError::Floundering(_)),
                ) => {
                    // Same transparent fallback as the session: the tabled
                    // route cannot settle this query, the bottom-up
                    // well-founded construction still can.
                    let note = err.to_string();
                    let (answers, stats) = self.query_full(query)?;
                    assemble(answers, stats, plan, Some(note))
                }
                Err(err) => return Err(err),
            },
            PlanStrategy::FullModel => {
                let (answers, stats) = self.query_full(query)?;
                assemble(answers, stats, plan, None)
            }
        };
        result.stats.tables_reused = tables_reused;
        let (probes_after, fallbacks_after) = crate::horn::probe_counters();
        result.stats.index_probes = probes_after - probes_before;
        result.stats.index_fallback_scans = fallbacks_after - fallbacks_before;
        let (waves_after, rounds_after, tasks_after) = crate::pool::parallel_counters();
        result.stats.parallel_waves = waves_after - waves_before;
        result.stats.parallel_partitioned_rounds = rounds_after - rounds_before;
        result.stats.parallel_tasks = tasks_after - tasks_before;
        let (dl_checks_after, dl_exceeded_after) = crate::deadline::deadline_counters();
        result.stats.deadline_checks = dl_checks_after - dl_checks_before;
        result.stats.deadline_exceeded = dl_exceeded_after - dl_exceeded_before;
        result.stats.live_symbols = hilog_core::symbol::symbol_pool_stats().live;
        Ok(result)
    }

    /// Three-valued truth of a single ground atom under the snapshot's
    /// semantics.
    pub fn holds(&self, atom: &Term) -> Result<Truth, EngineError> {
        if !atom.is_ground() {
            return Err(EngineError::Floundering(format!(
                "holds() requires a ground atom, got `{atom}`"
            )));
        }
        Ok(self.query(&Query::atom(atom.clone()))?.truth)
    }

    /// The full model under the snapshot's semantics, building (and caching
    /// in the snapshot) on first use.  Errors are not cached: a failed build
    /// is retried by the next caller, exactly like a fresh session.
    pub fn model(&self) -> Result<Arc<Model>, EngineError> {
        self.model_impl().map(|(model, _, _)| model)
    }

    /// The stable models of the program, computing them on first use.
    pub fn stable_models(&self) -> Result<Arc<Vec<Model>>, EngineError> {
        if let Some(stable) = &read_lock(&self.core).stable {
            return Ok(stable.clone());
        }
        let mut core = write_lock(&self.core);
        self.ensure_stable_locked(&mut core)
    }

    /// Runs (and caches) the Figure 1 modular-stratification procedure.
    pub fn check_modular(&self) -> Result<Arc<ModularOutcome>, EngineError> {
        if let Some(modular) = &read_lock(&self.core).modular {
            return Ok(modular.clone());
        }
        let mut core = write_lock(&self.core);
        self.ensure_modular_locked(&mut core)
    }

    /// Magic-sets route: tabled evaluation seeded with the snapshot's
    /// completed tables; completed tables merge back into the snapshot.
    fn query_magic(&self, query: &Query) -> Result<(Vec<QueryAnswer>, EvalStats), EngineError> {
        let vars = query.variables();
        // Fast path: a single-atom query whose table is already complete is
        // answered under the read lock alone — the path concurrent readers
        // hammering the same warm query stay on.
        if let [Literal::Pos(atom)] = query.literals.as_slice() {
            let key = normalize_pattern(atom);
            let hit = read_lock(&self.tables)
                .get(&key)
                .filter(|t| t.complete)
                .cloned();
            if let Some(table) = hit {
                let answers = table
                    .answers
                    .collect_atoms()
                    .into_iter()
                    .filter_map(|answer| {
                        let mut theta = Substitution::new();
                        match_with(atom, &answer, &mut theta).then(|| true_answer(&theta, &vars))
                    })
                    .collect();
                let stats = EvalStats {
                    cached_subqueries: 1,
                    ..EvalStats::default()
                };
                return Ok((answers, stats));
            }
        }
        // Seeding clones the table map, but the tables themselves are `Arc`d
        // — this is per-entry refcount bumps, not a copy of any answer set.
        let tables = read_lock(&self.tables).clone();
        let seeded_tables = tables.len();
        let seeded_answers: usize = tables.values().map(|t| t.answers.len()).sum();
        let per_query = move |mut stats: EvalStats| {
            stats.subqueries = stats.subqueries.saturating_sub(seeded_tables);
            stats.answers = stats.answers.saturating_sub(seeded_answers);
            stats
        };
        if let [Literal::Pos(atom)] = query.literals.as_slice() {
            let mut evaluator =
                QueryEvaluator::with_tables(&self.program, self.opts, tables, self.storage.clone());
            let solved = evaluator.solve_atom(atom);
            let stats = per_query(evaluator.stats());
            let mut fresh = evaluator.into_tables();
            fresh.retain(|_, t| t.complete);
            self.merge_tables(fresh);
            let answers = solved?
                .into_iter()
                .filter_map(|answer| {
                    let mut theta = Substitution::new();
                    match_with(atom, &answer, &mut theta).then(|| true_answer(&theta, &vars))
                })
                .collect();
            Ok((answers, stats))
        } else {
            // Conjunctions run through an auxiliary `__query_answer` rule.
            // Unlike the session there is no reusable scratch program (that
            // would be shared mutable state); the program clone is per-query.
            let head = Term::apps(
                QUERY_HEAD,
                vars.iter().map(|v| Term::Var(v.clone())).collect(),
            );
            let mut scratch = Program::clone(&self.program);
            scratch.push(Rule::new(head.clone(), query.literals.clone()));
            let mut evaluator =
                QueryEvaluator::with_tables(&scratch, self.opts, tables, self.storage.clone());
            let solved = evaluator.solve_atom(&head);
            let stats = per_query(evaluator.stats());
            let mut fresh = evaluator.into_tables();
            // Every table except the auxiliary one is a valid table of the
            // base program and is kept.
            let aux_functor = Term::sym(QUERY_HEAD);
            fresh.retain(|_, t| t.complete && t.pattern.outermost_functor() != &aux_functor);
            self.merge_tables(fresh);
            let answers = solved?
                .into_iter()
                .filter_map(|answer| {
                    let mut theta = Substitution::new();
                    match_with(&head, &answer, &mut theta).then(|| true_answer(&theta, &vars))
                })
                .collect();
            Ok((answers, stats))
        }
    }

    /// Full-model route: match the query against the (lazily built) model.
    fn query_full(&self, query: &Query) -> Result<(Vec<QueryAnswer>, EvalStats), EngineError> {
        let (model, model_source, groundings) = self.model_impl()?;
        let answers = eval_against_model(&model, query)?;
        let stats = EvalStats {
            answers: answers.len(),
            groundings,
            model_source,
            ..EvalStats::default()
        };
        Ok((answers, stats))
    }

    /// The model plus how it was obtained and how many grounding passes the
    /// call performed.  Double-checked: the warm path is one read lock; a
    /// cold snapshot computes under the write lock, so concurrent
    /// first-readers build the model once and the rest reuse it.
    fn model_impl(&self) -> Result<(Arc<Model>, ModelSource, usize), EngineError> {
        if let Some(model) = &read_lock(&self.core).model {
            return Ok((model.clone(), ModelSource::Cached, 0));
        }
        let mut core = write_lock(&self.core);
        if let Some(model) = &core.model {
            // Another reader built it between our two lock acquisitions.
            return Ok((model.clone(), ModelSource::Cached, 0));
        }
        let mut groundings = 0;
        let model = match self.semantics {
            Semantics::WellFounded => {
                groundings += self.ensure_ground_locked(&mut core)?;
                well_founded_eval(
                    core.ground.as_deref().expect("just grounded"),
                    self.opts.eval_threads,
                )
            }
            Semantics::Stable => {
                let stable = self.ensure_stable_locked(&mut core)?;
                consensus_model(&stable)?
            }
            Semantics::ModularCheck => {
                let outcome = self.ensure_modular_locked(&mut core)?;
                match (&outcome.model, &outcome.reason) {
                    (Some(model), _) => model.clone(),
                    (None, reason) => {
                        return Err(EngineError::NotModularlyStratified(
                            reason.clone().unwrap_or_else(|| {
                                "the Figure 1 procedure rejected the program".into()
                            }),
                        ))
                    }
                }
            }
        };
        let model = Arc::new(model);
        core.model = Some(model.clone());
        Ok((model, ModelSource::Rebuilt, groundings))
    }

    /// Fills the grounding under the held write lock; returns the number of
    /// grounding passes performed (0 if it was already warm).
    fn ensure_ground_locked(&self, core: &mut SnapCore) -> Result<usize, EngineError> {
        if core.ground.is_some() {
            return Ok(0);
        }
        let mut possibly = FactStore::new(&self.storage);
        least_model_into(
            &self.program,
            NegationMode::Ignore,
            self.opts,
            &mut possibly,
        )?;
        core.ground = Some(Arc::new(ground_against(
            &self.program,
            &possibly,
            self.opts,
        )?));
        core.possibly = Some(Arc::new(possibly));
        Ok(1)
    }

    /// Fills (and returns) the stable models under the held write lock.
    fn ensure_stable_locked(&self, core: &mut SnapCore) -> Result<Arc<Vec<Model>>, EngineError> {
        if let Some(stable) = &core.stable {
            return Ok(stable.clone());
        }
        self.ensure_ground_locked(core)?;
        let ground = core.ground.as_deref().expect("just grounded");
        let stable = Arc::new(stable_models_of_ground(ground, self.stable_opts)?);
        core.stable = Some(stable.clone());
        Ok(stable)
    }

    /// Fills (and returns) the Figure 1 outcome under the held write lock.
    fn ensure_modular_locked(
        &self,
        core: &mut SnapCore,
    ) -> Result<Arc<ModularOutcome>, EngineError> {
        if let Some(modular) = &core.modular {
            return Ok(modular.clone());
        }
        let modular = Arc::new(figure1_procedure(&self.program, self.opts)?);
        core.modular = Some(modular.clone());
        Ok(modular)
    }

    /// Merges freshly completed tables into the snapshot's map.  First
    /// writer wins per key: any complete table for a pattern is as good as
    /// any other (the program is frozen), so a racing query's table is
    /// simply kept.
    fn merge_tables(&self, fresh: HashMap<Term, Arc<Table>>) {
        let mut tables = write_lock(&self.tables);
        for (key, table) in fresh {
            tables.entry(key).or_insert(table);
        }
    }

    /// `Arc` clones of the current table map, for the writer to adopt.
    pub(crate) fn tables_snapshot(&self) -> HashMap<Term, Arc<Table>> {
        read_lock(&self.tables).clone()
    }
}

/// The cloneable reader endpoint: pins the most recently published
/// [`DbSnapshot`].  Cheap to clone (one `Arc`), `Send + Sync`, and valid for
/// as long as any writer or other handle exists.
#[derive(Debug, Clone)]
pub struct SnapshotHandle {
    cell: Arc<RwLock<Arc<DbSnapshot>>>,
}

impl SnapshotHandle {
    /// The most recently published snapshot.  The critical section is one
    /// `Arc` clone — nanoseconds — so readers effectively never contend with
    /// the writer's swap; the returned snapshot stays valid (and unchanged,
    /// epoch included) for as long as the caller holds it.
    pub fn current(&self) -> Arc<DbSnapshot> {
        read_lock(&self.cell).clone()
    }
}

/// The single-writer half of the serving split: owns the [`HiLogDb`] and
/// with it the incremental mutation path, and publishes [`DbSnapshot`]s.
///
/// Mutations accumulate into the current batch; nothing is visible to
/// readers until [`publish`](DbWriter::publish) swaps the next snapshot into
/// the shared cell.  See the [module documentation](crate::snapshot).
#[derive(Debug)]
pub struct DbWriter {
    db: HiLogDb,
    /// Epoch of the most recently published snapshot.
    epoch: u64,
    /// `true` once the current batch has mutated the session, i.e. once the
    /// writer's program may differ from the published snapshot's.  Guards
    /// table adoption: reader-computed tables are only sound to adopt while
    /// the programs are still identical.
    batch_dirty: bool,
    cell: Arc<RwLock<Arc<DbSnapshot>>>,
}

impl DbWriter {
    /// Splits a session into the serving pair, publishing its current state
    /// as the epoch-0 snapshot.  (Also reachable as
    /// [`HiLogDb::into_serving`].)
    pub(crate) fn from_db(db: HiLogDb) -> (DbWriter, SnapshotHandle) {
        DbWriter::from_db_at(db, 0)
    }

    /// [`DbWriter::from_db`], but publishing the initial snapshot at `epoch`.
    /// The recovery path of the durable storage layer uses this so a session
    /// rebuilt from checkpoint + WAL resumes at the epoch it went down with.
    pub(crate) fn from_db_at(mut db: HiLogDb, epoch: u64) -> (DbWriter, SnapshotHandle) {
        let snapshot = Arc::new(DbSnapshot::from_parts(db.snapshot_parts(), epoch));
        let cell = Arc::new(RwLock::new(snapshot));
        let handle = SnapshotHandle { cell: cell.clone() };
        (
            DbWriter {
                db,
                epoch,
                batch_dirty: false,
                cell,
            },
            handle,
        )
    }

    /// A serving pair over `program` with default options and well-founded
    /// semantics.
    pub fn new(program: Program) -> (DbWriter, SnapshotHandle) {
        HiLogDb::new(program).into_serving()
    }

    /// A fresh reader endpoint (equivalent to cloning any existing one).
    pub fn handle(&self) -> SnapshotHandle {
        SnapshotHandle {
            cell: self.cell.clone(),
        }
    }

    /// The most recently published snapshot.
    pub fn current(&self) -> Arc<DbSnapshot> {
        read_lock(&self.cell).clone()
    }

    /// Epoch of the most recently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The writer's program, **including unpublished batch mutations**.
    pub fn program(&self) -> &Program {
        self.db.program()
    }

    /// The semantics queries are answered under.
    pub fn semantics(&self) -> Semantics {
        self.db.semantics()
    }

    /// The session's cached full model, pending deltas discharged (see
    /// [`HiLogDb::cached_model`]).  Checkpointing persists this alongside
    /// the program; `None` simply means the checkpoint carries no model.
    pub fn cached_model(&mut self) -> Option<Arc<Model>> {
        self.db.cached_model()
    }

    /// Marks the batch open, adopting reader-computed tables first if this
    /// is the batch's first mutation: at that moment the writer's program is
    /// still exactly the published snapshot's, so its completed tables are
    /// valid session tables — and once adopted they are *maintained* through
    /// the mutation like any table the session computed itself.
    fn begin_batch(&mut self) {
        if !self.batch_dirty {
            let tables = self.current().tables_snapshot();
            self.db.adopt_tables(tables);
            self.batch_dirty = true;
        }
    }

    /// Asserts a ground fact into the current batch (semi-naive incremental
    /// maintenance; see [`HiLogDb::assert_fact`]).  Not visible to readers
    /// until [`publish`](DbWriter::publish).
    pub fn assert_fact(&mut self, fact: Term) -> Result<(), EngineError> {
        self.begin_batch();
        self.db.assert_fact(fact)
    }

    /// Retracts one occurrence of a ground fact in the current batch (DRed
    /// maintenance; see [`HiLogDb::retract_fact`]).
    pub fn retract_fact(&mut self, fact: &Term) -> bool {
        self.begin_batch();
        self.db.retract_fact(fact)
    }

    /// Asserts a rule into the current batch (see [`HiLogDb::assert_rule`]).
    pub fn assert_rule(&mut self, rule: Rule) {
        self.begin_batch();
        self.db.assert_rule(rule)
    }

    /// Retracts the first matching rule in the current batch (see
    /// [`HiLogDb::retract_rule`]).
    pub fn retract_rule(&mut self, rule: &Rule) -> bool {
        self.begin_batch();
        self.db.retract_rule(rule)
    }

    /// Direct access to the underlying session — the escape hatch for routes
    /// without a writer wrapper ([`HiLogDb::stable_models`], …).
    /// Conservatively marks the batch dirty, since the caller may mutate.
    pub fn db(&mut self) -> &mut HiLogDb {
        self.batch_dirty = true;
        &mut self.db
    }

    /// Publishes the session's current state as the next snapshot and swaps
    /// it into the shared cell; readers see it on their next
    /// [`SnapshotHandle::current`] call, while already pinned snapshots are
    /// untouched.  A mutation-free publish first adopts the tables reader
    /// queries computed on the outgoing snapshot (the programs are
    /// identical), so warmth accumulates across epochs instead of resetting.
    pub fn publish(&mut self) -> Arc<DbSnapshot> {
        if !self.batch_dirty {
            let tables = self.current().tables_snapshot();
            self.db.adopt_tables(tables);
        }
        self.epoch += 1;
        let snapshot = Arc::new(DbSnapshot::from_parts(self.db.snapshot_parts(), self.epoch));
        *write_lock(&self.cell) = snapshot.clone();
        self.batch_dirty = false;
        snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hilog_syntax::{parse_program, parse_query, parse_term};

    fn game() -> Program {
        parse_program(
            "winning(X) :- move(X, Y), not winning(Y).\n\
             move(a, b). move(b, c).",
        )
        .unwrap()
    }

    #[test]
    fn serving_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DbSnapshot>();
        assert_send_sync::<Arc<DbSnapshot>>();
        assert_send_sync::<SnapshotHandle>();
        assert_send_sync::<DbWriter>();
    }

    #[test]
    fn pinned_snapshots_answer_their_own_epoch() {
        let (mut writer, handle) = HiLogDb::new(game()).into_serving();
        let pinned = handle.current();
        assert_eq!(pinned.epoch(), 0);
        let query = parse_query("?- winning(X).").unwrap();
        let before = pinned.query(&query).unwrap();
        assert_eq!(before.answers.len(), 1); // only b wins
        writer
            .assert_fact(parse_term("move(c, d)").unwrap())
            .unwrap();
        let published = writer.publish();
        assert_eq!(published.epoch(), 1);
        assert_eq!(handle.current().epoch(), 1);
        // The pinned snapshot still answers the epoch-0 state.
        assert_eq!(pinned.query(&query).unwrap().answers, before.answers);
        // The new snapshot sees the extended chain a -> b -> c -> d.
        let after = handle.current().query(&query).unwrap();
        let xs: Vec<String> = after
            .answers
            .iter()
            .map(|a| a.binding("X").unwrap().to_string())
            .collect();
        assert!(xs.contains(&"c".to_string()));
    }

    #[test]
    fn snapshot_answers_match_a_fresh_session() {
        let program = game();
        let (_writer, handle) = HiLogDb::new(program.clone()).into_serving();
        let snapshot = handle.current();
        let mut fresh = HiLogDb::new(program);
        for q in [
            "?- winning(X).",
            "?- winning(b).",
            "?- P(a, X).",
            "?- move(X, Y), not winning(Y).",
        ] {
            let query = parse_query(q).unwrap();
            let ours = snapshot.query(&query).unwrap();
            let theirs = fresh.query(&query).unwrap();
            assert_eq!(ours.answers, theirs.answers, "answers diverged on {q}");
            assert_eq!(ours.truth, theirs.truth, "truth diverged on {q}");
        }
    }

    #[test]
    fn concurrent_readers_share_one_snapshot() {
        let (_writer, handle) = HiLogDb::new(game()).into_serving();
        let query = parse_query("?- winning(X).").unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let handle = handle.clone();
                let query = &query;
                s.spawn(move || {
                    let result = handle.current().query(query).unwrap();
                    assert_eq!(result.answers.len(), 1);
                    assert_eq!(result.answers[0].binding("X").unwrap(), &Term::sym("b"));
                });
            }
        });
    }

    #[test]
    fn full_model_is_built_once_per_snapshot() {
        let (_writer, handle) = HiLogDb::new(game()).into_serving();
        let snapshot = handle.current();
        let query = parse_query("?- P(a, X).").unwrap();
        let first = snapshot.query(&query).unwrap();
        assert_eq!(first.stats.groundings, 1);
        assert_eq!(first.stats.model_source, ModelSource::Rebuilt);
        let second = snapshot.query(&query).unwrap();
        assert_eq!(second.stats.groundings, 0);
        assert_eq!(second.stats.model_source, ModelSource::Cached);
    }

    #[test]
    fn reader_warmed_tables_flow_back_on_publish() {
        let (mut writer, handle) = HiLogDb::new(game()).into_serving();
        let query = parse_query("?- winning(X).").unwrap();
        // Warm the tables on the *snapshot*, not the writer.
        let first = handle.current().query(&query).unwrap();
        assert!(first.stats.rule_applications > 0);
        // A mutation-free publish adopts them into the writer; the next
        // snapshot starts warm.
        let next = writer.publish();
        assert!(next.cached_subqueries() > 0);
        let warm = next.query(&query).unwrap();
        assert_eq!(warm.stats.rule_applications, 0, "tables were not adopted");
        assert!(warm.stats.cached_subqueries > 0);
    }

    #[test]
    fn tables_adopted_before_a_batch_survive_unrelated_mutations() {
        let (mut writer, handle) = HiLogDb::new(
            parse_program(
                "winning(X) :- move(X, Y), not winning(Y).\n\
                 reach(X) :- edge(X, Y).\n\
                 move(a, b). move(b, c). edge(u, v).",
            )
            .unwrap(),
        )
        .into_serving();
        let win = parse_query("?- winning(X).").unwrap();
        handle.current().query(&win).unwrap();
        // First mutation of the batch adopts the reader-computed winning
        // tables (programs still equal), then the unrelated edge fact leaves
        // them untouched through the instance-level maintenance.
        writer
            .assert_fact(parse_term("edge(v, w)").unwrap())
            .unwrap();
        let snapshot = writer.publish();
        assert!(snapshot.cached_subqueries() > 0, "warm tables were lost");
        let warm = snapshot.query(&win).unwrap();
        assert_eq!(warm.stats.rule_applications, 0);
        // And the mutation is visible.
        let reach = snapshot
            .query(&parse_query("?- reach(X).").unwrap())
            .unwrap();
        assert!(reach
            .answers
            .iter()
            .any(|a| a.binding("X").unwrap() == &Term::sym("v")));
    }

    #[test]
    fn snapshot_serves_stable_and_modular_routes() {
        let (_writer, handle) = HiLogDb::builder()
            .program(parse_program("p :- not q. q :- not p. r :- p. r :- q.").unwrap())
            .semantics(Semantics::Stable)
            .build()
            .into_serving();
        let snapshot = handle.current();
        assert_eq!(snapshot.stable_models().unwrap().len(), 2);
        assert_eq!(
            snapshot.holds(&parse_term("r").unwrap()).unwrap(),
            Truth::True
        );
        assert_eq!(
            snapshot.holds(&parse_term("p").unwrap()).unwrap(),
            Truth::Undefined
        );

        let (_writer, handle) = HiLogDb::builder()
            .program(game())
            .semantics(Semantics::ModularCheck)
            .build()
            .into_serving();
        let snapshot = handle.current();
        assert!(snapshot.check_modular().unwrap().modularly_stratified);
        assert_eq!(
            snapshot.holds(&parse_term("winning(b)").unwrap()).unwrap(),
            Truth::True
        );
    }

    #[test]
    fn writer_batches_are_invisible_until_published() {
        let (mut writer, handle) = HiLogDb::new(game()).into_serving();
        writer
            .assert_fact(parse_term("move(c, d)").unwrap())
            .unwrap();
        // Still epoch 0 and still the old answers.
        let current = handle.current();
        assert_eq!(current.epoch(), 0);
        assert_eq!(
            current.holds(&parse_term("move(c, d)").unwrap()).unwrap(),
            Truth::False
        );
        writer.publish();
        assert_eq!(
            handle
                .current()
                .holds(&parse_term("move(c, d)").unwrap())
                .unwrap(),
            Truth::True
        );
    }
}
