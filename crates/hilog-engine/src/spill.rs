//! The spill-to-disk relation storage backend.
//!
//! A [`SpillStore`] holds the same logical content as an
//! [`crate::horn::AtomStore`] but pages *cold relations' fact payloads* out
//! to per-relation segment files: every relation keeps its bookkeeping —
//! per-argument-position hash indexes, the structural-hash membership map,
//! insertion order — in memory, while the decoded `Term` payloads of rows
//! in relations that have not been probed recently are dropped after being
//! appended (once) to the relation's segment file.  A later probe *faults*
//! the rows it actually needs back in with positioned reads
//! (`pread`-style `read_at`; the OS page cache is the paging layer — the
//! build environment has no mmap crate, and positioned reads over a cached
//! file are what a read-only mmap would give us without the unsafety).
//!
//! Consequences of the layout:
//!
//! * A bound probe (`for_each_candidate` with a ground argument) walks one
//!   posting list and decodes only those rows — interactive latency even
//!   when the fact base is much larger than the residency budget.
//! * `contains` confirms a structural-hash hit by decoding at most the few
//!   hash-colliding rows.
//! * Full scans (unbound patterns over a cold relation) fault the whole
//!   relation back in — correct, visible in the fault counters, and priced
//!   exactly like the cold read it is.
//!
//! Segment files are append-only and process-lifetime: they are a *cache*,
//! not durable state (durability is `hilog-store`'s WAL + checkpoints), so
//! no fsync, no recovery, and clones of a store (the session publishes its
//! possibly-store into snapshots via `Arc::make_mut`) share the same
//! append-only segment files — offsets recorded by either clone stay valid
//! because nothing is ever overwritten or truncated.
//!
//! Eviction is relation-LRU: when the decoded-payload count exceeds the
//! budget, the least-recently-probed relations are paged out first, so hot
//! relations stay resident end to end.

use crate::storage::{note_residency_fault, note_spill_io_error, note_spill_write};
use crate::storage::{spill_fault_due, RelationStorage};
use crate::storage::{RelationStorageStats, DEFAULT_SPILL_BUDGET};
use hilog_core::codec::{PayloadReader, PayloadWriter};
use hilog_core::term::Term;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeSet, HashMap};
use std::fs::{File, OpenOptions};
use std::hash::{Hash, Hasher};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

#[cfg(unix)]
use std::os::unix::fs::FileExt;

/// Process-unique suffix for auto-created spill directories.
static SPILL_DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

/// The spill directory, shared by every clone of a store; auto-created
/// directories are removed when the last clone drops.
#[derive(Debug)]
struct SpillDir {
    path: PathBuf,
    owned: bool,
}

impl SpillDir {
    fn auto() -> Self {
        let path = std::env::temp_dir().join(format!(
            "hilog-spill-{}-{}",
            std::process::id(),
            SPILL_DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        SpillDir { path, owned: true }
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        if self.owned {
            // Best effort: the directory is a cache keyed by pid; a leak is
            // harmless and reaped by the OS temp cleaner.
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

/// One relation's append-only segment file, shared by clones of the store.
#[derive(Debug)]
struct Segment {
    file: File,
    /// Logical end of the file.  Appends claim `[end, end + len)` with a
    /// fetch-add, then write with `write_all_at`, so clones sharing the
    /// segment never interleave within a record.
    end: AtomicU64,
}

impl Segment {
    /// Appends `bytes`, claiming its offset first so clones sharing the
    /// segment never interleave within a record.  A failed write (injected
    /// or real — disk full, cache dir removed) is reported to the caller,
    /// which keeps the row resident; the claimed byte range is simply never
    /// referenced again (segments are append-only caches, holes are fine).
    fn append(&self, bytes: &[u8]) -> std::io::Result<(u64, u32)> {
        if spill_fault_due() {
            return Err(std::io::Error::other(
                "injected fault: spill segment write failed (ENOSPC)",
            ));
        }
        let offset = self.end.fetch_add(bytes.len() as u64, Ordering::SeqCst);
        #[cfg(unix)]
        self.file.write_all_at(bytes, offset)?;
        #[cfg(not(unix))]
        let _ = offset; // Spill requires positioned IO; unix-only for now.
        Ok((offset, bytes.len() as u32))
    }

    fn read(&self, offset: u64, len: u32) -> Vec<u8> {
        let mut buf = vec![0u8; len as usize];
        #[cfg(unix)]
        {
            // Bounded retry for transient read hiccups; a fault that
            // persists means the cache lost rows the store already evicted —
            // unrecoverable by construction (the payload exists nowhere
            // else), so panicking with a pointed message beats corrupting
            // answers.
            let mut last = None;
            for attempt in 0..3 {
                match self.file.read_exact_at(&mut buf, offset) {
                    Ok(()) => return buf,
                    Err(error) => {
                        last = Some(error);
                        std::thread::sleep(std::time::Duration::from_millis(attempt + 1));
                    }
                }
            }
            panic!(
                "spill segment read failed after retries (cache file corrupted or removed): {}",
                last.expect("loop recorded an error")
            );
        }
        #[cfg(not(unix))]
        {
            let _ = offset;
            buf
        }
    }
}

/// Row state: the decoded payload (when resident) and its on-disk location
/// (once spilled).  Removed rows give up their slot bookkeeping but their
/// segment bytes stay — segments are append-only, stale records are simply
/// never read again.
#[derive(Debug, Clone, Default)]
struct Slot {
    term: Option<Term>,
    disk: Option<(u64, u32)>,
}

/// One `(predicate name, arity)` extension.
#[derive(Debug, Clone, Default)]
struct SpillRelation {
    /// Live slot ids in insertion order (mirrors `AtomStore`'s row order).
    order: Vec<u32>,
    slots: Vec<Slot>,
    /// Structural term hash → live slots (membership / removal path).
    by_hash: HashMap<u64, Vec<u32>>,
    /// Argument-position indexes, maintained eagerly on insert/remove so a
    /// probe over a cold relation never faults rows in just to build an
    /// index.  Keys are argument subterms (`Arc` bumps) — the "all indexes
    /// stay in memory" half of the spill contract.
    indexes: HashMap<usize, HashMap<Term, Vec<u32>>>,
    /// Rows currently resident (decoded payload in memory).
    resident: usize,
    /// LRU clock of the last operation that touched this relation.
    touch: u64,
    /// Segment file, created on this relation's first eviction.
    segment: Option<Arc<Segment>>,
}

impl SpillRelation {
    /// Decodes slot `slot`, faulting it in from the segment when
    /// non-resident.  Returns the term and `1` if a fault happened.
    fn slot_term(&mut self, slot: u32) -> (Term, u64) {
        let entry = &mut self.slots[slot as usize];
        if let Some(term) = &entry.term {
            return (term.clone(), 0);
        }
        let (offset, len) = entry
            .disk
            .expect("non-resident spill slot must have a disk location");
        let segment = self
            .segment
            .as_ref()
            .expect("spilled relation must have a segment");
        let term = decode_row(&segment.read(offset, len));
        self.slots[slot as usize].term = Some(term.clone());
        self.resident += 1;
        note_residency_fault();
        (term, 1)
    }

    /// Locates the live slot holding `atom`, faulting colliding rows in to
    /// confirm equality.  Returns the slot and the number of faults.
    fn find_slot(&mut self, hash: u64, atom: &Term) -> (Option<u32>, u64) {
        let Some(slots) = self.by_hash.get(&hash) else {
            return (None, 0);
        };
        let slots = slots.clone();
        let mut faults = 0u64;
        for slot in slots {
            let (term, f) = self.slot_term(slot);
            faults += f;
            if &term == atom {
                return (Some(slot), faults);
            }
        }
        (None, faults)
    }
}

#[derive(Debug, Default)]
struct SpillInner {
    relations: HashMap<(Term, Option<usize>), SpillRelation>,
    /// Total live atoms.
    len: usize,
    /// Total resident (decoded) rows across relations.
    resident: usize,
    clock: u64,
    /// Lifetime counters for [`RelationStorageStats`].
    faults: u64,
    spill_writes: u64,
    segment_bytes: u64,
}

impl SpillInner {
    fn touch(&mut self, key: &(Term, Option<usize>)) -> Option<&mut SpillRelation> {
        self.clock += 1;
        let clock = self.clock;
        let rel = self.relations.get_mut(key)?;
        rel.touch = clock;
        Some(rel)
    }
}

/// Spill-to-disk [`RelationStorage`] backend; see the module docs.
///
/// Interior mutability (`Mutex`) because faulting rows in and updating the
/// LRU clock happen under `&self` probes, and a shared store must stay
/// `Sync` for snapshot readers and partitioned-join workers.  Probe results
/// are collected under the lock and visited outside it.
#[derive(Debug)]
pub struct SpillStore {
    inner: Mutex<SpillInner>,
    dir: Arc<SpillDir>,
    budget: usize,
}

impl Clone for SpillStore {
    fn clone(&self) -> Self {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        SpillStore {
            inner: Mutex::new(SpillInner {
                relations: inner.relations.clone(),
                len: inner.len,
                resident: inner.resident,
                clock: inner.clock,
                faults: inner.faults,
                spill_writes: inner.spill_writes,
                segment_bytes: inner.segment_bytes,
            }),
            dir: Arc::clone(&self.dir),
            budget: self.budget,
        }
    }
}

fn term_hash(term: &Term) -> u64 {
    let mut hasher = DefaultHasher::new();
    term.hash(&mut hasher);
    hasher.finish()
}

fn encode_row(atom: &Term) -> Vec<u8> {
    let mut writer = PayloadWriter::new();
    writer.write_term(atom);
    writer.finish()
}

fn decode_row(bytes: &[u8]) -> Term {
    let mut reader = PayloadReader::new(bytes).expect("spill row payload parses");
    reader.read_term().expect("spill row decodes to a term")
}

impl SpillStore {
    /// An empty store spilling to `dir` (an auto-created temp directory
    /// when `None`) with the given resident-payload budget.
    pub fn new(dir: Option<PathBuf>, resident_budget: usize) -> Self {
        let dir = match dir {
            Some(path) => Arc::new(SpillDir { path, owned: false }),
            None => Arc::new(SpillDir::auto()),
        };
        SpillStore {
            inner: Mutex::new(SpillInner::default()),
            dir,
            budget: resident_budget.max(1),
        }
    }

    /// An empty store with the default budget (tests, ad hoc use).
    pub fn with_default_budget() -> Self {
        SpillStore::new(None, DEFAULT_SPILL_BUDGET)
    }

    /// The resident-payload budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    fn lock(&self) -> MutexGuard<'_, SpillInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Pages out every resident row of `rel`, appending rows not yet on
    /// disk to the relation's segment file.  Returns `(evicted, writes,
    /// bytes)`.
    ///
    /// Resilience contract: a failed segment write (disk full, cache dir
    /// removed, injected fault) **keeps the affected rows resident** and
    /// stops this eviction attempt — the store overshoots its residency
    /// budget rather than lose a payload that exists nowhere else.  The
    /// next budget enforcement retries naturally; persistent failures show
    /// up in [`crate::storage::spill_io_errors`].
    fn evict_relation(
        dir: &SpillDir,
        key: &(Term, Option<usize>),
        rel: &mut SpillRelation,
    ) -> (usize, u64, u64) {
        if rel.resident == 0 {
            return (0, 0, 0);
        }
        if rel.segment.is_none() {
            let segment = (|| -> std::io::Result<Segment> {
                std::fs::create_dir_all(&dir.path)?;
                let mut hasher = DefaultHasher::new();
                key.hash(&mut hasher);
                let path = dir.path.join(format!("rel-{:016x}.seg", hasher.finish()));
                let file = OpenOptions::new()
                    .create(true)
                    .read(true)
                    .write(true)
                    .truncate(false)
                    .open(&path)?;
                let end = file.metadata().map(|m| m.len()).unwrap_or(0);
                Ok(Segment {
                    file,
                    end: AtomicU64::new(end),
                })
            })();
            match segment {
                Ok(segment) => rel.segment = Some(Arc::new(segment)),
                Err(_) => {
                    // Can't create the cache file: nothing pages out, all
                    // rows stay resident and correct.
                    note_spill_io_error();
                    return (0, 0, 0);
                }
            }
        }
        let segment = Arc::clone(rel.segment.as_ref().expect("segment just ensured"));
        let mut evicted = 0usize;
        let mut writes = 0u64;
        let mut bytes = 0u64;
        for &slot in &rel.order {
            let entry = &mut rel.slots[slot as usize];
            let Some(term) = &entry.term else { continue };
            if entry.disk.is_none() {
                let encoded = encode_row(term);
                match segment.append(&encoded) {
                    Ok(location) => {
                        entry.disk = Some(location);
                        writes += 1;
                        bytes += encoded.len() as u64;
                        note_spill_write();
                    }
                    Err(_) => {
                        // The row's only copy is the in-memory one: keep it
                        // resident and abandon this eviction pass.
                        note_spill_io_error();
                        break;
                    }
                }
            }
            entry.term = None;
            evicted += 1;
        }
        rel.resident -= evicted;
        (evicted, writes, bytes)
    }

    /// Enforces the residency budget by paging out the least recently
    /// touched relations — never `hot_key`, which the caller is actively
    /// working in, unless it is the only relation left with resident rows
    /// (then it simply overshoots rather than thrash).
    fn enforce_budget(&self, inner: &mut SpillInner, hot_key: Option<&(Term, Option<usize>)>) {
        while inner.resident > self.budget {
            let victim = inner
                .relations
                .iter()
                .filter(|(key, rel)| rel.resident > 0 && Some(*key) != hot_key)
                .min_by_key(|(_, rel)| rel.touch)
                .map(|(key, _)| key.clone());
            let Some(key) = victim else { break };
            let rel = inner.relations.get_mut(&key).expect("victim exists");
            let (evicted, writes, bytes) = Self::evict_relation(&self.dir, &key, rel);
            inner.resident -= evicted;
            inner.spill_writes += writes;
            inner.segment_bytes += bytes;
            if evicted == 0 {
                // The eviction attempt failed (I/O error on the victim):
                // stop rather than spin on the same victim; the budget is
                // overshot until a later attempt succeeds, which is the
                // documented degraded-cache behaviour, never wrong answers.
                break;
            }
        }
    }
}

impl RelationStorage for SpillStore {
    fn insert(&mut self, atom: Term) -> bool {
        debug_assert!(
            atom.is_ground(),
            "SpillStore::insert of non-ground atom {atom}"
        );
        let key = (atom.name().clone(), atom.arity());
        let hash = term_hash(&atom);
        let inner = &mut *self.lock();
        inner.clock += 1;
        let clock = inner.clock;
        let rel = inner.relations.entry(key.clone()).or_default();
        rel.touch = clock;
        let (found, faults) = rel.find_slot(hash, &atom);
        if found.is_some() {
            inner.resident += faults as usize;
            inner.faults += faults;
            self.enforce_budget(inner, Some(&key));
            return false;
        }
        let slot = rel.slots.len() as u32;
        for (pos, arg) in atom.args().iter().enumerate() {
            rel.indexes
                .entry(pos)
                .or_default()
                .entry(arg.clone())
                .or_default()
                .push(slot);
        }
        rel.slots.push(Slot {
            term: Some(atom),
            disk: None,
        });
        rel.order.push(slot);
        rel.by_hash.entry(hash).or_default().push(slot);
        rel.resident += 1;
        inner.resident += 1 + faults as usize;
        inner.faults += faults;
        inner.len += 1;
        self.enforce_budget(inner, Some(&key));
        true
    }

    fn remove(&mut self, atom: &Term) -> bool {
        let key = (atom.name().clone(), atom.arity());
        let hash = term_hash(atom);
        let inner = &mut *self.lock();
        let Some(rel) = inner.touch(&key) else {
            return false;
        };
        let (found, faults) = rel.find_slot(hash, atom);
        let Some(slot) = found else {
            inner.resident += faults as usize;
            inner.faults += faults;
            return false;
        };
        let entry = &mut rel.slots[slot as usize];
        let was_resident = entry.term.take().is_some();
        if was_resident {
            rel.resident -= 1;
        }
        rel.order.retain(|&s| s != slot);
        if let Some(bucket) = rel.by_hash.get_mut(&hash) {
            bucket.retain(|&s| s != slot);
            if bucket.is_empty() {
                rel.by_hash.remove(&hash);
            }
        }
        for (pos, index) in rel.indexes.iter_mut() {
            if let Some(arg) = atom.args().get(*pos) {
                if let Some(posting) = index.get_mut(arg) {
                    posting.retain(|&s| s != slot);
                }
            }
        }
        // find_slot left the target row resident (faulting it in if it was
        // spilled); taking its payload back out undoes exactly one unit,
        // while the other colliding faults stay resident.
        debug_assert!(was_resident, "find_slot leaves the found row resident");
        inner.resident += faults as usize;
        inner.resident -= 1;
        inner.faults += faults;
        inner.len -= 1;
        true
    }

    fn contains(&self, atom: &Term) -> bool {
        let key = (atom.name().clone(), atom.arity());
        let hash = term_hash(atom);
        let inner = &mut *self.lock();
        let Some(rel) = inner.touch(&key) else {
            return false;
        };
        let (found, faults) = rel.find_slot(hash, atom);
        inner.resident += faults as usize;
        inner.faults += faults;
        if faults > 0 {
            self.enforce_budget(inner, Some(&key));
        }
        found.is_some()
    }

    fn len(&self) -> usize {
        self.lock().len
    }

    fn for_each_candidate(&self, pattern: &Term, visit: &mut dyn FnMut(&Term)) {
        let collected: Vec<Term> = {
            let inner = &mut *self.lock();
            inner.clock += 1;
            let clock = inner.clock;
            let mut faults = 0u64;
            let arity = pattern.arity();
            let mut out: Vec<Term> = Vec::new();
            if !pattern.name().is_ground() {
                // Arity scan across every relation, in term order to mirror
                // the in-memory backend's ordered fallback.
                let mut sorted: BTreeSet<Term> = BTreeSet::new();
                for (key, rel) in inner.relations.iter_mut() {
                    if key.1 != arity {
                        continue;
                    }
                    rel.touch = clock;
                    for slot in rel.order.clone() {
                        let (term, f) = rel.slot_term(slot);
                        faults += f;
                        sorted.insert(term);
                    }
                }
                out.extend(sorted);
            } else if let Some(rel) = inner.relations.get_mut(&(pattern.name().clone(), arity)) {
                rel.touch = clock;
                // Most selective posting list over the pattern's ground
                // argument positions; indexes are maintained eagerly on
                // insert, so an absent posting means no row can match.
                let mut best: Option<&Vec<u32>> = None;
                let mut impossible = false;
                for (pos, arg) in pattern.args().iter().enumerate() {
                    if !arg.is_ground() {
                        continue;
                    }
                    match rel.indexes.get(&pos).and_then(|index| index.get(arg)) {
                        None => {
                            impossible = true;
                            break;
                        }
                        Some(posting) => {
                            if best.is_none_or(|b| posting.len() < b.len()) {
                                best = Some(posting);
                            }
                        }
                    }
                }
                if !impossible {
                    let slots: Vec<u32> = match best {
                        Some(posting) => posting.clone(),
                        None => rel.order.clone(),
                    };
                    for slot in slots {
                        let (term, f) = rel.slot_term(slot);
                        faults += f;
                        out.push(term);
                    }
                }
            }
            inner.resident += faults as usize;
            inner.faults += faults;
            self.enforce_budget(inner, None);
            out
        };
        for term in &collected {
            visit(term);
        }
    }

    fn for_each_atom(&self, visit: &mut dyn FnMut(&Term)) {
        let collected: BTreeSet<Term> = {
            let inner = &mut *self.lock();
            inner.clock += 1;
            let clock = inner.clock;
            let mut faults = 0u64;
            let mut sorted = BTreeSet::new();
            for rel in inner.relations.values_mut() {
                rel.touch = clock;
                for slot in rel.order.clone() {
                    let (term, f) = rel.slot_term(slot);
                    faults += f;
                    sorted.insert(term);
                }
            }
            inner.resident += faults as usize;
            inner.faults += faults;
            self.enforce_budget(inner, None);
            sorted
        };
        for term in &collected {
            visit(term);
        }
    }

    fn for_each_named(&self, name: &Term, arity: Option<usize>, visit: &mut dyn FnMut(&Term)) {
        let collected: BTreeSet<Term> = {
            let inner = &mut *self.lock();
            inner.clock += 1;
            let clock = inner.clock;
            let mut faults = 0u64;
            let mut sorted = BTreeSet::new();
            for (key, rel) in inner.relations.iter_mut() {
                if &key.0 != name || (arity.is_some() && key.1 != arity) {
                    continue;
                }
                rel.touch = clock;
                for slot in rel.order.clone() {
                    let (term, f) = rel.slot_term(slot);
                    faults += f;
                    sorted.insert(term);
                }
            }
            inner.resident += faults as usize;
            inner.faults += faults;
            self.enforce_budget(inner, None);
            sorted
        };
        for term in &collected {
            visit(term);
        }
    }

    fn storage_stats(&self) -> RelationStorageStats {
        let inner = self.lock();
        RelationStorageStats {
            resident_facts: inner.resident,
            spilled_facts: inner.len - inner.resident,
            relations: inner.relations.len(),
            spilled_relations: inner
                .relations
                .values()
                .filter(|r| r.resident < r.order.len())
                .count(),
            segment_bytes: inner.segment_bytes,
            residency_faults: inner.faults,
            spill_writes: inner.spill_writes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(name: &str, a: &str, b: &str) -> Term {
        Term::apps(name, vec![Term::sym(a), Term::sym(b)])
    }

    #[test]
    fn insert_contains_remove_roundtrip() {
        let mut store = SpillStore::new(None, 4);
        assert!(store.insert(atom("edge", "a", "b")));
        assert!(!store.insert(atom("edge", "a", "b")));
        assert!(store.contains(&atom("edge", "a", "b")));
        assert!(!store.contains(&atom("edge", "b", "a")));
        assert!(store.remove(&atom("edge", "a", "b")));
        assert!(!store.remove(&atom("edge", "a", "b")));
        assert_eq!(store.len(), 0);
    }

    #[test]
    fn eviction_pages_cold_relations_and_probes_fault_back() {
        let mut store = SpillStore::new(None, 8);
        // Two relations; the second relation's inserts make the first cold.
        for i in 0..16 {
            store.insert(atom("cold", &format!("a{i}"), "x"));
        }
        for i in 0..16 {
            store.insert(atom("hot", &format!("b{i}"), "y"));
        }
        let stats = store.storage_stats();
        assert!(
            stats.spilled_facts > 0,
            "expected spilled facts, got {stats:?}"
        );
        assert!(stats.spill_writes > 0);
        assert!(stats.segment_bytes > 0);
        // A bound probe on the cold relation faults exactly the posting
        // list back in and still answers correctly.
        let pattern = Term::apps("cold", vec![Term::sym("a3"), Term::var("Y")]);
        let hits = store.collect_candidates(&pattern);
        assert_eq!(hits, vec![atom("cold", "a3", "x")]);
        assert!(store.storage_stats().residency_faults > 0);
        assert!(store.contains(&atom("cold", "a7", "x")));
    }

    #[test]
    fn resident_count_stays_within_budget_for_multiple_relations() {
        let mut store = SpillStore::new(None, 10);
        for r in 0..6 {
            for i in 0..10 {
                store.insert(atom(&format!("rel{r}"), &format!("k{i}"), "v"));
            }
        }
        let stats = store.storage_stats();
        assert_eq!(stats.resident_facts + stats.spilled_facts, 60);
        assert!(
            stats.resident_facts <= 20,
            "budget 10 plus one hot relation, got {stats:?}"
        );
    }

    #[test]
    fn removal_of_spilled_rows_is_exact() {
        let mut store = SpillStore::new(None, 2);
        for i in 0..8 {
            store.insert(atom("r", &format!("k{i}"), "v"));
        }
        assert!(store.remove(&atom("r", "k2", "v")));
        assert!(!store.contains(&atom("r", "k2", "v")));
        assert_eq!(store.len(), 7);
        let pattern = Term::apps("r", vec![Term::var("X"), Term::var("Y")]);
        assert_eq!(store.collect_candidates(&pattern).len(), 7);
    }

    #[test]
    fn ordered_iteration_matches_term_order() {
        let mut store = SpillStore::new(None, 2);
        let mut expected = BTreeSet::new();
        for i in [3, 1, 4, 1, 5, 9, 2, 6] {
            let a = atom("z", &format!("n{i}"), "w");
            store.insert(a.clone());
            expected.insert(a.clone());
            let b = atom("a", &format!("n{i}"), "w");
            store.insert(b.clone());
            expected.insert(b);
        }
        let collected = store.collect_atoms();
        assert_eq!(collected, expected.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn injected_write_fault_keeps_rows_resident_and_answers_correct() {
        use crate::storage::{clear_spill_faults, inject_spill_faults, spill_io_errors};
        let mut store = SpillStore::new(None, 4);
        // Fill one relation past the budget with the disk dead: every
        // eviction attempt fails, so all rows must stay resident and every
        // answer must stay correct.
        inject_spill_faults(0, u64::MAX);
        for i in 0..12 {
            store.insert(atom("f", &format!("k{i}"), "v"));
        }
        for i in 0..4 {
            store.insert(atom("g", &format!("k{i}"), "v"));
        }
        let stats = store.storage_stats();
        assert_eq!(stats.spilled_facts, 0, "failed evictions spill nothing");
        assert_eq!(stats.resident_facts, 16, "rows survive in memory");
        assert!(spill_io_errors() > 0, "the failures were counted");
        for i in 0..12 {
            assert!(store.contains(&atom("f", &format!("k{i}"), "v")));
        }
        // The disk comes back: the next budget enforcement pages out again.
        clear_spill_faults();
        for i in 0..4 {
            store.insert(atom("h", &format!("k{i}"), "v"));
        }
        let stats = store.storage_stats();
        assert!(stats.spilled_facts > 0, "healed disk spills again");
        for i in 0..12 {
            assert!(store.contains(&atom("f", &format!("k{i}"), "v")));
        }
        assert_eq!(store.len(), 20);
    }

    #[test]
    fn one_shot_write_fault_is_survived_mid_eviction() {
        use crate::storage::{clear_spill_faults, inject_spill_faults};
        let mut store = SpillStore::new(None, 4);
        // Fail exactly the third segment write this thread performs: the
        // eviction pass stops there, rows before it are spilled, rows from
        // it on stay resident, and everything keeps answering.
        inject_spill_faults(2, 1);
        for r in 0..4 {
            for i in 0..6 {
                store.insert(atom(&format!("rel{r}"), &format!("k{i}"), "v"));
            }
        }
        clear_spill_faults();
        let stats = store.storage_stats();
        assert_eq!(stats.resident_facts + stats.spilled_facts, 24);
        for r in 0..4 {
            for i in 0..6 {
                assert!(store.contains(&atom(&format!("rel{r}"), &format!("k{i}"), "v")));
            }
        }
    }

    #[test]
    fn clones_share_segments_without_corruption() {
        let mut store = SpillStore::new(None, 2);
        for i in 0..12 {
            store.insert(atom("s", &format!("k{i}"), "v"));
        }
        let mut clone = store.clone();
        clone.insert(atom("s", "extra", "v"));
        // Both clones keep answering from the shared (append-only) segment.
        assert!(store.contains(&atom("s", "k1", "v")));
        assert!(clone.contains(&atom("s", "k1", "v")));
        assert!(clone.contains(&atom("s", "extra", "v")));
        assert!(!store.contains(&atom("s", "extra", "v")));
    }
}
