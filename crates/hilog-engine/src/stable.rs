//! The stable-model semantics (Section 3.2, extended to HiLog in Section 4).
//!
//! Definition 3.6 characterises a stable model as a *two-valued fixpoint of
//! `W_P`*; the original Gelfond–Lifschitz definition via the program reduct
//! is implemented as well and used as a cross-check (`gelfond_lifschitz_check`
//! — the two characterisations must agree, which doubles as an internal
//! consistency test).
//!
//! The solver first computes the well-founded model (every stable model
//! extends it, since `W_P` is monotone), then searches over the atoms the
//! well-founded model leaves undefined, propagating with `W_P` seeded by the
//! assumptions: if `I` is contained in a stable model `M`, then
//! `W_P(I) ⊆ W_P(M) = M`, so iterating `W_P` from the assumptions yields
//! consequences that hold in every stable model extending them and prunes the
//! search soundly.

use crate::deadline::check_deadline;
use crate::error::EngineError;
use crate::ground::{GroundProgram, GroundRule};
use crate::grounder::ground_over_universe;
use crate::horn::EvalOptions;
use crate::wfs::{is_two_valued_fixpoint, well_founded_of_ground};
use hilog_core::interpretation::{Model, Truth};
use hilog_core::program::Program;
use hilog_core::term::Term;
use std::collections::BTreeSet;

/// Options controlling the stable-model search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StableOptions {
    /// Stop after this many stable models have been found.
    pub max_models: usize,
    /// Abort (with [`EngineError::LimitExceeded`]) after this many search
    /// nodes.
    pub max_nodes: usize,
}

impl Default for StableOptions {
    fn default() -> Self {
        StableOptions {
            max_models: 64,
            max_nodes: 1_000_000,
        }
    }
}

/// Enumerates the stable models of a ground program (up to
/// `opts.max_models`).
pub fn stable_models_of_ground(
    program: &GroundProgram,
    opts: StableOptions,
) -> Result<Vec<Model>, EngineError> {
    let wfm = well_founded_of_ground(program);
    if wfm.is_total() {
        // The well-founded model is the unique stable model (Section 3.2).
        return Ok(vec![wfm]);
    }
    let undefined: Vec<Term> = wfm.undefined_atoms().iter().cloned().collect();
    let mut solver = Solver {
        program,
        base: wfm.base().iter().cloned().collect(),
        undefined,
        models: Vec::new(),
        nodes: 0,
        opts,
    };
    let assumed_true: BTreeSet<Term> = wfm.true_atoms().iter().cloned().collect();
    let assumed_false: BTreeSet<Term> = wfm.false_base_atoms().cloned().collect();
    solver.search(assumed_true, assumed_false)?;
    Ok(solver.models)
}

struct Solver<'a> {
    program: &'a GroundProgram,
    base: Vec<Term>,
    undefined: Vec<Term>,
    models: Vec<Model>,
    nodes: usize,
    opts: StableOptions,
}

impl Solver<'_> {
    /// Iterates `W_P` seeded with the given assumptions to a fixpoint.
    /// Returns `None` if the result is inconsistent with the assumptions
    /// (some assumed-false atom becomes derivable as true, or vice versa).
    fn propagate(
        &self,
        mut true_set: BTreeSet<Term>,
        mut false_set: BTreeSet<Term>,
    ) -> Option<(BTreeSet<Term>, BTreeSet<Term>)> {
        loop {
            let mut changed = false;
            // T_P step.
            for rule in &self.program.rules {
                if rule.pos.iter().all(|a| true_set.contains(a))
                    && rule.neg.iter().all(|a| false_set.contains(a))
                    && !true_set.contains(&rule.head)
                {
                    if false_set.contains(&rule.head) {
                        return None;
                    }
                    true_set.insert(rule.head.clone());
                    changed = true;
                }
            }
            // U_P step: greatest unfounded set w.r.t. (true_set, false_set).
            let founded = self.founded_atoms(&true_set, &false_set);
            for atom in &self.base {
                if !founded.contains(atom) && !false_set.contains(atom) {
                    if true_set.contains(atom) {
                        return None;
                    }
                    false_set.insert(atom.clone());
                    changed = true;
                }
            }
            if !changed {
                return Some((true_set, false_set));
            }
        }
    }

    fn founded_atoms(
        &self,
        true_set: &BTreeSet<Term>,
        false_set: &BTreeSet<Term>,
    ) -> BTreeSet<Term> {
        let mut founded: BTreeSet<Term> = BTreeSet::new();
        let usable: Vec<bool> = self
            .program
            .rules
            .iter()
            .map(|r| {
                r.pos.iter().all(|a| !false_set.contains(a))
                    && r.neg.iter().all(|a| !true_set.contains(a))
            })
            .collect();
        let mut changed = true;
        while changed {
            changed = false;
            for (ri, rule) in self.program.rules.iter().enumerate() {
                if !usable[ri] || founded.contains(&rule.head) {
                    continue;
                }
                if rule.pos.iter().all(|a| founded.contains(a)) {
                    founded.insert(rule.head.clone());
                    changed = true;
                }
            }
        }
        founded
    }

    fn search(
        &mut self,
        assumed_true: BTreeSet<Term>,
        assumed_false: BTreeSet<Term>,
    ) -> Result<(), EngineError> {
        if self.models.len() >= self.opts.max_models {
            return Ok(());
        }
        self.nodes += 1;
        check_deadline()?;
        if self.nodes > self.opts.max_nodes {
            return Err(EngineError::LimitExceeded(format!(
                "stable-model search exceeded {} nodes",
                self.opts.max_nodes
            )));
        }
        let Some((true_set, false_set)) = self.propagate(assumed_true, assumed_false) else {
            return Ok(());
        };
        // Find the first still-undecided atom.
        let next = self
            .undefined
            .iter()
            .find(|a| !true_set.contains(*a) && !false_set.contains(*a))
            .cloned();
        match next {
            None => {
                // Total assignment: verify it is a fixpoint of W_P (and hence a
                // stable model).
                let candidate = Model::new(self.base.iter().cloned(), true_set.iter().cloned(), []);
                if is_two_valued_fixpoint(self.program, &candidate) {
                    debug_assert!(gelfond_lifschitz_check(self.program, &candidate));
                    if !self.models.contains(&candidate) {
                        self.models.push(candidate);
                    }
                }
                Ok(())
            }
            Some(atom) => {
                // Branch: atom true first, then atom false.
                let mut with_true = true_set.clone();
                with_true.insert(atom.clone());
                self.search(with_true, false_set.clone())?;
                let mut with_false = false_set;
                with_false.insert(atom);
                self.search(true_set, with_false)
            }
        }
    }
}

/// The Gelfond–Lifschitz check: `candidate` is a stable model iff the least
/// model of the reduct `P^M` (delete rules with a negative body atom true in
/// `M`; delete the remaining negative literals) equals the true atoms of `M`.
pub fn gelfond_lifschitz_check(program: &GroundProgram, candidate: &Model) -> bool {
    // Build the reduct.
    let reduct: Vec<&GroundRule> = program
        .rules
        .iter()
        .filter(|r| r.neg.iter().all(|a| !candidate.is_true(a)))
        .collect();
    // Least model of the (definite) reduct.
    let mut derived: BTreeSet<Term> = BTreeSet::new();
    let mut changed = true;
    while changed {
        changed = false;
        for rule in &reduct {
            if !derived.contains(&rule.head) && rule.pos.iter().all(|a| derived.contains(a)) {
                derived.insert(rule.head.clone());
                changed = true;
            }
        }
    }
    let truths: BTreeSet<Term> = candidate.true_atoms().iter().cloned().collect();
    derived == truths
}

/// Enumerates stable models of a program via relevant instantiation.
#[deprecated(
    note = "construct a `HiLogDb` (`crate::session`) and call `.stable_models()`, or share a \
            `DbSnapshot` (`crate::snapshot`) across threads; both cache the grounding and \
            the models across queries"
)]
pub fn stable_models(
    program: &Program,
    eval: EvalOptions,
    opts: StableOptions,
) -> Result<Vec<Model>, EngineError> {
    // One-shot over the snapshot read path.
    let (_writer, handle) = crate::session::HiLogDb::builder()
        .program(program.clone())
        .options(eval)
        .stable_options(opts)
        .semantics(crate::session::Semantics::Stable)
        .build()
        .into_serving();
    Ok(handle.current().stable_models()?.as_ref().clone())
}

/// Enumerates stable models of a program instantiated over an explicit
/// universe slice.
pub fn stable_models_over_universe(
    program: &Program,
    universe: &[Term],
    eval: EvalOptions,
    opts: StableOptions,
) -> Result<Vec<Model>, EngineError> {
    stable_models_of_ground(&ground_over_universe(program, universe, eval)?, opts)
}

/// Definition 3.7: a ground atom is true according to the stable-model
/// semantics if it is true in every stable model, false if it is false in
/// every stable model, and undefined otherwise.  Returns `None` when there
/// are no stable models (the semantics is not defined, as for Example 3.1's
/// `u :- not u`).
pub fn stable_consensus_truth(models: &[Model], atom: &Term) -> Option<Truth> {
    if models.is_empty() {
        return None;
    }
    let first = models[0].truth(atom);
    if models.iter().all(|m| m.truth(atom) == first) {
        Some(first)
    } else {
        Some(Truth::Undefined)
    }
}

#[cfg(test)]
// The deprecated `stable_models` shim must keep working; these tests exercise
// it on purpose.
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::grounder::relevant_ground;
    use hilog_syntax::{parse_program, parse_term};

    fn models(text: &str) -> Vec<Model> {
        stable_models(
            &parse_program(text).unwrap(),
            EvalOptions::default(),
            StableOptions::default(),
        )
        .unwrap()
    }

    fn t(s: &str) -> Term {
        parse_term(s).unwrap()
    }

    #[test]
    fn example_3_2_has_two_stable_models() {
        // p :- not q.  q :- not p.  r :- p.  r :- q.  t :- p, not p.
        let ms = models("p :- not q. q :- not p. r :- p. r :- q. t :- p, not p.");
        assert_eq!(ms.len(), 2);
        // {p, r, not q, not t} and {q, r, not p, not t}.
        for m in &ms {
            assert!(m.is_total());
            assert!(m.is_true(&t("r")));
            assert!(m.is_false(&t("t")));
            assert!(m.is_true(&t("p")) ^ m.is_true(&t("q")));
        }
        // r is true according to the stable-model semantics, p is undefined.
        assert_eq!(stable_consensus_truth(&ms, &t("r")), Some(Truth::True));
        assert_eq!(stable_consensus_truth(&ms, &t("t")), Some(Truth::False));
        assert_eq!(stable_consensus_truth(&ms, &t("p")), Some(Truth::Undefined));
    }

    #[test]
    fn example_3_1_has_no_stable_models() {
        // The rule u :- not u destroys all stable models.
        let ms = models("p :- q. q :- p. r :- s, not p. s. t :- not r. u :- not u.");
        assert!(ms.is_empty());
        assert_eq!(stable_consensus_truth(&ms, &t("s")), None);
    }

    #[test]
    fn total_wfs_is_the_unique_stable_model() {
        let text = "winning(X) :- move(X, Y), not winning(Y). move(a, b). move(b, c).";
        let ms = models(text);
        assert_eq!(ms.len(), 1);
        assert!(ms[0].is_true(&t("winning(b)")));
        assert!(ms[0].is_false(&t("winning(a)")));
        // And it coincides with the well-founded model.
        let wfm =
            crate::wfs::well_founded_model(&parse_program(text).unwrap(), EvalOptions::default())
                .unwrap();
        assert_eq!(ms[0], wfm);
    }

    #[test]
    fn even_cycle_game_has_two_stable_models() {
        // A two-position cycle: either player can be the winner in a stable
        // model, while the well-founded model leaves both undefined.
        let ms = models("winning(X) :- move(X, Y), not winning(Y). move(a, b). move(b, a).");
        assert_eq!(ms.len(), 2);
        for m in &ms {
            assert!(m.is_true(&t("winning(a)")) ^ m.is_true(&t("winning(b)")));
        }
    }

    #[test]
    fn hilog_choice_program_stable_models() {
        // Choice between two relation names through HiLog negation.
        let ms = models(
            "pick(R) :- rel(R), other(R, S), not pick(S).\n\
             rel(r1). rel(r2). other(r1, r2). other(r2, r1).",
        );
        assert_eq!(ms.len(), 2);
        for m in &ms {
            assert!(m.is_true(&t("pick(r1)")) ^ m.is_true(&t("pick(r2)")));
        }
    }

    #[test]
    fn theorem_5_4_counterexample_program() {
        // P = { X(a) :- X(X), not X(a). } is range restricted but not
        // strongly; with Q = { r(r). } the union has no stable model even
        // though P and Q separately do (Section 5, after Theorem 5.4).
        let p_alone = models("q(c).");
        assert_eq!(p_alone.len(), 1);
        let union = models("X(a) :- X(X), not X(a). r(r).");
        assert!(union.is_empty());
    }

    #[test]
    fn gelfond_lifschitz_agrees_with_fixpoint_characterisation() {
        let p = parse_program("p :- not q. q :- not p. r :- p.").unwrap();
        let gp = relevant_ground(&p, EvalOptions::default()).unwrap();
        let ms = stable_models_of_ground(&gp, StableOptions::default()).unwrap();
        assert_eq!(ms.len(), 2);
        for m in &ms {
            assert!(gelfond_lifschitz_check(&gp, m));
            assert!(is_two_valued_fixpoint(&gp, m));
        }
        // A non-stable total model fails both checks.
        let bogus = Model::from_true_atoms([t("p"), t("q"), t("r")]);
        assert!(!gelfond_lifschitz_check(&gp, &bogus));
        assert!(!is_two_valued_fixpoint(&gp, &bogus));
    }

    #[test]
    fn max_models_limit_is_respected() {
        // 2^3 stable models from three independent choices; ask for at most 3.
        let text = "a1 :- not b1. b1 :- not a1.\n\
                    a2 :- not b2. b2 :- not a2.\n\
                    a3 :- not b3. b3 :- not a3.";
        let ms = stable_models(
            &parse_program(text).unwrap(),
            EvalOptions::default(),
            StableOptions {
                max_models: 3,
                max_nodes: 100_000,
            },
        )
        .unwrap();
        assert_eq!(ms.len(), 3);
        let all = stable_models(
            &parse_program(text).unwrap(),
            EvalOptions::default(),
            StableOptions::default(),
        )
        .unwrap();
        assert_eq!(all.len(), 8);
    }

    #[test]
    fn stable_models_over_bounded_universe_for_example_4_1() {
        // p :- not q(X). q(a): over the normal universe the unique stable
        // model makes p false; over a HiLog slice p is true.
        use hilog_core::herbrand::{HerbrandBounds, HerbrandUniverse};
        let p = parse_program("p :- not q(X). q(a).").unwrap();
        let normal = HerbrandUniverse::normal(&p, HerbrandBounds::default());
        let ms = stable_models_over_universe(
            &p,
            normal.terms(),
            EvalOptions::default(),
            StableOptions::default(),
        )
        .unwrap();
        assert_eq!(ms.len(), 1);
        assert!(ms[0].is_false(&t("p")));
        let hilog = HerbrandUniverse::hilog(&p, HerbrandBounds::new(1, 0, 50));
        let ms2 = stable_models_over_universe(
            &p,
            hilog.terms(),
            EvalOptions::default(),
            StableOptions::default(),
        )
        .unwrap();
        assert_eq!(ms2.len(), 1);
        assert!(ms2[0].is_true(&t("p")));
    }
}
