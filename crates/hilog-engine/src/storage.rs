//! Pluggable relation storage: the [`RelationStorage`] trait the evaluator
//! speaks, and the backend-polymorphic [`FactStore`] every long-lived store
//! in the engine (the session's possibly-true store, subgoal-table answers)
//! is made of.
//!
//! The join machinery in [`crate::horn`], the grounder, and the tabled
//! magic evaluator only need a small contract from a fact store:
//! insert/remove/contains, candidate enumeration for a (possibly partially
//! instantiated) pattern, ordered iteration, and name-keyed ranges.  That
//! contract is [`RelationStorage`]; it is object safe, so the evaluation
//! functions take `&dyn RelationStorage` and one compiled join path serves
//! every backend (cozo evaluates the same semi-naive program over swappable
//! `TempStore`s inside a transaction — same shape).
//!
//! Two backends ship:
//!
//! * **In-memory** — [`crate::horn::AtomStore`], today's behaviour,
//!   bit-identical results and performance; the default.
//! * **Spill** — [`crate::spill::SpillStore`], which keeps every
//!   argument-position index (and each relation's bookkeeping) in memory
//!   but pages *cold relations' fact payloads* out to per-relation segment
//!   files, faulting rows back in on demand with an LRU residency budget.
//!   A fact base larger than RAM keeps answering bound queries at
//!   interactive latency because bound probes only decode the posting list
//!   they hit.
//!
//! Backend selection is per store via [`StorageConfig`]; the
//! `HILOG_STORAGE=spill` environment variable flips the process-wide
//! default so CI can run the entire suite on the spill backend.

use crate::horn::AtomStore;
use crate::spill::SpillStore;
use hilog_core::term::Term;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative process-wide spill counters, mirrored into per-query
/// [`crate::magic_eval::EvalStats`] deltas by the session facade.  Global
/// atomics rather than thread-locals because a spill store is shared across
/// snapshot reader threads and partitioned-join workers; the deltas a
/// single-writer benchmark observes are exact, concurrent readers may see
/// each other's faults (documented in `EvalStats`).
static RESIDENCY_FAULTS: AtomicU64 = AtomicU64::new(0);
static SPILL_WRITES: AtomicU64 = AtomicU64::new(0);

static SPILL_IO_ERRORS: AtomicU64 = AtomicU64::new(0);

pub(crate) fn note_residency_fault() {
    RESIDENCY_FAULTS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn note_spill_write() {
    SPILL_WRITES.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn note_spill_io_error() {
    SPILL_IO_ERRORS.fetch_add(1, Ordering::Relaxed);
}

/// Snapshot of the process-wide cumulative `(residency_faults,
/// spill_writes)` counters — rows decoded back from a segment file, and
/// rows paged out to one.  Both are `0` for the in-memory backend.
pub fn storage_counters() -> (u64, u64) {
    (
        RESIDENCY_FAULTS.load(Ordering::Relaxed),
        SPILL_WRITES.load(Ordering::Relaxed),
    )
}

/// Process-wide count of spill I/O failures survived: eviction attempts
/// that hit a write error (injected or real) and fell back to keeping the
/// relation resident.  Non-zero values mean the cache is degraded (the
/// residency budget may be overshot), never that answers are wrong.
pub fn spill_io_errors() -> u64 {
    SPILL_IO_ERRORS.load(Ordering::Relaxed)
}

thread_local! {
    /// Fault window for spill segment writes on this thread:
    /// `(fail_from, fail_count)` over a per-thread op counter.  Thread-local
    /// on purpose — evictions run on the thread that mutates the store, and
    /// a process-global plan would let parallel tests fault each other.
    static SPILL_FAULT_PLAN: std::cell::Cell<Option<(u64, u64)>> =
        const { std::cell::Cell::new(None) };
    static SPILL_FAULT_OPS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Arms fault injection for this thread's spill segment writes: operations
/// with index in `[from, from + count)` (counted from the call) fail with
/// an injected `ENOSPC`-style error.  `count = u64::MAX` models a disk
/// that never recovers.  See [`clear_spill_faults`].
pub fn inject_spill_faults(from: u64, count: u64) {
    SPILL_FAULT_OPS.with(|cell| cell.set(0));
    SPILL_FAULT_PLAN.with(|cell| cell.set(Some((from, count))));
}

/// Disarms [`inject_spill_faults`] for this thread.
pub fn clear_spill_faults() {
    SPILL_FAULT_PLAN.with(|cell| cell.set(None));
}

/// Numbers one spill write op on this thread and reports whether the armed
/// plan says it must fail.  Always `false` when no plan is armed.
pub(crate) fn spill_fault_due() -> bool {
    let Some((from, count)) = SPILL_FAULT_PLAN.with(|cell| cell.get()) else {
        return false;
    };
    let index = SPILL_FAULT_OPS.with(|cell| {
        let i = cell.get();
        cell.set(i + 1);
        i
    });
    index >= from && index - from < count
}

/// Per-store storage observability: how much of the store is resident
/// versus paged out, and what moving rows across the boundary has cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RelationStorageStats {
    /// Facts whose decoded payload is currently in memory.
    pub resident_facts: usize,
    /// Facts whose payload currently lives only in a segment file.
    pub spilled_facts: usize,
    /// Relations in the store.
    pub relations: usize,
    /// Relations with at least one spilled fact.
    pub spilled_relations: usize,
    /// Total bytes appended to this store's segment files.
    pub segment_bytes: u64,
    /// Rows decoded back from a segment file over this store's lifetime.
    pub residency_faults: u64,
    /// Rows paged out to a segment file over this store's lifetime.
    pub spill_writes: u64,
}

impl RelationStorageStats {
    /// Accumulates another store's stats into this one (the session sums
    /// its possibly-true store and every subgoal table into one report).
    pub fn merge(&mut self, other: &RelationStorageStats) {
        self.resident_facts += other.resident_facts;
        self.spilled_facts += other.spilled_facts;
        self.relations += other.relations;
        self.spilled_relations += other.spilled_relations;
        self.segment_bytes += other.segment_bytes;
        self.residency_faults += other.residency_faults;
        self.spill_writes += other.spill_writes;
    }
}

/// The storage contract the evaluator needs from a set of ground atoms.
///
/// Extracted from [`AtomStore`]'s inherent API: the join machinery
/// ([`crate::horn::join_body`], [`crate::horn::extend_by_matching`], the
/// semi-naive rounds), the grounder, and the magic evaluator's subgoal
/// tables call only these methods, so any implementor can back them.
/// Candidate enumeration and iteration use visitor callbacks instead of
/// borrowed iterators because a spilled row has no `&Term` to lend — it is
/// decoded on the fly; `Term` is `Arc`-backed, so the in-memory backend
/// loses nothing by sharing through `&Term` callbacks either.
pub trait RelationStorage: std::fmt::Debug + Send + Sync {
    /// Inserts a ground atom; returns `true` if it was new.
    fn insert(&mut self, atom: Term) -> bool;

    /// Removes a ground atom; returns `true` if it was present.
    fn remove(&mut self, atom: &Term) -> bool;

    /// Returns `true` if the atom is present.
    fn contains(&self, atom: &Term) -> bool;

    /// Number of atoms.
    fn len(&self) -> usize;

    /// Returns `true` if the store is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Visits candidate atoms that could match the given (possibly
    /// partially instantiated) pattern — a superset of the actual matches
    /// restricted by the backend's best access path; callers still
    /// unify/match against each candidate.  Mirrors
    /// [`AtomStore::candidates`]'s selection order: relation narrowing,
    /// most selective argument index, functor-bucket scan, arity scan.
    fn for_each_candidate(&self, pattern: &Term, visit: &mut dyn FnMut(&Term));

    /// Visits every atom in term order.
    fn for_each_atom(&self, visit: &mut dyn FnMut(&Term));

    /// Visits every atom whose predicate name equals `name` (restricted to
    /// one arity when `arity` is `Some`) in term order — the name-keyed
    /// range probe [`hilog_core::interpretation::Model::base_candidates`]
    /// performs on the ordered model base.
    fn for_each_named(&self, name: &Term, arity: Option<usize>, visit: &mut dyn FnMut(&Term));

    /// Storage observability counters for this store.
    fn storage_stats(&self) -> RelationStorageStats;

    /// Collects the candidates for `pattern` into owned terms (a
    /// convenience over [`RelationStorage::for_each_candidate`]; `Term`
    /// clones are `Arc` bumps).
    fn collect_candidates(&self, pattern: &Term) -> Vec<Term> {
        let mut out = Vec::new();
        self.for_each_candidate(pattern, &mut |t| out.push(t.clone()));
        out
    }

    /// Collects every atom in term order.
    fn collect_atoms(&self) -> Vec<Term> {
        let mut out = Vec::new();
        self.for_each_atom(&mut |t| out.push(t.clone()));
        out
    }
}

impl RelationStorage for AtomStore {
    fn insert(&mut self, atom: Term) -> bool {
        AtomStore::insert(self, atom)
    }

    fn remove(&mut self, atom: &Term) -> bool {
        AtomStore::remove(self, atom)
    }

    fn contains(&self, atom: &Term) -> bool {
        AtomStore::contains(self, atom)
    }

    fn len(&self) -> usize {
        AtomStore::len(self)
    }

    fn for_each_candidate(&self, pattern: &Term, visit: &mut dyn FnMut(&Term)) {
        for candidate in self.candidates(pattern) {
            visit(candidate);
        }
    }

    fn for_each_atom(&self, visit: &mut dyn FnMut(&Term)) {
        for atom in self.iter() {
            visit(atom);
        }
    }

    fn for_each_named(&self, name: &Term, arity: Option<usize>, visit: &mut dyn FnMut(&Term)) {
        if !name.is_ground() {
            // No contiguous range to walk; filter the ordered view.
            for atom in self.iter() {
                if atom.name() == name && (arity.is_none() || atom.arity() == arity) {
                    visit(atom);
                }
            }
            return;
        }
        // A bare symbol atom is its own name and orders before every
        // application, so it sits outside the range below.  An application
        // atom is *not* its own name (its name is its head), so a stored
        // atom equal to a compound `name` does not belong to the range —
        // same as `Model::base_candidates`, whose range starts at
        // `App(name, [])`.
        if arity.is_none() && !matches!(name, Term::App(_, _)) && AtomStore::contains(self, name) {
            visit(name);
        }
        // Term order is name-major for applications: every `name(..)` atom
        // is contiguous starting at the empty application (same walk as
        // `Model::base_candidates`).
        for atom in self.atoms_from(&Term::app(name.clone(), Vec::new())) {
            if atom.name() != name {
                break;
            }
            if arity.is_none() || atom.arity() == arity {
                visit(atom);
            }
        }
    }

    fn storage_stats(&self) -> RelationStorageStats {
        RelationStorageStats {
            resident_facts: self.len(),
            relations: self.relation_count(),
            ..RelationStorageStats::default()
        }
    }
}

/// Which backend a [`FactStore`] uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageConfig {
    /// Everything in memory ([`AtomStore`]) — the exact pre-trait baseline.
    InMemory,
    /// Hot relations and all indexes in memory; cold relations' fact
    /// payloads paged to per-relation segment files.
    Spill {
        /// Directory for the segment files.  `None` creates (and on drop of
        /// the last clone removes) a fresh directory under the system temp
        /// dir.  The directory is a cache, not durable state: durability is
        /// the WAL + checkpoints in `hilog-store`.
        dir: Option<PathBuf>,
        /// How many decoded fact payloads may stay resident before the
        /// least-recently-probed relations are paged out.
        resident_budget: usize,
    },
}

/// Default resident budget when `HILOG_SPILL_BUDGET` is unset.
pub const DEFAULT_SPILL_BUDGET: usize = 65_536;

impl StorageConfig {
    /// The spill backend with an automatic temp directory and the
    /// environment-controlled (or default) residency budget.
    pub fn spill() -> Self {
        StorageConfig::Spill {
            dir: None,
            resident_budget: env_budget(),
        }
    }

    /// Reads the process-wide default from `HILOG_STORAGE` (`spill` selects
    /// the spill backend, anything else — or unset — the in-memory one) and
    /// `HILOG_SPILL_BUDGET` (resident fact budget for spill).
    pub fn from_env() -> Self {
        match std::env::var("HILOG_STORAGE") {
            Ok(v) if v.eq_ignore_ascii_case("spill") => StorageConfig::spill(),
            _ => StorageConfig::InMemory,
        }
    }
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig::from_env()
    }
}

fn env_budget() -> usize {
    std::env::var("HILOG_SPILL_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SPILL_BUDGET)
}

/// A fact store over one of the pluggable backends.  This is the concrete
/// type long-lived engine state is made of; it exposes the same inherent
/// API shape as [`AtomStore`] (plus the trait), dispatching statically over
/// the backend enum.
#[derive(Debug, Clone)]
pub enum FactStore {
    /// Everything resident ([`AtomStore`]).
    InMemory(AtomStore),
    /// Cold relations paged to segment files ([`SpillStore`]).
    Spill(SpillStore),
}

impl Default for FactStore {
    fn default() -> Self {
        FactStore::InMemory(AtomStore::new())
    }
}

impl FactStore {
    /// An empty store on the configured backend.
    pub fn new(config: &StorageConfig) -> Self {
        match config {
            StorageConfig::InMemory => FactStore::InMemory(AtomStore::new()),
            StorageConfig::Spill {
                dir,
                resident_budget,
            } => FactStore::Spill(SpillStore::new(dir.clone(), *resident_budget)),
        }
    }

    /// The configuration that produces this store's backend (budget and
    /// directory are the store's own, not the originals).
    pub fn is_spill(&self) -> bool {
        matches!(self, FactStore::Spill(_))
    }

    fn as_dyn(&self) -> &dyn RelationStorage {
        match self {
            FactStore::InMemory(s) => s,
            FactStore::Spill(s) => s,
        }
    }

    fn as_dyn_mut(&mut self) -> &mut dyn RelationStorage {
        match self {
            FactStore::InMemory(s) => s,
            FactStore::Spill(s) => s,
        }
    }

    /// Inserts a ground atom; returns `true` if it was new.
    pub fn insert(&mut self, atom: Term) -> bool {
        self.as_dyn_mut().insert(atom)
    }

    /// Removes a ground atom; returns `true` if it was present.
    pub fn remove(&mut self, atom: &Term) -> bool {
        self.as_dyn_mut().remove(atom)
    }

    /// Returns `true` if the atom is present.
    pub fn contains(&self, atom: &Term) -> bool {
        self.as_dyn().contains(atom)
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.as_dyn().len()
    }

    /// Returns `true` if the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Collects the candidates for `pattern` (see
    /// [`RelationStorage::for_each_candidate`]).
    pub fn collect_candidates(&self, pattern: &Term) -> Vec<Term> {
        self.as_dyn().collect_candidates(pattern)
    }

    /// Collects every atom in term order.
    pub fn collect_atoms(&self) -> Vec<Term> {
        self.as_dyn().collect_atoms()
    }

    /// Storage observability counters for this store.
    pub fn storage_stats(&self) -> RelationStorageStats {
        self.as_dyn().storage_stats()
    }
}

impl RelationStorage for FactStore {
    fn insert(&mut self, atom: Term) -> bool {
        self.as_dyn_mut().insert(atom)
    }

    fn remove(&mut self, atom: &Term) -> bool {
        self.as_dyn_mut().remove(atom)
    }

    fn contains(&self, atom: &Term) -> bool {
        self.as_dyn().contains(atom)
    }

    fn len(&self) -> usize {
        self.as_dyn().len()
    }

    fn for_each_candidate(&self, pattern: &Term, visit: &mut dyn FnMut(&Term)) {
        self.as_dyn().for_each_candidate(pattern, visit)
    }

    fn for_each_atom(&self, visit: &mut dyn FnMut(&Term)) {
        self.as_dyn().for_each_atom(visit)
    }

    fn for_each_named(&self, name: &Term, arity: Option<usize>, visit: &mut dyn FnMut(&Term)) {
        self.as_dyn().for_each_named(name, arity, visit)
    }

    fn storage_stats(&self) -> RelationStorageStats {
        self.as_dyn().storage_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(name: &str, args: &[&str]) -> Term {
        Term::apps(name, args.iter().map(|a| Term::sym(*a)).collect::<Vec<_>>())
    }

    #[test]
    fn in_memory_factstore_mirrors_atomstore() {
        let mut store = FactStore::new(&StorageConfig::InMemory);
        assert!(store.insert(atom("move", &["a", "b"])));
        assert!(!store.insert(atom("move", &["a", "b"])));
        assert!(store.insert(atom("move", &["b", "c"])));
        assert!(store.contains(&atom("move", &["a", "b"])));
        assert_eq!(store.len(), 2);
        let pat = Term::apps("move", vec![Term::sym("a"), Term::var("Y")]);
        assert_eq!(store.collect_candidates(&pat).len(), 1);
        assert!(store.remove(&atom("move", &["a", "b"])));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn trait_candidates_agree_with_inherent_iterator() {
        let mut store = AtomStore::new();
        for i in 0..16 {
            store.insert(atom("edge", &[&format!("n{i}"), &format!("n{}", i + 1)]));
        }
        let pat = Term::apps("edge", vec![Term::sym("n3"), Term::var("Y")]);
        let via_iter: Vec<Term> = store.candidates(&pat).cloned().collect();
        let via_trait = RelationStorage::collect_candidates(&store, &pat);
        assert_eq!(via_iter, via_trait);
    }

    #[test]
    fn named_range_restricts_by_name_and_arity() {
        let mut store = AtomStore::new();
        store.insert(atom("p", &["a"]));
        store.insert(atom("p", &["a", "b"]));
        store.insert(atom("q", &["a"]));
        let name = Term::sym("p");
        let mut all = Vec::new();
        store.for_each_named(&name, None, &mut |t| all.push(t.clone()));
        assert_eq!(all.len(), 2);
        let mut unary = Vec::new();
        store.for_each_named(&name, Some(1), &mut |t| unary.push(t.clone()));
        assert_eq!(unary, vec![atom("p", &["a"])]);
    }

    #[test]
    fn storage_config_env_default_is_in_memory() {
        // The suite does not set HILOG_STORAGE (the CI storage job does);
        // whatever the ambient value, from_env must parse without panicking
        // and "spill" must map to the spill backend.
        let _ = StorageConfig::from_env();
        assert!(matches!(
            StorageConfig::spill(),
            StorageConfig::Spill { dir: None, .. }
        ));
    }
}
