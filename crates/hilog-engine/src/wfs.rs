//! The well-founded semantics (Section 3.1, extended to HiLog in Section 4).
//!
//! Definitions 3.3–3.5 of the paper are implemented directly on the
//! instantiated (ground) program:
//!
//! * `T_P(I)` — an atom is derived if some instantiated rule has every body
//!   literal true in `I`;
//! * `U_P(I)` — the greatest unfounded set with respect to `I`, computed as
//!   the complement of the least *founded* set (an atom is founded if some
//!   rule for it has no witness of unusability and all its positive body
//!   atoms are already founded);
//! * `W_P(I) = T_P(I) ∪ ¬·U_P(I)`, iterated from the empty interpretation to
//!   its least fixpoint, the well-founded partial model.
//!
//! The HiLog well-founded semantics is obtained by applying exactly the same
//! construction to the HiLog instantiation of the program (Section 4); the
//! caller chooses the instantiation strategy (relevant or bounded-universe,
//! see [`crate::grounder`]).

use crate::error::EngineError;
use crate::ground::{GroundProgram, IndexedProgram};
use crate::grounder::{ground_over_universe, relevant_ground};
use crate::horn::EvalOptions;
use hilog_core::interpretation::{Model, Truth};
use hilog_core::program::Program;
use hilog_core::term::Term;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU8, Ordering};

/// A three-valued assignment over the atoms of an [`IndexedProgram`].
#[derive(Debug, Clone, PartialEq, Eq)]
struct Assignment {
    truth: Vec<Option<bool>>, // Some(true) = true, Some(false) = false, None = undefined
}

impl Assignment {
    fn new(n: usize) -> Self {
        Assignment {
            truth: vec![None; n],
        }
    }

    fn is_true(&self, a: u32) -> bool {
        self.truth[a as usize] == Some(true)
    }

    fn is_false(&self, a: u32) -> bool {
        self.truth[a as usize] == Some(false)
    }
}

/// One application of the `T_P` operator (Definition 3.5): the set of atoms
/// with a rule whose positive body atoms are all true and whose negative body
/// atoms are all false in `I`.
fn t_p(program: &IndexedProgram, i: &Assignment) -> Vec<u32> {
    let mut out = Vec::new();
    'rules: for rule in &program.rules {
        for &p in &rule.pos {
            if !i.is_true(p) {
                continue 'rules;
            }
        }
        for &n in &rule.neg {
            if !i.is_false(n) {
                continue 'rules;
            }
        }
        out.push(rule.head);
    }
    out
}

/// The greatest unfounded set with respect to `I` (Definitions 3.3–3.4),
/// returned as a boolean mask over atom ids.
///
/// The complement (the *founded* atoms) is computed as a least fixpoint: an
/// atom is founded if it has a rule with no witness of unusability
/// (condition 1: no body literal's complement is in `I`) whose positive body
/// atoms are all founded (the negation of condition 2).  Everything not
/// founded is unfounded.
fn greatest_unfounded_set(program: &IndexedProgram, i: &Assignment) -> Vec<bool> {
    greatest_unfounded_set_seeded(program, i, vec![false; program.atom_count()])
}

/// [`greatest_unfounded_set`] with pre-founded atoms: ids already `true` in
/// `founded` are treated as externally established (used by
/// [`well_founded_patch`], where atoms settled by the unaffected part of the
/// program are founded exactly when they are not false there).
fn greatest_unfounded_set_seeded(
    program: &IndexedProgram,
    i: &Assignment,
    mut founded: Vec<bool>,
) -> Vec<bool> {
    // usable[r] = rule r has no witness of unusability of type 1.
    let usable: Vec<bool> = program
        .rules
        .iter()
        .map(|r| r.pos.iter().all(|&p| !i.is_false(p)) && r.neg.iter().all(|&q| !i.is_true(q)))
        .collect();
    // Least fixpoint by worklist.
    let mut changed = true;
    while changed {
        changed = false;
        for (ri, rule) in program.rules.iter().enumerate() {
            if !usable[ri] || founded[rule.head as usize] {
                continue;
            }
            if rule.pos.iter().all(|&p| founded[p as usize]) {
                founded[rule.head as usize] = true;
                changed = true;
            }
        }
    }
    founded.iter().map(|&f| !f).collect()
}

/// Computes the well-founded (partial) model of a ground program by iterating
/// `W_P` to its least fixpoint (Definition 3.5).
pub fn well_founded_of_ground(program: &GroundProgram) -> Model {
    let indexed = IndexedProgram::build(program);
    let n = indexed.atom_count();
    let mut assignment = Assignment::new(n);
    loop {
        let mut changed = false;
        // W_P(I) = T_P(I) ∪ ¬ · U_P(I).
        let trues = t_p(&indexed, &assignment);
        let unfounded = greatest_unfounded_set(&indexed, &assignment);
        for a in trues {
            if assignment.truth[a as usize] != Some(true) {
                assignment.truth[a as usize] = Some(true);
                changed = true;
            }
        }
        for (a, &unf) in unfounded.iter().enumerate() {
            if unf && assignment.truth[a] != Some(true) && assignment.truth[a] != Some(false) {
                assignment.truth[a] = Some(false);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    assemble_model(&indexed, &assignment)
}

/// Builds a [`Model`] from a settled assignment over an indexed program's
/// atoms.  Shared by the whole-program fixpoint and the wave evaluator; the
/// result depends only on the assignment values (the model's sets are
/// ordered), never on the schedule that produced them.
fn assemble_model(indexed: &IndexedProgram, assignment: &Assignment) -> Model {
    let mut true_atoms = Vec::new();
    let mut undefined = Vec::new();
    let mut base = Vec::new();
    for (id, atom) in indexed.atoms.iter() {
        base.push(atom.clone());
        match assignment.truth[id as usize] {
            Some(true) => true_atoms.push(atom.clone()),
            Some(false) => {}
            None => undefined.push(atom.clone()),
        }
    }
    Model::new(base, true_atoms, undefined)
}

/// Computes the well-founded model with `threads` workers.
///
/// `threads <= 1` is exactly [`well_founded_of_ground`] — the pre-parallel
/// serial path, unchanged.  With more threads the atom dependency graph is
/// condensed into strongly connected components, the condensation is
/// levelled into topological *waves* (an SCC's wave is one past the deepest
/// wave it depends on), and each wave's components — mutually independent by
/// construction — are evaluated concurrently on the engine work pool, each
/// by an alternating fixpoint over its own rules with every earlier-settled
/// atom read as fixed external context.  This is the splitting property of
/// the well-founded semantics (the same one [`well_founded_patch`] relies
/// on) applied along the whole condensation, so the result is the identical
/// model at every thread count; beyond the parallelism, settling each
/// component locally also avoids re-scanning the entire program once per
/// global iteration, which is why the wave schedule wins even on one core.
pub fn well_founded_eval(program: &GroundProgram, threads: usize) -> Model {
    if threads <= 1 {
        return well_founded_of_ground(program);
    }
    let indexed = IndexedProgram::build(program);
    let n = indexed.atom_count();
    let frozen = vec![false; n];
    let assignment = wave_fixpoint(&indexed, Assignment::new(n), &frozen, threads);
    assemble_model(&indexed, &assignment)
}

/// The condensation of the (non-frozen) atom dependency graph, levelled
/// into topological waves.
struct Waves {
    /// Strongly connected components (sorted member lists), emitted in an
    /// order where every component appears after the components it depends
    /// on (Tarjan emission order over head → body edges).
    sccs: Vec<Vec<u32>>,
    /// `waves[k]` holds indices into `sccs` whose longest dependency chain
    /// through other components has length `k`.  Components of one wave
    /// share no dependency edges, so they evaluate concurrently; waves run
    /// in index order with a barrier between them.
    waves: Vec<Vec<usize>>,
}

/// Condenses the dependency graph of the non-frozen atoms: one vertex per
/// atom, an edge from every rule head to each of its (positive *and*
/// negative) body atoms.  Frozen atoms are fixed external context and join
/// no component.  Hand-rolled iterative Tarjan — the build environment has
/// no petgraph, and recursion would overflow on deep chain programs.
fn condensation_waves(indexed: &IndexedProgram, frozen: &[bool]) -> Waves {
    let n = indexed.atom_count();
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for rule in &indexed.rules {
        debug_assert!(!frozen[rule.head as usize], "rule head is frozen context");
        for &b in rule.pos.iter().chain(rule.neg.iter()) {
            if !frozen[b as usize] {
                adj[rule.head as usize].push(b);
            }
        }
    }

    const UNVISITED: u32 = u32::MAX;
    let mut order = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut scc_of = vec![usize::MAX; n];
    let mut sccs: Vec<Vec<u32>> = Vec::new();
    let mut next_order = 0u32;
    let mut frames: Vec<(u32, usize)> = Vec::new();
    for start in 0..n as u32 {
        if frozen[start as usize] || order[start as usize] != UNVISITED {
            continue;
        }
        frames.push((start, 0));
        while let Some(frame) = frames.last_mut() {
            let (v, child) = (frame.0, frame.1);
            if child == 0 {
                order[v as usize] = next_order;
                lowlink[v as usize] = next_order;
                next_order += 1;
                stack.push(v);
                on_stack[v as usize] = true;
            }
            if let Some(&w) = adj[v as usize].get(child) {
                frame.1 += 1;
                if order[w as usize] == UNVISITED {
                    frames.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(order[w as usize]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == order[v as usize] {
                    let mut members = Vec::new();
                    loop {
                        let w = stack.pop().expect("root is on the Tarjan stack");
                        on_stack[w as usize] = false;
                        scc_of[w as usize] = sccs.len();
                        members.push(w);
                        if w == v {
                            break;
                        }
                    }
                    members.sort_unstable();
                    sccs.push(members);
                }
            }
        }
    }

    // Wave levels: Tarjan emits dependencies before dependents, so each
    // component's cross-component successors are already levelled.
    let mut level = vec![0usize; sccs.len()];
    let mut max_level = 0usize;
    for si in 0..sccs.len() {
        let mut lvl = 0usize;
        for &m in &sccs[si] {
            for &w in &adj[m as usize] {
                let ws = scc_of[w as usize];
                if ws != si {
                    debug_assert!(ws < si, "dependency emitted after dependent");
                    lvl = lvl.max(level[ws] + 1);
                }
            }
        }
        level[si] = lvl;
        max_level = max_level.max(lvl);
    }
    let mut waves: Vec<Vec<usize>> =
        vec![Vec::new(); if sccs.is_empty() { 0 } else { max_level + 1 }];
    for (si, &lvl) in level.iter().enumerate() {
        waves[lvl].push(si);
    }
    Waves { sccs, waves }
}

/// Truth encoding for the shared wave-evaluation cells: `0` = undefined /
/// unsettled, `1` = false, `2` = true.
fn encode_truth(value: Option<bool>) -> u8 {
    match value {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    }
}

fn decode_truth(cell: u8) -> Option<bool> {
    match cell {
        1 => Some(false),
        2 => Some(true),
        _ => None,
    }
}

/// Runs the wave schedule to a settled assignment: every wave's components
/// evaluate concurrently against the assignment settled so far, and their
/// results land before the next wave starts.  Frozen entries of the initial
/// assignment are external context and are never written.
///
/// The assignment lives in shared atomic cells so the pool workers can
/// publish component results directly: each atom is written by exactly one
/// component of one wave, components of a wave are mutually independent, and
/// `run_batch` only returns once the whole wave has finished — so every read
/// sees exactly the settled prefix, at every thread count and schedule.  The
/// workers persist across waves ([`crate::pool::with_wave_pool`]); spawning
/// per wave would cost more than the waves themselves on deep programs.
/// Below this many ground rules, a wave is cheaper to evaluate inline on
/// the publishing thread than to hand to a sleeping worker.
const PARALLEL_WAVE_MIN_RULES: usize = 256;

fn wave_fixpoint(
    indexed: &IndexedProgram,
    init: Assignment,
    frozen: &[bool],
    threads: usize,
) -> Assignment {
    let Waves { sccs, waves } = condensation_waves(indexed, frozen);
    let shared: Vec<AtomicU8> = init
        .truth
        .iter()
        .map(|&value| AtomicU8::new(encode_truth(value)))
        .collect();
    let shared = &shared;
    crate::pool::with_wave_pool(threads, |pool| {
        for wave in &waves {
            crate::pool::note_wave();
            // Waking a worker costs a context switch; only do it when the
            // wave carries more work than that.  The estimate reads wave
            // structure alone, so the schedule stays thread-count-honest
            // and the results identical either way.
            let wave_rules: usize = wave
                .iter()
                .flat_map(|&si| sccs[si].iter())
                .map(|&m| indexed.rules_by_head[m as usize].len())
                .sum();
            let wake_workers = wave_rules >= PARALLEL_WAVE_MIN_RULES;
            // One job per chunk of components, not per component: a wave of
            // hundreds of singleton SCCs would otherwise pay queue traffic
            // and allocation per atom.  Chunking is by wave position —
            // deterministic — and writes stay disjoint.
            let chunk_size = wave.len().div_ceil(threads.max(1));
            let jobs: Vec<crate::pool::Job<'_>> = wave
                .chunks(chunk_size)
                .map(|chunk| {
                    let sccs = &sccs;
                    Box::new(move || {
                        for &si in chunk {
                            for (atom, value) in eval_component(indexed, &sccs[si], shared) {
                                shared[atom as usize].store(encode_truth(value), Ordering::Release);
                            }
                        }
                    }) as crate::pool::Job<'_>
                })
                .collect();
            pool.run_batch(jobs, wake_workers);
        }
    });
    Assignment {
        truth: shared
            .iter()
            .map(|cell| decode_truth(cell.load(Ordering::Acquire)))
            .collect(),
    }
}

/// Settles one strongly connected component: the alternating `W_P` fixpoint
/// restricted to the rules whose head lies in the component, with every
/// non-member body atom read from the settled assignment as fixed context.
/// A settled external atom counts as founded exactly when it is not false —
/// the same convention [`well_founded_patch`] applies to its frozen context.
/// Returns the members' final truth values; writing them back is the
/// caller's (single-threaded) job.
fn eval_component(
    indexed: &IndexedProgram,
    members: &[u32],
    settled: &[AtomicU8],
) -> Vec<(u32, Option<bool>)> {
    // Members are sorted, so a binary search beats a hash map at the
    // typical component size (a singleton, for any stratified program).
    let local_idx = |a: u32| members.binary_search(&a).ok();
    let mut local: Vec<Option<bool>> = vec![None; members.len()];
    let rule_ids: Vec<u32> = members
        .iter()
        .flat_map(|&m| indexed.rules_by_head[m as usize].iter().copied())
        .collect();
    let value = |local: &[Option<bool>], a: u32| -> Option<bool> {
        match local_idx(a) {
            Some(li) => local[li],
            None => decode_truth(settled[a as usize].load(Ordering::Acquire)),
        }
    };

    loop {
        let mut changed = false;
        // T_P restricted to the component's rules.
        let mut trues: Vec<usize> = Vec::new();
        'rules: for &ri in &rule_ids {
            let rule = &indexed.rules[ri as usize];
            for &p in &rule.pos {
                if value(&local, p) != Some(true) {
                    continue 'rules;
                }
            }
            for &q in &rule.neg {
                if value(&local, q) != Some(false) {
                    continue 'rules;
                }
            }
            trues.push(local_idx(rule.head).expect("rule head is a member"));
        }
        // Greatest unfounded set restricted to the members: the founded
        // least fixpoint over the component's rules, externals pre-founded
        // unless false.
        let usable: Vec<bool> = rule_ids
            .iter()
            .map(|&ri| {
                let rule = &indexed.rules[ri as usize];
                rule.pos.iter().all(|&p| value(&local, p) != Some(false))
                    && rule.neg.iter().all(|&q| value(&local, q) != Some(true))
            })
            .collect();
        let mut founded = vec![false; members.len()];
        let mut grew = true;
        while grew {
            grew = false;
            for (k, &ri) in rule_ids.iter().enumerate() {
                if !usable[k] {
                    continue;
                }
                let rule = &indexed.rules[ri as usize];
                let head = local_idx(rule.head).expect("rule head is a member");
                if founded[head] {
                    continue;
                }
                let supported = rule.pos.iter().all(|&p| match local_idx(p) {
                    Some(pl) => founded[pl],
                    None => {
                        decode_truth(settled[p as usize].load(Ordering::Acquire)) != Some(false)
                    }
                });
                if supported {
                    founded[head] = true;
                    grew = true;
                }
            }
        }
        for li in trues {
            if local[li] != Some(true) {
                local[li] = Some(true);
                changed = true;
            }
        }
        for (li, &f) in founded.iter().enumerate() {
            if !f && local[li].is_none() {
                local[li] = Some(false);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    members
        .iter()
        .enumerate()
        .map(|(i, &m)| (m, local[i]))
        .collect()
}

/// Re-evaluates the well-founded model after a localized change, touching
/// only the *affected* part of the program.
///
/// `affected` classifies atoms: affected atoms are recomputed, unaffected
/// ones keep their truth value from `previous`.  The caller must pass a
/// classification that is **closed under reverse dependencies** — whenever an
/// atom is affected, the head of every rule whose body mentions it must be
/// affected too.  Under that contract the program splits along its
/// dependency condensation: the unaffected strongly connected components form
/// a lower module with no edges from the affected components, so (by the
/// splitting property of the well-founded semantics) their old truth values
/// are still exact, and the alternating fixpoint only needs to run on the
/// rules of the affected components, reading unaffected atoms as a fixed
/// external context.
///
/// `previous` is consumed and updated surgically: the unaffected entries are
/// kept in place, the affected ones are retired and replaced by the
/// re-evaluation's result — the patch costs O(affected) plus one scan of the
/// previous base, never a rebuild of the whole model.
///
/// [`crate::session::HiLogDb`] derives the classification from the reverse
/// closure of the mutated predicate in its dependency analysis; passing
/// `|_| true` degenerates to [`well_founded_of_ground`].
pub fn well_founded_patch(
    program: &GroundProgram,
    previous: Model,
    mut affected: impl FnMut(&Term) -> bool,
) -> Model {
    let affected_rules: GroundProgram = program
        .rules
        .iter()
        .filter(|r| affected(&r.head))
        .cloned()
        .collect();
    let indexed = IndexedProgram::build(&affected_rules);
    let n = indexed.atom_count();
    let mut assignment = Assignment::new(n);
    // Frozen atoms: context from the unaffected part, never updated.  A
    // frozen atom is pre-founded exactly when it is not false in `previous`
    // (at the fixpoint of the full computation, the unfounded set is the set
    // of false atoms).
    let mut frozen = vec![false; n];
    let mut pre_founded = vec![false; n];
    for (id, atom) in indexed.atoms.iter() {
        if !affected(atom) {
            let id = id as usize;
            frozen[id] = true;
            match previous.truth(atom) {
                Truth::True => {
                    assignment.truth[id] = Some(true);
                    pre_founded[id] = true;
                }
                Truth::False => assignment.truth[id] = Some(false),
                Truth::Undefined => pre_founded[id] = true,
            }
        }
    }
    loop {
        let mut changed = false;
        let trues = t_p(&indexed, &assignment);
        let unfounded = greatest_unfounded_set_seeded(&indexed, &assignment, pre_founded.clone());
        for a in trues {
            // Heads of affected rules are affected atoms, never frozen.
            debug_assert!(!frozen[a as usize]);
            if assignment.truth[a as usize] != Some(true) {
                assignment.truth[a as usize] = Some(true);
                changed = true;
            }
        }
        for (a, &unf) in unfounded.iter().enumerate() {
            if frozen[a] {
                continue;
            }
            if unf && assignment.truth[a] != Some(true) && assignment.truth[a] != Some(false) {
                assignment.truth[a] = Some(false);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Surgical assembly: retire every previously affected base atom (an
    // affected atom outside the re-evaluated rules has no rules left and is
    // false), then install the re-evaluation's result.  Unaffected entries
    // are never touched; new frozen atoms (context atoms a new rule mentions
    // for the first time) join the base with their — unchanged — truth.
    let mut model = previous;
    let stale: Vec<Term> = model
        .base()
        .iter()
        .filter(|atom| affected(atom))
        .cloned()
        .collect();
    for atom in &stale {
        model.remove(atom);
    }
    for (id, atom) in indexed.atoms.iter() {
        if frozen[id as usize] {
            model.add_base_atom(atom.clone());
            continue;
        }
        match assignment.truth[id as usize] {
            Some(true) => model.set_true(atom.clone()),
            Some(false) => model.set_false(atom.clone()),
            None => model.set_undefined(atom.clone()),
        }
    }
    model
}

/// [`well_founded_patch`] with `threads` workers.
///
/// `threads <= 1` dispatches to the serial patch unchanged.  Otherwise the
/// affected sub-program's condensation is evaluated wave-parallel (see
/// [`well_founded_eval`]): frozen atoms carry the previous model's values as
/// fixed context — a frozen atom counts as founded exactly when it is not
/// false, matching the serial patch's `pre_founded` seeding — and the final
/// surgical assembly into the previous model is the serial patch's,
/// verbatim.  The result is identical at every thread count.
pub fn well_founded_patch_with(
    program: &GroundProgram,
    previous: Model,
    mut affected: impl FnMut(&Term) -> bool,
    threads: usize,
) -> Model {
    if threads <= 1 {
        return well_founded_patch(program, previous, affected);
    }
    let affected_rules: GroundProgram = program
        .rules
        .iter()
        .filter(|r| affected(&r.head))
        .cloned()
        .collect();
    let indexed = IndexedProgram::build(&affected_rules);
    let n = indexed.atom_count();
    let mut assignment = Assignment::new(n);
    let mut frozen = vec![false; n];
    for (id, atom) in indexed.atoms.iter() {
        if !affected(atom) {
            let id = id as usize;
            frozen[id] = true;
            assignment.truth[id] = match previous.truth(atom) {
                Truth::True => Some(true),
                Truth::False => Some(false),
                Truth::Undefined => None,
            };
        }
    }
    let assignment = wave_fixpoint(&indexed, assignment, &frozen, threads);

    // Surgical assembly, exactly as in `well_founded_patch`.
    let mut model = previous;
    let stale: Vec<Term> = model
        .base()
        .iter()
        .filter(|atom| affected(atom))
        .cloned()
        .collect();
    for atom in &stale {
        model.remove(atom);
    }
    for (id, atom) in indexed.atoms.iter() {
        if frozen[id as usize] {
            model.add_base_atom(atom.clone());
            continue;
        }
        match assignment.truth[id as usize] {
            Some(true) => model.set_true(atom.clone()),
            Some(false) => model.set_false(atom.clone()),
            None => model.set_undefined(atom.clone()),
        }
    }
    model
}

/// Instance-level reverse dependency closure over a ground program: the
/// least superset of `seeds` closed under "the head of any rule whose body
/// (positive *or negative*) mentions a member is also a member".
///
/// This is exactly the `affected` classification [`well_founded_patch`]
/// requires — whenever an atom is in the closure, so is the head of every
/// rule reading it — computed at the **instance** level rather than the
/// predicate level.  Feeding it the atoms an incremental mutation actually
/// touched (new facts, heads of new or dropped rule instances) *warm-starts*
/// the alternating fixpoint inside a strongly connected component: only the
/// atoms reachable in reverse from the change are re-evaluated, and the rest
/// of the component keeps the previous model's values as frozen context.
/// [`crate::session::HiLogDb`] uses this for every fact-level model patch.
pub fn affected_closure(
    program: &GroundProgram,
    seeds: impl IntoIterator<Item = Term>,
) -> BTreeSet<Term> {
    let mut readers: HashMap<&Term, Vec<&Term>> = HashMap::new();
    for rule in &program.rules {
        for body in rule.pos.iter().chain(rule.neg.iter()) {
            readers.entry(body).or_default().push(&rule.head);
        }
    }
    let mut affected: BTreeSet<Term> = BTreeSet::new();
    let mut queue: Vec<Term> = seeds.into_iter().collect();
    while let Some(atom) = queue.pop() {
        if !affected.insert(atom.clone()) {
            continue;
        }
        if let Some(heads) = readers.get(&atom) {
            queue.extend(heads.iter().map(|h| (*h).clone()));
        }
    }
    affected
}

/// Checks whether a *total* candidate assignment over the ground program's
/// atoms is a fixpoint of `W_P` — the characterisation of stable models used
/// by Definition 3.6.  `candidate` maps every atom of the program to a truth
/// value via [`Model::truth`] (atoms outside its base count as false).
pub fn is_two_valued_fixpoint(program: &GroundProgram, candidate: &Model) -> bool {
    let indexed = IndexedProgram::build(program);
    let n = indexed.atom_count();
    let mut assignment = Assignment::new(n);
    for (id, atom) in indexed.atoms.iter() {
        assignment.truth[id as usize] = Some(candidate.is_true(atom));
    }
    // T_P(I) must be exactly the true atoms, and U_P(I) exactly the false ones.
    let mut derived = vec![false; n];
    for a in t_p(&indexed, &assignment) {
        derived[a as usize] = true;
    }
    let unfounded = greatest_unfounded_set(&indexed, &assignment);
    for id in 0..n {
        let is_true = assignment.truth[id] == Some(true);
        if is_true != derived[id] {
            return false;
        }
        if is_true == unfounded[id] {
            return false;
        }
    }
    true
}

/// Computes the well-founded model of a program via relevant instantiation
/// (the practical path for range-restricted and Datahilog programs).
#[deprecated(
    note = "construct a `HiLogDb` (`crate::session`) and call `.model()`, or share a \
            `DbSnapshot` (`crate::snapshot`) across threads; both cache the grounding and \
            the model across queries instead of recomputing them"
)]
pub fn well_founded_model(program: &Program, opts: EvalOptions) -> Result<Model, EngineError> {
    // One-shot over the snapshot read path: the same route concurrent
    // readers take, minus the sharing.
    let (_writer, handle) = crate::session::HiLogDb::builder()
        .program(program.clone())
        .options(opts)
        .build()
        .into_serving();
    Ok(handle.current().model()?.as_ref().clone())
}

/// Non-deprecated internal form of [`well_founded_model`], shared by the
/// session facade and the other engine modules.
pub(crate) fn wfs_model(program: &Program, opts: EvalOptions) -> Result<Model, EngineError> {
    Ok(well_founded_of_ground(&relevant_ground(program, opts)?))
}

/// Computes the well-founded model of a program instantiated over an
/// explicitly enumerated universe slice (the literal reading of Section 4 for
/// programs that are not range restricted, e.g. Example 4.1).
pub fn well_founded_model_over_universe(
    program: &Program,
    universe: &[Term],
    opts: EvalOptions,
) -> Result<Model, EngineError> {
    Ok(well_founded_of_ground(&ground_over_universe(
        program, universe, opts,
    )?))
}

#[cfg(test)]
// The deprecated `well_founded_model` shim must keep working; these tests
// exercise it on purpose.
#[allow(deprecated)]
mod tests {
    use super::*;
    use hilog_core::interpretation::Truth;
    use hilog_syntax::{parse_program, parse_term};

    fn wfs(text: &str) -> Model {
        well_founded_model(&parse_program(text).unwrap(), EvalOptions::default()).unwrap()
    }

    fn t(s: &str) -> Term {
        parse_term(s).unwrap()
    }

    #[test]
    fn example_3_1_well_founded_model() {
        // p :- q.  q :- p.  r :- s, not p.  s.  t :- not r.  u :- not u.
        let m = wfs("p :- q. q :- p. r :- s, not p. s. t :- not r. u :- not u.");
        assert_eq!(m.truth(&t("s")), Truth::True);
        assert_eq!(m.truth(&t("r")), Truth::True);
        assert_eq!(m.truth(&t("p")), Truth::False);
        assert_eq!(m.truth(&t("q")), Truth::False);
        assert_eq!(m.truth(&t("t")), Truth::False);
        assert_eq!(m.truth(&t("u")), Truth::Undefined);
        assert!(!m.is_total());
    }

    #[test]
    fn example_3_2_everything_undefined() {
        // p :- not q.  q :- not p.  r :- p.  r :- q.  t :- p, not p.
        let m = wfs("p :- not q. q :- not p. r :- p. r :- q. t :- p, not p.");
        for atom in ["p", "q", "r"] {
            assert_eq!(m.truth(&t(atom)), Truth::Undefined, "{atom}");
        }
        // t can never be true (it needs p and not p), but it is not decided
        // false either by W_P?  It is: the rule's body contains complementary
        // literals, so t is unfounded once p is... p stays undefined, so the
        // rule for t has no witness of unusability and t stays undefined.
        assert_eq!(m.truth(&t("t")), Truth::Undefined);
        assert!(!m.is_total());
    }

    #[test]
    fn win_move_game_example_6_1() {
        // A chain a -> b -> c: a and c lose... actually winning(b) is true
        // (b moves to c which has no moves), winning(a) is false (its only
        // move hands b a winning position), winning(c) is false (no moves).
        let m = wfs("winning(X) :- move(X, Y), not winning(Y).\n\
                     move(a, b). move(b, c).");
        assert_eq!(m.truth(&t("winning(b)")), Truth::True);
        assert_eq!(m.truth(&t("winning(a)")), Truth::False);
        assert_eq!(m.truth(&t("winning(c)")), Truth::False);
        assert!(m.is_total());
    }

    #[test]
    fn win_move_with_cycle_has_undefined_positions() {
        // A pure two-position cycle is a draw: both positions are undefined
        // in the well-founded model (the game analogue of Example 3.2).
        let m = wfs("winning(X) :- move(X, Y), not winning(Y).\n\
                     move(a, b). move(b, a).");
        assert_eq!(m.truth(&t("winning(a)")), Truth::Undefined);
        assert_eq!(m.truth(&t("winning(b)")), Truth::Undefined);
        assert!(!m.is_total());
        // Adding an escape move from b to a dead-end position c makes the
        // game determinate again: b wins by moving to c, a loses.
        let m2 = wfs("winning(X) :- move(X, Y), not winning(Y).\n\
                      move(a, b). move(b, a). move(b, c).");
        assert_eq!(m2.truth(&t("winning(b)")), Truth::True);
        assert_eq!(m2.truth(&t("winning(a)")), Truth::False);
        assert!(m2.is_total());
    }

    #[test]
    fn hilog_game_program_example_6_3() {
        let m = wfs("winning(M)(X) :- game(M), M(X, Y), not winning(M)(Y).\n\
                     game(move1). game(move2).\n\
                     move1(a, b). move1(b, c).\n\
                     move2(x, y).");
        assert_eq!(m.truth(&t("winning(move1)(b)")), Truth::True);
        assert_eq!(m.truth(&t("winning(move1)(a)")), Truth::False);
        assert_eq!(m.truth(&t("winning(move2)(x)")), Truth::True);
        assert_eq!(m.truth(&t("winning(move2)(y)")), Truth::False);
        assert!(m.is_total());
    }

    #[test]
    fn generic_transitive_closure_with_negation() {
        // unreachable pairs via tc and negation: strongly range-restricted
        // variant of Example 2.1 with a graph relation.
        let m = wfs("tc(G)(X, Y) :- graph(G), G(X, Y).\n\
                     tc(G)(X, Y) :- graph(G), G(X, Z), tc(G)(Z, Y).\n\
                     node(a). node(b). node(c).\n\
                     unreachable(G)(X, Y) :- graph(G), node(X), node(Y), not tc(G)(X, Y).\n\
                     graph(e). e(a, b). e(b, c).");
        assert_eq!(m.truth(&t("tc(e)(a, c)")), Truth::True);
        assert_eq!(m.truth(&t("unreachable(e)(c, a)")), Truth::True);
        assert_eq!(m.truth(&t("unreachable(e)(a, c)")), Truth::False);
        assert!(m.is_total());
    }

    #[test]
    fn example_4_1_depends_on_the_universe() {
        // p :- not q(X).  q(a).
        // Over the normal universe {a}: p is false.
        // Over a HiLog universe slice with extra terms: p is true.
        let p = parse_program("p :- not q(X). q(a).").unwrap();
        use hilog_core::herbrand::{HerbrandBounds, HerbrandUniverse};
        let normal = HerbrandUniverse::normal(&p, HerbrandBounds::default());
        let m_normal =
            well_founded_model_over_universe(&p, normal.terms(), EvalOptions::default()).unwrap();
        assert_eq!(m_normal.truth(&t("p")), Truth::False);

        let hilog = HerbrandUniverse::hilog(&p, HerbrandBounds::new(2, 1, 200));
        let m_hilog =
            well_founded_model_over_universe(&p, hilog.terms(), EvalOptions::default()).unwrap();
        assert_eq!(m_hilog.truth(&t("p")), Truth::True);
    }

    #[test]
    fn example_5_1_preservation_counterexample_base_case() {
        // P = { p :- X(Y), Y(X). }: p is false in the well-founded model of P
        // alone, true after adding q(r), r(q).
        let m_alone = wfs("p :- X(Y), Y(X).");
        assert_eq!(m_alone.truth(&t("p")), Truth::False);
        let m_extended = wfs("p :- X(Y), Y(X). q(r). r(q).");
        assert_eq!(m_extended.truth(&t("p")), Truth::True);
    }

    #[test]
    fn example_6_4_has_total_wfs() {
        let m = wfs("p(X) :- t(X, Y, Z, P), not p(Y), not p(Z).\n\
                     t(a, b, a, p).\n\
                     t(c, a, b, p).\n\
                     p(b) :- t(X, Y, b, P).");
        assert_eq!(m.truth(&t("p(b)")), Truth::True);
        assert_eq!(m.truth(&t("p(a)")), Truth::False);
        assert_eq!(m.truth(&t("p(c)")), Truth::False);
        assert!(m.is_total());
    }

    #[test]
    fn stratified_program_wfs_is_total_and_standard() {
        let m = wfs("reach(X) :- source(X).\n\
                     reach(Y) :- reach(X), edge(X, Y).\n\
                     blocked(X) :- node(X), not reach(X).\n\
                     source(a). edge(a, b). node(a). node(b). node(c). edge(b, b).");
        assert!(m.is_total());
        assert_eq!(m.truth(&t("reach(b)")), Truth::True);
        assert_eq!(m.truth(&t("blocked(c)")), Truth::True);
        assert_eq!(m.truth(&t("blocked(b)")), Truth::False);
    }

    #[test]
    fn two_valued_fixpoint_check_agrees_with_wfs_on_total_models() {
        let p = parse_program("winning(X) :- move(X, Y), not winning(Y). move(a, b). move(b, c).")
            .unwrap();
        let gp = relevant_ground(&p, EvalOptions::default()).unwrap();
        let m = well_founded_of_ground(&gp);
        assert!(m.is_total());
        assert!(is_two_valued_fixpoint(&gp, &m));
        // Flipping an atom breaks the fixpoint property.
        let mut wrong = m.clone();
        wrong.set_true(t("winning(a)"));
        assert!(!is_two_valued_fixpoint(&gp, &wrong));
    }

    #[test]
    fn empty_program_has_empty_model() {
        let m = well_founded_of_ground(&GroundProgram::new());
        assert!(m.is_total());
        assert!(m.base().is_empty());
    }

    #[test]
    fn patch_with_everything_affected_is_full_recomputation() {
        let p = parse_program(
            "p :- q. q :- p. r :- s, not p. s. t :- not r. u :- not u.\n\
             winning(X) :- move(X, Y), not winning(Y). move(a, b). move(b, c).",
        )
        .unwrap();
        let gp = relevant_ground(&p, EvalOptions::default()).unwrap();
        let full = well_founded_of_ground(&gp);
        let patched = well_founded_patch(&gp, Model::empty(), |_| true);
        assert_eq!(full, patched);
    }

    #[test]
    fn patch_recomputes_only_the_affected_module() {
        // Two independent games over separate move relations; mutate one and
        // patch with the other frozen.
        let before = parse_program(
            "w1(X) :- m1(X, Y), not w1(Y).\n\
             w2(X) :- m2(X, Y), not w2(Y).\n\
             m1(a, b). m2(u, v).",
        )
        .unwrap();
        let after = parse_program(
            "w1(X) :- m1(X, Y), not w1(Y).\n\
             w2(X) :- m2(X, Y), not w2(Y).\n\
             m1(a, b). m2(u, v). m1(b, c).",
        )
        .unwrap();
        let old_model =
            well_founded_of_ground(&relevant_ground(&before, EvalOptions::default()).unwrap());
        let new_ground = relevant_ground(&after, EvalOptions::default()).unwrap();
        // Affected: everything reachable (in reverse) from m1 — the w1/m1
        // module; the w2/m2 module is frozen.
        let affected = |atom: &Term| {
            let name = atom.name().to_string();
            name == "m1" || name == "w1"
        };
        let patched = well_founded_patch(&new_ground, old_model, affected);
        let fresh = well_founded_of_ground(&new_ground);
        assert_eq!(patched, fresh);
        assert_eq!(patched.truth(&t("w1(b)")), Truth::True);
        assert_eq!(patched.truth(&t("w1(a)")), Truth::False);
        assert_eq!(patched.truth(&t("w2(u)")), Truth::True);
    }

    #[test]
    fn instance_level_patch_inside_one_scc_matches_fresh_recomputation() {
        // One predicate-level SCC (the whole chain game), mutated at its far
        // end: the instance-level closure of the new edge contains only the
        // upstream positions, and patching exactly that closure — with the
        // rest of the component frozen at the previous model — reproduces
        // the fresh model.
        let chain = |n: usize, extra: bool| {
            let mut text = String::from("winning(X) :- move(X, Y), not winning(Y).\n");
            for i in 0..n {
                text.push_str(&format!("move(p{}, p{}).\n", i, i + 1));
            }
            if extra {
                text.push_str(&format!("move(p{}, p{}).\n", n, n + 1));
            }
            parse_program(&text).unwrap()
        };
        let old_ground = relevant_ground(&chain(6, false), EvalOptions::default()).unwrap();
        let old_model = well_founded_of_ground(&old_ground);
        let new_ground = relevant_ground(&chain(6, true), EvalOptions::default()).unwrap();
        // Seeds: what the mutation touched — the new edge and the heads of
        // the rule instances it enabled.
        let seeds = [t("move(p6, p7)"), t("winning(p6)")];
        let closure = affected_closure(&new_ground, seeds);
        // The closure climbs the chain through the alternating rules but
        // never leaves it, and includes every winning(pK).
        assert!(closure.contains(&t("winning(p0)")));
        assert!(closure.contains(&t("winning(p6)")));
        assert!(!closure.contains(&t("move(p0, p1)")));
        let patched = well_founded_patch(&new_ground, old_model, |atom| closure.contains(atom));
        assert_eq!(patched, well_founded_of_ground(&new_ground));
    }

    #[test]
    fn affected_closure_follows_negative_edges_and_stops_elsewhere() {
        let p = parse_program("a :- e. b :- not a. c :- b. unrelated :- other. other. e.").unwrap();
        let gp = relevant_ground(&p, EvalOptions::default()).unwrap();
        let closure = affected_closure(&gp, [t("e")]);
        for atom in ["e", "a", "b", "c"] {
            assert!(closure.contains(&t(atom)), "{atom} missing");
        }
        assert!(!closure.contains(&t("unrelated")));
        assert!(!closure.contains(&t("other")));
    }

    #[test]
    fn patch_preserves_frozen_undefined_context() {
        // `u :- not u.` is undefined and unaffected; the affected rule
        // `p :- u.` must come out undefined too (not false), because the
        // frozen undefined context atom is founded, not unfounded.
        let p = parse_program("u :- not u. p :- u. q.").unwrap();
        let gp = relevant_ground(&p, EvalOptions::default()).unwrap();
        let old_model = well_founded_of_ground(&gp);
        let affected = |atom: &Term| atom.name().to_string() == "p";
        let patched = well_founded_patch(&gp, old_model.clone(), affected);
        assert_eq!(patched, well_founded_of_ground(&gp));
        assert_eq!(patched.truth(&t("p")), Truth::Undefined);
        assert_eq!(patched.truth(&t("u")), Truth::Undefined);
        assert_eq!(patched.truth(&t("q")), Truth::True);
    }

    #[test]
    fn wave_evaluation_matches_serial_on_mixed_programs() {
        // Total, partial, cyclic, and multi-SCC shapes; every thread count
        // must reproduce the serial model exactly.
        let programs = [
            "p :- q. q :- p. r :- s, not p. s. t :- not r. u :- not u.",
            "p :- not q. q :- not p. r :- p. r :- q. t :- p, not p.",
            "winning(X) :- move(X, Y), not winning(Y). move(a, b). move(b, c). move(c, a).",
            "w1(X) :- m1(X, Y), not w1(Y). w2(X) :- m2(X, Y), not w2(Y).\n\
             m1(a, b). m1(b, c). m2(u, v). m2(v, u).",
            "reach(X) :- source(X). reach(Y) :- reach(X), edge(X, Y).\n\
             blocked(X) :- node(X), not reach(X).\n\
             source(a). edge(a, b). node(a). node(b). node(c). edge(b, b).",
        ];
        for text in programs {
            let gp =
                relevant_ground(&parse_program(text).unwrap(), EvalOptions::default()).unwrap();
            let serial = well_founded_of_ground(&gp);
            for threads in [2, 4, 8] {
                assert_eq!(
                    well_founded_eval(&gp, threads),
                    serial,
                    "threads={threads} diverged on `{text}`"
                );
            }
        }
    }

    #[test]
    fn wave_evaluation_of_empty_program_is_empty() {
        let m = well_founded_eval(&GroundProgram::new(), 4);
        assert!(m.is_total());
        assert!(m.base().is_empty());
    }

    #[test]
    fn parallel_patch_matches_serial_patch() {
        let chain = |n: usize, extra: bool| {
            let mut text = String::from(
                "winning(X) :- move(X, Y), not winning(Y).\n\
                                         u :- not u. p :- u. q.\n",
            );
            for i in 0..n {
                text.push_str(&format!("move(p{}, p{}).\n", i, i + 1));
            }
            if extra {
                text.push_str(&format!("move(p{}, p{}).\n", n, n + 1));
            }
            parse_program(&text).unwrap()
        };
        let old_ground = relevant_ground(&chain(6, false), EvalOptions::default()).unwrap();
        let old_model = well_founded_of_ground(&old_ground);
        let new_ground = relevant_ground(&chain(6, true), EvalOptions::default()).unwrap();
        let seeds = [t("move(p6, p7)"), t("winning(p6)")];
        let closure = affected_closure(&new_ground, seeds);
        let serial = well_founded_patch(&new_ground, old_model.clone(), |atom| {
            closure.contains(atom)
        });
        for threads in [2, 4, 8] {
            let parallel = well_founded_patch_with(
                &new_ground,
                old_model.clone(),
                |atom| closure.contains(atom),
                threads,
            );
            assert_eq!(parallel, serial, "patch diverged at threads={threads}");
        }
        // The frozen-undefined convention survives the wave path too.
        assert_eq!(serial.truth(&t("p")), Truth::Undefined);
    }
}
