//! Typed request/response shapes of the JSON API, between the HTTP layer
//! and the handlers.  Requests parse from [`serde_json::Value`]; responses
//! serialise through the workspace `serde` stub (the engine's
//! `QueryResult`/`QueryPlan`/`EvalStats` already implement it).

use hilog_engine::session::QueryResult;
use serde::Serialize;
use serde_json::Value;

/// `POST /query` body: `{"query": "?- winning(X).", "timeout_ms": 250}`
/// (`timeout_ms` optional; overrides the server's default deadline).
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// The query in concrete HiLog syntax (with or without the `?-` prefix).
    pub query: String,
    /// Per-request evaluation deadline in milliseconds; `None` falls back
    /// to [`ServerConfig::default_timeout_ms`](crate::ServerConfig).
    pub timeout_ms: Option<u64>,
}

impl QueryRequest {
    /// Parses the request body, reporting a client-facing message on error.
    pub fn from_json(value: &Value) -> Result<Self, String> {
        let query = value
            .get("query")
            .and_then(Value::as_str)
            .ok_or("expected a JSON object with a string `query` member")?;
        let timeout_ms = match value.get("timeout_ms") {
            None => None,
            Some(raw) => Some(
                raw.as_u64()
                    .filter(|&ms| ms > 0)
                    .ok_or("`timeout_ms` must be a positive integer (milliseconds)")?,
            ),
        };
        Ok(QueryRequest {
            query: query.to_string(),
            timeout_ms,
        })
    }
}

/// `POST /assert` / `POST /retract` body:
/// `{"facts": ["move(a, b)"], "rules": ["winning(X) :- ..."]}` — both
/// members optional, both lists of strings in concrete syntax.
#[derive(Debug, Clone, Default)]
pub struct MutateRequest {
    /// Ground facts, e.g. `"move(a, b)"`.
    pub facts: Vec<String>,
    /// Rules in concrete syntax (trailing `.` optional).
    pub rules: Vec<String>,
}

impl MutateRequest {
    /// Parses the request body, reporting a client-facing message on error.
    pub fn from_json(value: &Value) -> Result<Self, String> {
        if value.as_object().is_none() {
            return Err("expected a JSON object with `facts` and/or `rules` lists".into());
        }
        let list = |key: &str| -> Result<Vec<String>, String> {
            match value.get(key) {
                None => Ok(Vec::new()),
                Some(Value::Array(items)) => items
                    .iter()
                    .map(|item| {
                        item.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| format!("`{key}` must be a list of strings"))
                    })
                    .collect(),
                Some(_) => Err(format!("`{key}` must be a list of strings")),
            }
        };
        let request = MutateRequest {
            facts: list("facts")?,
            rules: list("rules")?,
        };
        if request.facts.is_empty() && request.rules.is_empty() {
            return Err("expected at least one entry in `facts` or `rules`".into());
        }
        Ok(request)
    }
}

/// `POST /query` response: the engine's full [`QueryResult`] (answers,
/// truth, stats, plan) plus the epoch of the snapshot that answered.
#[derive(Debug)]
pub struct QueryResponse {
    /// Epoch of the snapshot the query ran against.
    pub epoch: u64,
    /// The engine's result, serialised verbatim.
    pub result: QueryResult,
}

impl Serialize for QueryResponse {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        serde::write_field(out, "epoch", &self.epoch, true);
        serde::write_field(out, "result", &self.result, false);
        out.push('}');
    }
}

/// `POST /assert` / `POST /retract` response.
#[derive(Debug)]
pub struct MutateResponse {
    /// Epoch of the snapshot published by this batch.
    pub epoch: u64,
    /// Number of facts/rules applied.
    pub applied: usize,
    /// Entries that were not present (retract only; empty for assert).
    pub missing: Vec<String>,
}

impl Serialize for MutateResponse {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        serde::write_field(out, "epoch", &self.epoch, true);
        serde::write_field(out, "applied", &self.applied, false);
        serde::write_field(out, "missing", &self.missing, false);
        out.push('}');
    }
}

/// `GET /stats` response: a cheap view of the serving *and* storage state.
#[derive(Debug)]
pub struct StatsResponse {
    /// Epoch of the currently published snapshot.
    pub epoch: u64,
    /// Rules (facts included) in the published program.
    pub rules: usize,
    /// Completed subgoal tables held by the published snapshot.
    pub cached_subqueries: usize,
    /// The semantics queries are answered under.
    pub semantics: String,
    /// Worker threads serving requests.
    pub workers: usize,
    /// Whether a durable store backs the server (`false`: every storage
    /// counter below is zero).
    pub durable: bool,
    /// Mutation batches in the write-ahead log since the last checkpoint.
    pub wal_records: usize,
    /// Bytes in the write-ahead log.
    pub wal_bytes: u64,
    /// Epoch of the most recent checkpoint, if one was ever written.
    pub last_checkpoint_epoch: Option<u64>,
    /// Total on-disk size of the data directory, in bytes.
    pub data_dir_bytes: u64,
    /// Segment files the most recent incremental checkpoint wrote (clean
    /// relations reuse theirs; zero after a whole-store checkpoint).
    pub last_checkpoint_segments: usize,
    /// Bytes the most recent checkpoint added — the incremental delta.
    pub last_checkpoint_bytes: u64,
    /// Segments referenced by the current incremental manifest.
    pub manifest_segments: usize,
    /// Facts resident in memory across the published snapshot's relation
    /// stores (possibly-true store + subgoal tables).
    pub spill_resident_facts: usize,
    /// Facts whose payloads live only in spill segment files (zero under
    /// the in-memory relation backend).
    pub spill_spilled_facts: usize,
    /// Bytes in the snapshot's spill segment files.
    pub spill_segment_bytes: u64,
    /// Process-lifetime residency faults (spilled rows decoded back).
    pub spill_residency_faults: u64,
    /// Process-lifetime rows paged out to spill segments.
    pub spill_writes: u64,
    /// Interned symbols still referenced outside the global pool.
    pub live_symbols: usize,
    /// Total entries in the global symbol pool (live plus pool-only, the
    /// latter reclaimed by the checkpoint-time GC).
    pub interned_symbols: usize,
    /// Set while the store is in read-only degraded mode (a non-transient
    /// storage failure stopped mutations); `null` when healthy.  A
    /// successful `POST /checkpoint` re-arms the writer and clears this.
    pub degraded: Option<DegradedStats>,
    /// Filesystem operations issued by the durable store.
    pub io_ops: u64,
    /// Transient storage faults absorbed by retry.
    pub io_retries: u64,
    /// Faults injected by a fault-injecting I/O backend (0 in production).
    pub injected_faults: u64,
    /// Connections shed with `429` because the accept backlog was full.
    pub shed_requests: u64,
    /// Queries aborted at their deadline (`504` responses).
    pub query_timeouts: u64,
}

/// The `degraded` member of [`StatsResponse`]: why and since when the store
/// has been read-only.
#[derive(Debug, Clone)]
pub struct DegradedStats {
    /// The storage failure that triggered degradation.
    pub reason: String,
    /// Epoch of the last successfully published batch.
    pub since_epoch: u64,
}

impl Serialize for DegradedStats {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        serde::write_field(out, "reason", &self.reason, true);
        serde::write_field(out, "since_epoch", &self.since_epoch, false);
        out.push('}');
    }
}

impl Serialize for StatsResponse {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        serde::write_field(out, "epoch", &self.epoch, true);
        serde::write_field(out, "rules", &self.rules, false);
        serde::write_field(out, "cached_subqueries", &self.cached_subqueries, false);
        serde::write_field(out, "semantics", &self.semantics, false);
        serde::write_field(out, "workers", &self.workers, false);
        serde::write_field(out, "durable", &self.durable, false);
        serde::write_field(out, "wal_records", &self.wal_records, false);
        serde::write_field(out, "wal_bytes", &self.wal_bytes, false);
        serde::write_field(
            out,
            "last_checkpoint_epoch",
            &self.last_checkpoint_epoch,
            false,
        );
        serde::write_field(out, "data_dir_bytes", &self.data_dir_bytes, false);
        serde::write_field(
            out,
            "last_checkpoint_segments",
            &self.last_checkpoint_segments,
            false,
        );
        serde::write_field(
            out,
            "last_checkpoint_bytes",
            &self.last_checkpoint_bytes,
            false,
        );
        serde::write_field(out, "manifest_segments", &self.manifest_segments, false);
        serde::write_field(
            out,
            "spill_resident_facts",
            &self.spill_resident_facts,
            false,
        );
        serde::write_field(out, "spill_spilled_facts", &self.spill_spilled_facts, false);
        serde::write_field(out, "spill_segment_bytes", &self.spill_segment_bytes, false);
        serde::write_field(
            out,
            "spill_residency_faults",
            &self.spill_residency_faults,
            false,
        );
        serde::write_field(out, "spill_writes", &self.spill_writes, false);
        serde::write_field(out, "live_symbols", &self.live_symbols, false);
        serde::write_field(out, "interned_symbols", &self.interned_symbols, false);
        serde::write_field(out, "degraded", &self.degraded, false);
        serde::write_field(out, "io_ops", &self.io_ops, false);
        serde::write_field(out, "io_retries", &self.io_retries, false);
        serde::write_field(out, "injected_faults", &self.injected_faults, false);
        serde::write_field(out, "shed_requests", &self.shed_requests, false);
        serde::write_field(out, "query_timeouts", &self.query_timeouts, false);
        out.push('}');
    }
}

/// `POST /checkpoint` response.
#[derive(Debug)]
pub struct CheckpointResponse {
    /// The epoch the checkpoint captured.
    pub epoch: u64,
    /// `"full"` or `"incremental"`.
    pub mode: String,
    /// `false` when the server runs in-memory (nothing was written).
    pub durable: bool,
    /// Path of the checkpoint (or manifest) file, when one was written.
    pub path: Option<String>,
    /// Segment files written (incremental mode; 0 for full).
    pub segments_written: usize,
    /// Bytes this checkpoint added to the data directory.
    pub bytes_written: u64,
    /// Symbol-pool entries reclaimed by the checkpoint-time GC.
    pub symbols_dropped: usize,
    /// Symbols still live after the GC.
    pub live_symbols: usize,
}

impl Serialize for CheckpointResponse {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        serde::write_field(out, "epoch", &self.epoch, true);
        serde::write_field(out, "mode", &self.mode, false);
        serde::write_field(out, "durable", &self.durable, false);
        serde::write_field(out, "path", &self.path, false);
        serde::write_field(out, "segments_written", &self.segments_written, false);
        serde::write_field(out, "bytes_written", &self.bytes_written, false);
        serde::write_field(out, "symbols_dropped", &self.symbols_dropped, false);
        serde::write_field(out, "live_symbols", &self.live_symbols, false);
        out.push('}');
    }
}
