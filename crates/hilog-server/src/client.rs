//! A tiny blocking HTTP client, just enough to exercise the server from
//! tests and benchmarks without crates.io dependencies.  One request per
//! connection, mirroring the server's `Connection: close` policy.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

/// A completed exchange: status code and response body.
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Raw response body (JSON for every route of this server).
    pub body: String,
    /// Parsed `Retry-After` header (load-shed `429` responses carry it).
    pub retry_after: Option<u64>,
}

impl ClientResponse {
    /// Parses the JSON body.
    pub fn json(&self) -> Result<serde_json::Value, serde_json::Error> {
        serde_json::from_str(&self.body)
    }
}

fn parse_raw(raw: &str) -> std::io::Result<ClientResponse> {
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| std::io::Error::other("malformed status line"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .map(|(head, body)| (head, body.to_string()))
        .unwrap_or((raw, String::new()));
    let retry_after = head
        .lines()
        .find_map(|line| line.strip_prefix("Retry-After: "))
        .and_then(|v| v.trim().parse().ok());
    Ok(ClientResponse {
        status,
        body,
        retry_after,
    })
}

fn exchange(addr: SocketAddr, request: &str) -> std::io::Result<ClientResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(request.as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    parse_raw(&raw)
}

/// Sends `POST path` but stalls between the headers and the body for
/// `stall` — the shape of a slow-client attack.  A server with a socket
/// timeout answers `408` instead of pinning a worker; the error cases
/// (server already hung up) surface as `Err`.
pub fn post_stalled(
    addr: SocketAddr,
    path: &str,
    body: &str,
    stall: std::time::Duration,
) -> std::io::Result<ClientResponse> {
    let mut stream = TcpStream::connect(addr)?;
    let head = format!(
        "POST {path} HTTP/1.1\r\nHost: hilog\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    std::thread::sleep(stall);
    // The server may have timed out and responded already; a failed body
    // write is then expected, and the response is still readable.
    let _ = stream.write_all(body.as_bytes());
    let mut raw = String::new();
    let _ = stream.read_to_string(&mut raw);
    parse_raw(&raw)
}

/// Sends `POST path` with a JSON body.
pub fn post(addr: SocketAddr, path: &str, body: &str) -> std::io::Result<ClientResponse> {
    let request = format!(
        "POST {path} HTTP/1.1\r\nHost: hilog\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    exchange(addr, &request)
}

/// Sends `GET path`.
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<ClientResponse> {
    let request = format!("GET {path} HTTP/1.1\r\nHost: hilog\r\nConnection: close\r\n\r\n");
    exchange(addr, &request)
}
