//! A tiny blocking HTTP client, just enough to exercise the server from
//! tests and benchmarks without crates.io dependencies.  One request per
//! connection, mirroring the server's `Connection: close` policy.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

/// A completed exchange: status code and response body.
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Raw response body (JSON for every route of this server).
    pub body: String,
}

impl ClientResponse {
    /// Parses the JSON body.
    pub fn json(&self) -> Result<serde_json::Value, serde_json::Error> {
        serde_json::from_str(&self.body)
    }
}

fn exchange(addr: SocketAddr, request: &str) -> std::io::Result<ClientResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(request.as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| std::io::Error::other("malformed status line"))?;
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .unwrap_or_default();
    Ok(ClientResponse { status, body })
}

/// Sends `POST path` with a JSON body.
pub fn post(addr: SocketAddr, path: &str, body: &str) -> std::io::Result<ClientResponse> {
    let request = format!(
        "POST {path} HTTP/1.1\r\nHost: hilog\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    exchange(addr, &request)
}

/// Sends `GET path`.
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<ClientResponse> {
    let request = format!("GET {path} HTTP/1.1\r\nHost: hilog\r\nConnection: close\r\n\r\n");
    exchange(addr, &request)
}
