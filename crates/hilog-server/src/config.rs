//! Server configuration.

use hilog_store::{FsyncPolicy, RetryPolicy, StoreIo};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Configuration for [`Server::bind`](crate::Server::bind).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind, e.g. `"127.0.0.1:7171"`.  Port 0 asks the OS for a
    /// free port (the bound address is reported by
    /// [`Server::local_addr`](crate::Server::local_addr)).
    pub addr: String,
    /// Number of worker threads answering requests.  Readers scale with
    /// workers — each queries the published snapshot through its own pinned
    /// `Arc` — while mutations serialise on the single writer.
    pub workers: usize,
    /// Maximum accepted request-body size in bytes; larger requests are
    /// rejected with `413 Payload Too Large`.
    pub max_body_bytes: usize,
    /// Directory for the write-ahead log and checkpoints.  `None` (the
    /// default) serves purely from memory, exactly as before the storage
    /// layer existed; `Some` makes every mutation batch durable and enables
    /// crash recovery on the next boot.
    pub data_dir: Option<PathBuf>,
    /// When WAL appends reach stable storage (ignored without `data_dir`).
    pub fsync: FsyncPolicy,
    /// Write a final checkpoint when [`Server::serve`](crate::Server::serve)
    /// returns after a graceful shutdown (ignored without `data_dir`).  On
    /// by default: the next boot then skips WAL replay entirely.
    pub checkpoint_on_shutdown: bool,
    /// Worker threads used *inside* a single evaluation (the engine's
    /// SCC-wave well-founded fixpoint and partitioned semi-naive rounds).
    /// Independent of `workers`, which scales concurrent requests.  `1` is
    /// the exact serial evaluation path; the default follows the engine
    /// (`HILOG_EVAL_THREADS` or the machine's available parallelism).
    pub eval_threads: usize,
    /// Default per-query deadline in milliseconds, used when a `/query`
    /// body carries no `timeout_ms`.  `None` disables the server-side
    /// default (per-request deadlines still apply).  A query past its
    /// deadline aborts at the engine's resource-limit hooks and answers
    /// `504 Gateway Timeout`.
    pub default_timeout_ms: Option<u64>,
    /// Maximum accepted-but-unserved connections.  Arrivals beyond this are
    /// shed immediately with `429 Too Many Requests` and `Retry-After: 1`
    /// instead of growing an unbounded queue in front of the worker pool.
    pub max_backlog: usize,
    /// Per-socket read/write timeout applied to every accepted connection,
    /// so a client that dribbles its request (or never drains the response)
    /// cannot pin a worker forever.  A stalled read answers
    /// `408 Request Timeout`.  `None` disables the guard.
    pub socket_timeout: Option<Duration>,
    /// Filesystem backend handed to the durable store (ignored without
    /// `data_dir`).  `None` uses the real filesystem; resilience tests pass
    /// a [`hilog_store::FaultIo`] here to inject disk faults under a live
    /// server.
    pub store_io: Option<Arc<dyn StoreIo>>,
    /// Retry policy for transient storage faults (ignored without
    /// `data_dir`).
    pub store_retry: RetryPolicy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7171".to_string(),
            workers: 4,
            max_body_bytes: 1 << 20,
            data_dir: None,
            fsync: FsyncPolicy::PerBatch,
            checkpoint_on_shutdown: true,
            eval_threads: hilog_engine::default_eval_threads(),
            default_timeout_ms: Some(30_000),
            max_backlog: 256,
            socket_timeout: Some(Duration::from_secs(10)),
            store_io: None,
            store_retry: RetryPolicy::default(),
        }
    }
}

impl ServerConfig {
    /// A config bound to an OS-assigned free port — the right choice for
    /// tests and benchmarks.
    pub fn ephemeral() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            ..ServerConfig::default()
        }
    }

    /// Sets the bind address.
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Sets the worker-thread count (clamped to at least 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Enables durable storage under `dir`.
    pub fn data_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.data_dir = Some(dir.into());
        self
    }

    /// Sets the WAL fsync policy.
    pub fn fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }

    /// Sets the per-evaluation thread count (clamped to at least 1; `1` is
    /// the exact serial path).
    pub fn eval_threads(mut self, eval_threads: usize) -> Self {
        self.eval_threads = eval_threads.max(1);
        self
    }

    /// Sets (or, with `None`, disables) the default query deadline.
    pub fn default_timeout_ms(mut self, timeout_ms: Option<u64>) -> Self {
        self.default_timeout_ms = timeout_ms;
        self
    }

    /// Sets the load-shedding backlog bound (clamped to at least 1).
    pub fn max_backlog(mut self, max_backlog: usize) -> Self {
        self.max_backlog = max_backlog.max(1);
        self
    }

    /// Sets (or, with `None`, disables) the per-socket read/write timeout.
    pub fn socket_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.socket_timeout = timeout;
        self
    }

    /// Routes the durable store's filesystem access through `io` — the hook
    /// resilience tests use to inject disk faults under a live server.
    pub fn store_io(mut self, io: Arc<dyn StoreIo>) -> Self {
        self.store_io = Some(io);
        self
    }

    /// Sets the storage retry policy for transient I/O faults.
    pub fn store_retry(mut self, retry: RetryPolicy) -> Self {
        self.store_retry = retry;
        self
    }
}
