//! Server configuration.

/// Configuration for [`Server::bind`](crate::Server::bind).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind, e.g. `"127.0.0.1:7171"`.  Port 0 asks the OS for a
    /// free port (the bound address is reported by
    /// [`Server::local_addr`](crate::Server::local_addr)).
    pub addr: String,
    /// Number of worker threads answering requests.  Readers scale with
    /// workers — each queries the published snapshot through its own pinned
    /// `Arc` — while mutations serialise on the single writer.
    pub workers: usize,
    /// Maximum accepted request-body size in bytes; larger requests are
    /// rejected with `413 Payload Too Large`.
    pub max_body_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7171".to_string(),
            workers: 4,
            max_body_bytes: 1 << 20,
        }
    }
}

impl ServerConfig {
    /// A config bound to an OS-assigned free port — the right choice for
    /// tests and benchmarks.
    pub fn ephemeral() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            ..ServerConfig::default()
        }
    }

    /// Sets the bind address.
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Sets the worker-thread count (clamped to at least 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }
}
