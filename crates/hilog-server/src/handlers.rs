//! Route dispatch: maps parsed HTTP requests onto the snapshot/writer pair.
//!
//! Reads (`POST /query`) pin the currently published
//! [`DbSnapshot`](hilog_engine::DbSnapshot) and never take the writer lock.
//! Mutations (`POST /assert`, `POST /retract`) serialise on the single
//! [`PersistentWriter`](hilog_store::PersistentWriter): each request is one
//! batch, WAL-appended before it is applied (the commit point, a no-op for
//! the in-memory backend) and published atomically, so readers only ever
//! observe whole batches and a crash never loses an acknowledged one.

use crate::api_types::{
    CheckpointResponse, DegradedStats, MutateRequest, MutateResponse, QueryRequest, QueryResponse,
    StatsResponse,
};
use crate::http::{Request, Response};
use crate::ServerState;
use hilog_engine::{with_deadline, EngineError};
use hilog_store::{Op, StoreError};
use hilog_syntax::{parse_query, parse_rule, parse_term};
use serde::Serialize;
use std::sync::atomic::Ordering;
use std::sync::PoisonError;
use std::time::{Duration, Instant};

/// Serialises a response body (infallible with the vendored serde stub).
fn to_string<T: Serialize>(value: &T) -> String {
    serde_json::to_string(value).unwrap_or_default()
}

/// Dispatches one request to its route handler.
pub fn handle_request(state: &ServerState, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/query") => query(state, &request.body),
        ("POST", "/assert") => mutate(state, &request.body, Mutation::Assert),
        ("POST", "/retract") => mutate(state, &request.body, Mutation::Retract),
        ("POST", "/checkpoint") => checkpoint(state, &request.body),
        ("GET", "/stats") => stats(state),
        (_, "/query" | "/assert" | "/retract" | "/checkpoint") => {
            Response::error(405, "use POST for this endpoint")
        }
        (_, "/stats") => Response::error(405, "use GET /stats"),
        _ => Response::error(
            404,
            "no such route (try /query, /assert, /retract, /checkpoint, /stats)",
        ),
    }
}

fn parse_body(body: &[u8]) -> Result<serde_json::Value, Response> {
    let text = std::str::from_utf8(body)
        .map_err(|_| Response::error(400, "request body is not valid UTF-8"))?;
    serde_json::from_str(text)
        .map_err(|e| Response::error(400, &format!("request body is not valid JSON: {e}")))
}

fn query(state: &ServerState, body: &[u8]) -> Response {
    let value = match parse_body(body) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let request = match QueryRequest::from_json(&value) {
        Ok(r) => r,
        Err(message) => return Response::error(400, &message),
    };
    let parsed = match parse_query(&request.query) {
        Ok(q) => q,
        Err(e) => return Response::error(422, &format!("query does not parse: {e}")),
    };
    // Pin the published snapshot: the query runs against exactly this epoch
    // even if the writer publishes mid-evaluation.
    let snapshot = state.snapshots.current();
    // The request's deadline wins over the server default; either installs
    // a thread-local deadline the engine's resource-limit hooks check.
    let timeout_ms = request.timeout_ms.or(state.default_timeout_ms);
    let deadline = timeout_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    match with_deadline(deadline, || snapshot.query(&parsed)) {
        Ok(result) => Response::ok(to_string(&QueryResponse {
            epoch: snapshot.epoch(),
            result,
        })),
        Err(EngineError::DeadlineExceeded(m)) => {
            state.query_timeouts.fetch_add(1, Ordering::Relaxed);
            let ms = timeout_ms.unwrap_or(0);
            Response::error(504, &format!("query exceeded its {ms}ms deadline: {m}"))
        }
        Err(e) => Response::error(422, &format!("query failed: {e}")),
    }
}

#[derive(Clone, Copy)]
enum Mutation {
    Assert,
    Retract,
}

fn mutate(state: &ServerState, body: &[u8], mutation: Mutation) -> Response {
    let value = match parse_body(body) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let request = match MutateRequest::from_json(&value) {
        Ok(r) => r,
        Err(message) => return Response::error(400, &message),
    };
    // Parse and validate the whole batch before touching the writer, so a
    // bad entry rejects the batch before anything reaches the log.  `ops`
    // and `texts` stay parallel: facts first, then rules, matching the
    // order `apply_batch` applies them in.
    let mut ops: Vec<Op> = Vec::with_capacity(request.facts.len() + request.rules.len());
    let mut texts: Vec<String> = Vec::with_capacity(ops.capacity());
    for text in &request.facts {
        let term = match parse_term(text) {
            Ok(t) => t,
            Err(e) => return Response::error(422, &format!("fact `{text}` does not parse: {e}")),
        };
        if !term.is_ground() {
            return Response::error(422, &format!("fact `{text}` is not ground"));
        }
        ops.push(match mutation {
            Mutation::Assert => Op::AssertFact(term),
            Mutation::Retract => Op::RetractFact(term),
        });
        texts.push(text.clone());
    }
    for text in &request.rules {
        let mut normalized = text.trim().to_string();
        if !normalized.ends_with('.') {
            normalized.push('.');
        }
        let rule = match parse_rule(&normalized) {
            Ok(r) => r,
            Err(e) => return Response::error(422, &format!("rule `{text}` does not parse: {e}")),
        };
        ops.push(match mutation {
            Mutation::Assert => Op::AssertRule(rule),
            Mutation::Retract => Op::RetractRule(rule),
        });
        texts.push(text.clone());
    }

    let mut writer = state.writer.lock().unwrap_or_else(PoisonError::into_inner);
    match writer.apply_batch(&ops) {
        Ok(outcome) => Response::ok(to_string(&MutateResponse {
            epoch: outcome.epoch,
            applied: outcome.applied,
            missing: outcome
                .missing
                .into_iter()
                .map(|index| texts[index].clone())
                .collect(),
        })),
        // Groundness was pre-checked, so an engine rejection is unexpected;
        // the applied prefix is already published and the batch is on disk,
        // so replay reproduces exactly this state.
        Err(StoreError::Engine { applied, error }) => {
            let entry = texts.get(applied).map(String::as_str).unwrap_or("?");
            Response::error(500, &format!("assert `{entry}` failed: {error}"))
        }
        // The store refused the batch because it is already read-only:
        // tell the client to read (and the operator to checkpoint).
        Err(e @ StoreError::Degraded { .. }) => Response::error(503, &e.to_string()),
        // Storage failures happen before anything is applied: the batch is
        // rejected whole and the published snapshot is unchanged.  A
        // non-transient I/O failure has just degraded the writer, so this
        // request too answers 503 rather than a generic 500.
        Err(e) => {
            if writer.degraded().is_some() {
                Response::error(503, &format!("storage failed, store is now read-only: {e}"))
            } else {
                Response::error(500, &format!("storage error, batch not applied: {e}"))
            }
        }
    }
}

/// `POST /checkpoint` with an empty body (or `{"mode": "full"}`) writes a
/// whole-store checkpoint; `{"mode": "incremental"}` rewrites only the
/// relations dirtied since their segments were last persisted.
fn checkpoint(state: &ServerState, body: &[u8]) -> Response {
    let incremental = if body.iter().all(|b| b.is_ascii_whitespace()) {
        false
    } else {
        let value = match parse_body(body) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        match value.get("mode").and_then(serde_json::Value::as_str) {
            None | Some("full") => false,
            Some("incremental") => true,
            Some(other) => {
                return Response::error(
                    400,
                    &format!("unknown checkpoint mode `{other}` (try full or incremental)"),
                )
            }
        }
    };
    let mut writer = state.writer.lock().unwrap_or_else(PoisonError::into_inner);
    let outcome = if incremental {
        writer.checkpoint_incremental()
    } else {
        writer.checkpoint()
    };
    match outcome {
        Ok(outcome) => Response::ok(to_string(&CheckpointResponse {
            epoch: outcome.epoch,
            mode: if incremental { "incremental" } else { "full" }.to_string(),
            durable: outcome.path.is_some(),
            path: outcome.path.map(|p| p.display().to_string()),
            segments_written: outcome.segments_written,
            bytes_written: outcome.bytes_written,
            symbols_dropped: outcome.symbols_dropped,
            live_symbols: outcome.live_symbols,
        })),
        Err(e) => Response::error(500, &format!("checkpoint failed: {e}")),
    }
}

fn stats(state: &ServerState) -> Response {
    let snapshot = state.snapshots.current();
    let (storage, degraded) = {
        let writer = state.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let degraded = writer.degraded().map(|d| DegradedStats {
            reason: d.reason.clone(),
            since_epoch: d.since_epoch,
        });
        (writer.storage_stats(), degraded)
    };
    let spill = snapshot.storage_stats();
    let (spill_residency_faults, spill_writes) = hilog_engine::storage_counters();
    let symbols = hilog_core::symbol_pool_stats();
    Response::ok(to_string(&StatsResponse {
        epoch: snapshot.epoch(),
        rules: snapshot.program().rules.len(),
        cached_subqueries: snapshot.cached_subqueries(),
        semantics: snapshot.semantics().to_string(),
        workers: state.workers,
        durable: storage.durable,
        wal_records: storage.wal_records,
        wal_bytes: storage.wal_bytes,
        last_checkpoint_epoch: storage.last_checkpoint_epoch,
        data_dir_bytes: storage.data_dir_bytes,
        last_checkpoint_segments: storage.last_checkpoint_segments,
        last_checkpoint_bytes: storage.last_checkpoint_bytes,
        manifest_segments: storage.manifest_segments,
        spill_resident_facts: spill.resident_facts,
        spill_spilled_facts: spill.spilled_facts,
        spill_segment_bytes: spill.segment_bytes,
        spill_residency_faults,
        spill_writes,
        live_symbols: symbols.live,
        interned_symbols: symbols.interned,
        degraded,
        io_ops: storage.io_ops,
        io_retries: storage.io_retries,
        injected_faults: storage.injected_faults,
        shed_requests: state.shed_requests.load(Ordering::Relaxed),
        query_timeouts: state.query_timeouts.load(Ordering::Relaxed),
    }))
}
