//! Route dispatch: maps parsed HTTP requests onto the snapshot/writer pair.
//!
//! Reads (`POST /query`, `GET /stats`) pin the currently published
//! [`DbSnapshot`](hilog_engine::DbSnapshot) and never take the writer lock.
//! Mutations (`POST /assert`, `POST /retract`) serialise on the single
//! [`DbWriter`](hilog_engine::DbWriter): each request is one batch, applied
//! and published atomically, so readers only ever observe whole batches.

use crate::api_types::{MutateRequest, MutateResponse, QueryRequest, QueryResponse, StatsResponse};
use crate::http::{Request, Response};
use crate::ServerState;
use hilog_core::term::Term;
use hilog_core::Rule;
use hilog_syntax::{parse_query, parse_rule, parse_term};
use serde::Serialize;
use std::sync::PoisonError;

/// Serialises a response body (infallible with the vendored serde stub).
fn to_string<T: Serialize>(value: &T) -> String {
    serde_json::to_string(value).unwrap_or_default()
}

/// Dispatches one request to its route handler.
pub fn handle_request(state: &ServerState, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/query") => query(state, &request.body),
        ("POST", "/assert") => mutate(state, &request.body, Mutation::Assert),
        ("POST", "/retract") => mutate(state, &request.body, Mutation::Retract),
        ("GET", "/stats") => stats(state),
        (_, "/query" | "/assert" | "/retract") => {
            Response::error(405, "use POST for this endpoint")
        }
        (_, "/stats") => Response::error(405, "use GET /stats"),
        _ => Response::error(404, "no such route (try /query, /assert, /retract, /stats)"),
    }
}

fn parse_body(body: &[u8]) -> Result<serde_json::Value, Response> {
    let text = std::str::from_utf8(body)
        .map_err(|_| Response::error(400, "request body is not valid UTF-8"))?;
    serde_json::from_str(text)
        .map_err(|e| Response::error(400, &format!("request body is not valid JSON: {e}")))
}

fn query(state: &ServerState, body: &[u8]) -> Response {
    let value = match parse_body(body) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let request = match QueryRequest::from_json(&value) {
        Ok(r) => r,
        Err(message) => return Response::error(400, &message),
    };
    let parsed = match parse_query(&request.query) {
        Ok(q) => q,
        Err(e) => return Response::error(422, &format!("query does not parse: {e}")),
    };
    // Pin the published snapshot: the query runs against exactly this epoch
    // even if the writer publishes mid-evaluation.
    let snapshot = state.snapshots.current();
    match snapshot.query(&parsed) {
        Ok(result) => Response::ok(to_string(&QueryResponse {
            epoch: snapshot.epoch(),
            result,
        })),
        Err(e) => Response::error(422, &format!("query failed: {e}")),
    }
}

#[derive(Clone, Copy)]
enum Mutation {
    Assert,
    Retract,
}

fn mutate(state: &ServerState, body: &[u8], mutation: Mutation) -> Response {
    let value = match parse_body(body) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let request = match MutateRequest::from_json(&value) {
        Ok(r) => r,
        Err(message) => return Response::error(400, &message),
    };
    // Parse and validate the whole batch before touching the writer, so a
    // bad entry rejects the batch without applying a prefix of it.
    let mut facts: Vec<(Term, String)> = Vec::with_capacity(request.facts.len());
    for text in &request.facts {
        let term = match parse_term(text) {
            Ok(t) => t,
            Err(e) => return Response::error(422, &format!("fact `{text}` does not parse: {e}")),
        };
        if !term.is_ground() {
            return Response::error(422, &format!("fact `{text}` is not ground"));
        }
        facts.push((term, text.clone()));
    }
    let mut rules: Vec<(Rule, String)> = Vec::with_capacity(request.rules.len());
    for text in &request.rules {
        let mut normalized = text.trim().to_string();
        if !normalized.ends_with('.') {
            normalized.push('.');
        }
        let rule = match parse_rule(&normalized) {
            Ok(r) => r,
            Err(e) => return Response::error(422, &format!("rule `{text}` does not parse: {e}")),
        };
        rules.push((rule, text.clone()));
    }

    let mut writer = state.writer.lock().unwrap_or_else(PoisonError::into_inner);
    let mut applied = 0usize;
    let mut missing = Vec::new();
    match mutation {
        Mutation::Assert => {
            for (term, text) in facts {
                match writer.assert_fact(term) {
                    Ok(()) => applied += 1,
                    Err(e) => {
                        // Groundness was pre-checked, so this is unexpected;
                        // publish what was applied and report the failure.
                        let _ = writer.publish();
                        return Response::error(500, &format!("assert `{text}` failed: {e}"));
                    }
                }
            }
            for (rule, _) in rules {
                writer.assert_rule(rule);
                applied += 1;
            }
        }
        Mutation::Retract => {
            for (term, text) in facts {
                if writer.retract_fact(&term) {
                    applied += 1;
                } else {
                    missing.push(text);
                }
            }
            for (rule, text) in rules {
                if writer.retract_rule(&rule) {
                    applied += 1;
                } else {
                    missing.push(text);
                }
            }
        }
    }
    let snapshot = writer.publish();
    Response::ok(to_string(&MutateResponse {
        epoch: snapshot.epoch(),
        applied,
        missing,
    }))
}

fn stats(state: &ServerState) -> Response {
    let snapshot = state.snapshots.current();
    Response::ok(to_string(&StatsResponse {
        epoch: snapshot.epoch(),
        rules: snapshot.program().rules.len(),
        cached_subqueries: snapshot.cached_subqueries(),
        semantics: snapshot.semantics().to_string(),
        workers: state.workers,
    }))
}
