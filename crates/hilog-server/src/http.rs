//! A deliberately minimal HTTP/1.1 layer over `std::net` — just enough to
//! parse one request per connection and write one response, so the serving
//! layer needs no crates.io dependencies.  Connections are `close`-only:
//! every response carries `Connection: close` and the stream is dropped.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// One parsed request: method, path (query strings are not split off —
/// the API routes don't use them), and body.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// The request target, e.g. `/query`.
    pub path: String,
    /// The raw body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

/// A response about to be written: status code plus JSON body.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body; always serialised JSON in this server.
    pub body: String,
    /// Seconds for a `Retry-After` header (load shedding sends `1` with
    /// `429`); `None` omits the header.
    pub retry_after: Option<u64>,
}

impl Response {
    /// A `200 OK` JSON response.
    pub fn ok(body: String) -> Self {
        Response {
            status: 200,
            body,
            retry_after: None,
        }
    }

    /// An error response with a JSON `{"error": ...}` body.
    pub fn error(status: u16, message: &str) -> Self {
        let mut body = String::from("{\"error\":");
        serde::write_json_string(&mut body, message);
        body.push('}');
        Response {
            status,
            body,
            retry_after: None,
        }
    }

    /// An error response that also advertises `Retry-After: {seconds}` —
    /// the shape of the `429` shed response.
    pub fn error_retry_after(status: u16, message: &str, seconds: u64) -> Self {
        let mut response = Response::error(status, message);
        response.retry_after = Some(seconds);
        response
    }
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// `true` for the error kinds a socket read/write timeout produces
/// (platforms disagree on which of the two is reported).
fn is_timeout(error: &std::io::Error) -> bool {
    matches!(
        error.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Maps a request-reading failure to the right client-facing response:
/// `408` when the socket timed out (slow-client guard), `400` otherwise.
fn read_failure(what: &str, error: &std::io::Error) -> Response {
    if is_timeout(error) {
        Response::error(408, &format!("timed out reading {what}"))
    } else {
        Response::error(400, &format!("failed to read {what}: {error}"))
    }
}

/// Reads one request from the stream.  Returns `Err` with a response to
/// write when the request is malformed or oversized.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, Response> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| read_failure("request line", &e))?;
    let mut parts = line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_string(), p.to_string()),
        _ => return Err(Response::error(400, "malformed request line")),
    };
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader
            .read_line(&mut header)
            .map_err(|e| read_failure("header", &e))?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| Response::error(400, "invalid Content-Length"))?;
            }
        }
    }
    if content_length > max_body {
        return Err(Response::error(
            413,
            &format!("request body exceeds {max_body} bytes"),
        ));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| read_failure("body", &e))?;
    Ok(Request { method, path, body })
}

/// Writes the response and flushes; the caller drops the stream afterwards
/// (`Connection: close`).
pub fn write_response(stream: &mut TcpStream, response: &Response) {
    let retry_after = match response.retry_after {
        Some(seconds) => format!("Retry-After: {seconds}\r\n"),
        None => String::new(),
    };
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{}Connection: close\r\n\r\n",
        response.status,
        status_text(response.status),
        response.body.len(),
        retry_after,
    );
    // A peer that hung up mid-write is not an error worth surfacing.
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(response.body.as_bytes());
    let _ = stream.flush();
}
