//! # hilog-server — a JSON-over-HTTP front-end for the serving layer
//!
//! This crate puts the engine's snapshot/writer split
//! ([`DbSnapshot`](hilog_engine::DbSnapshot) / [`DbWriter`](hilog_engine::DbWriter))
//! behind a deliberately small HTTP/1.1 server built on nothing but
//! `std::net` — the workspace has no crates.io access, so the HTTP layer,
//! JSON parser, and worker pool are all local.
//!
//! ## Routes
//!
//! | Route           | Body                                      | Effect |
//! |-----------------|-------------------------------------------|--------|
//! | `POST /query`   | `{"query": "?- winning(X)."}`             | Answers against the pinned snapshot; returns `{epoch, result}` |
//! | `POST /assert`  | `{"facts": [...], "rules": [...]}`        | One batch: WAL-append, apply, publish, return `{epoch, applied, missing}` |
//! | `POST /retract` | `{"facts": [...], "rules": [...]}`        | Same, removing entries; absent ones land in `missing` |
//! | `POST /checkpoint` | `{"mode": "incremental"}` (optional)   | Writes a checkpoint (whole-store by default, per-relation segments + manifest when incremental), truncates the WAL, GCs the symbol pool |
//! | `GET /stats`    | —                                         | Serving + storage counters (epoch, rules, WAL, checkpoints, symbols) |
//!
//! ## Concurrency model
//!
//! Worker threads answering `/query` pin the currently published snapshot
//! (one `Arc` clone) and evaluate against it without blocking each other or
//! the writer.  `/assert` and `/retract` serialise on a single mutex-guarded
//! [`PersistentWriter`]; each request is one
//! batch that is WAL-appended (when a data directory is configured), applied
//! through the incremental maintenance path, and published with an atomic
//! snapshot swap.  A query that races a publish simply answers at the epoch
//! it pinned — exactly the session-level guarantee, now over HTTP.
//!
//! ## Durability
//!
//! With [`ServerConfig::data_dir`] set, the server writes every mutation
//! batch to a write-ahead log *before* applying it and recovers on the next
//! boot from the newest checkpoint plus the WAL tail (see the `hilog-store`
//! crate).  Graceful shutdown flushes the log and, by default, writes a
//! final checkpoint so the next boot skips replay.
//!
//! ```no_run
//! use hilog_engine::HiLogDb;
//! use hilog_server::{Server, ServerConfig};
//! use hilog_syntax::parse_program;
//!
//! let program = parse_program("edge(a, b). tc(G)(X, Y) :- G(X, Y).").unwrap();
//! let db = HiLogDb::new(program);
//! let server = Server::bind(ServerConfig::ephemeral(), db).unwrap();
//! println!("listening on {}", server.local_addr());
//! server.serve();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api_types;
pub mod client;
pub mod config;
pub mod handlers;
pub mod http;
pub mod threadpool;

pub use config::ServerConfig;

use hilog_engine::session::HiLogDb;
use hilog_engine::SnapshotHandle;
use hilog_store::{PersistentWriter, RecoveryReport, StoreConfig};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};

/// Shared state the worker threads operate on: the read side (lock-free
/// snapshot pinning) and the write side (mutex-serialised batches).
#[derive(Debug)]
pub struct ServerState {
    /// Read path: pins the currently published snapshot.
    pub snapshots: SnapshotHandle,
    /// Write path: one writer, one batch per mutation request.  Batches go
    /// through the storage backend first (a no-op without a data directory).
    pub writer: Mutex<PersistentWriter>,
    /// Worker-thread count (reported by `/stats`).
    pub workers: usize,
    /// Maximum accepted request-body size.
    pub max_body_bytes: usize,
    checkpoint_on_shutdown: bool,
    shutdown: AtomicBool,
}

/// A bound, not-yet-serving server.  [`Server::serve`] blocks running the
/// accept loop; use [`Server::handle`] first to keep a shutdown switch.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    state: Arc<ServerState>,
    recovery: RecoveryReport,
}

/// A cloneable remote control for a serving [`Server`]: stops the accept
/// loop and can read snapshots in-process.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds the listener and wraps `db` in the snapshot/writer pair.  The
    /// server owns the only writer; keep a [`SnapshotHandle`] (via
    /// [`Server::snapshots`]) for in-process reads if needed.
    ///
    /// With [`ServerConfig::data_dir`] set this opens (or recovers) the
    /// durable store: an existing directory wins over `db`, whose program is
    /// then ignored in favour of the recovered state — check
    /// [`Server::recovery`] to see which happened.
    pub fn bind(config: ServerConfig, mut db: HiLogDb) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        // The config is the single source of truth for evaluation
        // parallelism; it also flows through recovery, which rebuilds the
        // session from this seed's options.
        db.set_eval_threads(config.eval_threads);
        let (writer, snapshots, recovery) = match &config.data_dir {
            None => {
                let (writer, snapshots) = PersistentWriter::in_memory(db);
                (writer, snapshots, RecoveryReport::default())
            }
            Some(dir) => {
                let store = StoreConfig {
                    data_dir: dir.clone(),
                    fsync: config.fsync,
                    keep_checkpoints: 2,
                };
                PersistentWriter::open(&store, db)
                    .map_err(|e| io::Error::other(format!("cannot open {}: {e}", dir.display())))?
            }
        };
        Ok(Server {
            listener,
            local_addr,
            state: Arc::new(ServerState {
                snapshots,
                writer: Mutex::new(writer),
                workers: config.workers.max(1),
                max_body_bytes: config.max_body_bytes,
                checkpoint_on_shutdown: config.checkpoint_on_shutdown,
                shutdown: AtomicBool::new(false),
            }),
            recovery,
        })
    }

    /// How [`Server::bind`] brought the session up: fresh, or recovered from
    /// a checkpoint plus a WAL tail.
    pub fn recovery(&self) -> RecoveryReport {
        self.recovery
    }

    /// The bound address (useful with port 0 / [`ServerConfig::ephemeral`]).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A shutdown handle; clone freely, works from any thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.local_addr,
            state: Arc::clone(&self.state),
        }
    }

    /// The read side of the serving pair, for in-process queries that skip
    /// HTTP entirely (the bench's no-HTTP variant uses this).
    pub fn snapshots(&self) -> SnapshotHandle {
        self.state.snapshots.clone()
    }

    /// Runs the accept loop, dispatching connections to the worker pool.
    /// Blocks until [`ServerHandle::shutdown`] is called, then flushes the
    /// write-ahead log and (when configured) writes a final checkpoint.
    pub fn serve(self) {
        let state = &self.state;
        let (sender, receiver) = mpsc::channel::<TcpStream>();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                threadpool::run_pool(state.workers, receiver, |mut stream: TcpStream| {
                    let response = match http::read_request(&mut stream, state.max_body_bytes) {
                        Ok(request) => handlers::handle_request(state, &request),
                        Err(error_response) => error_response,
                    };
                    http::write_response(&mut stream, &response);
                });
            });
            for incoming in self.listener.incoming() {
                // Checked after every accept: shutdown() wakes the loop by
                // opening (and immediately dropping) one connection.
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = incoming {
                    // Workers exit when the sender drops; a send can only
                    // fail after that, i.e. never while the loop runs.
                    let _ = sender.send(stream);
                }
            }
            drop(sender);
        });
        // The pool has drained: no request holds the writer any more.
        let mut writer = self
            .state
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Err(e) = writer.shutdown(self.state.checkpoint_on_shutdown) {
            eprintln!("hilog-server: shutdown persistence failed: {e}");
        }
    }
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The read side of the serving pair, for in-process queries.
    pub fn snapshots(&self) -> SnapshotHandle {
        self.state.snapshots.clone()
    }

    /// Stops the accept loop: sets the shutdown flag, then opens a throwaway
    /// connection so a blocked `accept` observes it.  In-flight requests
    /// finish; [`Server::serve`] returns once the pool drains.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        drop(TcpStream::connect(self.addr));
    }
}
