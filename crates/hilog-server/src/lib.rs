//! # hilog-server — a JSON-over-HTTP front-end for the serving layer
//!
//! This crate puts the engine's snapshot/writer split
//! ([`DbSnapshot`](hilog_engine::DbSnapshot) / [`DbWriter`](hilog_engine::DbWriter))
//! behind a deliberately small HTTP/1.1 server built on nothing but
//! `std::net` — the workspace has no crates.io access, so the HTTP layer,
//! JSON parser, and worker pool are all local.
//!
//! ## Routes
//!
//! | Route           | Body                                      | Effect |
//! |-----------------|-------------------------------------------|--------|
//! | `POST /query`   | `{"query": "?- winning(X)."}`             | Answers against the pinned snapshot; returns `{epoch, result}` |
//! | `POST /assert`  | `{"facts": [...], "rules": [...]}`        | One batch: WAL-append, apply, publish, return `{epoch, applied, missing}` |
//! | `POST /retract` | `{"facts": [...], "rules": [...]}`        | Same, removing entries; absent ones land in `missing` |
//! | `POST /checkpoint` | `{"mode": "incremental"}` (optional)   | Writes a checkpoint (whole-store by default, per-relation segments + manifest when incremental), truncates the WAL, GCs the symbol pool |
//! | `GET /stats`    | —                                         | Serving + storage counters (epoch, rules, WAL, checkpoints, symbols) |
//!
//! ## Concurrency model
//!
//! Worker threads answering `/query` pin the currently published snapshot
//! (one `Arc` clone) and evaluate against it without blocking each other or
//! the writer.  `/assert` and `/retract` serialise on a single mutex-guarded
//! [`PersistentWriter`]; each request is one
//! batch that is WAL-appended (when a data directory is configured), applied
//! through the incremental maintenance path, and published with an atomic
//! snapshot swap.  A query that races a publish simply answers at the epoch
//! it pinned — exactly the session-level guarantee, now over HTTP.
//!
//! ## Durability
//!
//! With [`ServerConfig::data_dir`] set, the server writes every mutation
//! batch to a write-ahead log *before* applying it and recovers on the next
//! boot from the newest checkpoint plus the WAL tail (see the `hilog-store`
//! crate).  Graceful shutdown flushes the log and, by default, writes a
//! final checkpoint so the next boot skips replay.
//!
//! ## Resilience
//!
//! Queries carry an optional `timeout_ms` deadline (server default in
//! [`ServerConfig::default_timeout_ms`]) and answer `504` when evaluation
//! exceeds it.  Arrivals beyond [`ServerConfig::max_backlog`] are shed with
//! `429` + `Retry-After`; sockets carry read/write timeouts (`408` for
//! stalled clients).  A non-transient storage failure flips the store into
//! read-only degraded mode: mutations answer `503` while queries keep
//! serving the last published snapshot, and a successful
//! `POST /checkpoint` re-arms the writer.  `GET /stats` reports all of it
//! (`degraded`, `io_retries`, `injected_faults`, `shed_requests`,
//! `query_timeouts`).
//!
//! ```no_run
//! use hilog_engine::HiLogDb;
//! use hilog_server::{Server, ServerConfig};
//! use hilog_syntax::parse_program;
//!
//! let program = parse_program("edge(a, b). tc(G)(X, Y) :- G(X, Y).").unwrap();
//! let db = HiLogDb::new(program);
//! let server = Server::bind(ServerConfig::ephemeral(), db).unwrap();
//! println!("listening on {}", server.local_addr());
//! server.serve();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api_types;
pub mod client;
pub mod config;
pub mod handlers;
pub mod http;
pub mod threadpool;

pub use config::ServerConfig;

use hilog_engine::session::HiLogDb;
use hilog_engine::SnapshotHandle;
use hilog_store::{PersistentWriter, RecoveryReport, StoreConfig};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// Shared state the worker threads operate on: the read side (lock-free
/// snapshot pinning) and the write side (mutex-serialised batches).
#[derive(Debug)]
pub struct ServerState {
    /// Read path: pins the currently published snapshot.
    pub snapshots: SnapshotHandle,
    /// Write path: one writer, one batch per mutation request.  Batches go
    /// through the storage backend first (a no-op without a data directory).
    pub writer: Mutex<PersistentWriter>,
    /// Worker-thread count (reported by `/stats`).
    pub workers: usize,
    /// Maximum accepted request-body size.
    pub max_body_bytes: usize,
    /// Default query deadline applied when a request carries no
    /// `timeout_ms` (see [`ServerConfig::default_timeout_ms`]).
    pub default_timeout_ms: Option<u64>,
    /// Queries aborted at their deadline (`504` responses).
    pub query_timeouts: AtomicU64,
    /// Connections shed with `429` because the backlog was full.
    pub shed_requests: AtomicU64,
    /// Accepted connections not yet fully served; bounded by
    /// [`ServerConfig::max_backlog`].
    backlog: AtomicUsize,
    max_backlog: usize,
    socket_timeout: Option<Duration>,
    checkpoint_on_shutdown: bool,
    shutdown: AtomicBool,
}

/// A bound, not-yet-serving server.  [`Server::serve`] blocks running the
/// accept loop; use [`Server::handle`] first to keep a shutdown switch.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    state: Arc<ServerState>,
    recovery: RecoveryReport,
}

/// A cloneable remote control for a serving [`Server`]: stops the accept
/// loop and can read snapshots in-process.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds the listener and wraps `db` in the snapshot/writer pair.  The
    /// server owns the only writer; keep a [`SnapshotHandle`] (via
    /// [`Server::snapshots`]) for in-process reads if needed.
    ///
    /// With [`ServerConfig::data_dir`] set this opens (or recovers) the
    /// durable store: an existing directory wins over `db`, whose program is
    /// then ignored in favour of the recovered state — check
    /// [`Server::recovery`] to see which happened.
    pub fn bind(config: ServerConfig, mut db: HiLogDb) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        // The config is the single source of truth for evaluation
        // parallelism; it also flows through recovery, which rebuilds the
        // session from this seed's options.
        db.set_eval_threads(config.eval_threads);
        let (writer, snapshots, recovery) = match &config.data_dir {
            None => {
                let (writer, snapshots) = PersistentWriter::in_memory(db);
                (writer, snapshots, RecoveryReport::default())
            }
            Some(dir) => {
                let mut store = StoreConfig::new(dir.clone())
                    .fsync(config.fsync)
                    .retry(config.store_retry);
                if let Some(io) = &config.store_io {
                    store = store.io(Arc::clone(io));
                }
                PersistentWriter::open(&store, db)
                    .map_err(|e| io::Error::other(format!("cannot open {}: {e}", dir.display())))?
            }
        };
        Ok(Server {
            listener,
            local_addr,
            state: Arc::new(ServerState {
                snapshots,
                writer: Mutex::new(writer),
                workers: config.workers.max(1),
                max_body_bytes: config.max_body_bytes,
                default_timeout_ms: config.default_timeout_ms,
                query_timeouts: AtomicU64::new(0),
                shed_requests: AtomicU64::new(0),
                backlog: AtomicUsize::new(0),
                max_backlog: config.max_backlog.max(1),
                socket_timeout: config.socket_timeout,
                checkpoint_on_shutdown: config.checkpoint_on_shutdown,
                shutdown: AtomicBool::new(false),
            }),
            recovery,
        })
    }

    /// How [`Server::bind`] brought the session up: fresh, or recovered from
    /// a checkpoint plus a WAL tail.
    pub fn recovery(&self) -> RecoveryReport {
        self.recovery
    }

    /// The bound address (useful with port 0 / [`ServerConfig::ephemeral`]).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A shutdown handle; clone freely, works from any thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.local_addr,
            state: Arc::clone(&self.state),
        }
    }

    /// The read side of the serving pair, for in-process queries that skip
    /// HTTP entirely (the bench's no-HTTP variant uses this).
    pub fn snapshots(&self) -> SnapshotHandle {
        self.state.snapshots.clone()
    }

    /// Runs the accept loop, dispatching connections to the worker pool.
    /// Blocks until [`ServerHandle::shutdown`] is called, then flushes the
    /// write-ahead log and (when configured) writes a final checkpoint.
    ///
    /// Two overload guards run in the loop itself: arrivals beyond
    /// `max_backlog` accepted-but-unserved connections are shed with
    /// `429 Too Many Requests` + `Retry-After: 1` (never queued), and every
    /// dispatched socket carries the configured read/write timeout so a
    /// slow client cannot pin a worker.
    pub fn serve(self) {
        let state = &self.state;
        let (sender, receiver) = mpsc::channel::<TcpStream>();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                threadpool::run_pool(state.workers, receiver, |mut stream: TcpStream| {
                    let response = match http::read_request(&mut stream, state.max_body_bytes) {
                        Ok(request) => handlers::handle_request(state, &request),
                        Err(error_response) => error_response,
                    };
                    http::write_response(&mut stream, &response);
                    state.backlog.fetch_sub(1, Ordering::SeqCst);
                });
            });
            for incoming in self.listener.incoming() {
                // Checked after every accept: shutdown() wakes the loop by
                // opening (and immediately dropping) one connection.
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(mut stream) = incoming {
                    // Slowloris guard: a worker blocked on this socket gives
                    // up after the timeout (408) instead of forever.
                    if let Some(timeout) = state.socket_timeout {
                        let _ = stream.set_read_timeout(Some(timeout));
                        let _ = stream.set_write_timeout(Some(timeout));
                    }
                    // Load shedding: answer 429 inline (cheap — one write on
                    // a fresh socket) rather than queueing without bound.
                    if state.backlog.load(Ordering::SeqCst) >= state.max_backlog {
                        state.shed_requests.fetch_add(1, Ordering::Relaxed);
                        http::write_response(
                            &mut stream,
                            &http::Response::error_retry_after(
                                429,
                                "server overloaded, request shed",
                                1,
                            ),
                        );
                        // Closing with the request still unread raises RST,
                        // which can destroy the 429 before the client reads
                        // it; drain briefly (bounded — this runs on the
                        // accept loop) so the close is clean.
                        let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
                        let mut sink = [0u8; 4096];
                        for _ in 0..4 {
                            match io::Read::read(&mut stream, &mut sink) {
                                Ok(n) if n > 0 => {}
                                _ => break,
                            }
                        }
                        continue;
                    }
                    state.backlog.fetch_add(1, Ordering::SeqCst);
                    // Workers exit when the sender drops; a send can only
                    // fail after that, i.e. never while the loop runs.
                    let _ = sender.send(stream);
                }
            }
            drop(sender);
        });
        // The pool has drained: no request holds the writer any more.
        let mut writer = self
            .state
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Err(e) = writer.shutdown(self.state.checkpoint_on_shutdown) {
            eprintln!("hilog-server: shutdown persistence failed: {e}");
        }
    }
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The read side of the serving pair, for in-process queries.
    pub fn snapshots(&self) -> SnapshotHandle {
        self.state.snapshots.clone()
    }

    /// Stops the accept loop: sets the shutdown flag, then opens a throwaway
    /// connection so a blocked `accept` observes it.  In-flight requests
    /// finish; [`Server::serve`] returns once the pool drains.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        drop(TcpStream::connect(self.addr));
    }
}
